//! Cross-crate integration tests: the complete flow from procedural
//! scene through training, rendering, and the chip simulator, checking
//! the paper's headline claims at reproduction scale.

use fusion3d::core::bandwidth::{required_bandwidth_gbs, DesignBoundary, USB_BANDWIDTH_GBS};
use fusion3d::core::chip::FusionChip;
use fusion3d::nerf::encoding::HashGridConfig;
use fusion3d::nerf::pipeline::trace_frame;
use fusion3d::nerf::{
    Dataset, ModelConfig, NerfModel, ProceduralScene, SamplerConfig, SyntheticScene, Trainer,
    TrainerConfig,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_model(seed: u64) -> NerfModel {
    let mut rng = SmallRng::seed_from_u64(seed);
    NerfModel::new(
        ModelConfig {
            grid: HashGridConfig {
                levels: 4,
                features_per_level: 2,
                log2_table_size: 11,
                base_resolution: 4,
                max_resolution: 32,
            },
            hidden_dim: 16,
            geo_feature_dim: 7,
        },
        &mut rng,
    )
}

fn quick_config() -> TrainerConfig {
    TrainerConfig {
        rays_per_batch: 96,
        sampler: SamplerConfig { steps_per_diagonal: 48, max_samples_per_ray: 32 },
        occupancy_resolution: 16,
        occupancy_update_interval: 24,
        occupancy_warmup: 48,
        ..TrainerConfig::default()
    }
}

/// Training a compact field on a procedural scene reaches a PSNR that
/// clearly separates signal from noise, and the learned occupancy grid
/// prunes empty space.
#[test]
fn training_reconstructs_a_scene() {
    let scene = ProceduralScene::synthetic(SyntheticScene::Hotdog);
    let dataset = Dataset::from_scene(&scene, 6, 24, 0.9);
    let mut trainer = Trainer::new(small_model(1), quick_config());
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..300 {
        trainer.step(&dataset, &mut rng);
    }
    let psnr = trainer.evaluate_psnr(&dataset);
    assert!(psnr > 18.0, "reconstruction PSNR too low: {psnr:.2} dB");
    let occ = trainer.occupancy().occupancy_ratio();
    assert!(occ < 0.6, "occupancy grid failed to prune: {occ:.2}");
}

/// The trained pipeline's Stage-I workload replayed through the chip
/// simulator sustains the paper-class throughput and meets the
/// real-time bar when scaled to 800x800.
#[test]
fn trained_workload_meets_realtime_on_chip() {
    let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
    let dataset = Dataset::from_scene(&scene, 4, 24, 0.9);
    let mut trainer = Trainer::new(small_model(3), quick_config());
    let mut rng = SmallRng::seed_from_u64(4);
    for _ in 0..200 {
        trainer.step(&dataset, &mut rng);
    }
    let view = &dataset.views()[0];
    let trace = trace_frame(trainer.occupancy(), &view.camera, &trainer.config().sampler);
    assert!(trace.total_samples > 0);

    let chip = FusionChip::scaled_up();
    let report = chip.simulate_frame(&trace);
    // Scale frame time to 800x800.
    let scale = 800.0 * 800.0 / trace.ray_count() as f64;
    let fps = 1.0 / (report.seconds * scale);
    assert!(fps > 30.0, "real-time bar missed: {fps:.1} FPS");
    // Sustained throughput in the hundreds of M pts/s.
    assert!(
        report.points_per_second() > 1.0e8,
        "sustained {:.1} M pts/s",
        report.points_per_second() / 1e6
    );
}

/// The instant-training claim: at the simulated chip's training rate,
/// a paper-scale training run (≈ 400 M samples to 25 PSNR) finishes
/// within the 2-second budget.
#[test]
fn instant_training_budget_holds() {
    let chip = FusionChip::scaled_up();
    let samples_to_quality = 398e6;
    let seconds = samples_to_quality / chip.peak_training_points_per_second();
    assert!(seconds <= 2.05, "training takes {seconds:.2} s");
}

/// The bandwidth claim: the end-to-end boundary of a real (small)
/// training run fits USB with margin, while every partial design
/// boundary exceeds it once scaled to the paper's 2-second schedule.
#[test]
fn end_to_end_boundary_fits_usb() {
    let scene = ProceduralScene::synthetic(SyntheticScene::Chair);
    let dataset = Dataset::from_scene(&scene, 4, 20, 0.9);
    let mut trainer = Trainer::new(small_model(5), quick_config());
    trainer.record_dataset_input(&dataset);
    let mut rng = SmallRng::seed_from_u64(6);
    for _ in 0..120 {
        trainer.step(&dataset, &mut rng);
    }
    trainer.record_model_output();
    let volume = *trainer.data_volume();

    // Scale the measured run to the paper's sample budget.
    let scale = 398e6 / (120.0 * 96.0 * 20.0); // paper samples / run samples
    let scaled = fusion3d::nerf::DataVolume {
        stage1_to_stage2: (volume.stage1_to_stage2 as f64 * scale) as u64,
        stage2_internal: (volume.stage2_internal as f64 * scale) as u64,
        stage2_to_stage3: (volume.stage2_to_stage3 as f64 * scale) as u64,
        stage3_internal: (volume.stage3_internal as f64 * scale) as u64,
        end_to_end_io: volume.end_to_end_io, // images + params do not scale with steps
    };
    let e2e = required_bandwidth_gbs(DesignBoundary::EndToEnd.offchip_bytes(&scaled), 2.0);
    assert!(e2e < USB_BANDWIDTH_GBS, "end-to-end needs {e2e:.3} GB/s");
    for boundary in [DesignBoundary::Stage2, DesignBoundary::Stages23, DesignBoundary::Stages12] {
        let bw = required_bandwidth_gbs(boundary.offchip_bytes(&scaled), 2.0);
        assert!(
            bw > USB_BANDWIDTH_GBS,
            "{} unexpectedly fits USB at {bw:.3} GB/s",
            boundary.label()
        );
    }
}

/// Rendering through the pipeline agrees with the algorithm substrate:
/// the same model and occupancy grid produce identical images whether
/// driven from the trainer or the standalone pipeline entry point.
#[test]
fn pipeline_and_trainer_render_identically() {
    let scene = ProceduralScene::synthetic(SyntheticScene::Mic);
    let dataset = Dataset::from_scene(&scene, 3, 16, 0.9);
    let mut trainer = Trainer::new(small_model(7), quick_config());
    let mut rng = SmallRng::seed_from_u64(8);
    for _ in 0..60 {
        trainer.step(&dataset, &mut rng);
    }
    let camera = dataset.views()[1].camera;
    let a = trainer.render(&camera);
    let cfg = fusion3d::nerf::PipelineConfig {
        sampler: trainer.config().sampler,
        background: trainer.config().background,
        early_stop: true,
    };
    let (model, occupancy) = trainer.into_parts();
    let b = fusion3d::nerf::render_image(&model, &occupancy, &camera, &cfg);
    assert_eq!(a.pixels(), b.pixels());
}
