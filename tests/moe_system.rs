//! Integration tests of the multi-chip path: MoE training, expert
//! specialization, system simulation, and the scalability claims.

use fusion3d::multichip::comm::{layer_split_bytes, moe_bytes, FrameWorkload};
use fusion3d::multichip::moe::{MoeNerf, MoeTrainer};
use fusion3d::multichip::system::{MultiChipConfig, MultiChipSystem};
use fusion3d::nerf::adam::AdamConfig;
use fusion3d::nerf::encoding::HashGridConfig;
use fusion3d::nerf::{
    Dataset, LargeScene, ModelConfig, ProceduralScene, SamplerConfig, TrainerConfig, Vec3,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn expert_config() -> ModelConfig {
    ModelConfig {
        grid: HashGridConfig {
            levels: 3,
            features_per_level: 2,
            log2_table_size: 9,
            base_resolution: 4,
            max_resolution: 16,
        },
        hidden_dim: 12,
        geo_feature_dim: 3,
    }
}

fn moe_trainer_config() -> TrainerConfig {
    TrainerConfig {
        rays_per_batch: 48,
        sampler: SamplerConfig { steps_per_diagonal: 40, max_samples_per_ray: 24 },
        occupancy_resolution: 12,
        occupancy_update_interval: 20,
        occupancy_warmup: 40,
        background: Vec3::new(0.55, 0.7, 0.9),
        ..TrainerConfig::default()
    }
}

/// MoE training on a large scene converges and the per-expert
/// occupancy grids diverge from full coverage (the gating
/// specialization of Fig. 8).
#[test]
fn moe_trains_and_experts_specialize() {
    let scene = ProceduralScene::large(LargeScene::Room);
    let dataset = Dataset::from_scene(&scene, 4, 18, 0.9);
    let mut rng = SmallRng::seed_from_u64(1);
    let moe = MoeNerf::new(3, expert_config(), 12, 0.5, &mut rng);
    let mut trainer = MoeTrainer::new(moe, moe_trainer_config(), AdamConfig::default());

    let first: f64 = (0..3).map(|_| trainer.step(&dataset, &mut rng)).sum::<f64>() / 3.0;
    for _ in 0..160 {
        trainer.step(&dataset, &mut rng);
    }
    let last: f64 = (0..3).map(|_| trainer.step(&dataset, &mut rng)).sum::<f64>() / 3.0;
    assert!(last < first * 0.7, "MoE loss should fall: {first:.4} -> {last:.4}");

    let moe = trainer.into_moe();
    for (i, expert) in moe.experts().iter().enumerate() {
        let ratio = expert.occupancy.occupancy_ratio();
        assert!(ratio < 1.0, "expert {i} never pruned its gate");
        assert!(ratio > 0.0, "expert {i} pruned everything");
    }
}

/// The trained MoE's per-chip workloads drive the four-chip system to
/// a complete, energy-accounted report, and the fused communication is
/// a tiny fraction of a layer-split mapping's.
#[test]
fn multichip_system_runs_trained_moe_workloads() {
    let scene = ProceduralScene::large(LargeScene::Counter);
    let dataset = Dataset::from_scene(&scene, 3, 16, 0.9);
    let mut rng = SmallRng::seed_from_u64(2);
    let moe = MoeNerf::new(4, expert_config(), 12, 0.5, &mut rng);
    let mut trainer = MoeTrainer::new(moe, moe_trainer_config(), AdamConfig::default());
    for _ in 0..100 {
        trainer.step(&dataset, &mut rng);
    }
    let moe = trainer.into_moe();

    let camera = dataset.views()[0].camera;
    let per_chip = moe.per_chip_workloads(&camera, &moe_trainer_config().sampler);
    assert_eq!(per_chip.len(), 4);

    let system = MultiChipSystem::fusion3d();
    let inference = system.simulate(&per_chip, false);
    let training = system.simulate(&per_chip, true);
    assert!(inference.total_seconds > 0.0);
    assert!(training.total_seconds > inference.total_seconds);
    assert!(inference.energy_j > 0.0);
    assert!(inference.imbalance() >= 1.0);

    let samples: u64 = per_chip.iter().flatten().map(|w| w.total_samples() as u64).sum();
    let workload =
        FrameWorkload { rays: camera.pixel_count(), samples, feature_dim: 6, training: false };
    assert!(moe_bytes(&workload, 4) * 5 < layer_split_bytes(&workload, 4));
}

/// The multi-chip resource claims compose from the single chip plus
/// the published I/O-module overheads (Table IV envelope).
#[test]
fn system_resources_compose_from_chips() {
    let cfg = MultiChipConfig::fusion3d();
    let single_area = cfg.chip.die_area_mm2;
    let single_sram = cfg.chip.total_sram_kb();
    assert!(cfg.total_area_mm2() > 4.0 * single_area);
    assert!(cfg.total_area_mm2() < 4.1 * single_area);
    assert!(cfg.total_sram_kb() > 4.0 * single_sram);
    assert!(cfg.total_power_w() < 4.0 * cfg.chip.typical_power_w + 0.2);
    // The whole system stays inside the AR/VR power envelope (~8 W).
    assert!(cfg.total_power_w() < 8.0);
}

/// Scaling the chip count: more chips raise capacity linearly while
/// the MoE fusion traffic stays per-ray, so communication grows only
/// linearly in chips (not in samples).
#[test]
fn moe_scales_with_chip_count() {
    let w = FrameWorkload { rays: 10_000, samples: 500_000, feature_dim: 20, training: false };
    let two = moe_bytes(&w, 2);
    let four = moe_bytes(&w, 4);
    let eight = moe_bytes(&w, 8);
    assert_eq!(four, 2 * two);
    assert_eq!(eight, 2 * four);
    // Layer-split traffic scales with samples and chips.
    assert!(layer_split_bytes(&w, 8) > layer_split_bytes(&w, 4));
}
