//! The execution layer's determinism contract, end to end: training
//! and rendering must produce bitwise-identical results for any
//! worker count (`FUSION3D_THREADS` or the programmatic override).

use fusion3d::nerf::camera::{orbit_poses, Camera};
use fusion3d::nerf::encoding::HashGridConfig;
use fusion3d::nerf::pipeline::{render_image, PipelineConfig};
use fusion3d::nerf::{
    Dataset, ModelConfig, NerfModel, ProceduralScene, SamplerConfig, SyntheticScene, Trainer,
    TrainerConfig, Vec3,
};
use fusion3d::par::set_thread_override;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Trains 50 iterations and renders a small frame with `threads`
/// workers, returning every result as raw bits: the trained hash-grid
/// parameters, the per-step losses, and the rendered pixels.
fn train_and_render(threads: usize) -> (Vec<u32>, Vec<u64>, Vec<u32>) {
    set_thread_override(Some(threads));

    let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
    let dataset = Dataset::from_scene(&scene, 4, 16, 0.9);
    let mut rng = SmallRng::seed_from_u64(42);
    let model = NerfModel::new(
        ModelConfig {
            grid: HashGridConfig {
                levels: 4,
                features_per_level: 2,
                log2_table_size: 10,
                base_resolution: 4,
                max_resolution: 16,
            },
            hidden_dim: 16,
            geo_feature_dim: 7,
        },
        &mut rng,
    );
    let mut trainer = Trainer::new(
        model,
        TrainerConfig {
            rays_per_batch: 48,
            sampler: SamplerConfig { steps_per_diagonal: 32, max_samples_per_ray: 16 },
            occupancy_resolution: 12,
            occupancy_update_interval: 20,
            occupancy_warmup: 30,
            ..TrainerConfig::default()
        },
    );

    let mut step_rng = SmallRng::seed_from_u64(7);
    let losses: Vec<u64> =
        (0..50).map(|_| trainer.step(&dataset, &mut step_rng).loss.to_bits()).collect();

    let pose = orbit_poses(Vec3::splat(0.5), 1.2, 4)[1];
    let camera = Camera::new(pose, 16, 16, 0.9);
    let config = PipelineConfig {
        sampler: trainer.config().sampler,
        background: Vec3::ONE,
        early_stop: true,
    };
    let image = render_image(trainer.model(), trainer.occupancy(), &camera, &config);

    let params: Vec<u32> = trainer.model().grid().params().iter().map(|p| p.to_bits()).collect();
    let pixels: Vec<u32> =
        image.pixels().iter().flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]).collect();

    set_thread_override(None);
    (params, losses, pixels)
}

#[test]
fn training_and_rendering_are_bitwise_identical_across_thread_counts() {
    let (params_1, losses_1, pixels_1) = train_and_render(1);
    let (params_4, losses_4, pixels_4) = train_and_render(4);

    assert_eq!(losses_1, losses_4, "per-step losses diverged between 1 and 4 threads");
    assert_eq!(params_1, params_4, "trained parameters diverged between 1 and 4 threads");
    assert_eq!(pixels_1, pixels_4, "rendered pixels diverged between 1 and 4 threads");
    // Sanity: the run did real work.
    assert!(!params_1.is_empty() && pixels_1.len() == 16 * 16 * 3);
}
