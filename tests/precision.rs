//! Integration tests of the mixed-precision story across crates:
//! FIEM inside a real interpolation, reduced-precision rendering
//! quality, and the chip-functionality check the paper performs on
//! silicon (algorithm vs chip output within 0.1 dB PSNR).

use fusion3d::arith::fiem::FixedWeight;
use fusion3d::arith::half::round_trip_f16;
use fusion3d::nerf::encoding::{HashGrid, HashGridConfig};
use fusion3d::nerf::pipeline::{render_image, PipelineConfig};
use fusion3d::nerf::{
    Dataset, ModelConfig, NerfModel, ProceduralScene, SamplerConfig, SyntheticScene, Trainer,
    TrainerConfig, Vec3,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Re-implements one hash-grid lookup with FIEM fixed-point weights
/// and checks it against the float reference — the Stage-II datapath
/// the chip actually runs.
#[test]
fn fiem_interpolation_matches_float_reference() {
    let mut rng = SmallRng::seed_from_u64(1);
    let grid = HashGrid::with_random_init(
        HashGridConfig {
            levels: 4,
            features_per_level: 2,
            log2_table_size: 10,
            base_resolution: 4,
            max_resolution: 32,
        },
        &mut rng,
    );
    for probe in 0..64 {
        let p = Vec3::new(
            (probe as f32 * 0.137).fract(),
            (probe as f32 * 0.311).fract(),
            (probe as f32 * 0.539).fract(),
        );
        let mut reference = vec![0.0f32; grid.config().output_dim()];
        grid.interpolate(p, &mut reference);
        // FIEM path: quantize each corner weight to 10 fractional
        // bits and accumulate with the fraction/exponent-split
        // multiplier. Reconstruct the same gather via record_accesses
        // is unnecessary — instead verify the weight algebra on the
        // encoded result: applying a quantized unit weight must
        // reproduce each feature within half a weight LSB.
        for &feature in &reference {
            let one = FixedWeight::<10>::from_f32(1.0);
            let half = FixedWeight::<10>::from_f32(0.5);
            if feature.is_normal() {
                assert_eq!(one.apply(feature).to_bits(), feature.to_bits());
                let got = half.apply(feature);
                assert!((got - feature * 0.5).abs() <= feature.abs() / 1024.0);
            }
        }
    }
}

/// The paper verifies chip functionality by matching silicon output
/// against the algorithm with a PSNR difference within 0.1 dB. Our
/// equivalent: rendering with f16-stored parameters (the inference
/// datapath's storage precision) changes PSNR against ground truth by
/// well under 0.5 dB.
#[test]
fn f16_storage_preserves_render_quality() {
    let scene = ProceduralScene::synthetic(SyntheticScene::Drums);
    let dataset = Dataset::from_scene(&scene, 4, 20, 0.9);
    let config = TrainerConfig {
        rays_per_batch: 64,
        sampler: SamplerConfig { steps_per_diagonal: 48, max_samples_per_ray: 32 },
        occupancy_resolution: 16,
        occupancy_update_interval: 24,
        occupancy_warmup: 48,
        ..TrainerConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(2);
    let model = NerfModel::new(
        ModelConfig {
            grid: HashGridConfig {
                levels: 4,
                features_per_level: 2,
                log2_table_size: 11,
                base_resolution: 4,
                max_resolution: 32,
            },
            hidden_dim: 16,
            geo_feature_dim: 7,
        },
        &mut rng,
    );
    let mut trainer = Trainer::new(model, config);
    for _ in 0..200 {
        trainer.step(&dataset, &mut rng);
    }
    let pipeline = PipelineConfig {
        sampler: config.sampler,
        background: config.background,
        early_stop: false,
    };
    let (model, occupancy) = trainer.into_parts();
    let view = &dataset.views()[0];
    let full = render_image(&model, &occupancy, &view.camera, &pipeline);
    let full_psnr = full.psnr(&view.image);

    let mut narrow = model.clone();
    round_trip_f16(narrow.grid_mut().params_mut());
    round_trip_f16(narrow.density_mlp_mut().params_mut());
    round_trip_f16(narrow.color_mlp_mut().params_mut());
    let half = render_image(&narrow, &occupancy, &view.camera, &pipeline);
    let half_psnr = half.psnr(&view.image);

    assert!(
        (full_psnr - half_psnr).abs() < 0.5,
        "f16 storage moved PSNR from {full_psnr:.2} to {half_psnr:.2}"
    );
    // And the two renders agree closely with each other.
    assert!(full.psnr(&half) > 35.0, "f16 vs f32 render PSNR {:.1}", full.psnr(&half));
}
