//! Cross-simulator consistency: the analytic chip model, the
//! cycle-stepped pipeline, the NoC checks, and the training planner
//! must agree with each other on real scene workloads — each models a
//! different aspect of the same hardware, so disagreement means a
//! modelling bug.

use fusion3d::core::chip::FusionChip;
use fusion3d::core::noc::{check_noc, interface_load, NocConfig};
use fusion3d::core::pipeline_sim::{simulate_pipeline, BufferConfig};
use fusion3d::core::training_schedule::{plan_training, TrainingRecipe};
use fusion3d::nerf::camera::{orbit_poses, Camera};
use fusion3d::nerf::pipeline::trace_frame;
use fusion3d::nerf::{ProceduralScene, SamplerConfig, SyntheticScene, Vec3};

fn scene_trace(kind: SyntheticScene) -> fusion3d::nerf::FrameTrace {
    let scene = ProceduralScene::synthetic(kind);
    let occupancy = scene.occupancy_grid(32);
    let pose = orbit_poses(Vec3::new(0.5, 0.4, 0.5), 1.25, 8)[2];
    let camera = Camera::new(pose, 96, 96, 0.9);
    let sampler = SamplerConfig { steps_per_diagonal: 256, max_samples_per_ray: 192 };
    trace_frame(&occupancy, &camera, &sampler)
}

/// On every scene, the cycle-stepped pipeline lands between the
/// analytic makespan and a modest fill/drain margin above it.
#[test]
fn stepped_pipeline_brackets_the_analytic_model() {
    let chip = FusionChip::scaled_up();
    for kind in SyntheticScene::ALL {
        let trace = scene_trace(kind);
        let analytic = chip.simulate_frame(&trace).cycles;
        let stepped = simulate_pipeline(&chip, &trace, &BufferConfig::fusion3d(), false);
        assert_eq!(stepped.points, trace.total_samples, "{}", kind.name());
        assert!(
            stepped.cycles >= analytic,
            "{}: stepped {} < analytic {}",
            kind.name(),
            stepped.cycles,
            analytic
        );
        assert!(
            (stepped.cycles as f64) < analytic as f64 * 1.35,
            "{}: pipeline overhead too large ({} vs {})",
            kind.name(),
            stepped.cycles,
            analytic
        );
    }
}

/// The NoC never throttles any of the eight scene workloads, and the
/// off-chip interface stays inside the USB budget at the achieved
/// frame rate.
#[test]
fn noc_and_interface_have_headroom_on_every_scene() {
    let chip = FusionChip::scaled_up();
    let noc = NocConfig::fusion3d();
    for kind in SyntheticScene::ALL {
        let trace = scene_trace(kind);
        let report = chip.simulate_frame(&trace);
        let check = check_noc(&noc, &trace, 20, &report.stages);
        assert!(
            !check.is_bottleneck(),
            "{}: NoC throttles at {:.2}",
            kind.name(),
            check.peak_utilization()
        );
        // Interface at the display-capped frame rate (an HMD refreshes
        // at <= 90 Hz; the chip never streams faster than the panel),
        // scaled to 800x800 pixels per second.
        let scale = 800.0 * 800.0 / trace.ray_count() as f64;
        let fps = (1.0 / (report.seconds * scale)).min(90.0);
        let io = interface_load(&trace, fps * scale);
        assert!(
            io.required_gbs < 0.625,
            "{}: interface needs {:.3} GB/s",
            kind.name(),
            io.required_gbs
        );
    }
}

/// The training planner and the raw chip simulation agree on step
/// time, and every scene's paper-scale plan stays instant on the
/// scaled-up chip.
#[test]
fn training_plans_are_instant_on_every_scene() {
    let chip = FusionChip::scaled_up();
    for kind in SyntheticScene::ALL {
        let trace = scene_trace(kind);
        let step = chip.simulate_training_step(&trace);
        // Budget: the paper-scale run processes ~390 M samples at ~13
        // samples per ray. Sparse scenes retain fewer samples per ray,
        // so their budget is ray-bound (there is simply less content
        // to fit); dense scenes are sample-bound.
        let per_step = (trace.total_samples as f64).max(trace.ray_count() as f64 * 13.0);
        let iterations = (390e6 / per_step).ceil() as u32;
        let recipe = TrainingRecipe { iterations, ..TrainingRecipe::paper_scale() };
        let plan = plan_training(&chip, &trace, &recipe);
        // Planner's step time is exactly iterations × one step.
        let expected = step.seconds * iterations as f64;
        assert!(
            (plan.step_seconds - expected).abs() < 1e-9,
            "{}: planner disagrees with the chip simulation",
            kind.name()
        );
        assert!(plan.fits(2.6), "{}: plan takes {:.2} s", kind.name(), plan.overlapped_seconds());
    }
}
