//! Exhaustive small-domain soundness tests for the interval lattice.
//!
//! Every abstract transfer function must over-approximate its concrete
//! counterpart: for all `x ∈ A`, `y ∈ B`, the concrete `x ⊕ y` must be
//! contained in `A ⊕ B`. Rather than sampling, these tests enumerate
//! the *entire* lattice over a dense 4-bit value grid (`[-8, 7]` — all
//! 136 non-empty intervals plus ⊥) and check every concrete member
//! pair. Any unsound corner in a transfer function (a swapped bound, a
//! missed sign case, a wrong corner product) shows up as a concrete
//! counterexample in the assertion message.
//!
//! The lattice-algebra tests (join/meet laws, widening termination)
//! are what the abstract interpreter's fixpoint loop relies on: joins
//! must be commutative least upper bounds, and any ascending chain
//! interleaved with widening must stabilise in a bounded number of
//! steps.

use fusion3d_lint::intervals::{type_bits, type_range, Interval};

/// Grid rails: a 4-bit signed domain.
const G_LO: i128 = -8;
const G_HI: i128 = 7;

/// Every interval over the grid, plus ⊥ and ⊤ (the rails matter for
/// saturation paths).
fn lattice() -> Vec<Interval> {
    let mut out = vec![Interval::Bottom, Interval::TOP];
    for lo in G_LO..=G_HI {
        for hi in lo..=G_HI {
            out.push(Interval::new(lo, hi));
        }
    }
    out
}

/// The concrete members of `iv` that lie on the grid (⊤ contributes
/// the whole grid; ⊥ contributes nothing).
fn members(iv: Interval) -> Vec<i128> {
    match iv.bounds() {
        None => Vec::new(),
        Some((lo, hi)) => (lo.max(G_LO)..=hi.min(G_HI)).collect(),
    }
}

/// Checks `concrete(x, y) ∈ abstract(A, B)` for every `A`, `B` in the
/// lattice and every grid member pair. `concrete` returns `None` for
/// undefined concrete operations (division by zero, negative shift
/// amounts), which the abstract result need not cover.
fn assert_binary_sound(
    name: &str,
    abstract_op: impl Fn(Interval, Interval) -> Interval,
    concrete: impl Fn(i128, i128) -> Option<i128>,
) {
    let lattice = lattice();
    for &a in &lattice {
        for &b in &lattice {
            let r = abstract_op(a, b);
            for &x in &members(a) {
                for &y in &members(b) {
                    if let Some(z) = concrete(x, y) {
                        assert!(
                            r.contains(z),
                            "{name}: concrete {x} ⊕ {y} = {z} escapes {r:?} \
                             (operands {a:?}, {b:?})"
                        );
                    }
                }
            }
        }
    }
}

fn assert_unary_sound(
    name: &str,
    abstract_op: impl Fn(Interval) -> Interval,
    concrete: impl Fn(i128) -> i128,
) {
    for &a in &lattice() {
        let r = abstract_op(a);
        for &x in &members(a) {
            let z = concrete(x);
            assert!(r.contains(z), "{name}: concrete op({x}) = {z} escapes {r:?} (operand {a:?})");
        }
    }
}

// ------------------------------------------------ transfer functions

#[test]
fn add_sub_mul_are_sound() {
    assert_binary_sound("add", Interval::add, |x, y| Some(x + y));
    assert_binary_sound("sub", Interval::sub, |x, y| Some(x - y));
    assert_binary_sound("mul", Interval::mul, |x, y| Some(x * y));
}

#[test]
fn neg_and_abs_are_sound() {
    assert_unary_sound("neg", Interval::neg, |x| -x);
    assert_unary_sound("abs", Interval::abs, |x| x.abs());
}

#[test]
fn div_and_rem_are_sound() {
    assert_binary_sound("div", Interval::div, |x, y| if y == 0 { None } else { Some(x / y) });
    assert_binary_sound("rem", Interval::rem, |x, y| if y == 0 { None } else { Some(x % y) });
}

#[test]
fn shifts_are_sound() {
    // Negative shift amounts are not valid Rust; the abstract operator
    // may return anything for them, so they are excluded concretely.
    assert_binary_sound("shl", Interval::shl, |x, y| {
        (0..=127).contains(&y).then(|| x << y.min(120))
    });
    assert_binary_sound("shr", Interval::shr, |x, y| {
        (0..=127).contains(&y).then(|| x >> y.min(120))
    });
}

#[test]
fn bitops_are_sound() {
    assert_binary_sound("bitand", Interval::bitand, |x, y| Some(x & y));
    assert_binary_sound("bitor", Interval::bitor, |x, y| Some(x | y));
}

#[test]
fn min_max_are_sound() {
    assert_binary_sound("min", Interval::min_, |x, y| Some(x.min(y)));
    assert_binary_sound("max", Interval::max_, |x, y| Some(x.max(y)));
}

#[test]
fn clamp_is_sound() {
    // Ternary: enumerate a coarser sub-lattice to keep the product
    // tractable, but still cover crossing, nested, and degenerate
    // bound layouts.
    let coarse: Vec<Interval> = vec![
        Interval::Bottom,
        Interval::TOP,
        Interval::new(G_LO, G_HI),
        Interval::new(-8, -3),
        Interval::new(-4, 2),
        Interval::new(-1, 1),
        Interval::new(0, 0),
        Interval::new(0, 7),
        Interval::new(3, 5),
        Interval::new(7, 7),
    ];
    for &a in &coarse {
        for &b in &coarse {
            for &c in &coarse {
                let r = a.clamp_to(b, c);
                for &x in &members(a) {
                    for &lo in &members(b) {
                        for &hi in &members(c) {
                            if lo > hi {
                                continue; // concrete clamp would panic
                            }
                            let z = x.clamp(lo, hi);
                            assert!(
                                r.contains(z),
                                "clamp: {x}.clamp({lo}, {hi}) = {z} escapes {r:?} \
                                 ({a:?}.clamp_to({b:?}, {c:?}))"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn saturate_is_sound_and_exact_for_constant_rails() {
    // `saturate_to` models clamping to the *constant* rails of
    // `range`, so concrete members of `range` other than its exact
    // bounds are not inputs — only `(range.lo, range.hi)` is.
    for &a in &lattice() {
        for &r in &lattice() {
            let out = a.saturate_to(r);
            let Some((rlo, rhi)) = r.bounds() else {
                assert!(out.is_bottom());
                continue;
            };
            for &x in &members(a) {
                let z = x.clamp(rlo, rhi);
                assert!(out.contains(z), "saturate: {x}.clamp({rlo}, {rhi}) = {z} escapes {out:?}");
            }
            // Exactness: saturating never widens past the rails, and
            // an interval already inside the rails is unchanged.
            if let Some((olo, ohi)) = out.bounds() {
                assert!(rlo <= olo && ohi <= rhi);
            }
            if a.subset_of(r) && !a.is_bottom() {
                assert_eq!(out, a, "in-range interval must pass through saturate unchanged");
            }
        }
    }
}

// ------------------------------------------------------ lattice laws

#[test]
fn join_is_a_commutative_least_upper_bound() {
    let lattice = lattice();
    for &a in &lattice {
        for &b in &lattice {
            let j = a.join(b);
            assert_eq!(j, b.join(a), "join must be commutative: {a:?}, {b:?}");
            assert!(a.subset_of(j) && b.subset_of(j), "join must cover both: {a:?}, {b:?}");
            // Least: no interval strictly inside `j` covers both.
            for &x in &members(a) {
                assert!(j.contains(x));
            }
            for &c in &lattice {
                if a.subset_of(c) && b.subset_of(c) {
                    assert!(j.subset_of(c), "join must be the LEAST upper bound: {a:?}, {b:?}");
                }
            }
        }
    }
}

#[test]
fn join_is_idempotent_and_bottom_is_identity() {
    for &a in &lattice() {
        assert_eq!(a.join(a), a);
        assert_eq!(a.join(Interval::Bottom), a);
        assert_eq!(Interval::Bottom.join(a), a);
        assert_eq!(a.join(Interval::TOP), Interval::TOP);
    }
}

#[test]
fn meet_is_exact_intersection_on_the_grid() {
    let lattice = lattice();
    for &a in &lattice {
        for &b in &lattice {
            let m = a.meet(b);
            assert_eq!(m, b.meet(a), "meet must be commutative");
            for x in G_LO..=G_HI {
                assert_eq!(
                    m.contains(x),
                    a.contains(x) && b.contains(x),
                    "meet must be the exact intersection at {x}: {a:?}, {b:?}"
                );
            }
        }
    }
}

#[test]
fn widening_covers_the_join_and_terminates() {
    // Jump-to-rail widening moves each bound at most once (straight to
    // its rail), so any ascending chain interleaved with widening
    // changes the iterate at most three times: once leaving ⊥, then
    // once per bound. Enumerate chains of three arbitrary successor
    // values over a bounds sub-lattice.
    let chain_domain: Vec<Interval> = {
        let bounds = [-8i128, -1, 0, 1, 7];
        let mut out = vec![Interval::Bottom, Interval::TOP];
        for &lo in &bounds {
            for &hi in &bounds {
                if lo <= hi {
                    out.push(Interval::new(lo, hi));
                }
            }
        }
        out
    };
    for &a in &chain_domain {
        for &b in &chain_domain {
            let w = a.widen(b);
            assert!(a.join(b).subset_of(w), "widening must cover the join: {a:?} ∇ {b:?} = {w:?}");
        }
    }
    for &a in &chain_domain {
        for &s1 in &chain_domain {
            for &s2 in &chain_domain {
                for &s3 in &chain_domain {
                    let mut x = a;
                    let mut changes = 0;
                    for next in [s1, s2, s3] {
                        let stepped = x.widen(x.join(next));
                        if stepped != x {
                            changes += 1;
                        }
                        x = stepped;
                    }
                    assert!(
                        changes <= 3,
                        "widening chain from {a:?} via {s1:?},{s2:?},{s3:?} \
                         changed {changes} times (> 3 ⇒ non-terminating fixpoint)"
                    );
                    // One more step from the stabilised iterate must be
                    // a no-op for anything already covered.
                    assert_eq!(x.widen(x), x);
                }
            }
        }
    }
}

// --------------------------------------------------------- type data

#[test]
fn type_ranges_match_rust_primitives() {
    assert_eq!(type_range("i8"), Some(Interval::new(i8::MIN as i128, i8::MAX as i128)));
    assert_eq!(type_range("u8"), Some(Interval::new(0, u8::MAX as i128)));
    assert_eq!(type_range("i32"), Some(Interval::new(i32::MIN as i128, i32::MAX as i128)));
    assert_eq!(type_range("u64"), Some(Interval::new(0, u64::MAX as i128)));
    assert_eq!(type_range("usize"), type_range("u64"), "usize is modelled as 64-bit");
    assert_eq!(type_range("f32"), None);
    assert_eq!(type_bits("u16"), Some(16));
    assert_eq!(type_bits("Vec"), None);
    // u128 truncates to the i128 rail — wider than any concrete u128
    // check needs, never narrower than i128 arithmetic supports.
    assert_eq!(type_range("u128"), Some(Interval::new(0, i128::MAX)));
}
