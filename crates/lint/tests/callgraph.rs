//! Call-graph unit tests over a synthetic multi-module crate:
//! free-fn, method, and trait-object edges, module-qualified calls,
//! and the external-type guard that keeps `Vec::new` from edging into
//! every workspace `new`.

use fusion3d_lint::graph::CallGraph;
use fusion3d_lint::{lexer, parse, SourceFile};

fn workspace(files: &[(&str, &str)]) -> Vec<SourceFile> {
    let mut out: Vec<SourceFile> = files
        .iter()
        .map(|(path, source)| {
            let lexed = lexer::lex(source);
            let parsed = parse::parse_file(&lexed);
            SourceFile { path: path.to_string(), lexed, parsed }
        })
        .collect();
    let mut parsed: Vec<&mut parse::ParsedFile> = out.iter_mut().map(|f| &mut f.parsed).collect();
    parse::resolve_array_aliases(&mut parsed);
    out
}

fn node(files: &[SourceFile], graph: &CallGraph, name: &str) -> usize {
    (0..graph.nodes.len())
        .find(|&n| graph.display_name(files, n) == name)
        .unwrap_or_else(|| panic!("no node named {name}"))
}

fn has_edge(files: &[SourceFile], graph: &CallGraph, from: &str, to: &str) -> bool {
    let (f, t) = (node(files, graph, from), node(files, graph, to));
    graph.callees[f].contains(&t)
}

const ENGINE: &str = "\
pub struct Engine { steps: u32 }

impl Engine {
    pub fn new() -> Engine {
        Engine { steps: 0 }
    }

    pub fn run(&mut self) {
        tick(self.steps);
        self.finish();
    }

    fn finish(&self) {}
}

pub fn tick(_step: u32) {}

pub fn fresh_engine() -> Engine {
    Engine::new()
}
";

const KERNELS: &str = "\
pub trait Kernel {
    fn exec(&self);
}

pub struct Gather;

impl Kernel for Gather {
    fn exec(&self) {
        crate::engine::tick(0);
    }
}

pub fn dispatch(k: &dyn Kernel) {
    k.exec();
}

pub fn fresh() -> Vec<u32> {
    Vec::new()
}
";

fn build() -> (Vec<SourceFile>, CallGraph) {
    let files = workspace(&[
        ("crates/core/src/engine.rs", ENGINE),
        ("crates/core/src/kernels.rs", KERNELS),
    ]);
    let graph = CallGraph::build(&files);
    (files, graph)
}

#[test]
fn resolves_free_method_and_trait_object_calls_across_modules() {
    let (files, graph) = build();

    // Free call inside a method body, resolved across modules.
    assert!(has_edge(&files, &graph, "core::Engine::run", "core::tick"));
    // `self.finish()` resolves as a method call.
    assert!(has_edge(&files, &graph, "core::Engine::run", "core::Engine::finish"));
    // `.exec()` on a trait object edges to every workspace impl of `exec`.
    assert!(has_edge(&files, &graph, "core::dispatch", "core::Gather::exec"));
    // Module-qualified free call (`crate::engine::tick`) from a trait impl.
    assert!(has_edge(&files, &graph, "core::Gather::exec", "core::tick"));
}

#[test]
fn external_type_constructors_produce_no_edges() {
    let (files, graph) = build();

    // `Vec::new()` names no workspace type: edging it to `Engine::new`
    // would drag every constructor into every reachability set.
    let fresh = node(&files, &graph, "core::fresh");
    assert!(graph.callees[fresh].is_empty(), "{:?}", graph.callees[fresh]);

    // The same `new` through its real workspace type resolves.
    assert!(has_edge(&files, &graph, "core::fresh_engine", "core::Engine::new"));
}

#[test]
fn reachability_records_first_parents_and_paths() {
    let (files, graph) = build();

    let run = node(&files, &graph, "core::Engine::run");
    let parents = graph.reachable_from(&[run]);

    assert_eq!(parents[run], Some(run), "entries are their own parents");
    let tick = node(&files, &graph, "core::tick");
    assert_eq!(parents[tick], Some(run));
    assert_eq!(graph.path_string(&files, &parents, tick), "core::Engine::run → core::tick");

    let dispatch = node(&files, &graph, "core::dispatch");
    assert_eq!(parents[dispatch], None, "dispatch is not reachable from run");
}
