//! The real workspace must be lint-clean: every invariant D1–A1
//! holds over `crates/*/src` and the façade crate, with the handful
//! of documented exceptions carrying allow comments. A violation
//! introduced anywhere in the workspace fails this test (and the
//! `fusion3d-lint` step in `scripts/check.sh`).

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = match fusion3d_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => panic!("failed to scan workspace: {err}"),
    };
    assert!(
        report.files_scanned > 90,
        "walker lost track of the source tree: only {} files scanned",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "workspace must be lint-clean, found:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
