//! Fixture tests: for every rule, at least one positive snippet that
//! must be flagged and one negative snippet that must stay clean —
//! including the `// lint: allow(<rule>)` escape hatch and the
//! test-code exemption.

use fusion3d_lint::{lint_source, lint_sources};

/// Rules fired by linting `source` as if it lived at `path`.
fn rules_at(path: &str, source: &str) -> Vec<&'static str> {
    lint_source(path, source).into_iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_flags_hash_containers_in_result_bearing_crates() {
    let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
    let fired = rules_at("crates/core/src/config.rs", src);
    assert_eq!(fired, vec!["D1", "D1"], "both mentions flagged");

    let set = "fn g() { let s: std::collections::HashSet<u32> = Default::default(); }\n";
    assert_eq!(rules_at("crates/nerf/src/hash.rs", set), vec!["D1"]);
}

#[test]
fn d1_ignores_out_of_scope_crates_and_ordered_containers() {
    let src = "use std::collections::HashMap;\n";
    assert!(rules_at("crates/bench/src/lib.rs", src).is_empty(), "bench is not result-bearing");
    assert!(rules_at("crates/lint/src/lib.rs", src).is_empty());

    let ordered = "use std::collections::{BTreeMap, BTreeSet};\nfn f(m: &BTreeMap<u32, u32>) {}\n";
    assert!(rules_at("crates/core/src/config.rs", ordered).is_empty());
}

#[test]
fn d1_allow_comment_suppresses() {
    let src = "// lint: allow(d1): keyed lookups only, never iterated\n\
               use std::collections::HashMap;\n";
    assert!(rules_at("crates/mem/src/banks.rs", src).is_empty());
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_flags_wall_clock_randomness_and_env() {
    assert_eq!(
        rules_at("crates/core/src/chip.rs", "fn f() { let t = std::time::Instant::now(); }"),
        vec!["D2"],
        "one finding per line even when two patterns overlap"
    );
    assert_eq!(
        rules_at("crates/nerf/src/trainer.rs", "fn f() { let mut rng = rand::thread_rng(); }"),
        vec!["D2"]
    );
    assert_eq!(
        rules_at("crates/par/src/lib.rs", "fn f() -> bool { std::env::var(\"X\").is_ok() }"),
        vec!["D2"]
    );
    assert_eq!(rules_at("crates/mem/src/sram.rs", "fn f(t: std::time::SystemTime) {}"), vec!["D2"]);
}

#[test]
fn d2_ignores_bench_and_comments() {
    let src = "fn f() { let t = std::time::Instant::now(); }";
    assert!(rules_at("crates/bench/src/support.rs", src).is_empty(), "timing belongs in bench");
    let comment = "// std::time::Instant is banned here\nfn f() {}\n";
    assert!(rules_at("crates/core/src/chip.rs", comment).is_empty());
}

#[test]
fn d2_allow_comment_suppresses() {
    let src = "fn f() -> bool {\n\
               // lint: allow(d2): worker count never affects results\n\
               std::env::var(\"FUSION3D_THREADS\").is_ok()\n\
               }\n";
    assert!(rules_at("crates/par/src/lib.rs", src).is_empty());
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_flags_raw_threads_outside_par() {
    assert_eq!(
        rules_at("crates/nerf/src/render.rs", "fn f() { std::thread::spawn(|| {}); }"),
        vec!["D3"]
    );
    assert_eq!(
        rules_at("crates/core/src/noc.rs", "use std::thread;\nfn f() { thread::scope(|_| {}); }"),
        vec!["D3", "D3"]
    );
}

#[test]
fn d3_exempts_crates_par() {
    let src = "use std::thread;\nfn f() { thread::scope(|_| {}); }";
    assert!(rules_at("crates/par/src/lib.rs", src).is_empty());
}

#[test]
fn d3_allow_comment_suppresses() {
    let src = "// lint: allow(d3): joined before any result is read\nuse std::thread;\n";
    assert!(rules_at("crates/core/src/noc.rs", src).is_empty());
}

// ---------------------------------------------------------------- P1

#[test]
fn p1_flags_panicking_constructs_in_library_code() {
    assert_eq!(
        rules_at("crates/arith/src/half.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }"),
        vec!["P1"]
    );
    assert_eq!(
        rules_at("crates/mem/src/banks.rs", "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }"),
        vec!["P1"]
    );
    assert_eq!(rules_at("src/lib.rs", "fn f() { panic!(\"boom\"); }"), vec!["P1"]);
    assert_eq!(rules_at("crates/core/src/chip.rs", "fn f() { unreachable!() }"), vec!["P1"]);
    assert_eq!(rules_at("crates/core/src/chip.rs", "fn f() { todo!() }"), vec!["P1"]);
}

#[test]
fn p1_ignores_test_code_binaries_and_lookalikes() {
    let test_mod = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); }\n}\n";
    assert!(rules_at("crates/nerf/src/io.rs", test_mod).is_empty());

    let test_fn = "#[test]\nfn t() { Some(1).unwrap(); }\n";
    assert!(rules_at("crates/nerf/src/io.rs", test_fn).is_empty());

    let bin = "fn main() { std::fs::read(\"x\").unwrap(); }";
    assert!(rules_at("src/bin/fusion3d.rs", bin).is_empty(), "binaries may panic on bad input");
    assert!(rules_at("crates/bench/src/bin/table1.rs", bin).is_empty());

    // Lookalikes that must NOT fire: unwrap_or, expect_err, a string
    // containing "panic!", and `#[should_panic]` attributes.
    let clean = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
                 fn g(x: Result<u32, u32>) -> u32 { x.expect_err(\"e\") }\n\
                 const S: &str = \"panic!\";\n";
    assert!(rules_at("crates/core/src/chip.rs", clean).is_empty());
}

#[test]
fn p1_allow_comment_suppresses_trailing_and_preceding() {
    let trailing = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(p1): invariant\n";
    assert!(rules_at("crates/core/src/chip.rs", trailing).is_empty());

    let preceding = "fn f(x: Option<u32>) -> u32 {\n\
                     // lint: allow(p1): invariant\n\
                     x.unwrap()\n\
                     }\n";
    assert!(rules_at("crates/core/src/chip.rs", preceding).is_empty());
}

// ---------------------------------------------------------------- A1

#[test]
fn a1_flags_lossy_casts_in_accounting_modules() {
    assert_eq!(
        rules_at("crates/core/src/energy.rs", "fn f(c: u64) -> u32 { c as u32 }"),
        vec!["A1"]
    );
    assert_eq!(
        rules_at("crates/mem/src/energy.rs", "fn f(e: f64) -> f32 { e as f32 }"),
        vec!["A1"]
    );
    assert_eq!(
        rules_at("crates/multichip/src/comm.rs", "const C: u64 = 2.5 as u64;"),
        vec!["A1"],
        "float literal to int is lossy even at 64-bit width"
    );
    assert_eq!(
        rules_at("crates/core/src/bandwidth.rs", "fn f(c: u64) -> usize { c as usize }"),
        vec!["A1"],
        "usize width is platform-dependent"
    );
}

#[test]
fn a1_ignores_widening_casts_and_other_files() {
    let widening = "fn f(c: u32) -> u64 { c as u64 }\nfn g(c: u64) -> f64 { c as f64 }\n";
    assert!(rules_at("crates/core/src/energy.rs", widening).is_empty());

    // The same lossy cast outside the accounting modules is A1-exempt.
    let lossy = "fn f(c: u64) -> u32 { c as u32 }";
    assert!(rules_at("crates/core/src/chip.rs", lossy).is_empty());
}

#[test]
fn a1_allow_comment_suppresses() {
    let src = "// lint: allow(a1): accumulator drain floors by design\n\
               fn f(acc: f64) -> u64 { acc as u32 as u64 }\n";
    assert!(rules_at("crates/core/src/pipeline_sim.rs", src).is_empty());
}

// ---------------------------------------------------------------- H1

#[test]
fn h1_flags_allocations_in_hot_path_modules() {
    assert_eq!(
        rules_at("crates/nerf/src/mlp.rs", "fn f() -> Vec<f32> { vec![0.0; 4] }"),
        vec!["H1"]
    );
    assert_eq!(
        rules_at("crates/nerf/src/encoding.rs", "fn f() -> Vec<f32> { Vec::new() }"),
        vec!["H1"]
    );
    assert_eq!(
        rules_at("crates/nerf/src/render.rs", "fn f(xs: &Vec<f32>) -> Vec<f32> { xs.clone() }"),
        vec!["H1"]
    );
}

#[test]
fn h1_ignores_other_modules_tests_and_lookalikes() {
    // The same constructs outside the three hot-path kernel modules
    // are H1-exempt.
    let src = "fn f() -> Vec<f32> { vec![0.0; 4] }";
    assert!(rules_at("crates/nerf/src/trainer.rs", src).is_empty());
    assert!(rules_at("crates/core/src/chip.rs", src).is_empty());

    let test_fn = "#[test]\nfn t() { let v = vec![1]; let w = v.clone(); }\n";
    assert!(rules_at("crates/nerf/src/mlp.rs", test_fn).is_empty());

    // Lookalikes that must NOT fire: Vec::with_capacity, clone_from,
    // cloned(), a `vec` identifier without `!`, and mentions inside
    // comments or strings.
    let clean = "fn f(n: usize) -> Vec<f32> { Vec::with_capacity(n) }\n\
                 fn g(a: &mut Vec<f32>, b: &Vec<f32>) { a.clone_from(b); }\n\
                 fn h(xs: &[f32]) -> Vec<f32> { xs.iter().cloned().collect() }\n\
                 fn i(vec: &[f32]) -> f32 { vec[0] }\n\
                 // Vec::new and vec![] and .clone() in a comment\n\
                 const S: &str = \"vec![0.0]\";\n";
    assert!(rules_at("crates/nerf/src/render.rs", clean).is_empty());
}

#[test]
fn h1_allow_comment_suppresses() {
    let trailing =
        "fn f() -> Vec<f32> { vec![0.0; 4] } // lint: allow(h1): cold path, sized once\n";
    assert!(rules_at("crates/nerf/src/mlp.rs", trailing).is_empty());

    let preceding = "fn f() -> Vec<f32> {\n\
                     // lint: allow(H1): convenience wrapper, not the batched path\n\
                     Vec::new()\n\
                     }\n";
    assert!(rules_at("crates/nerf/src/encoding.rs", preceding).is_empty());
}

// ---------------------------------------------------------------- O1

#[test]
fn o1_flags_print_macros_in_library_code() {
    assert_eq!(
        rules_at("crates/core/src/chip.rs", "fn f() { println!(\"cycles: {}\", 1); }"),
        vec!["O1"]
    );
    assert_eq!(rules_at("crates/nerf/src/trainer.rs", "fn f() { print!(\"x\"); }"), vec!["O1"]);
    assert_eq!(
        rules_at("crates/obs/src/report.rs", "fn f() { eprintln!(\"warn\"); }"),
        vec!["O1"],
        "the obs crate renders reports to strings, never to stdout"
    );
    assert_eq!(rules_at("src/lib.rs", "fn f() { eprint!(\"x\"); }"), vec!["O1"]);
}

#[test]
fn o1_ignores_binaries_harness_tests_and_lookalikes() {
    let src = "fn main() { println!(\"table row\"); }";
    assert!(rules_at("crates/bench/src/bin/table1.rs", src).is_empty(), "binaries print");
    assert!(rules_at("src/bin/fusion3d.rs", src).is_empty());
    assert!(rules_at("crates/bench/src/support.rs", src).is_empty(), "the harness prints tables");
    assert!(rules_at("crates/lint/src/report.rs", src).is_empty(), "lint renders findings");

    let test_fn = "#[test]\nfn t() { println!(\"debugging\"); }\n";
    assert!(rules_at("crates/core/src/chip.rs", test_fn).is_empty());

    // Lookalikes that must NOT fire: write!/writeln! into a sink, a
    // `println` identifier without `!`, and mentions in comments or
    // strings.
    let clean = "use std::fmt::Write;\n\
                 fn f(out: &mut String) { let _ = writeln!(out, \"row\"); }\n\
                 fn println() {}\n\
                 // println! is banned in library code\n\
                 const S: &str = \"println!\";\n";
    assert!(rules_at("crates/obs/src/report.rs", clean).is_empty());
}

#[test]
fn o1_allow_comment_suppresses() {
    let trailing = "fn f() { println!(\"x\"); } // lint: allow(o1): interactive debug aid\n";
    assert!(rules_at("crates/core/src/chip.rs", trailing).is_empty());
}

// ------------------------------------------------------- reporting

#[test]
fn findings_carry_path_line_and_rule() {
    let src = "fn a() {}\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let findings = lint_source("crates/core/src/chip.rs", src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "P1");
    assert_eq!(findings[0].path, "crates/core/src/chip.rs");
    assert_eq!(findings[0].line, 2);
    assert!(findings[0].message.contains("unwrap"));
}

#[test]
fn one_allow_covers_multiple_rules() {
    let src = "// lint: allow(d1, p1): fixture — keyed read of a constant entry\n\
               fn f(m: &std::collections::HashMap<u32, u32>) -> u32 { m.get(&0).unwrap() + 0 }\n";
    assert!(rules_at("crates/core/src/chip.rs", src).is_empty());
}

#[test]
fn reports_are_deterministic_and_ordered() {
    let sources = [
        (
            "crates/nerf/src/b.rs".to_string(),
            "pub fn render_pixel(out: &mut Vec<f32>) { out.push(1.0); }\n".to_string(),
        ),
        (
            "crates/core/src/a.rs".to_string(),
            "pub fn pick(xs: &[u32], i: usize) -> u32 { xs[i] }\n\
             fn f() { let t = std::time::Instant::now(); }\n"
                .to_string(),
        ),
    ];
    let first = lint_sources(&sources);
    let second = lint_sources(&sources);
    assert_eq!(first.findings, second.findings, "two runs over the same input are identical");

    let keys: Vec<_> = first.findings.iter().map(|f| (f.path.clone(), f.line, f.rule)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings come back sorted by (path, line, rule)");
    assert_eq!(keys.len(), 3, "P2 + D2 in core, H2 in nerf: {keys:?}");
}

// ---------------------------------------------------------------- P2

#[test]
fn p2_flags_unguarded_indexing_and_division_in_public_entries() {
    let indexed = "pub fn pick(xs: &[u32], i: usize) -> u32 { xs[i] }\n";
    assert_eq!(rules_at("crates/core/src/chip.rs", indexed), vec!["P2"]);

    let divided = "pub fn mean(total: u32, n: u32) -> u32 { total / n }\n";
    assert_eq!(rules_at("crates/mem/src/sram.rs", divided), vec!["P2"]);
}

#[test]
fn p2_follows_the_call_graph_from_public_entries() {
    let src = "pub fn api(xs: &[u32], i: usize) -> u32 {\n\
               lookup(xs, i)\n\
               }\n\
               fn lookup(xs: &[u32], i: usize) -> u32 {\n\
               xs[i]\n\
               }\n";
    let findings = lint_source("crates/mem/src/sram.rs", src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "P2");
    assert_eq!(findings[0].line, 5, "reported at the hazard, not the entry");
    assert!(findings[0].message.contains("api"), "names the entry: {}", findings[0].message);
}

#[test]
fn p2_respects_guards_on_the_checked_path() {
    let asserted = "pub fn pick(xs: &[u32], i: usize) -> u32 {\n\
                    debug_assert!(i < xs.len());\n\
                    xs[i]\n\
                    }\n";
    assert!(rules_at("crates/core/src/chip.rs", asserted).is_empty());

    let branched = "pub fn mean(total: u32, n: u32) -> u32 {\n\
                    if n == 0 {\n\
                    return 0;\n\
                    }\n\
                    total / n\n\
                    }\n";
    assert!(rules_at("crates/mem/src/sram.rs", branched).is_empty());

    let clamped = "pub fn at(xs: &[f32], i: usize) -> f32 { xs[i.min(xs.len() - 1)] }\n";
    assert!(rules_at("crates/nerf/src/sampler.rs", clamped).is_empty());
}

#[test]
fn p2_exempts_constant_indexing_into_fixed_size_arrays() {
    let direct = "pub fn x_of(v: &[f32; 3]) -> f32 { v[0] }\n";
    assert!(rules_at("crates/nerf/src/sampler.rs", direct).is_empty());

    // The exemption follows workspace type aliases across files.
    let sources = [
        ("crates/core/src/geom.rs".to_string(), "pub type Coord = [f32; 3];\n".to_string()),
        (
            "crates/core/src/chip.rs".to_string(),
            "pub fn x_of(v: &Coord) -> f32 { v[2] }\n".to_string(),
        ),
    ];
    let report = lint_sources(&sources);
    assert!(report.findings.is_empty(), "{:?}", report.findings);

    // A run-time index into the same array is still flagged.
    let dynamic = "pub fn at(v: &[f32; 3], i: usize) -> f32 { v[i] }\n";
    assert_eq!(rules_at("crates/nerf/src/sampler.rs", dynamic), vec!["P2"]);
}

#[test]
fn p2_division_only_flags_bare_parameter_divisors() {
    // `b.pow(2)` is a derived value, not the raw parameter; the zero
    // hazard (if any) is not `b`'s own.
    let derived = "pub fn scaled(a: u32, b: u32) -> u32 { a / b.pow(2) }\n";
    assert!(rules_at("crates/core/src/chip.rs", derived).is_empty());
}

#[test]
fn p2_skips_private_helpers_and_out_of_scope_crates() {
    let private = "fn lookup(xs: &[u32], i: usize) -> u32 { xs[i] }\n";
    assert!(
        rules_at("crates/core/src/chip.rs", private).is_empty(),
        "not reachable from any public entry"
    );

    let harness = "pub fn lookup(xs: &[u32], i: usize) -> u32 { xs[i] }\n";
    assert!(
        rules_at("crates/bench/src/support.rs", harness).is_empty(),
        "bench is not result-bearing"
    );
}

#[test]
fn p2_allow_comment_and_continuation_suppress() {
    let src = "pub fn pick(xs: &[u32], i: usize) -> u32 {\n\
               // lint: allow(p2): indices come from enumerate() over\n\
               // this same slice, so they are in range by construction\n\
               xs[i]\n\
               }\n";
    assert!(rules_at("crates/core/src/chip.rs", src).is_empty());
}

// ---------------------------------------------------------------- H2

#[test]
fn h2_flags_allocation_reachable_from_render_entries() {
    let src = "pub fn render_pixel(out: &mut Vec<f32>) {\n\
               shade(out);\n\
               }\n\
               fn shade(out: &mut Vec<f32>) {\n\
               out.push(1.0);\n\
               }\n";
    let findings = lint_source("crates/nerf/src/pipeline.rs", src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "H2");
    assert_eq!(findings[0].line, 5, "reported at the allocation inside the callee");
}

#[test]
fn h2_flags_allocating_macros_in_train_step() {
    let src = "pub fn train_step(n: usize) -> String {\n\
               format!(\"step {n}\")\n\
               }\n";
    assert_eq!(rules_at("crates/nerf/src/trainer.rs", src), vec!["H2"]);
}

#[test]
fn h2_ignores_unreachable_code_and_the_dispatch_crate() {
    let cold = "pub fn build_buffers(out: &mut Vec<f32>) { out.push(1.0); }\n";
    assert!(rules_at("crates/nerf/src/pipeline.rs", cold).is_empty(), "not a hot-path entry");

    // `par`'s per-dispatch slot vectors ARE the deterministic fan-out
    // mechanism; its allocations are exempt even when reachable.
    let sources = [
        (
            "crates/nerf/src/pipeline.rs".to_string(),
            "pub fn render_pixel(out: &mut Vec<f32>) { dispatch(out); }\n".to_string(),
        ),
        (
            "crates/par/src/lib.rs".to_string(),
            "pub fn dispatch(out: &mut Vec<f32>) { out.push(1.0); }\n".to_string(),
        ),
    ];
    assert!(lint_sources(&sources).findings.is_empty());
}

#[test]
fn h2_allow_comment_suppresses() {
    let src = "pub fn render_pixel(out: &mut Vec<f32>) {\n\
               out.push(1.0); // lint: allow(h2): amortized into caller capacity\n\
               }\n";
    assert!(rules_at("crates/nerf/src/pipeline.rs", src).is_empty());
}

#[test]
fn h2_covers_the_serve_request_path() {
    // The admission entry and anything it reaches are hot.
    let src = "pub fn admit(&mut self, t: Ticket) -> bool {\n\
               self.log.push(t);\n\
               true\n\
               }\n";
    assert_eq!(rules_at("crates/serve/src/queue.rs", src), vec!["H2"]);

    let render = "pub fn render_batch(&mut self) {\n\
                  let label = self.name.to_string();\n\
                  stage(&label);\n\
                  }\n";
    assert_eq!(rules_at("crates/serve/src/scheduler.rs", render), vec!["H2"]);
}

#[test]
fn h2_exempts_the_serve_cold_path() {
    // The event loop and the registry miss path may allocate: a
    // container decode is a load, not steady-state serving.
    let src = "pub fn run_trace(&mut self, trace: &[Request]) -> Vec<u64> {\n\
               let mut latencies = Vec::with_capacity(trace.len());\n\
               latencies.push(1);\n\
               latencies\n\
               }\n\
               pub fn ensure_resident(&mut self, id: u32) {\n\
               self.eviction_log.push(id);\n\
               }\n";
    assert!(rules_at("crates/serve/src/registry.rs", src).is_empty());
}

// ---------------------------------------------------------------- D4

#[test]
fn d4_flags_reductions_into_captured_state() {
    let src = "pub fn total(pool: &Pool) -> f32 {\n\
               let mut sum = 0.0;\n\
               pool.parallel_chunks(4, 64, |_lo, _hi| {\n\
               sum += 1.0;\n\
               });\n\
               sum\n\
               }\n";
    let findings = lint_source("crates/core/src/noc.rs", src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "D4");
    assert_eq!(findings[0].line, 4);
}

#[test]
fn d4_ignores_closure_local_accumulators_and_serial_iterators() {
    let local = "pub fn totals(pool: &Pool) {\n\
                 pool.parallel_chunks(4, 64, |lo, hi| {\n\
                 let mut acc = 0.0f32;\n\
                 acc += (hi - lo) as f32;\n\
                 acc\n\
                 });\n\
                 }\n";
    assert!(rules_at("crates/core/src/noc.rs", local).is_empty());

    let serial = "pub fn total(xs: &[f32]) -> f32 {\n\
                  let mut sum = 0.0;\n\
                  xs.iter().for_each(|x| sum += x);\n\
                  sum\n\
                  }\n";
    assert!(
        rules_at("crates/core/src/noc.rs", serial).is_empty(),
        "for_each is not a parallel combinator"
    );
}

#[test]
fn d4_allow_comment_suppresses() {
    let src = "pub fn total(pool: &Pool) -> f32 {\n\
               let mut sum = 0.0;\n\
               // lint: allow(d4): single-threaded pool in this configuration\n\
               pool.parallel_chunks(4, 64, |_lo, _hi| { sum += 1.0; });\n\
               sum\n\
               }\n";
    assert!(rules_at("crates/core/src/noc.rs", src).is_empty());
}

// ---------------------------------------------------------------- D5

#[test]
fn d5_flags_shared_mutable_state_in_parallel_closures() {
    let atomics = "pub fn count(pool: &Pool, hits: &AtomicU64) {\n\
                   pool.run_tasks(8, |_task| {\n\
                   hits.fetch_add(1, Ordering::Relaxed);\n\
                   });\n\
                   }\n";
    let fired = rules_at("crates/core/src/noc.rs", atomics);
    assert!(!fired.is_empty() && fired.iter().all(|r| *r == "D5"), "{fired:?}");

    let locking = "pub fn collect(pool: &Pool, sink: &Mutex<Vec<f32>>) {\n\
                   pool.parallel_map_reduce(4, |_i| sink.lock(), |a, _b| a);\n\
                   }\n";
    assert_eq!(rules_at("crates/core/src/noc.rs", locking), vec!["D5"]);

    let unsafety = "pub fn f(pool: &Pool) {\n\
                    pool.run_tasks(2, |_t| unsafe { poke() });\n\
                    }\n";
    assert_eq!(rules_at("crates/core/src/noc.rs", unsafety), vec!["D5"]);
}

#[test]
fn d5_ignores_per_task_state_and_serial_sections() {
    let per_task = "pub fn f(pool: &Pool, slots: &mut [f32]) {\n\
                    pool.parallel_chunks_with(slots, |slot, _i| {\n\
                    let mut local = 0.0;\n\
                    local += 1.0;\n\
                    *slot = local;\n\
                    });\n\
                    }\n";
    assert!(rules_at("crates/core/src/noc.rs", per_task).is_empty());

    let serial = "pub fn bump(counter: &AtomicU64) {\n\
                  counter.fetch_add(1, Ordering::Relaxed);\n\
                  }\n";
    assert!(
        rules_at("crates/core/src/noc.rs", serial).is_empty(),
        "interior mutability outside parallel closures is fine"
    );
}

#[test]
fn d5_allow_comment_suppresses() {
    let src = "pub fn count(pool: &Pool, hits: &AtomicU64) {\n\
               // lint: allow(d5): monotonic counter — order is never observed\n\
               pool.run_tasks(8, |_t| { hits.fetch_add(1, Ordering::Relaxed); });\n\
               }\n";
    assert!(rules_at("crates/core/src/noc.rs", src).is_empty());
}

// ---------------------------------------------------------------- U1

#[test]
fn u1_flags_reasonless_suppressions_even_when_used() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(p1)\n";
    assert_eq!(
        rules_at("crates/core/src/chip.rs", src),
        vec!["U1"],
        "the P1 hit is suppressed, but the missing reason is reported"
    );
}

#[test]
fn u1_flags_unused_suppressions() {
    let src = "// lint: allow(d1): leftover from a removed container\n\
               fn f() {}\n";
    assert_eq!(rules_at("crates/core/src/chip.rs", src), vec!["U1"]);
}

#[test]
fn u1_exempts_declared_prophylactic_suppressions_and_docs() {
    let prophylactic = "// lint: allow(d2, u1): macro expansions sometimes time here\n\
                        fn f() {}\n";
    assert!(rules_at("crates/core/src/chip.rs", prophylactic).is_empty());

    let doc = "/// Suppress with `// lint: allow(d2): why`.\n\
               fn f() {}\n";
    assert!(
        rules_at("crates/core/src/chip.rs", doc).is_empty(),
        "doc comments never register directives"
    );
}

// ------------------------------------------------------- A2 (absint)

#[test]
fn a2_flags_unproven_arithmetic_in_accounting_files() {
    // Full-range u32 operands: the interval analysis cannot bound the
    // product below u32::MAX, so the overflow proof fails.
    let mul = "pub fn area(w: u32, h: u32) -> u32 { w * h }\n";
    assert_eq!(rules_at("crates/mem/src/sram.rs", mul), vec!["A2"]);

    let add = "pub fn total(a: u16, b: u16) -> u16 { a + b }\n";
    assert_eq!(rules_at("crates/mem/src/sram.rs", add), vec!["A2"]);

    let shift = "pub fn scaled(bits: u32) -> u32 { 1u32 << bits }\n";
    assert_eq!(rules_at("crates/mem/src/sram.rs", shift), vec!["A2"]);
}

#[test]
fn a2_ignores_out_of_scope_files_and_wide_totals() {
    let mul = "pub fn area(w: u32, h: u32) -> u32 { w * h }\n";
    assert!(rules_at("crates/nerf/src/render.rs", mul).is_empty(), "file is not under A2");

    // `+` on 64-bit totals carries deliberate headroom and is exempt.
    let wide = "pub fn total(a: u64, b: u64) -> u64 { a + b }\n";
    assert!(rules_at("crates/mem/src/sram.rs", wide).is_empty());
}

#[test]
fn a2_accepts_debug_assert_refined_operands() {
    // The same unprovable multiply, made provable by a precondition:
    // the analyzer narrows both operands through the assert before it
    // reaches the `*`.
    let asserted = "pub fn area(w: u32, h: u32) -> u32 {\n\
                    debug_assert!(w <= 4096 && h <= 4096, \"tile-sized\");\n\
                    w * h\n\
                    }\n";
    assert!(rules_at("crates/mem/src/sram.rs", asserted).is_empty());
}

#[test]
fn a2_accepts_clamp_and_min_refinements() {
    let clamped = "pub fn area(w: u32, h: u32) -> u32 { w.min(4096) * h.clamp(0, 4096) }\n";
    assert!(rules_at("crates/mem/src/sram.rs", clamped).is_empty());

    let branched = "pub fn halved(n: u32) -> u32 { if n < 1 << 16 { n * 2 } else { n } }\n";
    assert!(rules_at("crates/mem/src/sram.rs", branched).is_empty());
}

#[test]
fn a2_allow_comment_suppresses() {
    let src = "pub fn area(w: u32, h: u32) -> u32 {\n\
               // lint: allow(a2): caller guarantees tile-sized inputs\n\
               w * h\n\
               }\n";
    assert!(rules_at("crates/mem/src/sram.rs", src).is_empty());
}

#[test]
fn a2_proofs_depend_on_the_debug_assert_preconditions() {
    // The real INT8 MLP must be clean as shipped, and the overflow
    // proof for its MAC accumulator must genuinely hinge on the
    // layer-width debug_assert!: strip that one statement and the A2
    // gate has to fail. This is the regression test that keeps the
    // assert from rotting into decoration.
    // Rules needing the full workspace call graph (H2's reachability,
    // U1's usage accounting of those allows) are noise in single-file
    // mode; the proof obligation under test is the A family.
    let a_rules = |path: &str, source: &str| -> Vec<&'static str> {
        rules_at(path, source).into_iter().filter(|r| r.starts_with('A')).collect()
    };

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../nerf/src/mlp_int8.rs");
    let src = std::fs::read_to_string(path).expect("mlp_int8.rs readable");
    assert!(
        a_rules("crates/nerf/src/mlp_int8.rs", &src).is_empty(),
        "shipped mlp_int8.rs must prove clean"
    );

    let start = src.find("debug_assert!(").expect("forward() precondition present");
    let end = start + src[start..].find(");").expect("assert closes") + 2;
    let stripped = format!("{}{}", &src[..start], &src[end..]);
    let fired = a_rules("crates/nerf/src/mlp_int8.rs", &stripped);
    assert!(
        fired.contains(&"A2"),
        "deleting the MAC-width precondition must break the A2 proof, got {fired:?}"
    );
}

// ------------------------------------------------------- A3 (absint)

#[test]
fn a3_flags_cross_unit_arithmetic() {
    // Unit tags come from name suffixes; adding cycles to bytes is a
    // category error no matter the integer widths.
    let src = "pub fn mixed(total_cycles: u64, payload_bytes: u64) -> u64 {\n\
               total_cycles + payload_bytes\n\
               }\n";
    assert_eq!(rules_at("crates/core/src/energy.rs", src), vec!["A3"]);

    let cmp = "pub fn odd(stall_cycles: u64, energy_pj: u64) -> bool {\n\
               stall_cycles > energy_pj\n\
               }\n";
    assert_eq!(rules_at("crates/core/src/energy.rs", cmp), vec!["A3"]);
}

#[test]
fn a3_accepts_same_unit_and_scaling_arithmetic() {
    let same = "pub fn total(busy_cycles: u64, stall_cycles: u64) -> u64 {\n\
                busy_cycles + stall_cycles\n\
                }\n";
    assert!(rules_at("crates/core/src/energy.rs", same).is_empty());

    // Multiplying a unit by a dimensionless count keeps the unit and
    // is legal (the operands are bounded so A2's overflow proof goes
    // through too — `*` is checked even at 64 bits).
    let scaled = "pub fn repeated(frame_cycles: u64, frames: u64) -> u64 {\n\
                  debug_assert!(frame_cycles < 1u64 << 32 && frames < 1 << 20, \"paper scale\");\n\
                  frame_cycles * frames\n\
                  }\n";
    assert!(rules_at("crates/core/src/energy.rs", scaled).is_empty());
}

#[test]
fn a3_allow_comment_suppresses() {
    let src = "pub fn packed(total_cycles: u64, payload_bytes: u64) -> u64 {\n\
               // lint: allow(a3): serialization packs both into one word\n\
               total_cycles + payload_bytes\n\
               }\n";
    assert!(rules_at("crates/core/src/energy.rs", src).is_empty());
}

// ------------------------------------------------------- A4 (absint)

#[test]
fn a4_rederives_the_mac_width_claim() {
    // 2^20-wide MAC: 2^20 * 127 * 128 overflows i32, so the exactness
    // claim the constant's name advertises is false.
    let wide = "pub const WIDE_MAC_WIDTH: usize = 1 << 20;\n";
    let fired = rules_at("crates/nerf/src/mlp_int8.rs", wide);
    assert!(fired.contains(&"A4"), "{fired:?}");

    // 2^16 holds: 2^16 * 127 * 128 = 1_065_353_216 <= i32::MAX.
    let ok = "pub const MAX_EXACT_MAC_WIDTH: usize = 1 << 16;\n";
    assert!(rules_at("crates/nerf/src/mlp_int8.rs", ok).is_empty());
}

#[test]
fn a4_rederives_the_fiem_exact_int_claim() {
    let wide = "pub const FIEM_MAX_INT: i64 = 1 << 25;\n";
    let fired = rules_at("crates/arith/src/fiem.rs", wide);
    assert!(fired.contains(&"A4"), "{fired:?}");

    let ok = "pub const FIEM_MAX_INT: i64 = 1 << 24;\n";
    assert!(rules_at("crates/arith/src/fiem.rs", ok).is_empty());
}

#[test]
fn a4_requires_proven_float_to_int8_casts() {
    // Unbounded float straight into the INT8 code range: saturation
    // would silently corrupt the quantized value.
    let raw = "pub fn quantize(v: f32, scale: f32) -> i8 { (v * scale) as i8 }\n";
    let fired = rules_at("crates/nerf/src/mlp_int8.rs", raw);
    assert!(fired.contains(&"A4"), "{fired:?}");

    // The clamp pins the interval inside the symmetric code range.
    let clamped =
        "pub fn quantize(v: f32, scale: f32) -> i8 { (v * scale).clamp(-127.0, 127.0) as i8 }\n";
    assert!(rules_at("crates/nerf/src/mlp_int8.rs", clamped).is_empty());
}

#[test]
fn a4_allow_comment_suppresses() {
    let src = "pub fn quantize(v: f32) -> i8 {\n\
               // lint: allow(a4): upstream activation clamp bounds v\n\
               v as i8\n\
               }\n";
    assert!(rules_at("crates/nerf/src/mlp_int8.rs", src).is_empty());
}
