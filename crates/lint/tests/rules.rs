//! Fixture tests: for every rule, at least one positive snippet that
//! must be flagged and one negative snippet that must stay clean —
//! including the `// lint: allow(<rule>)` escape hatch and the
//! test-code exemption.

use fusion3d_lint::lint_source;

/// Rules fired by linting `source` as if it lived at `path`.
fn rules_at(path: &str, source: &str) -> Vec<&'static str> {
    lint_source(path, source).into_iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_flags_hash_containers_in_result_bearing_crates() {
    let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
    let fired = rules_at("crates/core/src/config.rs", src);
    assert_eq!(fired, vec!["D1", "D1"], "both mentions flagged");

    let set = "fn g() { let s: std::collections::HashSet<u32> = Default::default(); }\n";
    assert_eq!(rules_at("crates/nerf/src/hash.rs", set), vec!["D1"]);
}

#[test]
fn d1_ignores_out_of_scope_crates_and_ordered_containers() {
    let src = "use std::collections::HashMap;\n";
    assert!(rules_at("crates/bench/src/lib.rs", src).is_empty(), "bench is not result-bearing");
    assert!(rules_at("crates/lint/src/lib.rs", src).is_empty());

    let ordered = "use std::collections::{BTreeMap, BTreeSet};\nfn f(m: &BTreeMap<u32, u32>) {}\n";
    assert!(rules_at("crates/core/src/config.rs", ordered).is_empty());
}

#[test]
fn d1_allow_comment_suppresses() {
    let src = "// lint: allow(d1): keyed lookups only, never iterated\n\
               use std::collections::HashMap;\n";
    assert!(rules_at("crates/mem/src/banks.rs", src).is_empty());
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_flags_wall_clock_randomness_and_env() {
    assert_eq!(
        rules_at("crates/core/src/chip.rs", "fn f() { let t = std::time::Instant::now(); }"),
        vec!["D2"],
        "one finding per line even when two patterns overlap"
    );
    assert_eq!(
        rules_at("crates/nerf/src/trainer.rs", "fn f() { let mut rng = rand::thread_rng(); }"),
        vec!["D2"]
    );
    assert_eq!(
        rules_at("crates/par/src/lib.rs", "fn f() -> bool { std::env::var(\"X\").is_ok() }"),
        vec!["D2"]
    );
    assert_eq!(rules_at("crates/mem/src/sram.rs", "fn f(t: std::time::SystemTime) {}"), vec!["D2"]);
}

#[test]
fn d2_ignores_bench_and_comments() {
    let src = "fn f() { let t = std::time::Instant::now(); }";
    assert!(rules_at("crates/bench/src/support.rs", src).is_empty(), "timing belongs in bench");
    let comment = "// std::time::Instant is banned here\nfn f() {}\n";
    assert!(rules_at("crates/core/src/chip.rs", comment).is_empty());
}

#[test]
fn d2_allow_comment_suppresses() {
    let src = "fn f() -> bool {\n\
               // lint: allow(d2): worker count never affects results\n\
               std::env::var(\"FUSION3D_THREADS\").is_ok()\n\
               }\n";
    assert!(rules_at("crates/par/src/lib.rs", src).is_empty());
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_flags_raw_threads_outside_par() {
    assert_eq!(
        rules_at("crates/nerf/src/render.rs", "fn f() { std::thread::spawn(|| {}); }"),
        vec!["D3"]
    );
    assert_eq!(
        rules_at("crates/core/src/noc.rs", "use std::thread;\nfn f() { thread::scope(|_| {}); }"),
        vec!["D3", "D3"]
    );
}

#[test]
fn d3_exempts_crates_par() {
    let src = "use std::thread;\nfn f() { thread::scope(|_| {}); }";
    assert!(rules_at("crates/par/src/lib.rs", src).is_empty());
}

#[test]
fn d3_allow_comment_suppresses() {
    let src = "// lint: allow(d3)\nuse std::thread;\n";
    assert!(rules_at("crates/core/src/noc.rs", src).is_empty());
}

// ---------------------------------------------------------------- P1

#[test]
fn p1_flags_panicking_constructs_in_library_code() {
    assert_eq!(
        rules_at("crates/arith/src/half.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }"),
        vec!["P1"]
    );
    assert_eq!(
        rules_at("crates/mem/src/banks.rs", "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }"),
        vec!["P1"]
    );
    assert_eq!(rules_at("src/lib.rs", "fn f() { panic!(\"boom\"); }"), vec!["P1"]);
    assert_eq!(rules_at("crates/core/src/chip.rs", "fn f() { unreachable!() }"), vec!["P1"]);
    assert_eq!(rules_at("crates/core/src/chip.rs", "fn f() { todo!() }"), vec!["P1"]);
}

#[test]
fn p1_ignores_test_code_binaries_and_lookalikes() {
    let test_mod = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); }\n}\n";
    assert!(rules_at("crates/nerf/src/io.rs", test_mod).is_empty());

    let test_fn = "#[test]\nfn t() { Some(1).unwrap(); }\n";
    assert!(rules_at("crates/nerf/src/io.rs", test_fn).is_empty());

    let bin = "fn main() { std::fs::read(\"x\").unwrap(); }";
    assert!(rules_at("src/bin/fusion3d.rs", bin).is_empty(), "binaries may panic on bad input");
    assert!(rules_at("crates/bench/src/bin/table1.rs", bin).is_empty());

    // Lookalikes that must NOT fire: unwrap_or, expect_err, a string
    // containing "panic!", and `#[should_panic]` attributes.
    let clean = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
                 fn g(x: Result<u32, u32>) -> u32 { x.expect_err(\"e\") }\n\
                 const S: &str = \"panic!\";\n";
    assert!(rules_at("crates/core/src/chip.rs", clean).is_empty());
}

#[test]
fn p1_allow_comment_suppresses_trailing_and_preceding() {
    let trailing = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(p1): invariant\n";
    assert!(rules_at("crates/core/src/chip.rs", trailing).is_empty());

    let preceding = "fn f(x: Option<u32>) -> u32 {\n\
                     // lint: allow(p1): invariant\n\
                     x.unwrap()\n\
                     }\n";
    assert!(rules_at("crates/core/src/chip.rs", preceding).is_empty());
}

// ---------------------------------------------------------------- A1

#[test]
fn a1_flags_lossy_casts_in_accounting_modules() {
    assert_eq!(
        rules_at("crates/core/src/energy.rs", "fn f(c: u64) -> u32 { c as u32 }"),
        vec!["A1"]
    );
    assert_eq!(
        rules_at("crates/mem/src/energy.rs", "fn f(e: f64) -> f32 { e as f32 }"),
        vec!["A1"]
    );
    assert_eq!(
        rules_at("crates/multichip/src/comm.rs", "const C: u64 = 2.5 as u64;"),
        vec!["A1"],
        "float literal to int is lossy even at 64-bit width"
    );
    assert_eq!(
        rules_at("crates/core/src/bandwidth.rs", "fn f(c: u64) -> usize { c as usize }"),
        vec!["A1"],
        "usize width is platform-dependent"
    );
}

#[test]
fn a1_ignores_widening_casts_and_other_files() {
    let widening = "fn f(c: u32) -> u64 { c as u64 }\nfn g(c: u64) -> f64 { c as f64 }\n";
    assert!(rules_at("crates/core/src/energy.rs", widening).is_empty());

    // The same lossy cast outside the accounting modules is A1-exempt.
    let lossy = "fn f(c: u64) -> u32 { c as u32 }";
    assert!(rules_at("crates/core/src/chip.rs", lossy).is_empty());
}

#[test]
fn a1_allow_comment_suppresses() {
    let src = "// lint: allow(a1): accumulator drain floors by design\n\
               fn f(acc: f64) -> u64 { acc as u32 as u64 }\n";
    assert!(rules_at("crates/core/src/pipeline_sim.rs", src).is_empty());
}

// ---------------------------------------------------------------- H1

#[test]
fn h1_flags_allocations_in_hot_path_modules() {
    assert_eq!(
        rules_at("crates/nerf/src/mlp.rs", "fn f() -> Vec<f32> { vec![0.0; 4] }"),
        vec!["H1"]
    );
    assert_eq!(
        rules_at("crates/nerf/src/encoding.rs", "fn f() -> Vec<f32> { Vec::new() }"),
        vec!["H1"]
    );
    assert_eq!(
        rules_at("crates/nerf/src/render.rs", "fn f(xs: &Vec<f32>) -> Vec<f32> { xs.clone() }"),
        vec!["H1"]
    );
}

#[test]
fn h1_ignores_other_modules_tests_and_lookalikes() {
    // The same constructs outside the three hot-path kernel modules
    // are H1-exempt.
    let src = "fn f() -> Vec<f32> { vec![0.0; 4] }";
    assert!(rules_at("crates/nerf/src/trainer.rs", src).is_empty());
    assert!(rules_at("crates/core/src/chip.rs", src).is_empty());

    let test_fn = "#[test]\nfn t() { let v = vec![1]; let w = v.clone(); }\n";
    assert!(rules_at("crates/nerf/src/mlp.rs", test_fn).is_empty());

    // Lookalikes that must NOT fire: Vec::with_capacity, clone_from,
    // cloned(), a `vec` identifier without `!`, and mentions inside
    // comments or strings.
    let clean = "fn f(n: usize) -> Vec<f32> { Vec::with_capacity(n) }\n\
                 fn g(a: &mut Vec<f32>, b: &Vec<f32>) { a.clone_from(b); }\n\
                 fn h(xs: &[f32]) -> Vec<f32> { xs.iter().cloned().collect() }\n\
                 fn i(vec: &[f32]) -> f32 { vec[0] }\n\
                 // Vec::new and vec![] and .clone() in a comment\n\
                 const S: &str = \"vec![0.0]\";\n";
    assert!(rules_at("crates/nerf/src/render.rs", clean).is_empty());
}

#[test]
fn h1_allow_comment_suppresses() {
    let trailing =
        "fn f() -> Vec<f32> { vec![0.0; 4] } // lint: allow(h1): cold path, sized once\n";
    assert!(rules_at("crates/nerf/src/mlp.rs", trailing).is_empty());

    let preceding = "fn f() -> Vec<f32> {\n\
                     // lint: allow(H1): convenience wrapper, not the batched path\n\
                     Vec::new()\n\
                     }\n";
    assert!(rules_at("crates/nerf/src/encoding.rs", preceding).is_empty());
}

// ---------------------------------------------------------------- O1

#[test]
fn o1_flags_print_macros_in_library_code() {
    assert_eq!(
        rules_at("crates/core/src/chip.rs", "fn f() { println!(\"cycles: {}\", 1); }"),
        vec!["O1"]
    );
    assert_eq!(rules_at("crates/nerf/src/trainer.rs", "fn f() { print!(\"x\"); }"), vec!["O1"]);
    assert_eq!(
        rules_at("crates/obs/src/report.rs", "fn f() { eprintln!(\"warn\"); }"),
        vec!["O1"],
        "the obs crate renders reports to strings, never to stdout"
    );
    assert_eq!(rules_at("src/lib.rs", "fn f() { eprint!(\"x\"); }"), vec!["O1"]);
}

#[test]
fn o1_ignores_binaries_harness_tests_and_lookalikes() {
    let src = "fn main() { println!(\"table row\"); }";
    assert!(rules_at("crates/bench/src/bin/table1.rs", src).is_empty(), "binaries print");
    assert!(rules_at("src/bin/fusion3d.rs", src).is_empty());
    assert!(rules_at("crates/bench/src/support.rs", src).is_empty(), "the harness prints tables");
    assert!(rules_at("crates/lint/src/report.rs", src).is_empty(), "lint renders findings");

    let test_fn = "#[test]\nfn t() { println!(\"debugging\"); }\n";
    assert!(rules_at("crates/core/src/chip.rs", test_fn).is_empty());

    // Lookalikes that must NOT fire: write!/writeln! into a sink, a
    // `println` identifier without `!`, and mentions in comments or
    // strings.
    let clean = "use std::fmt::Write;\n\
                 fn f(out: &mut String) { let _ = writeln!(out, \"row\"); }\n\
                 fn println() {}\n\
                 // println! is banned in library code\n\
                 const S: &str = \"println!\";\n";
    assert!(rules_at("crates/obs/src/report.rs", clean).is_empty());
}

#[test]
fn o1_allow_comment_suppresses() {
    let trailing = "fn f() { println!(\"x\"); } // lint: allow(o1): interactive debug aid\n";
    assert!(rules_at("crates/core/src/chip.rs", trailing).is_empty());
}

// ------------------------------------------------------- reporting

#[test]
fn findings_carry_path_line_and_rule() {
    let src = "fn a() {}\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let findings = lint_source("crates/core/src/chip.rs", src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "P1");
    assert_eq!(findings[0].path, "crates/core/src/chip.rs");
    assert_eq!(findings[0].line, 2);
    assert!(findings[0].message.contains("unwrap"));
}

#[test]
fn one_allow_covers_multiple_rules() {
    let src = "// lint: allow(d1, p1)\n\
               fn f(m: &std::collections::HashMap<u32, u32>) -> u32 { m.get(&0).unwrap() + 0 }\n";
    assert!(rules_at("crates/core/src/chip.rs", src).is_empty());
}
