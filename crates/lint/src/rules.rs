//! The Fusion-3D invariant rules and the token-stream checker.
//!
//! Every rule guards a property the simulator's numbers depend on:
//!
//! * **D1** — no `HashMap`/`HashSet` in result-bearing crates.
//!   Iteration order of the std hash containers is randomized per
//!   process, so any result that flows through one is not reproducible.
//!   Use `BTreeMap`/`BTreeSet` or a sorted `Vec`.
//! * **D2** — no wall-clock (`std::time`), ambient randomness
//!   (`thread_rng`/`from_entropy`) or environment reads (`std::env`)
//!   in simulator/NeRF crates. Timing belongs in `bench`; randomness
//!   must come from a seeded generator passed in by the caller.
//! * **D3** — no raw `std::thread` use outside `crates/par`. All
//!   parallelism flows through the deterministic fixed-chunk
//!   combinators so results are identical at any worker count.
//! * **P1** — no `unwrap()`/`expect()`/`panic!`-family macros in
//!   non-test library code. Fallible paths return `Result`; the few
//!   legitimate invariant panics carry an allow comment naming why.
//! * **A1** — no lossy `as` casts (narrowing integers, `f32`
//!   truncation, float→int) inside the cycle/energy accounting
//!   modules, where a silent wrap corrupts reported numbers.
//! * **H1** — no `Vec::new`/`vec![…]`/`.clone()` inside the hot-path
//!   kernel modules (`nerf::encoding`, `nerf::mlp`, `nerf::render`).
//!   The batched kernels promise an allocation-free per-sample loop;
//!   fresh vectors or clones there silently reintroduce per-sample
//!   heap traffic. Reuse the structure-of-arrays scratch buffers, or
//!   carry a `// lint: allow(H1): why` comment on deliberate cold
//!   paths.
//! * **O1** — no `println!`/`print!`/`eprintln!`/`eprint!` in library
//!   crates. Libraries report through return values and
//!   `fusion3d-obs` reports; stray stdout writes corrupt the JSON
//!   streams the bench binaries emit and hide information from
//!   programmatic consumers. Printing belongs to binaries
//!   (`src/bin/`, `bench`) and the lint tool itself.
//!
//! A finding on line `L` is suppressed by `// lint: allow(<rule>)` on
//! line `L` or `L - 1`.

use std::collections::BTreeSet;

use crate::lexer::{LexedFile, Token, TokenKind};

/// Per-file record of which suppressions fired: (directive line,
/// lowercase rule). Populated by every rule as it consults the allow
/// table; U1 reports directives that never appear here.
pub type AllowUsage = BTreeSet<(u32, String)>;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`"D1"`, …, `"A1"`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Stable identity: `rule:crate:fn-path:snippet-hash[#n]`,
    /// assigned once per report by [`crate::assign_finding_ids`].
    /// Baselines key on this, so entries survive unrelated line
    /// shifts (schema 2 of the JSONL output).
    pub id: String,
}

/// Crates whose outputs feed reported results: hash-container
/// iteration (D1) and ambient nondeterminism (D2) are banned here,
/// and every public fn is a P2 panic-freedom entry point.
pub(crate) const RESULT_BEARING_CRATES: &[&str] =
    &["nerf", "core", "mem", "multichip", "arith", "par", "obs", "serve"];

/// Accounting modules where lossy casts silently corrupt cycle and
/// energy totals (A1); the A3 unit-consistency dataflow shares this
/// scope.
pub(crate) const ACCOUNTING_FILES: &[&str] = &[
    "crates/core/src/energy.rs",
    "crates/core/src/bandwidth.rs",
    "crates/core/src/pipeline_sim.rs",
    "crates/mem/src/energy.rs",
    "crates/multichip/src/comm.rs",
];

/// Cast targets that lose information when fed 64-bit cycle/energy
/// quantities (A1). `u64`/`u128`/`f64` remain legal targets; anything
/// narrower — or `usize`, whose width is platform-dependent — is not.
const LOSSY_CAST_TARGETS: &[&str] =
    &["u8", "u16", "u32", "i8", "i16", "i32", "i64", "f32", "usize", "isize"];

/// Integer cast targets: a float literal cast to any of these is a
/// truncation even when the target is 64-bit wide.
const INT_CAST_TARGETS: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// Panicking macros covered by P1/P2 (matched when followed by `!`).
pub(crate) const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Printing macros covered by O1 (matched when followed by `!`).
/// `write!`/`writeln!` into a caller-supplied sink stay legal.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint"];

/// Crates whose library code may print: the experiment harness renders
/// tables and the lint tool renders findings, both on stdout by design.
const PRINTING_CRATES: &[&str] = &["bench", "lint"];

/// Hot-path kernel modules with an allocation-free contract (H1): the
/// batched SoA kernels of the NeRF compute core.
const HOT_PATH_FILES: &[&str] =
    &["crates/nerf/src/encoding.rs", "crates/nerf/src/mlp.rs", "crates/nerf/src/render.rs"];

/// Which rules apply to the file at `path` (workspace-relative,
/// forward slashes).
#[derive(Debug, Clone, Copy)]
struct Scope {
    d1: bool,
    d2: bool,
    d3: bool,
    p1: bool,
    a1: bool,
    h1: bool,
    o1: bool,
}

pub(crate) fn crate_of(path: &str) -> Option<&str> {
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next()
    } else if path.starts_with("src/") {
        Some("fusion3d")
    } else {
        None
    }
}

fn scope_of(path: &str) -> Scope {
    let krate = crate_of(path).unwrap_or("");
    let result_bearing = RESULT_BEARING_CRATES.contains(&krate);
    Scope {
        d1: result_bearing,
        d2: result_bearing,
        d3: krate != "par",
        // Binaries may panic on bad CLI input; libraries must not.
        p1: !path.contains("/bin/"),
        a1: ACCOUNTING_FILES.contains(&path),
        h1: HOT_PATH_FILES.contains(&path),
        // Binaries print by design; so do the harness and lint crates.
        o1: !path.contains("/bin/") && !PRINTING_CRATES.contains(&krate),
    }
}

/// Runs every applicable token-local rule over one lexed file,
/// recording fired suppressions into `usage` (consumed by U1).
pub fn check_file(path: &str, file: &LexedFile, usage: &mut AllowUsage) -> Vec<Finding> {
    let scope = scope_of(path);
    let in_test = test_mask(&file.tokens);
    let mut findings = Vec::new();
    let tokens = &file.tokens;

    let usage = std::cell::RefCell::new(usage);
    let report = |rule: &'static str, line: u32, message: String, out: &mut Vec<Finding>| match file
        .allow_line(rule, line)
    {
        Some(directive_line) => {
            usage.borrow_mut().insert((directive_line, rule.to_ascii_lowercase()));
        }
        None => {
            out.push(Finding { rule, path: path.to_string(), line, message, id: String::new() })
        }
    };

    for (i, tok) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let text = tok.text.as_str();
        let is_ident = tok.kind == TokenKind::Ident;

        // D1: hash containers in result-bearing crates.
        if scope.d1 && is_ident && (text == "HashMap" || text == "HashSet") {
            report(
                "D1",
                tok.line,
                format!(
                    "`{text}` has randomized iteration order; use BTreeMap/BTreeSet \
                     or a sorted Vec in result-bearing crates"
                ),
                &mut findings,
            );
        }

        // D2: wall-clock, ambient randomness, environment reads.
        if scope.d2 && is_ident {
            let ambient = match text {
                "Instant" | "SystemTime" => Some("wall-clock time"),
                "thread_rng" | "from_entropy" => Some("ambient randomness"),
                _ => None,
            };
            if let Some(what) = ambient {
                report(
                    "D2",
                    tok.line,
                    format!("`{text}` injects {what} into a simulator/NeRF crate"),
                    &mut findings,
                );
            }
            if matches_path(tokens, i, &["std", "env"]) || matches_path(tokens, i, &["std", "time"])
            {
                report(
                    "D2",
                    tok.line,
                    format!(
                        "`std::{}` makes simulator behaviour depend on the ambient \
                         process environment",
                        tokens[i + 3].text
                    ),
                    &mut findings,
                );
            }
        }

        // D3: raw threading outside crates/par.
        if scope.d3
            && is_ident
            && text == "thread"
            && (matches_path(tokens, i, &["thread", "spawn"])
                || matches_path(tokens, i, &["thread", "scope"]))
        {
            report(
                "D3",
                tok.line,
                "raw std::thread use outside crates/par; route parallelism through \
                 the deterministic fusion3d-par combinators"
                    .to_string(),
                &mut findings,
            );
        }
        if scope.d3 && is_ident && text == "std" && matches_path(tokens, i, &["std", "thread"]) {
            report(
                "D3",
                tok.line,
                "raw std::thread use outside crates/par; route parallelism through \
                 the deterministic fusion3d-par combinators"
                    .to_string(),
                &mut findings,
            );
        }

        // P1: panicking constructs in library code.
        if scope.p1 && is_ident {
            let method_call = |name: &str| {
                text == name
                    && i > 0
                    && tokens[i - 1].text == "."
                    && tokens.get(i + 1).is_some_and(|t| t.text == "(")
            };
            if method_call("unwrap") || method_call("expect") {
                report(
                    "P1",
                    tok.line,
                    format!(
                        "`.{text}()` in library code; return a Result or document the \
                         invariant with a lint allow comment"
                    ),
                    &mut findings,
                );
            }
            if PANIC_MACROS.contains(&text) && tokens.get(i + 1).is_some_and(|t| t.text == "!") {
                report(
                    "P1",
                    tok.line,
                    format!("`{text}!` in library code; return a Result or document the invariant"),
                    &mut findings,
                );
            }
        }

        // O1: printing from library code.
        if scope.o1
            && is_ident
            && PRINT_MACROS.contains(&text)
            && tokens.get(i + 1).is_some_and(|t| t.text == "!")
        {
            report(
                "O1",
                tok.line,
                format!(
                    "`{text}!` in library code; report through return values or a \
                     fusion3d-obs Report — printing belongs to binaries"
                ),
                &mut findings,
            );
        }

        // H1: allocations and clones in hot-path kernel modules.
        if scope.h1 && is_ident {
            if text == "vec" && tokens.get(i + 1).is_some_and(|t| t.text == "!") {
                report(
                    "H1",
                    tok.line,
                    "`vec![…]` allocates in a hot-path kernel module; reuse a \
                     scratch buffer sized once per batch"
                        .to_string(),
                    &mut findings,
                );
            }
            if matches_path(tokens, i, &["Vec", "new"]) {
                report(
                    "H1",
                    tok.line,
                    "`Vec::new` in a hot-path kernel module; reuse a scratch \
                     buffer sized once per batch"
                        .to_string(),
                    &mut findings,
                );
            }
            if text == "clone"
                && i > 0
                && tokens[i - 1].text == "."
                && tokens.get(i + 1).is_some_and(|t| t.text == "(")
            {
                report(
                    "H1",
                    tok.line,
                    "`.clone()` copies in a hot-path kernel module; borrow or \
                     write into a reused buffer"
                        .to_string(),
                    &mut findings,
                );
            }
        }

        // A1: lossy casts in accounting modules.
        if scope.a1 && is_ident && text == "as" {
            if let Some(target) = tokens.get(i + 1) {
                let narrowing = target.kind == TokenKind::Ident
                    && LOSSY_CAST_TARGETS.contains(&target.text.as_str());
                let float_to_int = i > 0
                    && tokens[i - 1].kind == TokenKind::Float
                    && target.kind == TokenKind::Ident
                    && INT_CAST_TARGETS.contains(&target.text.as_str());
                if narrowing || float_to_int {
                    report(
                        "A1",
                        tok.line,
                        format!(
                            "lossy `as {}` cast in an accounting module; widen to \
                             u64/f64 or use a checked conversion",
                            target.text
                        ),
                        &mut findings,
                    );
                }
            }
        }
    }

    // Multiple patterns can fire on one construct (e.g. `std::time::
    // Instant` trips both the path and the ident match); keep one
    // finding per (rule, line).
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    findings
}

/// Returns whether the `std` path segment at `tokens[i]` begins the
/// two-segment path `segs[0]::segs[1]` (e.g. `std :: env`).
fn matches_path(tokens: &[Token], i: usize, segs: &[&str; 2]) -> bool {
    tokens[i].text == segs[0]
        && tokens.get(i + 1).is_some_and(|t| t.text == ":")
        && tokens.get(i + 2).is_some_and(|t| t.text == ":")
        && tokens.get(i + 3).is_some_and(|t| t.text == segs[1])
}

/// Marks every token inside test-only code: items annotated
/// `#[test]`, `#[cfg(test)]` (including `cfg(any(test, …))`), or any
/// other attribute mentioning `test`. The body is the brace block of
/// the annotated item; `#[cfg(test)] mod x;` (no inline body) marks
/// nothing — out-of-line test modules should live under `tests/`.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        let (attr_end, mut is_test) = scan_attribute(tokens, i + 1);
        let mut j = attr_end;
        // Fold in any further attributes on the same item.
        while tokens.get(j).is_some_and(|t| t.text == "#")
            && tokens.get(j + 1).is_some_and(|t| t.text == "[")
        {
            let (next_end, also_test) = scan_attribute(tokens, j + 1);
            is_test |= also_test;
            j = next_end;
        }
        if !is_test {
            i = attr_end;
            continue;
        }
        // Find the item body: first `{` at bracket/paren depth 0
        // (stopping at a bare `;` for body-less items).
        let mut depth = 0i32;
        let mut body_start = None;
        while let Some(tok) = tokens.get(j) {
            match tok.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body_start = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_start else {
            i = j + 1;
            continue;
        };
        // Skip to the matching close brace.
        let mut braces = 0i32;
        let mut end = open;
        while let Some(tok) = tokens.get(end) {
            match tok.text.as_str() {
                "{" => braces += 1,
                "}" => {
                    braces -= 1;
                    if braces == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        for slot in mask.iter_mut().take(end + 1).skip(i) {
            *slot = true;
        }
        i = end + 1;
    }
    mask
}

/// Scans one attribute whose `[` is at `open`; returns (index one past
/// the closing `]`, whether any identifier inside is `test`).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut is_test = false;
    let mut i = open;
    while let Some(tok) = tokens.get(i) {
        match tok.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, is_test);
                }
            }
            "test" if tok.kind == TokenKind::Ident => is_test = true,
            _ => {}
        }
        i += 1;
    }
    (i, is_test)
}
