//! A minimal, dependency-free Rust lexer.
//!
//! `fusion3d-lint` does not need a full parser: every rule it enforces
//! is expressible over a token stream in which comments and string
//! literals have been stripped (so `// HashMap` or `"unwrap()"` never
//! trigger a finding) and line numbers are preserved (so findings and
//! `// lint: allow(...)` escape hatches line up). This module provides
//! exactly that: identifiers, lifetimes, numeric/string/char literals,
//! and single-character punctuation, each tagged with its 1-based line.
//!
//! The lexer understands the Rust surface syntax that matters for
//! correctness of the rules: nested block comments, raw strings with
//! arbitrary `#` fences, byte and raw-byte strings, char literals vs
//! lifetimes, and numeric literals (so `1.5 as u64` can be recognised
//! as a float-to-int cast). It deliberately does not interpret macros
//! or expand `cfg` — rules operate on the source as written.

use std::collections::BTreeMap;

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `as`, `fn`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`) — stored without the quote.
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Floating-point literal (`1.5`, `2e9`, `0.5f32`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`.`, `:`, `!`, `{`, …).
    Punct,
}

/// One token plus the position it starts at.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text. Identifiers, punctuation, and numeric literals
    /// are verbatim (the abstract interpreter evaluates numeric
    /// literal text); string and char literals are abbreviated to
    /// placeholders, since no rule inspects their contents.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// 1-based source column the token starts on. Multi-character
    /// operators are lexed as single-character `Punct` tokens, so
    /// consumers use column adjacency to tell `>=` from `> =` (the
    /// latter ends a generic argument list before a binding `=`).
    pub col: u32,
}

/// One `// lint: allow(rule, …)` escape-hatch directive.
#[derive(Debug, Default, Clone)]
pub struct AllowDirective {
    /// Suppressed rule names, lowercase, in source order.
    pub rules: Vec<String>,
    /// Whether the directive carries a trailing justification —
    /// `allow(rule): why` or `allow(rule) -- why` with non-empty text.
    /// Reasonless directives are reported by rule U1.
    pub has_reason: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Tokens in source order, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// `// lint: allow(rule, …)` directives by (1-based) line. A
    /// directive suppresses findings on its own line and on the line
    /// directly below it (so it can trail the offending code or sit
    /// on its own line above it). Rule names are stored lowercase.
    pub allows: BTreeMap<u32, AllowDirective>,
    /// Continuation comment lines: a code-free `//` comment line
    /// directly below a directive (or below another continuation)
    /// maps to the directive's anchor line, letting a multi-line
    /// reason comment carry the directive down to the code it guards.
    pub continuations: BTreeMap<u32, u32>,
}

impl LexedFile {
    /// Whether findings for `rule` are suppressed at `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allow_line(rule, line).is_some()
    }

    /// The directive line that suppresses `rule` at `line`, if any —
    /// the directive's own line, the line directly above, or the
    /// anchor of a continuation comment block ending directly above.
    /// Rules use the returned line to record the suppression as
    /// *used* (U1).
    pub fn allow_line(&self, rule: &str, line: u32) -> Option<u32> {
        let rule = rule.to_ascii_lowercase();
        let hit = |l: u32| self.allows.get(&l).is_some_and(|d| d.rules.contains(&rule));
        if hit(line) {
            return Some(line);
        }
        if line > 1 {
            if hit(line - 1) {
                return Some(line - 1);
            }
            if let Some(&anchor) = self.continuations.get(&(line - 1)) {
                if hit(anchor) {
                    return Some(anchor);
                }
            }
        }
        None
    }
}

/// Lexes `source` into tokens and allow-directives.
pub fn lex(source: &str) -> LexedFile {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        line_start: 0,
        out: LexedFile::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Char index where the current line starts (for column numbers).
    line_start: usize,
    out: LexedFile,
}

impl Lexer {
    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                    self.line_start = self.pos;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                'r' if matches!(self.peek(1), Some('"' | '#')) => self.raw_prefixed(),
                'b' if matches!(self.peek(1), Some('"' | '\'' | 'r')) => self.byte_prefixed(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident(),
                c => {
                    self.push(TokenKind::Punct, c.to_string());
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String) {
        self.push_at(kind, text, self.pos);
    }

    /// Pushes a token that started at char index `start` on the
    /// current line (tokenisers that consume before pushing pass
    /// their saved start).
    fn push_at(&mut self, kind: TokenKind, text: String, start: usize) {
        let col = (start.saturating_sub(self.line_start) + 1) as u32;
        self.out.tokens.push(Token { kind, text, line: self.line, col });
    }

    /// `// …` — consumed to end of line; may carry an allow directive.
    /// Doc comments (`///`, `//!`) never do: their prose and fenced
    /// examples routinely *mention* the directive syntax, and parsing
    /// those would register phantom suppressions (tripping U1).
    fn line_comment(&mut self) {
        let start = self.pos;
        let doc = matches!(self.peek(2), Some('/' | '!'));
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        if !doc {
            let text: String = self.chars[start..self.pos].iter().collect();
            self.record_allow(&text);
            // A code-free comment line directly below a directive (or
            // below one of its continuations) carries that directive's
            // coverage forward — multi-line reason comments would
            // otherwise strand the directive above the code it guards.
            let pure = self.out.tokens.last().is_none_or(|t| t.line != self.line);
            if pure && !self.out.allows.contains_key(&self.line) && self.line > 1 {
                let above = self.line - 1;
                let anchor = if self.out.allows.contains_key(&above) {
                    Some(above)
                } else {
                    self.out.continuations.get(&above).copied()
                };
                if let Some(anchor) = anchor {
                    self.out.continuations.insert(self.line, anchor);
                }
            }
        }
    }

    /// Parses `lint: allow(rule1, rule2): reason` out of a comment
    /// body. The reason text after the closing paren may be introduced
    /// by `:`, `--`, or `—`; its presence is recorded so U1 can flag
    /// reasonless suppressions.
    fn record_allow(&mut self, comment: &str) {
        let Some(at) = comment.find("lint:") else { return };
        let rest = comment[at + "lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else { return };
        let Some(close) = rest.find(')') else { return };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_ascii_lowercase())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = rest[close + 1..].trim();
        let has_reason = [":", "--", "—"]
            .iter()
            .any(|sep| tail.strip_prefix(sep).is_some_and(|r| !r.trim().is_empty()));
        if !rules.is_empty() {
            let entry = self.out.allows.entry(self.line).or_default();
            entry.rules.extend(rules);
            entry.has_reason |= has_reason;
        }
    }

    /// `/* … */`, nesting-aware, newline-counting.
    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some('\n'), _) => {
                    self.line += 1;
                    self.pos += 1;
                    self.line_start = self.pos;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => return, // unterminated: tolerate
            }
        }
    }

    /// `"…"` with escape handling; newlines inside are counted.
    fn string(&mut self) {
        self.push(TokenKind::Str, "\"…\"".to_string());
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.pos += 2,
                '"' => {
                    self.pos += 1;
                    return;
                }
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                    self.line_start = self.pos;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// `r"…"` / `r#"…"#` / `r#ident` (raw identifier).
    fn raw_prefixed(&mut self) {
        // Count the `#` fence after `r`; then either a raw string or,
        // for `r#ident`, a raw identifier.
        let mut hashes = 0usize;
        while self.peek(1 + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(1 + hashes) {
            Some('"') => self.raw_string(1 + hashes, hashes),
            _ if hashes == 1 => {
                // r#ident — lex the identifier part, keep its name so
                // rules see `r#type` as ident "type".
                self.pos += 2;
                self.ident();
            }
            _ => {
                // Plain identifier starting with r (e.g. `rng`).
                self.ident();
            }
        }
    }

    /// `b"…"`, `b'…'`, `br#"…"#` — or an ordinary ident like `bytes`.
    fn byte_prefixed(&mut self) {
        match self.peek(1) {
            Some('"') => {
                self.pos += 1;
                self.string();
                // Re-label: string() pushed a Str already; fine as-is.
            }
            Some('\'') => {
                self.pos += 1;
                self.char_or_lifetime();
            }
            Some('r') => {
                let mut hashes = 0usize;
                while self.peek(2 + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(2 + hashes) == Some('"') {
                    self.raw_string(2 + hashes, hashes);
                } else {
                    self.ident();
                }
            }
            _ => self.ident(),
        }
    }

    /// Consumes a raw string whose opening quote sits at
    /// `self.pos + quote_offset`, fenced by `hashes` `#` characters.
    fn raw_string(&mut self, quote_offset: usize, hashes: usize) {
        self.push(TokenKind::Str, "r\"…\"".to_string());
        self.pos += quote_offset + 1;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.line += 1;
                self.pos += 1;
                self.line_start = self.pos;
                continue;
            }
            if c == '"' {
                let closed = (0..hashes).all(|i| self.peek(1 + i) == Some('#'));
                if closed {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// `'x'`, `'\n'` (char literal) or `'a` (lifetime).
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.push(TokenKind::Char, "'…'".to_string());
                self.pos += 2; // quote + backslash
                self.pos += 1; // escaped char
                while let Some(c) = self.peek(0) {
                    self.pos += 1;
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(_) if self.peek(2) == Some('\'') => {
                self.push(TokenKind::Char, "'…'".to_string());
                self.pos += 3;
            }
            _ => {
                // Lifetime: `'` followed by an identifier.
                let start = self.pos + 1;
                let mut end = start;
                while self.chars.get(end).is_some_and(|c| c.is_alphanumeric() || *c == '_') {
                    end += 1;
                }
                let text: String = self.chars[start..end].iter().collect();
                self.push(TokenKind::Lifetime, text);
                self.pos = end;
            }
        }
    }

    /// Numeric literal; decides Int vs Float.
    fn number(&mut self) {
        let start = self.pos;
        let mut is_float = false;
        let hex = self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'b'));
        while let Some(c) = self.peek(0) {
            match c {
                '0'..='9' | '_' => self.pos += 1,
                'a'..='f' | 'A'..='F' if hex => self.pos += 1,
                'x' | 'o' if self.pos == start + 1 => self.pos += 1,
                '.' => {
                    // Part of the number only when followed by a digit
                    // (so `0..10` and `1.max(2)` stop cleanly).
                    if self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                        is_float = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                'e' | 'E' if !hex => {
                    // Exponent when followed by digit or sign+digit.
                    let next = self.peek(1);
                    let signed = matches!(next, Some('+' | '-'))
                        && self.peek(2).is_some_and(|d| d.is_ascii_digit());
                    if next.is_some_and(|d| d.is_ascii_digit()) || signed {
                        is_float = true;
                        self.pos += if signed { 2 } else { 1 };
                    } else {
                        break;
                    }
                }
                // Type suffixes (`u64`, `f32`, `usize`, …).
                c if c.is_alphanumeric() => {
                    if c == 'f' {
                        is_float = true;
                    }
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let kind = if is_float { TokenKind::Float } else { TokenKind::Int };
        self.push_at(kind, text, start);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(|c| c.is_alphanumeric() || *c == '_') {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push_at(TokenKind::Ident, text, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* unwrap() in /* nested */ block */
            let s = "HashMap.unwrap()";
            let r = r#"panic!("x")"#;
            real_ident
        "##;
        assert_eq!(idents(src), vec!["let", "s", "let", "r", "real_ident"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/* x\ny */\nb\n\"s\ntring\"\nc";
        let file = lex(src);
        let lines: Vec<(String, u32)> =
            file.tokens.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(lines[0], ("a".to_string(), 1));
        assert_eq!(lines[1], ("b".to_string(), 4));
        assert_eq!(lines[3], ("c".to_string(), 7));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let file = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = file
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars = file.tokens.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn floats_and_ints_classify() {
        let file = lex("1 2.5 3e9 0xFF 1_000u64 0.5f32 0..10");
        let kinds: Vec<TokenKind> = file
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Int,
                TokenKind::Float,
                TokenKind::Float,
                TokenKind::Int,
                TokenKind::Int,
                TokenKind::Float,
                TokenKind::Int,
                TokenKind::Int,
            ]
        );
    }

    #[test]
    fn allow_directives_parse() {
        let src = "x // lint: allow(p1, D2) — reason\ny\n// lint: allow(a1)\nz";
        let file = lex(src);
        assert!(file.is_allowed("P1", 1));
        assert!(file.is_allowed("d2", 1));
        assert!(file.is_allowed("p1", 2), "directive covers the next line");
        assert!(!file.is_allowed("p1", 3));
        assert!(file.is_allowed("a1", 4));
    }

    #[test]
    fn continuation_comments_extend_directives() {
        let src = "// lint: allow(h2): first line of\n// a two-line reason\nf();\ng();";
        let file = lex(src);
        assert!(file.is_allowed("h2", 3), "directive rides the comment block down");
        assert_eq!(file.allow_line("h2", 3), Some(1), "usage credits the anchor line");
        assert!(!file.is_allowed("h2", 4), "coverage stops at the first code line");

        // A trailing comment on a code line is not a continuation.
        let src = "// lint: allow(h2): reason\nf(); // unrelated note\ng();";
        let file = lex(src);
        assert!(!file.is_allowed("h2", 3));
    }
}
