//! `fusion3d-lint` — workspace-aware static analysis for the
//! Fusion-3D reproduction.
//!
//! The cycle-accurate simulator's headline guarantee is that its
//! numbers are reproducible: bitwise-identical across runs, machines,
//! and worker counts. That guarantee is cheap to break silently — one
//! `HashMap` iteration in a result path, one `thread_rng()`, one
//! narrowing cast in an energy total — so this crate machine-checks
//! the discipline on every change. It lexes the workspace's Rust
//! sources with a small hand-rolled tokenizer (no `syn`; the repo
//! builds offline), recovers the item skeleton (fns, impls, modules)
//! with a lightweight parser, builds a conservative workspace call
//! graph, and enforces twelve repo-specific rules — token-local
//! (D1–D3, P1, A1, H1, O1), interprocedural (P2, H2), parallel-closure
//! (D4, D5), and suppression hygiene (U1). The full catalogue with
//! rationale and examples lives in `docs/LINTS.md`.
//!
//! Legitimate exceptions carry a per-line escape hatch **with a
//! mandatory reason** (U1 reports reasonless or unused suppressions):
//!
//! ```text
//! let forced = std::env::var(THREADS_ENV); // lint: allow(d2): worker count never affects results
//! ```
//!
//! The directive suppresses the named rule(s) on its own line and the
//! line directly below, so it can trail the offending expression or
//! sit above a rustfmt-wrapped statement. Plain `//` comment lines
//! directly below a directive extend its coverage to the line after
//! them, so a reason that needs two comment lines still guards the
//! code underneath. The catalogue in `docs/LINTS.md` documents the
//! full syntax.
//!
//! Known over-approximations, by design: any attribute containing the
//! identifier `test` (e.g. `#[cfg(test)]`, `#[test]`) marks its item
//! as test code and exempts it from every rule; `cfg(not(test))` is
//! unused in this workspace and would be exempted too. Out-of-line
//! `#[cfg(test)] mod x;` declarations are not followed — test modules
//! live inline or under `tests/`, which is never scanned. The call
//! graph resolves names without type inference, so reachability is an
//! over-approximation (see [`graph`]).

#![warn(missing_docs)]

mod absint;
pub mod graph;
pub mod interproc;
pub mod intervals;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use rules::Finding;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lexed + parsed source file of the workspace under analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Token stream and allow directives.
    pub lexed: lexer::LexedFile,
    /// Item skeleton (fns, uses, statics).
    pub parsed: parse::ParsedFile,
}

/// The outcome of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints a set of in-memory sources as one workspace: token-local
/// rules per file, then the call-graph rules (P2/H2/D4/D5) across all
/// of them, then U1 over the accumulated suppression usage. Findings
/// come back sorted by (path, line, rule) — the canonical order every
/// consumer (CLI, baseline diff, tests) relies on.
pub fn lint_sources(sources: &[(String, String)]) -> Report {
    let mut files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, source)| {
            let lexed = lexer::lex(source);
            let parsed = parse::parse_file(&lexed);
            SourceFile { path: path.clone(), lexed, parsed }
        })
        .collect();
    let mut parsed: Vec<&mut parse::ParsedFile> = files.iter_mut().map(|f| &mut f.parsed).collect();
    parse::resolve_array_aliases(&mut parsed);
    let files = files;
    let mut usage: Vec<rules::AllowUsage> =
        files.iter().map(|_| rules::AllowUsage::new()).collect();

    let mut findings = Vec::new();
    for (idx, file) in files.iter().enumerate() {
        findings.extend(rules::check_file(&file.path, &file.lexed, &mut usage[idx]));
    }
    let graph = graph::CallGraph::build(&files);
    findings.extend(interproc::check(&files, &graph, &mut usage));
    findings.extend(absint::check(&files, &graph, &mut usage));
    findings.extend(interproc::check_unused(&files, &usage));

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    assign_finding_ids(&files, &mut findings);
    Report { findings, files_scanned: files.len() }
}

/// Assigns every finding its stable identity
/// `rule:crate:fn-path:snippet-hash[#n]`: the enclosing function
/// (innermost, by line), the finding line's token text hashed with
/// FNV-1a, and a `#n` counter for exact duplicates. Baselines diff on
/// this id, so entries survive line shifts from unrelated edits;
/// renaming the function or editing the flagged line retires the
/// entry, which is the desired freshness forcing-function.
pub fn assign_finding_ids(files: &[SourceFile], findings: &mut [Finding]) {
    let by_path: std::collections::BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.path.as_str(), f)).collect();
    let mut seen: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
    for finding in findings.iter_mut() {
        let file = by_path.get(finding.path.as_str()).copied();
        let krate = rules::crate_of(&finding.path).unwrap_or("workspace");
        let fn_path = file.and_then(|f| enclosing_fn(f, finding.line)).unwrap_or_else(|| {
            let stem = finding.path.rsplit('/').next().unwrap_or(&finding.path);
            stem.trim_end_matches(".rs").to_string()
        });
        let snippet: String = match file {
            Some(f) => f
                .lexed
                .tokens
                .iter()
                .filter(|t| t.line == finding.line)
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" "),
            None => String::new(),
        };
        let base = format!("{}:{}:{}:{:08x}", finding.rule, krate, fn_path, fnv1a(&snippet));
        let n = seen.entry(base.clone()).or_insert(0);
        finding.id = if *n == 0 { base } else { format!("{base}#{n}") };
        *n += 1;
    }
}

/// The innermost function whose body covers `line`, rendered as
/// `Type::name` / `name`.
fn enclosing_fn(file: &SourceFile, line: u32) -> Option<String> {
    let toks = &file.lexed.tokens;
    let mut best: Option<(u32, &parse::FnItem)> = None;
    for item in &file.parsed.fns {
        let Some((open, close)) = item.body else { continue };
        let (Some(start), Some(end)) = (toks.get(open), toks.get(close)) else { continue };
        if item.line.min(start.line) <= line && line <= end.line {
            // Innermost = latest-starting span that still covers.
            if best.is_none_or(|(l, _)| item.line >= l) {
                best = Some((item.line, item));
            }
        }
    }
    best.map(|(_, item)| match &item.self_type {
        Some(t) => format!("{t}::{}", item.name),
        None => item.name.clone(),
    })
}

/// 64-bit FNV-1a over the snippet text (stable across platforms; no
/// dependency on `std::hash` internals).
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Fold to 32 bits for readable ids; collisions only matter within
    // one (rule, crate, fn) bucket, where a handful of lines live.
    (hash >> 32) ^ (hash & 0xffff_ffff)
}

/// Lints a single source string as if it lived at `rel_path`
/// (workspace-relative, forward slashes). The path determines which
/// rules apply — `crates/core/src/energy.rs` is in A1 scope,
/// `crates/bench/src/lib.rs` is exempt from D2, and so on. The
/// interprocedural rules run over the one-file "workspace".
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    lint_sources(&[(rel_path.to_string(), source.to_string())]).findings
}

/// Lints every library source tree in the workspace rooted at `root`:
/// `crates/*/src/**/*.rs` plus the façade crate's `src/`. Test
/// directories (`tests/`, `benches/`, `examples/`) are intentionally
/// out of scope, as is `vendor/`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_entries(&crates_dir)? {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs_files(&root_src, &mut files)?;
    }

    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let source = fs::read_to_string(&path)?;
        sources.push((relative_path(root, &path), source));
    }
    Ok(lint_sources(&sources))
}

/// Locates the workspace root at or above `start` by looking for the
/// directory that contains both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Normalize to forward slashes so scopes match on every platform.
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().map(|e| e.path()).collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|ext| ext == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}
