//! Workspace symbol table and conservative call graph.
//!
//! The interprocedural rules need to answer one question: *starting
//! from a set of entry functions, which functions can run?* Without
//! type inference, the resolver over-approximates — every candidate a
//! call syntactically might mean becomes an edge — so reachability
//! errs toward reporting. Edges come from four syntactic forms:
//!
//! * **free calls** `name(…)` — resolved to same-crate functions of
//!   that name when any exist, otherwise to every workspace function
//!   of that name (cross-crate imports);
//! * **qualified calls** `Type::name(…)` — resolved to methods of
//!   `Type` when the qualifier names a known `impl` target (with
//!   `Self::name(…)` mapped through the enclosing impl); lowercase
//!   qualifiers (module paths, `math::dot`) fall back to free-call
//!   resolution of `name`, while unknown *uppercase* qualifiers are
//!   external types (`Vec::new`) and produce no edge;
//! * **method calls** `recv.name(…)` — resolved to *every* method of
//!   that name in the workspace, which is what makes trait-object and
//!   generic dispatch conservative: `dyn Kernel` calling `.run()`
//!   edges to each `impl Kernel for …` block's `run`;
//! * **function references** `Type::name` passed as values (closure
//!   initialisers like `RayScratch::new`) — resolved like qualified
//!   calls, since the callee runs even though no paren follows.
//!
//! Test functions are excluded entirely; macro invocations (`name!`)
//! never match because the `!` sits between the identifier and the
//! paren. Node order, edge order, and the BFS below are all fully
//! deterministic: nodes are indexed in (file, source-order) and every
//! adjacency list is sorted.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::parse::{FnItem, ParsedFile, NON_CALL_KEYWORDS};
use crate::rules::crate_of;
use crate::SourceFile;

/// One function in the workspace.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into the file list passed to [`CallGraph::build`].
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub fn_index: usize,
    /// Crate the file belongs to (`"nerf"`, `"par"`, …).
    pub krate: String,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Non-test functions, ordered by (file, declaration order).
    pub nodes: Vec<FnNode>,
    /// Sorted, deduplicated callee lists, parallel to `nodes`.
    pub callees: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over every parsed file.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut graph = CallGraph::default();
        // Node table: every non-test fn, in deterministic order.
        for (file_idx, file) in files.iter().enumerate() {
            let krate = crate_of(&file.path).unwrap_or("").to_string();
            for (fn_idx, f) in file.parsed.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                graph.nodes.push(FnNode { file: file_idx, fn_index: fn_idx, krate: krate.clone() });
            }
        }

        // Resolution indices.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_crate_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, node) in graph.nodes.iter().enumerate() {
            let item = fn_item(files, node);
            by_name.entry(&item.name).or_default().push(id);
            by_crate_name.entry((&node.krate, &item.name)).or_default().push(id);
            if let Some(self_type) = item.self_type.as_deref() {
                methods_by_name.entry(&item.name).or_default().push(id);
                by_type_method.entry((self_type, &item.name)).or_default().push(id);
            }
        }

        // Edges: scan each node's direct body span (nested fn items
        // subtracted — they are their own nodes).
        for id in 0..graph.nodes.len() {
            let node = &graph.nodes[id];
            let file = &files[node.file];
            let item = fn_item(files, node);
            let toks = &file.lexed.tokens;
            let mut edges: Vec<usize> = Vec::new();
            for (lo, hi) in direct_spans(&file.parsed, node.fn_index) {
                for i in lo..hi {
                    let t = &toks[i];
                    if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                        continue;
                    }
                    let name = t.text.as_str();
                    let prev = if i > 0 { toks[i - 1].text.as_str() } else { "" };
                    let called = toks.get(i + 1).is_some_and(|n| n.text == "(");
                    let qualified = prev == ":"
                        && i >= 3
                        && toks[i - 2].text == ":"
                        && toks[i - 3].kind == TokenKind::Ident;
                    if qualified {
                        // `Qual::name(…)` or a fn reference `Qual::name`.
                        let mut qual = toks[i - 3].text.as_str();
                        if qual == "Self" {
                            qual = item.self_type.as_deref().unwrap_or("Self");
                        }
                        if let Some(ids) = by_type_method.get(&(qual, name)) {
                            edges.extend(ids);
                        } else if called && qual.chars().next().is_some_and(|c| !c.is_uppercase()) {
                            // Module-qualified call (`math::dot(…)`):
                            // resolve by name. An *uppercase* qualifier
                            // that names no workspace type is an
                            // external type (`Vec::new`, `String::from`)
                            // — edging those to same-named workspace
                            // fns would drag every `new` into every
                            // reachability set.
                            resolve_free(&by_crate_name, &by_name, &node.krate, name, &mut edges);
                        }
                    } else if called && prev == "." {
                        if let Some(ids) = methods_by_name.get(name) {
                            edges.extend(ids);
                        }
                    } else if called {
                        resolve_free(&by_crate_name, &by_name, &node.krate, name, &mut edges);
                    }
                }
            }
            edges.sort_unstable();
            edges.dedup();
            graph.callees.push(edges);
        }
        graph
    }

    /// Deterministic breadth-first reachability from `entries`
    /// (node ids, pre-sorted by the caller or naturally ordered).
    /// Returns a parent map: `parents[n] = Some(n)` for entries,
    /// `Some(p)` for nodes first reached from `p`, `None` when
    /// unreachable.
    pub fn reachable_from(&self, entries: &[usize]) -> Vec<Option<usize>> {
        let mut parents: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &e in entries {
            if parents[e].is_none() {
                parents[e] = Some(e);
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &callee in &self.callees[n] {
                if parents[callee].is_none() {
                    parents[callee] = Some(n);
                    queue.push_back(callee);
                }
            }
        }
        parents
    }

    /// The entry-to-`node` chain recorded by
    /// [`reachable_from`](Self::reachable_from), rendered as
    /// `entry → … → node` display names.
    pub fn path_string(
        &self,
        files: &[SourceFile],
        parents: &[Option<usize>],
        node: usize,
    ) -> String {
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(parent) = parents[cur] {
            if parent == cur {
                break;
            }
            chain.push(parent);
            cur = parent;
        }
        chain.reverse();
        chain.iter().map(|&n| self.display_name(files, n)).collect::<Vec<_>>().join(" → ")
    }

    /// `crate::Type::name` display form of a node.
    pub fn display_name(&self, files: &[SourceFile], node: usize) -> String {
        let n = &self.nodes[node];
        let item = fn_item(files, n);
        match item.self_type.as_deref() {
            Some(t) => format!("{}::{}::{}", n.krate, t, item.name),
            None => format!("{}::{}", n.krate, item.name),
        }
    }
}

/// The parsed item behind a node.
pub fn fn_item<'a>(files: &'a [SourceFile], node: &FnNode) -> &'a FnItem {
    &files[node.file].parsed.fns[node.fn_index]
}

fn resolve_free(
    by_crate_name: &BTreeMap<(&str, &str), Vec<usize>>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    krate: &str,
    name: &str,
    edges: &mut Vec<usize>,
) {
    if let Some(ids) = by_crate_name.get(&(krate, name)) {
        edges.extend(ids);
    } else if let Some(ids) = by_name.get(name) {
        edges.extend(ids);
    }
}

/// Token sub-ranges of fn `fi`'s body that belong to it *directly* —
/// the body span minus every nested fn item's span (nested fns are
/// separate graph nodes). Empty for body-less declarations.
pub fn direct_spans(parsed: &ParsedFile, fi: usize) -> Vec<(usize, usize)> {
    let Some((open, close)) = parsed.fns[fi].body else { return Vec::new() };
    let mut holes: Vec<(usize, usize)> = parsed
        .fns
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != fi)
        .filter_map(|(_, f)| f.body)
        .filter(|&(o, c)| o > open && c < close)
        .collect();
    holes.sort_unstable();
    let mut spans = Vec::new();
    let mut cursor = open + 1;
    for (o, c) in holes {
        if o > cursor {
            spans.push((cursor, o));
        }
        cursor = cursor.max(c + 1);
    }
    if close > cursor {
        spans.push((cursor, close));
    }
    spans
}
