//! The interval lattice for the abstract interpreter.
//!
//! An [`Interval`] over-approximates the set of values an integer (or,
//! with outward rounding, a float) expression can take: `Bottom` is
//! the empty set (unreachable code, uninitialised join inputs) and
//! `[lo, hi]` over `i128` covers every workspace integer type —
//! `u64` arithmetic fits with headroom, and `u128` (unused in
//! accounting code) is truncated to `[0, i128::MAX]`, which only ever
//! *widens* a check's failure, never hides one.
//!
//! All transfer functions are **sound over-approximations**: for every
//! concrete `a ∈ A`, `b ∈ B`, the concrete result of `a ⊕ b` lies in
//! `A ⊕ B` (the exhaustive small-domain test suite in
//! `tests/intervals.rs` checks this over a dense 4-bit grid). The
//! analyzer's own arithmetic saturates at the `i128` rails, so the
//! lattice itself cannot overflow; a saturated bound reads as "at
//! least this far", which again only widens results.
//!
//! Widening is the textbook jump-to-rail operator: a bound that moved
//! since the previous loop iterate is sent straight to the
//! corresponding rail, so any ascending chain stabilises in at most
//! two widening steps per variable (termination is property-tested).

/// An abstract integer value: the empty set, or a closed range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interval {
    /// The empty set of values (⊥).
    Bottom,
    /// Every value `v` with `lo <= v <= hi`.
    Range {
        /// Least possible value (`i128::MIN` means "unbounded below").
        lo: i128,
        /// Greatest possible value (`i128::MAX` means "unbounded above").
        hi: i128,
    },
}

// `add`/`sub`/`neg`/… are abstract *transfer functions*, not the
// arithmetic the std operator traits promise — spelling them as plain
// methods keeps `a.add(b)` visibly abstract at every call site.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The full lattice top `[i128::MIN, i128::MAX]` (⊤).
    pub const TOP: Interval = Interval::Range { lo: i128::MIN, hi: i128::MAX };

    /// `[lo, hi]`, or ⊥ when `lo > hi`.
    pub fn new(lo: i128, hi: i128) -> Interval {
        if lo > hi {
            Interval::Bottom
        } else {
            Interval::Range { lo, hi }
        }
    }

    /// The single value `v`.
    pub fn singleton(v: i128) -> Interval {
        Interval::Range { lo: v, hi: v }
    }

    /// Whether this is the empty set.
    pub fn is_bottom(self) -> bool {
        matches!(self, Interval::Bottom)
    }

    /// Whether this is the full range (⊤).
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// The bounds, or `None` for ⊥.
    pub fn bounds(self) -> Option<(i128, i128)> {
        match self {
            Interval::Bottom => None,
            Interval::Range { lo, hi } => Some((lo, hi)),
        }
    }

    /// Whether the concrete value `v` is covered.
    pub fn contains(self, v: i128) -> bool {
        match self {
            Interval::Bottom => false,
            Interval::Range { lo, hi } => lo <= v && v <= hi,
        }
    }

    /// Whether every value of `self` is covered by `other`.
    pub fn subset_of(self, other: Interval) -> bool {
        match (self, other) {
            (Interval::Bottom, _) => true,
            (_, Interval::Bottom) => false,
            (Interval::Range { lo, hi }, Interval::Range { lo: olo, hi: ohi }) => {
                olo <= lo && hi <= ohi
            }
        }
    }

    /// Least upper bound: the smallest interval covering both.
    pub fn join(self, other: Interval) -> Interval {
        match (self, other) {
            (Interval::Bottom, x) | (x, Interval::Bottom) => x,
            (Interval::Range { lo, hi }, Interval::Range { lo: olo, hi: ohi }) => {
                Interval::Range { lo: lo.min(olo), hi: hi.max(ohi) }
            }
        }
    }

    /// Greatest lower bound: the intersection.
    pub fn meet(self, other: Interval) -> Interval {
        match (self, other) {
            (Interval::Bottom, _) | (_, Interval::Bottom) => Interval::Bottom,
            (Interval::Range { lo, hi }, Interval::Range { lo: olo, hi: ohi }) => {
                Interval::new(lo.max(olo), hi.min(ohi))
            }
        }
    }

    /// Widening at loop heads: any bound of `newer` that escaped
    /// `self` jumps straight to its rail, so iteration terminates.
    pub fn widen(self, newer: Interval) -> Interval {
        match (self, newer) {
            (Interval::Bottom, x) => x,
            (x, Interval::Bottom) => x,
            (Interval::Range { lo, hi }, Interval::Range { lo: nlo, hi: nhi }) => Interval::Range {
                lo: if nlo < lo { i128::MIN } else { lo },
                hi: if nhi > hi { i128::MAX } else { hi },
            },
        }
    }

    /// Abstract addition (saturating at the `i128` rails).
    pub fn add(self, other: Interval) -> Interval {
        self.binary(other, |a, b| (a.saturating_add(b), a.saturating_add(b)))
    }

    /// Abstract subtraction.
    pub fn sub(self, other: Interval) -> Interval {
        match (self, other) {
            (Interval::Range { lo, hi }, Interval::Range { lo: olo, hi: ohi }) => {
                Interval::Range { lo: lo.saturating_sub(ohi), hi: hi.saturating_sub(olo) }
            }
            _ => Interval::Bottom,
        }
    }

    /// Abstract multiplication: the hull of the four corner products.
    pub fn mul(self, other: Interval) -> Interval {
        match (self.bounds(), other.bounds()) {
            (Some((alo, ahi)), Some((blo, bhi))) => {
                let ps = [
                    alo.saturating_mul(blo),
                    alo.saturating_mul(bhi),
                    ahi.saturating_mul(blo),
                    ahi.saturating_mul(bhi),
                ];
                Interval::Range {
                    lo: ps.iter().copied().min().unwrap_or(0),
                    hi: ps.iter().copied().max().unwrap_or(0),
                }
            }
            _ => Interval::Bottom,
        }
    }

    /// Abstract negation.
    pub fn neg(self) -> Interval {
        match self {
            Interval::Bottom => Interval::Bottom,
            Interval::Range { lo, hi } => {
                Interval::Range { lo: hi.saturating_neg(), hi: lo.saturating_neg() }
            }
        }
    }

    /// Abstract absolute value (covers both `abs` and `unsigned_abs`).
    pub fn abs(self) -> Interval {
        match self {
            Interval::Bottom => Interval::Bottom,
            Interval::Range { lo, hi } => {
                if lo >= 0 {
                    self
                } else if hi <= 0 {
                    self.neg()
                } else {
                    Interval::Range { lo: 0, hi: hi.max(lo.saturating_neg()) }
                }
            }
        }
    }

    /// Abstract left shift. Shift amounts are clamped to `[0, 127]`
    /// for the bound computation — whether the concrete shift amount
    /// is in range for the destination type is the *checker's* job,
    /// not the lattice's.
    pub fn shl(self, amount: Interval) -> Interval {
        match (self.bounds(), amount.bounds()) {
            (Some((lo, hi)), Some((alo, ahi))) => {
                let alo = alo.clamp(0, 127) as u32;
                let ahi = ahi.clamp(0, 127) as u32;
                let corners =
                    [shl_sat(lo, alo), shl_sat(lo, ahi), shl_sat(hi, alo), shl_sat(hi, ahi)];
                Interval::Range {
                    lo: corners.iter().copied().min().unwrap_or(0),
                    hi: corners.iter().copied().max().unwrap_or(0),
                }
            }
            _ => Interval::Bottom,
        }
    }

    /// Abstract logical/arithmetic right shift (non-negative inputs
    /// shrink toward zero; a possibly-negative input stays ⊤-ish).
    pub fn shr(self, amount: Interval) -> Interval {
        match (self.bounds(), amount.bounds()) {
            (Some((lo, hi)), Some((alo, ahi))) => {
                if lo < 0 {
                    // Arithmetic shift of negatives rounds toward -∞;
                    // the hull of both extremes stays sound.
                    return Interval::Range { lo, hi: hi.max(0) };
                }
                let alo = alo.clamp(0, 127) as u32;
                let ahi = ahi.clamp(0, 127) as u32;
                Interval::Range { lo: lo >> ahi, hi: hi >> alo }
            }
            _ => Interval::Bottom,
        }
    }

    /// Abstract division. Sound only for divisors that exclude zero;
    /// a divisor interval containing zero yields ⊤ (the panic itself
    /// is P2's concern, not A2's).
    pub fn div(self, other: Interval) -> Interval {
        match (self.bounds(), other.bounds()) {
            (Some((lo, hi)), Some((olo, ohi))) => {
                if olo <= 0 && ohi >= 0 {
                    return Interval::TOP;
                }
                let corners = [
                    lo.saturating_div(olo),
                    lo.saturating_div(ohi),
                    hi.saturating_div(olo),
                    hi.saturating_div(ohi),
                ];
                Interval::Range {
                    lo: corners.iter().copied().min().unwrap_or(0),
                    hi: corners.iter().copied().max().unwrap_or(0),
                }
            }
            _ => Interval::Bottom,
        }
    }

    /// Abstract remainder for a strictly positive divisor; ⊤ otherwise.
    pub fn rem(self, other: Interval) -> Interval {
        match (self.bounds(), other.bounds()) {
            (Some((lo, _)), Some((olo, ohi))) if olo > 0 => {
                let mag = ohi.saturating_sub(1);
                if lo >= 0 {
                    Interval::Range { lo: 0, hi: mag }
                } else {
                    Interval::Range { lo: mag.saturating_neg(), hi: mag }
                }
            }
            (Some(_), Some(_)) => Interval::TOP,
            _ => Interval::Bottom,
        }
    }

    /// Abstract bitwise AND: exact only in sign reasoning — for
    /// non-negative operands the result is bounded by each operand.
    pub fn bitand(self, other: Interval) -> Interval {
        match (self.bounds(), other.bounds()) {
            (Some((lo, hi)), Some((olo, ohi))) => {
                if lo >= 0 || olo >= 0 {
                    let cap = if lo >= 0 && olo >= 0 {
                        hi.min(ohi)
                    } else if lo >= 0 {
                        hi
                    } else {
                        ohi
                    };
                    Interval::Range { lo: 0, hi: cap }
                } else {
                    Interval::TOP
                }
            }
            _ => Interval::Bottom,
        }
    }

    /// Abstract bitwise OR: for non-negative operands the result stays
    /// below the next power of two above both upper bounds.
    pub fn bitor(self, other: Interval) -> Interval {
        match (self.bounds(), other.bounds()) {
            (Some((lo, hi)), Some((olo, ohi))) => {
                if lo >= 0 && olo >= 0 {
                    Interval::Range { lo: lo.max(olo), hi: pow2_ceil_mask(hi.max(ohi)) }
                } else {
                    Interval::TOP
                }
            }
            _ => Interval::Bottom,
        }
    }

    /// Abstract `min`.
    pub fn min_(self, other: Interval) -> Interval {
        match (self.bounds(), other.bounds()) {
            (Some((lo, hi)), Some((olo, ohi))) => {
                Interval::Range { lo: lo.min(olo), hi: hi.min(ohi) }
            }
            _ => Interval::Bottom,
        }
    }

    /// Abstract `max`.
    pub fn max_(self, other: Interval) -> Interval {
        match (self.bounds(), other.bounds()) {
            (Some((lo, hi)), Some((olo, ohi))) => {
                Interval::Range { lo: lo.max(olo), hi: hi.max(ohi) }
            }
            _ => Interval::Bottom,
        }
    }

    /// Abstract `x.clamp(a, b)`, i.e. `min(max(x, a), b)`. Composing
    /// the `max_`/`min_` transfers is sound for *interval*-valued clamp
    /// bounds (a concrete `a` above `x`'s low bound drags the result
    /// up and out of `x`'s own range), and loses no precision in the
    /// common case where `a` and `b` are singleton constants.
    pub fn clamp_to(self, a: Interval, b: Interval) -> Interval {
        self.max_(a).min_(b)
    }

    /// Saturates this interval into `range`'s rails: the abstract
    /// counterpart of clamping to *known constant* bounds (float `as`
    /// saturation, `saturating_*` results). Equivalent to
    /// `clamp_to(singleton(range.lo), singleton(range.hi))`, but keeps
    /// the callers free of bound plumbing.
    pub fn saturate_to(self, range: Interval) -> Interval {
        match (self.bounds(), range.bounds()) {
            (Some((lo, hi)), Some((rlo, rhi))) => {
                Interval::Range { lo: lo.clamp(rlo, rhi), hi: hi.clamp(rlo, rhi) }
            }
            _ => Interval::Bottom,
        }
    }

    fn binary(self, other: Interval, f: impl Fn(i128, i128) -> (i128, i128)) -> Interval {
        match (self, other) {
            (Interval::Range { lo, hi }, Interval::Range { lo: olo, hi: ohi }) => {
                let (a, _) = f(lo, olo);
                let (_, b) = f(hi, ohi);
                Interval::Range { lo: a, hi: b }
            }
            _ => Interval::Bottom,
        }
    }
}

fn shl_sat(v: i128, amount: u32) -> i128 {
    v.checked_shl(amount).filter(|r| (r >> amount) == v).unwrap_or(if v < 0 {
        i128::MIN
    } else if v == 0 {
        0
    } else {
        i128::MAX
    })
}

/// `2^k - 1` for the smallest `k` with `2^k > v` (used by `bitor`).
fn pow2_ceil_mask(v: i128) -> i128 {
    if v <= 0 {
        return 0;
    }
    let bits = 128 - v.leading_zeros();
    if bits >= 127 {
        i128::MAX
    } else {
        (1i128 << bits) - 1
    }
}

/// The value range of a primitive integer type name, or `None` for an
/// unknown type. `usize`/`isize` are modelled as 64-bit (the only
/// targets the simulator builds for); `u128`'s upper bound truncates
/// to `i128::MAX`, which can only *widen* a containment check.
pub fn type_range(name: &str) -> Option<Interval> {
    let r = match name {
        "i8" => Interval::new(i8::MIN as i128, i8::MAX as i128),
        "i16" => Interval::new(i16::MIN as i128, i16::MAX as i128),
        "i32" => Interval::new(i32::MIN as i128, i32::MAX as i128),
        "i64" | "isize" => Interval::new(i64::MIN as i128, i64::MAX as i128),
        "i128" => Interval::TOP,
        "u8" => Interval::new(0, u8::MAX as i128),
        "u16" => Interval::new(0, u16::MAX as i128),
        "u32" => Interval::new(0, u32::MAX as i128),
        "u64" | "usize" => Interval::new(0, u64::MAX as i128),
        "u128" => Interval::new(0, i128::MAX),
        _ => return None,
    };
    Some(r)
}

/// Bit width of a primitive integer type (64 for `usize`/`isize`).
pub fn type_bits(name: &str) -> Option<u32> {
    Some(match name {
        "i8" | "u8" => 8,
        "i16" | "u16" => 16,
        "i32" | "u32" => 32,
        "i64" | "u64" | "usize" | "isize" => 64,
        "i128" | "u128" => 128,
        _ => return None,
    })
}

/// Whether `name` is a primitive integer type.
pub fn is_int_type(name: &str) -> bool {
    type_bits(name).is_some()
}

/// Whether `name` is a primitive float type.
pub fn is_float_type(name: &str) -> bool {
    matches!(name, "f32" | "f64")
}
