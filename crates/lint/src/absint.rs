//! Interval abstract interpretation: the A2/A3/A4 rule families.
//!
//! A forward dataflow analysis over the parser's block structure with
//! the [`crate::intervals`] lattice: constants propagate from
//! workspace `const` items, parameters start at their declared type's
//! range, `clamp`/`min`/`max`/`debug_assert!` refine intervals, and
//! loops widen (bounded `for` loops additionally prove accumulator
//! bounds by scaling the per-iteration contribution with the trip
//! count). Function calls use interprocedural summaries computed over
//! the existing call graph: each function's return interval is
//! evaluated once, lazily, with parameters at their type ranges —
//! since every transfer function is monotone, that summary soundly
//! over-approximates the return value for any narrower call-site
//! arguments.
//!
//! Three rule families run on top of the analysis, each scoped to the
//! modules where its hazard corrupts reported numbers:
//!
//! * **A2 overflow-bounds** — in the accounting and quantized
//!   arithmetic modules, every `+` (below 64 bits), `*`, and `<<`
//!   must have a provable result interval inside its operand type,
//!   and every narrowing `as` cast a provable source interval inside
//!   the destination type. `checked_*`/`saturating_*`/`wrapping_*`
//!   are sanctioned by construction; 64-bit `+` is exempt because the
//!   cycle/energy totals carry deliberate headroom there.
//! * **A3 unit-consistency** — values flowing from unit-named sources
//!   (`*_cycles`, `*_pj`/energy, `*_bytes`, `*_points`; seeded from
//!   parameter, field, and const names) carry a unit tag; cross-unit
//!   `+`/`-`/comparisons and unit-erasing divisions (different units
//!   on both sides) require a `// lint: allow(a3): why`.
//! * **A4 quantization-width audit** — in the INT8/FIEM files, every
//!   float→int cast needs a provable (clamp- or assert-derived)
//!   interval inside the destination, `as i8` additionally inside the
//!   symmetric `[-127, 127]` code range, and the width constants are
//!   re-derived: a `*MAC_WIDTH*` const must satisfy
//!   `width * 127 * 128 <= i32::MAX` (the paper's "i8×i8→i32 exact"
//!   claim) and a `*MAX_INT*` const must stay within `2^24` (exact
//!   f32 significand product).
//!
//! The analysis is deliberately fail-open: an expression it cannot
//! evaluate becomes ⊤/untyped, and checks fire only where the operand
//! type is known. Unknown constructs therefore cost precision (which
//! a `debug_assert!` precondition wins back), never false positives.

use std::collections::BTreeMap;

use crate::graph::{fn_item, CallGraph};
use crate::intervals::{is_float_type, is_int_type, type_bits, type_range, Interval};
use crate::lexer::{Token, TokenKind};
use crate::parse::FnItem;
use crate::rules::{test_mask, AllowUsage, Finding, ACCOUNTING_FILES};
use crate::SourceFile;

/// Files under the A2 overflow-bounds contract: quantized arithmetic
/// plus every cycle/energy/byte accounting module. The float-heavy
/// balance/moe/system models in `multichip` are out of scope — their
/// results are `f64` end to end.
const A2_FILES: &[&str] = &[
    "crates/arith/src/cost.rs",
    "crates/arith/src/fiem.rs",
    "crates/core/src/bandwidth.rs",
    "crates/core/src/energy.rs",
    "crates/core/src/pipeline_sim.rs",
    "crates/mem/src/banks.rs",
    "crates/mem/src/energy.rs",
    "crates/mem/src/interconnect.rs",
    "crates/mem/src/sram.rs",
    "crates/multichip/src/chiplet.rs",
    "crates/multichip/src/comm.rs",
    "crates/nerf/src/mlp_int8.rs",
];

/// Files under the A4 quantization-width audit: the INT8 MLP and the
/// fixed-point exact-integer multiply path.
const A4_FILES: &[&str] = &["crates/arith/src/fiem.rs", "crates/nerf/src/mlp_int8.rs"];

/// `+` is checked only below this operand width: 64-bit totals carry
/// deliberate headroom (a u64 cycle counter cannot overflow in any
/// simulated workload), and demanding proofs there would bury the
/// real hazards in allows.
const PLUS_CHECK_BELOW_BITS: u32 = 64;

/// Which rule families apply to the current file.
#[derive(Debug, Clone, Copy, Default)]
struct Scope {
    a2: bool,
    a3: bool,
    a4: bool,
    /// File is also in A1 scope: `as` casts there are A1's business,
    /// so A2 skips cast checks to avoid double findings.
    a1: bool,
}

impl Scope {
    fn of(path: &str) -> Scope {
        Scope {
            a2: A2_FILES.contains(&path),
            a3: ACCOUNTING_FILES.contains(&path),
            a4: A4_FILES.contains(&path),
            a1: ACCOUNTING_FILES.contains(&path),
        }
    }

    fn any(self) -> bool {
        self.a2 || self.a3 || self.a4
    }
}

/// One abstract value: an interval plus the metadata the checks need.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsVal {
    iv: Interval,
    /// Primitive type name when known (`i32`), or a struct name for
    /// field lookups (`LayerInt8`).
    ty: Option<String>,
    /// Unsuffixed literal: adopts the partner operand's type.
    weak: bool,
    /// Floating-point value; `iv` is an outward-rounded integer hull.
    float: bool,
    /// Unit tag for A3 (`cycles`, `pJ`, `bytes`, `points`).
    unit: Option<String>,
    /// Element type when this is a container (`Vec<i8>` → `i8`).
    elem: Option<String>,
}

impl AbsVal {
    fn unknown() -> AbsVal {
        AbsVal { iv: Interval::TOP, ty: None, weak: false, float: false, unit: None, elem: None }
    }

    fn of_int(iv: Interval, ty: Option<String>, weak: bool) -> AbsVal {
        AbsVal { iv, ty, weak, float: false, unit: None, elem: None }
    }

    fn typed_range(ty: &str) -> AbsVal {
        let iv = type_range(ty).unwrap_or(Interval::TOP);
        AbsVal {
            iv,
            ty: Some(ty.to_string()),
            weak: false,
            float: is_float_type(ty),
            unit: None,
            elem: None,
        }
    }

    fn with_unit(mut self, unit: Option<String>) -> AbsVal {
        self.unit = unit;
        self
    }

    fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.join(other.iv),
            ty: if self.ty == other.ty { self.ty.clone() } else { None },
            weak: self.weak && other.weak,
            float: self.float || other.float,
            unit: if self.unit == other.unit { self.unit.clone() } else { None },
            elem: if self.elem == other.elem { self.elem.clone() } else { None },
        }
    }

    /// The value with its interval havocked to the type range (or ⊤),
    /// keeping type/unit metadata — used for loop-mutated variables.
    fn havocked(&self) -> AbsVal {
        let iv = match self.ty.as_deref().and_then(type_range) {
            Some(r) if !self.float => r,
            _ => Interval::TOP,
        };
        AbsVal { iv, ..self.clone() }
    }
}

/// Maps canonical place strings (`"acc"`, `"self.0"`, `"xs.len()"`)
/// to abstract values.
type Env = BTreeMap<String, AbsVal>;

/// Per-loop context: trip-count interval plus the accumulators
/// (single-site compound-assigned places) with their pre-loop values.
struct LoopCtx {
    trip: Interval,
    accs: BTreeMap<String, AbsVal>,
}

/// Per-function analysis state.
struct Cx<'a> {
    file: usize,
    toks: &'a [Token],
    env: Env,
    loops: Vec<LoopCtx>,
    quiet: bool,
    scope: Scope,
    self_ty: Option<String>,
    ret: Option<AbsVal>,
}

enum Summary {
    NotStarted,
    InProgress,
    Done(AbsVal),
}

struct Analyzer<'a> {
    files: &'a [SourceFile],
    graph: &'a CallGraph,
    usage: &'a mut [AllowUsage],
    consts: BTreeMap<String, AbsVal>,
    /// `(struct name, field name)` → `(first, last)` type segment.
    fields: BTreeMap<(String, String), (String, String)>,
    /// Field name → unique type segments, when the field name is
    /// globally unambiguous (fallback for untyped receivers).
    field_fallback: BTreeMap<String, Option<(String, String)>>,
    prim_aliases: BTreeMap<String, String>,
    fn_by_name: BTreeMap<String, Vec<usize>>,
    summaries: Vec<Summary>,
    masks: Vec<Vec<bool>>,
    findings: Vec<Finding>,
}

/// Runs A2/A3/A4 over the workspace, recording fired suppressions
/// into `usage` (for U1).
pub(crate) fn check(
    files: &[SourceFile],
    graph: &CallGraph,
    usage: &mut [AllowUsage],
) -> Vec<Finding> {
    let mut a = Analyzer::new(files, graph, usage);
    a.build_consts();
    a.audit_consts();
    for node in 0..graph.nodes.len() {
        let path = files[graph.nodes[node].file].path.as_str();
        let scope = Scope::of(path);
        if scope.any() {
            a.analyze_fn(node, scope, false);
        }
    }
    let mut findings = a.findings;
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    findings
}

/// The A3 unit of an identifier, from the annotation table the rule
/// catalogue documents: suffix-matched so `total_cycles`,
/// `energy_pj`, and `payload_bytes` all tag.
fn unit_of_name(name: &str) -> Option<String> {
    let n = name.to_ascii_lowercase();
    let n = n.rsplit('.').next().unwrap_or(&n);
    let unit = if n.ends_with("cycles") || n == "cycle" {
        "cycles"
    } else if n.ends_with("_pj") || n == "pj" || n.contains("energy") {
        "pJ"
    } else if n.ends_with("bytes") {
        "bytes"
    } else if n.ends_with("points") {
        "points"
    } else {
        return None;
    };
    Some(unit.to_string())
}

fn match_close(toks: &[Token], open: usize, open_text: &str, close_text: &str) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = toks[i].text.as_str();
        if t == open_text {
            depth += 1;
        } else if t == close_text {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

fn match_open(toks: &[Token], close: usize, open_text: &str, close_text: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = close as isize;
    while i >= 0 {
        let t = toks[i as usize].text.as_str();
        if t == close_text {
            depth += 1;
        } else if t == open_text {
            depth -= 1;
            if depth == 0 {
                return Some(i as usize);
            }
        }
        i -= 1;
    }
    None
}

fn is_open(t: &str) -> bool {
    matches!(t, "(" | "[" | "{")
}

fn is_close(t: &str) -> bool {
    matches!(t, ")" | "]" | "}")
}

/// Splits `[lo, hi)` on depth-0 occurrences of single-token `sep`.
fn split_depth0(toks: &[Token], lo: usize, hi: usize, sep: &str) -> Vec<(usize, usize)> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = lo;
    let mut i = lo;
    while i < hi {
        let t = toks[i].text.as_str();
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            depth -= 1;
        } else if depth == 0 && t == sep {
            parts.push((start, i));
            start = i + 1;
        }
        i += 1;
    }
    parts.push((start, hi));
    parts
}

/// First depth-0 position of single-token `what` in `[lo, hi)`.
fn find_depth0(toks: &[Token], lo: usize, hi: usize, what: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().take(hi).skip(lo) {
        let t = t.text.as_str();
        // Match before the depth bookkeeping so that searching for an
        // opener (`{` — every control-flow body lookup) or a closer
        // still succeeds at depth 0.
        if depth == 0 && t == what {
            return Some(i);
        }
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            depth -= 1;
        }
    }
    None
}

/// Joined token texts of `[lo, hi)` — the canonical place string.
fn span_text(toks: &[Token], lo: usize, hi: usize) -> String {
    let mut s = String::new();
    for t in toks.iter().take(hi).skip(lo) {
        s.push_str(&t.text);
    }
    s
}

/// Whether `[lo, hi)` is a pure place expression: an identifier chain
/// of fields/tuple indexes, optionally ending in `.len()`.
fn is_place_span(toks: &[Token], lo: usize, hi: usize) -> bool {
    if lo >= hi || toks[lo].kind != TokenKind::Ident {
        return false;
    }
    let mut i = lo + 1;
    while i < hi {
        if toks[i].text == "." && i + 1 < hi {
            match toks[i + 1].kind {
                TokenKind::Ident | TokenKind::Int => i += 2,
                _ => return false,
            }
        } else if toks[i].text == "(" && i + 1 < hi && toks[i + 1].text == ")" {
            i += 2;
        } else {
            return false;
        }
    }
    true
}

/// Parses an integer literal: `(value, suffix type)`.
fn parse_int_lit(text: &str) -> Option<(i128, Option<String>)> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(rest) = clean.strip_prefix("0x").or(clean.strip_prefix("0X"))
    {
        (rest, 16)
    } else if let Some(rest) = clean.strip_prefix("0o") {
        (rest, 8)
    } else if let Some(rest) = clean.strip_prefix("0b") {
        (rest, 2)
    } else {
        (clean.as_str(), 10)
    };
    let split = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(digits.len());
    let (num, suffix) = digits.split_at(split);
    if num.is_empty() {
        return None;
    }
    // u128-sized literals saturate to the rail (sound: widens).
    let value = i128::from_str_radix(num, radix).unwrap_or(i128::MAX);
    let ty = if suffix.is_empty() { None } else { Some(suffix.to_string()) };
    Some((value, ty))
}

/// Parses a float literal into an outward-rounded integer hull.
fn parse_float_lit(text: &str) -> Option<(i128, i128)> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let body = clean.trim_end_matches("f32").trim_end_matches("f64");
    let v: f64 = body.parse().ok()?;
    if !v.is_finite() {
        return None;
    }
    let sat = |x: f64| -> i128 {
        if x >= i128::MAX as f64 {
            i128::MAX
        } else if x <= i128::MIN as f64 {
            i128::MIN
        } else {
            x as i128
        }
    };
    Some((sat(v.floor()), sat(v.ceil())))
}

/// Outward padding for float results: one generous f32 ulp at the
/// bound's magnitude, so rounding in the concrete computation can
/// never escape the abstract hull.
fn float_pad(iv: Interval) -> Interval {
    match iv.bounds() {
        Some((lo, hi)) if iv != Interval::TOP => {
            let pad = |b: i128| (b.abs() >> 20).saturating_add(1);
            Interval::new(lo.saturating_sub(pad(lo)), hi.saturating_add(pad(hi)))
        }
        _ => iv,
    }
}

/// `x ⊔ {0}` — accumulator contributions are scaled from zero trips.
fn hull0(iv: Interval) -> Interval {
    iv.join(Interval::singleton(0))
}

impl<'a> Analyzer<'a> {
    fn new(files: &'a [SourceFile], graph: &'a CallGraph, usage: &'a mut [AllowUsage]) -> Self {
        let mut fields = BTreeMap::new();
        let mut field_fallback: BTreeMap<String, Option<(String, String)>> = BTreeMap::new();
        let mut prim_aliases = BTreeMap::new();
        for file in files {
            for f in &file.parsed.struct_fields {
                let ty = (f.ty_base.clone(), f.ty_last.clone());
                field_fallback
                    .entry(f.field.clone())
                    .and_modify(|e| {
                        if e.as_ref() != Some(&ty) {
                            *e = None;
                        }
                    })
                    .or_insert(Some(ty.clone()));
                fields.insert((f.struct_name.clone(), f.field.clone()), ty);
            }
            for (name, prim) in &file.parsed.prim_aliases {
                prim_aliases.insert(name.clone(), prim.clone());
            }
        }
        let mut fn_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, node) in graph.nodes.iter().enumerate() {
            fn_by_name.entry(fn_item(files, node).name.clone()).or_default().push(idx);
        }
        let masks = files.iter().map(|f| test_mask(&f.lexed.tokens)).collect();
        let summaries = graph.nodes.iter().map(|_| Summary::NotStarted).collect();
        Analyzer {
            files,
            graph,
            usage,
            consts: BTreeMap::new(),
            fields,
            field_fallback,
            prim_aliases,
            fn_by_name,
            summaries,
            masks,
            findings: Vec::new(),
        }
    }

    fn report(&mut self, cx: &Cx<'a>, rules: &[&'static str], line: u32, message: String) {
        if cx.quiet {
            return;
        }
        let lexed = &self.files[cx.file].lexed;
        for rule in rules {
            if let Some(directive_line) = lexed.allow_line(rule, line) {
                self.usage[cx.file].insert((directive_line, rule.to_ascii_lowercase()));
                return;
            }
        }
        // Suppression keys are lowercase (`a2`), published rule IDs
        // uppercase, matching the D/P/H families.
        let rule = match rules[0] {
            "a2" => "A2",
            "a3" => "A3",
            "a4" => "A4",
            other => other,
        };
        self.findings.push(Finding {
            rule,
            path: self.files[cx.file].path.clone(),
            line,
            message,
            id: String::new(),
        });
    }

    fn resolve_ty(&self, name: &str) -> String {
        self.prim_aliases.get(name).cloned().unwrap_or_else(|| name.to_string())
    }

    // ------------------------------------------------------- consts

    /// Two quiet passes so cross-referencing consts resolve; same-name
    /// collisions across files join (conservative).
    fn build_consts(&mut self) {
        for _ in 0..2 {
            let mut pass: BTreeMap<String, AbsVal> = BTreeMap::new();
            for file_idx in 0..self.files.len() {
                let parsed = &self.files[file_idx].parsed;
                for c in parsed.consts.clone() {
                    if self.masks[file_idx].get(c.init.0).copied().unwrap_or(false) {
                        continue;
                    }
                    let mut cx = self.fresh_cx(file_idx, Scope::default(), true, None);
                    let mut p = c.init.0;
                    let mut val = self.eval(&mut cx, &mut p, c.init.1, 0, false);
                    if let Some(ty) = c.ty.as_deref() {
                        let ty = self.resolve_ty(ty);
                        if is_int_type(&ty) {
                            val.iv = val.iv.meet(type_range(&ty).unwrap_or(Interval::TOP));
                            val.ty = Some(ty);
                            val.weak = false;
                        } else if is_float_type(&ty) {
                            val.float = true;
                            val.ty = Some(ty);
                        }
                    }
                    val.unit = unit_of_name(&c.name);
                    pass.entry(c.name.clone()).and_modify(|e| *e = e.join(&val)).or_insert(val);
                }
            }
            self.consts = pass;
        }
    }

    /// A4: statically re-derive the paper's width claims from the
    /// named constants themselves, so drift fails in CI.
    fn audit_consts(&mut self) {
        for file_idx in 0..self.files.len() {
            let path = self.files[file_idx].path.clone();
            if !A4_FILES.contains(&path.as_str()) {
                continue;
            }
            let scope = Scope::of(&path);
            for c in self.files[file_idx].parsed.consts.clone() {
                if self.masks[file_idx].get(c.init.0).copied().unwrap_or(false) {
                    continue;
                }
                let Some(val) = self.consts.get(&c.name).cloned() else { continue };
                let Some((_, hi)) = val.iv.bounds() else { continue };
                let cx = self.fresh_cx(file_idx, scope, false, None);
                if c.name.contains("MAC_WIDTH") {
                    let worst = hi.saturating_mul(127).saturating_mul(128);
                    if worst > i32::MAX as i128 {
                        self.report(
                            &cx,
                            &["a4"],
                            c.line,
                            format!(
                                "`{}` = {hi} breaks the i8*i8->i32 exactness claim: \
                                 {hi} * 127 * 128 = {worst} exceeds i32::MAX; the \
                                 INT8 MAC accumulator would need i64",
                                c.name
                            ),
                        );
                    }
                }
                if c.name.contains("MAX_INT") && hi > 1 << 24 {
                    self.report(
                        &cx,
                        &["a4"],
                        c.line,
                        format!(
                            "`{}` = {hi} exceeds 2^24: an f32 significand times \
                             an int this large no longer multiplies exactly, \
                             breaking the FIEM exactness claim",
                            c.name
                        ),
                    );
                }
            }
        }
    }

    // ---------------------------------------------------- summaries

    fn summary_of(&mut self, node: usize) -> AbsVal {
        match self.summaries[node] {
            Summary::Done(ref v) => return v.clone(),
            Summary::InProgress => return AbsVal::unknown(), // recursion: ⊤
            Summary::NotStarted => {}
        }
        self.summaries[node] = Summary::InProgress;
        let val = self.analyze_fn(node, Scope::default(), true);
        self.summaries[node] = Summary::Done(val.clone());
        val
    }

    /// Analyzes one function body; returns the join of its `return`
    /// values and trailing expression, met with the declared return
    /// type's range. Quiet mode computes summaries without findings.
    fn analyze_fn(&mut self, node: usize, scope: Scope, quiet: bool) -> AbsVal {
        let n = &self.graph.nodes[node];
        let file_idx = n.file;
        let item: &FnItem = &self.files[file_idx].parsed.fns[n.fn_index];
        let Some((open, close)) = item.body else { return AbsVal::unknown() };
        let self_ty = item.self_type.clone();
        let ret_ty = item.ret_type.clone();
        let params = item.params.clone();
        let alias_typed: BTreeMap<String, String> = item.alias_typed.iter().cloned().collect();

        let mut cx = self.fresh_cx(file_idx, scope, quiet, self_ty.clone());
        for p in &params {
            let mut val = match alias_typed.get(p) {
                Some(ty) => {
                    let ty = self.resolve_ty(ty);
                    if is_int_type(&ty) || is_float_type(&ty) {
                        AbsVal::typed_range(&ty)
                    } else {
                        AbsVal { ty: Some(ty), ..AbsVal::unknown() }
                    }
                }
                None => AbsVal::unknown(),
            };
            val.unit = unit_of_name(p);
            cx.env.insert(p.clone(), val);
        }
        if let Some(st) = &self_ty {
            cx.env.insert("self".to_string(), AbsVal { ty: Some(st.clone()), ..AbsVal::unknown() });
        }

        let trailing = self.analyze_block(&mut cx, open, close);
        let mut out = match cx.ret.take() {
            Some(r) => r.join(&trailing),
            None => trailing,
        };
        if let Some(ty) = ret_ty.as_deref().map(|t| self.resolve_ty(t)) {
            if is_int_type(&ty) {
                out.iv = out.iv.meet(type_range(&ty).unwrap_or(Interval::TOP));
                out.ty = Some(ty);
                out.weak = false;
            } else if is_float_type(&ty) {
                out.float = true;
            }
        }
        out
    }

    fn fresh_cx(&self, file: usize, scope: Scope, quiet: bool, self_ty: Option<String>) -> Cx<'a> {
        Cx {
            file,
            toks: &self.files[file].lexed.tokens,
            env: Env::new(),
            loops: Vec::new(),
            quiet,
            scope,
            self_ty,
            ret: None,
        }
    }
}

// ------------------------------------------------------- statements

impl<'a> Analyzer<'a> {
    /// Walks the statements of a block `{ … }` (`open`/`close` are
    /// the brace token indexes); returns the trailing expression's
    /// value, or ⊤ when the block ends with a statement.
    fn analyze_block(&mut self, cx: &mut Cx<'a>, open: usize, close: usize) -> AbsVal {
        let mut last = AbsVal::unknown();
        let mut trailing = false;
        let mut i = open + 1;
        while i < close {
            let t = cx.toks[i].text.as_str();
            match t {
                ";" => {
                    i += 1;
                    trailing = false;
                }
                "let" => {
                    i = self.stmt_let(cx, i, close);
                    trailing = false;
                }
                "if" => {
                    let (v, ni) = self.if_expr(cx, i, close);
                    last = v;
                    trailing = true;
                    i = ni;
                }
                "match" => {
                    let (v, ni) = self.match_expr(cx, i, close);
                    last = v;
                    trailing = true;
                    i = ni;
                }
                "while" => {
                    i = self.while_loop(cx, i, close);
                    trailing = false;
                }
                "for" => {
                    i = self.for_loop(cx, i, close);
                    trailing = false;
                }
                "loop" => {
                    i = self.loop_loop(cx, i, close);
                    trailing = false;
                }
                "return" => {
                    let end = find_depth0(cx.toks, i + 1, close, ";").unwrap_or(close);
                    if end > i + 1 {
                        let mut p = i + 1;
                        let v = self.eval(cx, &mut p, end, 0, false);
                        self.join_ret(cx, v);
                    }
                    i = end;
                    trailing = false;
                }
                "break" | "continue" => {
                    i = find_depth0(cx.toks, i + 1, close, ";").map(|s| s + 1).unwrap_or(close);
                    trailing = false;
                }
                "unsafe" => i += 1,
                "{" => {
                    let c = match_close(cx.toks, i, "{", "}");
                    last = self.analyze_block(cx, i, c);
                    trailing = true;
                    i = c + 1;
                }
                "#" => {
                    // Attribute: skip `#[…]`.
                    if i + 1 < close && cx.toks[i + 1].text == "[" {
                        i = match_close(cx.toks, i + 1, "[", "]") + 1;
                    } else {
                        i += 1;
                    }
                }
                "fn" | "struct" | "enum" | "impl" | "mod" | "trait" => {
                    // Nested item: its fns are separate graph nodes.
                    let body = find_depth0(cx.toks, i, close, "{");
                    let semi = find_depth0(cx.toks, i, close, ";");
                    i = match (body, semi) {
                        (Some(b), Some(s)) if s < b => s + 1,
                        (Some(b), _) => match_close(cx.toks, b, "{", "}") + 1,
                        (None, Some(s)) => s + 1,
                        (None, None) => close,
                    };
                    trailing = false;
                }
                "const" | "static" | "use" | "type" => {
                    i = find_depth0(cx.toks, i, close, ";").map(|s| s + 1).unwrap_or(close);
                    trailing = false;
                }
                _ => {
                    if let Some(ni) = self.try_assign(cx, i, close) {
                        i = ni;
                        trailing = false;
                    } else if let Some(ni) = self.try_assert(cx, i, close) {
                        i = ni;
                        trailing = false;
                    } else {
                        let mut p = i;
                        last = self.eval(cx, &mut p, close, 0, false);
                        trailing = true;
                        i = p.max(i + 1);
                    }
                }
            }
        }
        if trailing {
            last
        } else {
            AbsVal::unknown()
        }
    }

    fn join_ret(&mut self, cx: &mut Cx<'a>, v: AbsVal) {
        cx.ret = Some(match cx.ret.take() {
            Some(r) => r.join(&v),
            None => v,
        });
    }

    /// `let [mut] pat [: Ty] = expr;` — binds a single identifier
    /// pattern precisely, destructuring patterns as ⊤.
    fn stmt_let(&mut self, cx: &mut Cx<'a>, i: usize, close: usize) -> usize {
        let stmt_end = find_depth0(cx.toks, i + 1, close, ";").unwrap_or(close);
        let Some(eq) = self.find_plain_eq(cx, i + 1, stmt_end) else {
            self.bind_pattern_unknown(cx, i + 1, stmt_end);
            return stmt_end + 1;
        };
        // Pattern and optional type annotation before `=`.
        let colon = find_depth0(cx.toks, i + 1, eq, ":");
        let pat_end = colon.unwrap_or(eq);
        let decl_ty: Option<String> = colon.map(|c| {
            let mut last = String::new();
            for t in &cx.toks[c + 1..eq] {
                if t.kind == TokenKind::Ident
                    && !matches!(t.text.as_str(), "mut" | "dyn" | "impl" | "const")
                {
                    last = t.text.clone();
                }
            }
            last
        });
        let mut p = eq + 1;
        let rhs = self.eval(cx, &mut p, stmt_end, 0, false);
        // `let … else { … }` diverges on the else path; the binding
        // below covers the fallthrough.
        let mut end = stmt_end;
        if p < stmt_end && cx.toks[p].text == "else" && p + 1 < close && cx.toks[p + 1].text == "{"
        {
            let c = match_close(cx.toks, p + 1, "{", "}");
            self.analyze_block(cx, p + 1, c);
            end = find_depth0(cx.toks, c + 1, close, ";").unwrap_or(close);
        }

        let pat: Vec<&Token> = cx.toks[i + 1..pat_end]
            .iter()
            .filter(|t| !matches!(t.text.as_str(), "mut" | "ref"))
            .collect();
        if pat.len() == 1 && pat[0].kind == TokenKind::Ident {
            let name = pat[0].text.clone();
            let mut val = rhs;
            if let Some(ty) = decl_ty.as_deref().filter(|t| !t.is_empty()) {
                let ty = self.resolve_ty(ty);
                if is_int_type(&ty) {
                    let range = type_range(&ty).unwrap_or(Interval::TOP);
                    val.iv = val.iv.meet(range);
                    val.ty = Some(ty);
                    val.weak = false;
                    val.float = false;
                } else if is_float_type(&ty) {
                    val.float = true;
                    val.ty = Some(ty);
                } else {
                    val.ty = Some(ty);
                }
            }
            let name_unit = unit_of_name(&name);
            if cx.scope.a3 {
                if let (Some(nu), Some(vu)) = (name_unit.as_deref(), val.unit.as_deref()) {
                    if nu != vu {
                        let line = cx.toks[i].line;
                        self.report(
                            cx,
                            &["a3"],
                            line,
                            format!(
                                "binding named in {nu} initialised from a {vu} value; \
                                 relabeling units needs `// lint: allow(a3): why`"
                            ),
                        );
                    }
                }
            }
            if val.unit.is_none() {
                val.unit = name_unit;
            }
            cx.env.insert(name, val);
        } else {
            self.bind_pattern_unknown(cx, i + 1, pat_end);
        }
        end + 1
    }

    /// Binds every lowercase identifier in a pattern span to ⊤.
    fn bind_pattern_unknown(&mut self, cx: &mut Cx<'a>, lo: usize, hi: usize) {
        for t in &cx.toks[lo..hi.min(cx.toks.len())] {
            if t.kind == TokenKind::Ident
                && t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                && !matches!(t.text.as_str(), "mut" | "ref" | "box" | "self")
            {
                cx.env.insert(t.text.clone(), AbsVal::unknown().with_unit(unit_of_name(&t.text)));
            }
        }
    }

    /// Depth-0 `=` that is a plain assignment/binding operator (not
    /// `==`, `=>`, `<=`, `>=`, `!=`, or a compound tail). Operator
    /// fusion is decided by column adjacency: `Vec<i8> =` puts a `>`
    /// token before the `=`, but with a column gap it closes a generic
    /// argument list rather than forming `>=`.
    fn find_plain_eq(&self, cx: &Cx<'a>, lo: usize, hi: usize) -> Option<usize> {
        let adjacent = |a: usize, b: usize| {
            cx.toks[a].line == cx.toks[b].line && cx.toks[a].col + 1 == cx.toks[b].col
        };
        let mut depth = 0i32;
        for i in lo..hi {
            let t = cx.toks[i].text.as_str();
            if is_open(t) {
                depth += 1;
            } else if is_close(t) {
                depth -= 1;
            } else if depth == 0 && t == "=" {
                let prev = if i > lo { cx.toks[i - 1].text.as_str() } else { "" };
                let next = if i + 1 < hi { cx.toks[i + 1].text.as_str() } else { "" };
                if (next == "=" || next == ">") && adjacent(i, i + 1) {
                    continue;
                }
                if matches!(
                    prev,
                    "=" | "<" | ">" | "!" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                ) && adjacent(i - 1, i)
                {
                    continue;
                }
                return Some(i);
            }
        }
        None
    }

    /// `assert!`/`debug_assert!` statements refine the environment;
    /// `assert_eq!` family refines both sides toward each other.
    /// Returns the index after the statement when matched.
    fn try_assert(&mut self, cx: &mut Cx<'a>, i: usize, close: usize) -> Option<usize> {
        let name = cx.toks.get(i).filter(|t| t.kind == TokenKind::Ident)?.text.as_str();
        let eq_form = matches!(name, "assert_eq" | "debug_assert_eq");
        if !matches!(name, "assert" | "debug_assert") && !eq_form {
            return None;
        }
        if cx.toks.get(i + 1).map(|t| t.text.as_str()) != Some("!")
            || cx.toks.get(i + 2).map(|t| t.text.as_str()) != Some("(")
        {
            return None;
        }
        let c = match_close(cx.toks, i + 2, "(", ")");
        let args = split_depth0(cx.toks, i + 3, c, ",");
        if eq_form {
            if args.len() >= 2 {
                self.refine_equal(cx, args[0], args[1]);
            }
        } else if let Some(&(lo, hi)) = args.first() {
            // Evaluate loud (arithmetic inside the condition is code
            // too), then refine.
            let mut p = lo;
            self.eval(cx, &mut p, hi, 0, true);
            self.refine_cond(cx, lo, hi);
        }
        let end = find_depth0(cx.toks, c + 1, close, ";").map(|s| s + 1).unwrap_or(c + 1);
        Some(end)
    }

    /// Detects `place op= expr;` / `place = expr;` statements.
    /// Returns the index after the statement when matched.
    fn try_assign(&mut self, cx: &mut Cx<'a>, i: usize, close: usize) -> Option<usize> {
        let mut j = i;
        let mut derefs = 0usize;
        while j < close && cx.toks[j].text == "*" {
            derefs += 1;
            j += 1;
        }
        let place_start = j;
        if j >= close || cx.toks[j].kind != TokenKind::Ident {
            return None;
        }
        j += 1;
        loop {
            if j + 1 < close
                && cx.toks[j].text == "."
                && matches!(cx.toks[j + 1].kind, TokenKind::Ident | TokenKind::Int)
            {
                if j + 2 < close && cx.toks[j + 2].text == "(" {
                    return None; // method call target: expression, not place
                }
                j += 2;
            } else if j < close && cx.toks[j].text == "[" {
                j = match_close(cx.toks, j, "[", "]") + 1;
            } else {
                break;
            }
        }
        if j >= close {
            return None;
        }
        let (op, op_len) = {
            let t = cx.toks[j].text.as_str();
            let t1 = cx.toks.get(j + 1).map(|x| x.text.as_str()).unwrap_or("");
            let t2 = cx.toks.get(j + 2).map(|x| x.text.as_str()).unwrap_or("");
            match (t, t1, t2) {
                ("=", "=", _) => return None,
                ("=", ">", _) => return None,
                ("=", _, _) => ("=", 1),
                ("<", "<", "=") => ("<<", 3),
                (">", ">", "=") => (">>", 3),
                ("+", "=", _) => ("+", 2),
                ("-", "=", _) => ("-", 2),
                ("*", "=", _) => ("*", 2),
                ("/", "=", _) => ("/", 2),
                ("%", "=", _) => ("%", 2),
                ("&", "=", _) => ("&", 2),
                ("|", "=", _) => ("|", 2),
                ("^", "=", _) => ("^", 2),
                _ => return None,
            }
        };
        let place = span_text(cx.toks, place_start, j);
        let line = cx.toks[j].line;
        let stmt_end = find_depth0(cx.toks, j + op_len, close, ";").unwrap_or(close);
        let mut p = j + op_len;
        let rhs = self.eval(cx, &mut p, stmt_end, 0, false);
        let _ = derefs;
        self.do_assign(cx, &place, op, line, rhs);
        Some(stmt_end + 1)
    }

    fn do_assign(&mut self, cx: &mut Cx<'a>, place: &str, op: &str, line: u32, rhs: AbsVal) {
        let old = cx.env.get(place).cloned();
        let new = if op == "=" {
            let mut v = rhs;
            if let Some(o) = &old {
                if v.weak {
                    if let Some(ty) = o.ty.clone() {
                        if is_int_type(&ty) {
                            v.iv = v.iv.meet(type_range(&ty).unwrap_or(Interval::TOP));
                        }
                        v.ty = Some(ty);
                        v.weak = false;
                    }
                }
                if v.unit.is_none() {
                    v.unit = o.unit.clone();
                }
            }
            v
        } else if matches!(op, "+" | "-") {
            if let Some((base, scale)) = self.acc_context(cx, place) {
                // Bounded-trip accumulation: final = pre + trips · contrib.
                let contrib = if op == "+" { rhs.iv } else { rhs.iv.neg() };
                let raw = base.iv.add(hull0(contrib).mul(scale));
                let mut v = base.clone();
                self.check_units(cx, "accumulation", line, &base, &rhs);
                v.iv = self.checked_int_result(cx, op, line, raw, &base, &rhs, true);
                v
            } else {
                let l = old.clone().unwrap_or_else(AbsVal::unknown);
                self.apply_bin(cx, op, line, l, rhs)
            }
        } else {
            let l = old.clone().unwrap_or_else(AbsVal::unknown);
            self.apply_bin(cx, op, line, l, rhs)
        };
        cx.env.insert(place.to_string(), new);
    }

    /// When `place` is a registered accumulator of the enclosing loop
    /// nest, the pre-loop value of the outermost registering level and
    /// the product of the trip-count hulls from there inward.
    fn acc_context(&self, cx: &Cx<'a>, place: &str) -> Option<(AbsVal, Interval)> {
        let mut scale: Option<Interval> = None;
        let mut base: Option<AbsVal> = None;
        for lvl in cx.loops.iter().rev() {
            let Some(pre) = lvl.accs.get(place) else { break };
            let hi = lvl.trip.bounds().map(|(_, h)| h.max(0)).unwrap_or(i128::MAX);
            let t = Interval::new(0, hi);
            scale = Some(match scale {
                None => t,
                Some(s) => s.mul(t),
            });
            base = Some(pre.clone());
        }
        base.map(|b| (b, scale.unwrap_or(Interval::singleton(0))))
    }
}

// ----------------------------------------------- control flow, loops

impl<'a> Analyzer<'a> {
    /// `if cond { … } [else if … | else { … }]` as an expression:
    /// condition atoms refine the then-branch; branch environments
    /// join afterwards.
    fn if_expr(&mut self, cx: &mut Cx<'a>, i: usize, close: usize) -> (AbsVal, usize) {
        let is_let = cx.toks.get(i + 1).is_some_and(|t| t.text == "let");
        let Some(open) = find_depth0(cx.toks, i + 1, close, "{") else {
            return (AbsVal::unknown(), close);
        };
        let cond_lo = i + 1;
        if is_let {
            // `if let PAT = expr`: evaluate the scrutinee, bind the
            // pattern idents in the then-branch.
            if let Some(eq) = self.find_plain_eq(cx, cond_lo, open) {
                let mut p = eq + 1;
                self.eval(cx, &mut p, open, 0, true);
            }
        } else {
            let mut p = cond_lo;
            self.eval(cx, &mut p, open, 0, true);
        }
        let c1 = match_close(cx.toks, open, "{", "}");
        let base = cx.env.clone();
        if is_let {
            if let Some(eq) = self.find_plain_eq(cx, cond_lo, open) {
                self.bind_pattern_unknown(cx, cond_lo + 1, eq);
            }
        } else {
            self.refine_cond(cx, cond_lo, open);
        }
        let v1 = self.analyze_block(cx, open, c1);
        let env1 = std::mem::replace(&mut cx.env, base.clone());

        if cx.toks.get(c1 + 1).is_some_and(|t| t.text == "else") {
            let e = c1 + 2;
            let (v2, ni) = if cx.toks.get(e).is_some_and(|t| t.text == "if") {
                self.if_expr(cx, e, close)
            } else if cx.toks.get(e).is_some_and(|t| t.text == "{") {
                let c2 = match_close(cx.toks, e, "{", "}");
                (self.analyze_block(cx, e, c2), c2 + 1)
            } else {
                (AbsVal::unknown(), e)
            };
            let env2 = std::mem::take(&mut cx.env);
            cx.env = join_envs(&env1, &env2);
            (v1.join(&v2), ni)
        } else {
            cx.env = join_envs(&env1, &base);
            (AbsVal::unknown(), c1 + 1)
        }
    }

    /// `match scrut { pat => expr, … }`: arms evaluate from the same
    /// base environment; values and environments join.
    fn match_expr(&mut self, cx: &mut Cx<'a>, i: usize, close: usize) -> (AbsVal, usize) {
        let Some(open) = find_depth0(cx.toks, i + 1, close, "{") else {
            return (AbsVal::unknown(), close);
        };
        let mut p = i + 1;
        self.eval(cx, &mut p, open, 0, true);
        let c = match_close(cx.toks, open, "{", "}");
        let base = cx.env.clone();
        let mut value: Option<AbsVal> = None;
        let mut joined: Option<Env> = None;
        let mut j = open + 1;
        while j < c {
            let Some(arrow) = find_fat_arrow(cx.toks, j, c) else { break };
            cx.env = base.clone();
            self.bind_pattern_unknown(cx, j, arrow);
            let (v, next) = if cx.toks.get(arrow + 2).is_some_and(|t| t.text == "{") {
                let bc = match_close(cx.toks, arrow + 2, "{", "}");
                let v = self.analyze_block(cx, arrow + 2, bc);
                let mut n = bc + 1;
                if cx.toks.get(n).is_some_and(|t| t.text == ",") {
                    n += 1;
                }
                (v, n)
            } else {
                let end = find_depth0(cx.toks, arrow + 2, c, ",").unwrap_or(c);
                let mut p = arrow + 2;
                let v = self.eval(cx, &mut p, end, 0, false);
                (v, end + 1)
            };
            value = Some(match value {
                Some(acc) => acc.join(&v),
                None => v,
            });
            let env = std::mem::take(&mut cx.env);
            joined = Some(match joined {
                Some(acc) => join_envs(&acc, &env),
                None => env,
            });
            j = next;
        }
        cx.env = joined.unwrap_or(base);
        (value.unwrap_or_else(AbsVal::unknown), c + 1)
    }

    fn for_loop(&mut self, cx: &mut Cx<'a>, i: usize, close: usize) -> usize {
        let Some(kw_in) = find_depth0_ident(cx.toks, i + 1, close, "in") else { return close };
        let Some(open) = find_depth0(cx.toks, kw_in + 1, close, "{") else { return close };
        let c = match_close(cx.toks, open, "{", "}");

        // Loop variable value and trip count from the iterable.
        let (var_val, trip) = self.for_iterable(cx, kw_in + 1, open);
        let pre = cx.env.clone();
        let accs = self.havoc_mutations(cx, open, c, &pre);
        cx.loops.push(LoopCtx { trip, accs });
        // Bind the pattern: a single identifier gets the element
        // value; destructuring binds ⊤.
        let pat: Vec<usize> = (i + 1..kw_in)
            .filter(|&k| {
                cx.toks[k].kind == TokenKind::Ident && !matches!(cx.toks[k].text.as_str(), "mut")
            })
            .collect();
        if pat.len() == 1 {
            cx.env.insert(cx.toks[pat[0]].text.clone(), var_val);
        } else {
            self.bind_pattern_unknown(cx, i + 1, kw_in);
            // `for (i, …) in xs.iter().….enumerate()`: the tuple's
            // first identifier is the index, bounded by the trip
            // count.
            let enumerated = open >= kw_in + 5
                && cx.toks[open - 1].text == ")"
                && cx.toks[open - 2].text == "("
                && cx.toks[open - 3].text == "enumerate"
                && cx.toks[open - 4].text == ".";
            if enumerated && !pat.is_empty() {
                let hi = trip.bounds().map_or(i128::MAX, |(_, h)| h.saturating_sub(1).max(0));
                let mut idx = AbsVal::typed_range("usize");
                idx.iv = idx.iv.meet(Interval::new(0, hi));
                cx.env.insert(cx.toks[pat[0]].text.clone(), idx);
            }
        }
        self.analyze_block(cx, open, c);
        cx.loops.pop();
        cx.env = join_envs(&pre, &cx.env);
        c + 1
    }

    /// Evaluates a `for` iterable: `(element value, trip interval)`.
    fn for_iterable(&mut self, cx: &mut Cx<'a>, lo: usize, hi: usize) -> (AbsVal, Interval) {
        if let Some(dots) = find_range_dots(cx.toks, lo, hi) {
            let incl = cx.toks.get(dots + 2).is_some_and(|t| t.text == "=");
            let rhs_lo = dots + if incl { 3 } else { 2 };
            let mut p = lo;
            let a = self.eval(cx, &mut p, dots, 0, true);
            let mut p = rhs_lo;
            let b = self.eval(cx, &mut p, hi, 0, true);
            let (alo, _) = a.iv.bounds().unwrap_or((i128::MIN, i128::MAX));
            let (_, bhi) = b.iv.bounds().unwrap_or((i128::MIN, i128::MAX));
            let last = if incl { bhi } else { bhi.saturating_sub(1) };
            let mut v = a.join(&b);
            v.iv = Interval::new(alo, last);
            if v.iv.is_bottom() {
                v.iv = Interval::singleton(alo);
            }
            let span = last.saturating_sub(alo).saturating_add(1).max(0);
            (v, Interval::new(0, span))
        } else {
            let mut p = lo;
            let it = self.eval(cx, &mut p, hi, 0, true);
            let place = if is_place_span(cx.toks, lo, hi) {
                Some(span_text(cx.toks, lo, hi))
            } else {
                // `xs.iter()` / `&xs`: recover the base place.
                let base_hi = strip_iter_suffix(cx.toks, lo, hi);
                let base_lo = if cx.toks[lo].text == "&" { lo + 1 } else { lo };
                is_place_span(cx.toks, base_lo, base_hi)
                    .then(|| span_text(cx.toks, base_lo, base_hi))
            };
            let trip = place
                .and_then(|pl| cx.env.get(&format!("{pl}.len()")).map(|v| v.iv))
                .map(|iv| iv.meet(Interval::new(0, i128::MAX)))
                .unwrap_or_else(|| Interval::new(0, u64::MAX as i128));
            // A primitive element type gives the loop variable its
            // full numeric range; a struct element type is kept as a
            // typed-but-unbounded value so field projections on the
            // loop variable still resolve through the struct's
            // declared field types. Declared container types collapse
            // to their element type (`Vec<i8>` records as `i8`), so
            // the container's own `ty` stands in when `elem` is
            // absent.
            let elem = match it.elem.as_deref().or(it.ty.as_deref()) {
                Some(e) if is_int_type(e) || is_float_type(e) => AbsVal::typed_range(e),
                Some(e) => AbsVal { ty: Some(e.to_string()), ..AbsVal::unknown() },
                None => AbsVal::unknown(),
            };
            (elem, trip)
        }
    }

    fn while_loop(&mut self, cx: &mut Cx<'a>, i: usize, close: usize) -> usize {
        let is_let = cx.toks.get(i + 1).is_some_and(|t| t.text == "let");
        let Some(open) = find_depth0(cx.toks, i + 1, close, "{") else { return close };
        let c = match_close(cx.toks, open, "{", "}");
        let pre = cx.env.clone();
        let accs = self.havoc_mutations(cx, open, c, &pre);
        // Evaluate the condition against the havocked state (it runs
        // every iteration), then refine the body with it.
        if is_let {
            if let Some(eq) = self.find_plain_eq(cx, i + 2, open) {
                let mut p = eq + 1;
                self.eval(cx, &mut p, open, 0, true);
                self.bind_pattern_unknown(cx, i + 2, eq);
            }
        } else {
            let mut p = i + 1;
            self.eval(cx, &mut p, open, 0, true);
            self.refine_cond(cx, i + 1, open);
        }
        cx.loops.push(LoopCtx { trip: Interval::TOP, accs });
        self.analyze_block(cx, open, c);
        cx.loops.pop();
        cx.env = join_envs(&pre, &cx.env);
        c + 1
    }

    fn loop_loop(&mut self, cx: &mut Cx<'a>, i: usize, close: usize) -> usize {
        let Some(open) = find_depth0(cx.toks, i + 1, close, "{") else { return close };
        let c = match_close(cx.toks, open, "{", "}");
        let pre = cx.env.clone();
        let accs = self.havoc_mutations(cx, open, c, &pre);
        cx.loops.push(LoopCtx { trip: Interval::TOP, accs });
        self.analyze_block(cx, open, c);
        cx.loops.pop();
        cx.env = join_envs(&pre, &cx.env);
        c + 1
    }

    /// Scans a loop body for mutated places, havocks them (any value
    /// the loop could have left), and returns the accumulators —
    /// places with exactly one compound-assignment site and a known
    /// pre-loop value, whose bound the trip count can prove.
    fn havoc_mutations(
        &mut self,
        cx: &mut Cx<'a>,
        open: usize,
        close: usize,
        pre: &Env,
    ) -> BTreeMap<String, AbsVal> {
        let muts = scan_mutations(cx.toks, open, close);
        let mut accs = BTreeMap::new();
        for (place, (plain, sites)) in muts {
            let known = pre.get(&place).cloned();
            if !plain && sites == 1 {
                if let Some(v) = known {
                    accs.insert(place.clone(), v);
                }
            }
            if let Some(v) = cx.env.get(&place) {
                let h = v.havocked();
                cx.env.insert(place, h);
            }
        }
        accs
    }
}

/// Pointwise join of two environments over the *intersection* of
/// their keys. A key missing on one side means that side knows
/// nothing about the place (its value is the type range, recomputed
/// on demand), so keeping the other side's binding would leak a
/// one-branch refinement — e.g. `if self.0 == 0 { return; }` must not
/// pin `self.0` to `[0, 0]` on the fall-through path.
fn join_envs(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, v) in a {
        if let Some(other) = b.get(k) {
            out.insert(k.clone(), v.join(other));
        }
    }
    out
}

/// Depth-0 `=>` position in `[lo, hi)`.
fn find_fat_arrow(toks: &[Token], lo: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = lo;
    while i + 1 < hi {
        let t = toks[i].text.as_str();
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            depth -= 1;
        } else if depth == 0 && t == "=" && toks[i + 1].text == ">" {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Depth-0 identifier-token position (for the `in` of a `for`).
fn find_depth0_ident(toks: &[Token], lo: usize, hi: usize, what: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, tok) in toks.iter().enumerate().take(hi.min(toks.len())).skip(lo) {
        let t = tok.text.as_str();
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            depth -= 1;
        } else if depth == 0 && t == what && tok.kind == TokenKind::Ident {
            return Some(i);
        }
    }
    None
}

/// Depth-0 `..` position (two adjacent `.` tokens) in `[lo, hi)`.
fn find_range_dots(toks: &[Token], lo: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = lo;
    while i + 1 < hi {
        let t = toks[i].text.as_str();
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            depth -= 1;
        } else if depth == 0 && t == "." && toks[i + 1].text == "." {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Trims a trailing `.iter()` / `.iter().copied()` / … chain off an
/// iterable span, returning the end of the base place.
fn strip_iter_suffix(toks: &[Token], lo: usize, hi: usize) -> usize {
    let mut end = hi;
    loop {
        if end >= lo + 4
            && toks[end - 1].text == ")"
            && toks[end - 2].text == "("
            && toks[end - 3].kind == TokenKind::Ident
            && toks[end - 4].text == "."
            && matches!(
                toks[end - 3].text.as_str(),
                "iter" | "iter_mut" | "into_iter" | "copied" | "cloned" | "rev" | "enumerate"
            )
        {
            end -= 4;
        } else {
            return end;
        }
    }
}

/// Finds every assigned place in `[open, close)` at any depth:
/// `place → (has plain assignment, total sites)`.
fn scan_mutations(toks: &[Token], open: usize, close: usize) -> BTreeMap<String, (bool, u32)> {
    let mut out: BTreeMap<String, (bool, u32)> = BTreeMap::new();
    let mut i = open + 1;
    while i < close {
        if toks[i].text != "=" {
            i += 1;
            continue;
        }
        let prev = if i > open { toks[i - 1].text.as_str() } else { "" };
        let next = if i + 1 < close { toks[i + 1].text.as_str() } else { "" };
        if next == "=" || next == ">" || prev == "=" || prev == "!" {
            i += 1;
            continue;
        }
        let (plain, place_end) = match prev {
            "<" | ">" => {
                if i >= 2 && toks[i - 2].text == prev {
                    (false, i - 2) // `<<=` / `>>=`
                } else {
                    i += 1; // `<=` / `>=`
                    continue;
                }
            }
            "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" => (false, i - 1),
            _ => (true, i),
        };
        if let Some((start, place)) = walk_back_place(toks, place_end, open) {
            let before = if start > open { toks[start - 1].text.as_str() } else { "" };
            if before != "let" && before != "mut" {
                let entry = out.entry(place).or_insert((false, 0));
                entry.0 |= plain;
                entry.1 += 1;
            }
        }
        i += 1;
    }
    out
}

/// Walks backward from `end` (exclusive) over a place expression;
/// returns its start index and canonical string. Leading derefs are
/// stripped (`*x = v` mutates `x`'s referent — havocking `x` is the
/// sound response).
fn walk_back_place(toks: &[Token], end: usize, lo: usize) -> Option<(usize, String)> {
    let mut j = end;
    loop {
        if j == lo {
            return None;
        }
        let t = &toks[j - 1];
        match t.text.as_str() {
            "]" => {
                let o = match_open(toks, j - 1, "[", "]")?;
                if o == lo {
                    return None;
                }
                j = o;
            }
            _ if matches!(t.kind, TokenKind::Ident | TokenKind::Int) => {
                j -= 1;
                if j > lo && toks[j - 1].text == "." {
                    j -= 1;
                } else {
                    break;
                }
            }
            _ => return None,
        }
    }
    let mut start = j;
    while start > lo && toks[start - 1].text == "*" {
        start -= 1;
    }
    let text_start = (start..end).find(|&k| toks[k].text != "*").unwrap_or(start);
    Some((start, span_text(toks, text_start, end)))
}

// ------------------------------------------------------ refinements

impl<'a> Analyzer<'a> {
    /// Applies a boolean condition's refinements to the environment:
    /// splits on top-level `&&` and narrows each comparison atom
    /// (`||` conjuncts refine nothing — either side could hold).
    fn refine_cond(&mut self, cx: &mut Cx<'a>, lo: usize, hi: usize) {
        for (alo, ahi) in split_on_andand(cx.toks, lo, hi) {
            self.refine_atom(cx, alo, ahi);
        }
    }

    fn refine_atom(&mut self, cx: &mut Cx<'a>, lo: usize, hi: usize) {
        let mut lo = lo;
        let mut hi = hi;
        // Unwrap a fully parenthesised atom.
        while hi > lo + 1 && cx.toks[lo].text == "(" && match_close(cx.toks, lo, "(", ")") == hi - 1
        {
            lo += 1;
            hi -= 1;
        }
        if hi <= lo {
            return;
        }
        if contains_orbar(cx.toks, lo, hi) {
            return;
        }
        // `(a..=b).contains(&x)`.
        if self.refine_contains(cx, lo, hi) {
            return;
        }
        let Some((pos, op, op_len)) = find_cmp(cx.toks, lo, hi) else { return };
        let (llo, lhi) = (lo, pos);
        let (rlo, rhi) = (pos + op_len, hi);
        // `place op k`.
        if let Some(place) = self.refinable_place(cx, llo, lhi) {
            self.seed_place(cx, &place, llo, lhi);
            let mut p = rlo;
            let k = self.eval(cx, &mut p, rhi, 0, true);
            self.narrow(cx, &place, op, k);
            return;
        }
        // `k op place` — mirror the operator.
        if let Some(place) = self.refinable_place(cx, rlo, rhi) {
            self.seed_place(cx, &place, rlo, rhi);
            let mut p = llo;
            let k = self.eval(cx, &mut p, lhi, 0, true);
            let mirrored = match op {
                "<" => ">",
                "<=" => ">=",
                ">" => "<",
                ">=" => "<=",
                other => other,
            };
            self.narrow(cx, &place, mirrored, k);
        }
    }

    /// Ensures `place` has an env entry before a refinement meets it,
    /// seeding it from the place's own evaluated value (its
    /// type-derived range). Seeding ⊤ instead would let one branch's
    /// refinement meet against an unbounded interval and leak bounds
    /// like `[-inf, 0]` past the branch join. `span` is the place's
    /// token span (for a `|x` absolute-value marker, pass the base
    /// place's span).
    fn seed_place(&mut self, cx: &mut Cx<'a>, place: &str, lo: usize, hi: usize) {
        let base = place.strip_prefix('|').unwrap_or(place);
        if cx.env.contains_key(base) {
            return;
        }
        let (lo, hi) = if place.starts_with('|') { (lo, hi - 4) } else { (lo, hi) };
        let mut p = lo;
        let v = self.eval(cx, &mut p, hi, 0, true);
        cx.env.entry(base.to_string()).or_insert(v);
    }

    /// A place span, or a place behind `.abs()`/`.unsigned_abs()`
    /// (returned with a `|` prefix marking the absolute-value form).
    fn refinable_place(&self, cx: &Cx<'a>, lo: usize, hi: usize) -> Option<String> {
        if is_place_span(cx.toks, lo, hi) {
            let s = span_text(cx.toks, lo, hi);
            // `.len()` is a tracked pseudo-place; other trailing
            // calls are not places.
            if s.contains('(') && !s.ends_with(".len()") {
                return None;
            }
            return Some(s);
        }
        if hi >= lo + 5
            && cx.toks[hi - 1].text == ")"
            && cx.toks[hi - 2].text == "("
            && matches!(cx.toks[hi - 3].text.as_str(), "abs" | "unsigned_abs")
            && cx.toks[hi - 4].text == "."
            && is_place_span(cx.toks, lo, hi - 4)
        {
            return Some(format!("|{}", span_text(cx.toks, lo, hi - 4)));
        }
        None
    }

    /// Narrows `place` by `place op k`. An absolute-value marker
    /// (`|x`) narrows the base symmetrically.
    fn narrow(&mut self, cx: &mut Cx<'a>, place: &str, op: &str, k: AbsVal) {
        let Some((klo, khi)) = k.iv.bounds() else { return };
        let (abs, place) = match place.strip_prefix('|') {
            Some(base) => (true, base),
            None => (false, place),
        };
        let derived = match op {
            "<" => Interval::new(i128::MIN, khi.saturating_sub(1)),
            "<=" => Interval::new(i128::MIN, khi),
            ">" => Interval::new(klo.saturating_add(1), i128::MAX),
            ">=" => Interval::new(klo, i128::MAX),
            "==" => k.iv,
            _ => return,
        };
        let derived = if abs {
            let Some((_, dhi)) = derived.bounds() else { return };
            if dhi == i128::MAX {
                return;
            }
            Interval::new(dhi.saturating_neg(), dhi)
        } else {
            derived
        };
        let entry = cx.env.entry(place.to_string()).or_insert_with(AbsVal::unknown);
        let met = entry.iv.meet(derived);
        // A refinement that empties the interval marks dead code;
        // keep the narrower side rather than ⊥ to stay fail-open.
        entry.iv = if met.is_bottom() { derived } else { met };
    }

    /// `(a..=b).contains(&x)` → `x ∈ [a, b]`.
    fn refine_contains(&mut self, cx: &mut Cx<'a>, lo: usize, hi: usize) -> bool {
        if cx.toks[lo].text != "(" {
            return false;
        }
        let c = match_close(cx.toks, lo, "(", ")");
        if c + 3 >= hi
            || cx.toks[c + 1].text != "."
            || cx.toks[c + 2].text != "contains"
            || cx.toks[c + 3].text != "("
        {
            return false;
        }
        let argc = match_close(cx.toks, c + 3, "(", ")");
        let mut arg_lo = c + 4;
        while arg_lo < argc && cx.toks[arg_lo].text == "&" {
            arg_lo += 1;
        }
        if !is_place_span(cx.toks, arg_lo, argc) {
            return false;
        }
        let place = span_text(cx.toks, arg_lo, argc);
        let Some(dots) = find_range_dots(cx.toks, lo + 1, c) else { return false };
        let incl = cx.toks.get(dots + 2).is_some_and(|t| t.text == "=");
        let mut p = lo + 1;
        let a = self.eval(cx, &mut p, dots, 0, true);
        let mut p = dots + if incl { 3 } else { 2 };
        let b = self.eval(cx, &mut p, c, 0, true);
        let (Some((alo, _)), Some((_, bhi))) = (a.iv.bounds(), b.iv.bounds()) else {
            return true;
        };
        let last = if incl { bhi } else { bhi.saturating_sub(1) };
        let derived = Interval::new(alo, last);
        self.seed_place(cx, &place, arg_lo, argc);
        let entry = cx.env.entry(place).or_insert_with(AbsVal::unknown);
        let met = entry.iv.meet(derived);
        entry.iv = if met.is_bottom() { derived } else { met };
        true
    }

    /// `assert_eq!(a, b)`: when one side is a place, meet it with the
    /// other side's value (both directions).
    fn refine_equal(&mut self, cx: &mut Cx<'a>, a: (usize, usize), b: (usize, usize)) {
        let mut p = a.0;
        let va = self.eval(cx, &mut p, a.1, 0, true);
        let mut p = b.0;
        let vb = self.eval(cx, &mut p, b.1, 0, true);
        if let Some(place) = self.refinable_place(cx, a.0, a.1) {
            if !place.starts_with('|') {
                let entry = cx.env.entry(place).or_insert_with(|| va.clone());
                let met = entry.iv.meet(vb.iv);
                entry.iv = if met.is_bottom() { entry.iv } else { met };
            }
        }
        if let Some(place) = self.refinable_place(cx, b.0, b.1) {
            if !place.starts_with('|') {
                let entry = cx.env.entry(place).or_insert_with(|| vb.clone());
                let met = entry.iv.meet(va.iv);
                entry.iv = if met.is_bottom() { entry.iv } else { met };
            }
        }
    }
}

/// Splits `[lo, hi)` on depth-0 `&&` (two adjacent `&` tokens).
fn split_on_andand(toks: &[Token], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = lo;
    let mut i = lo;
    while i < hi {
        let t = toks[i].text.as_str();
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            depth -= 1;
        } else if depth == 0 && t == "&" && i + 1 < hi && toks[i + 1].text == "&" {
            // Unary `&&x` (double reference) only occurs after an
            // operator or at the start; after an operand it is the
            // logical and.
            let prev_operand = i > lo
                && (matches!(
                    toks[i - 1].kind,
                    TokenKind::Ident | TokenKind::Int | TokenKind::Float
                ) || is_close(toks[i - 1].text.as_str()));
            if prev_operand {
                parts.push((start, i));
                start = i + 2;
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    parts.push((start, hi));
    parts
}

/// Whether `[lo, hi)` contains a depth-0 logical `||`.
fn contains_orbar(toks: &[Token], lo: usize, hi: usize) -> bool {
    let mut depth = 0i32;
    let mut i = lo;
    while i + 1 < hi {
        let t = toks[i].text.as_str();
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            depth -= 1;
        } else if depth == 0 && t == "|" && toks[i + 1].text == "|" {
            return true;
        }
        i += 1;
    }
    false
}

/// The top-level comparison operator of `[lo, hi)`:
/// `(position, op, token length)`.
fn find_cmp(toks: &[Token], lo: usize, hi: usize) -> Option<(usize, &'static str, usize)> {
    let mut depth = 0i32;
    let mut i = lo;
    while i < hi {
        let t = toks[i].text.as_str();
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            depth -= 1;
        } else if depth == 0 {
            let next = if i + 1 < hi { toks[i + 1].text.as_str() } else { "" };
            match (t, next) {
                ("<", "=") => return Some((i, "<=", 2)),
                (">", "=") => return Some((i, ">=", 2)),
                ("=", "=") => return Some((i, "==", 2)),
                ("!", "=") => return Some((i, "!=", 2)),
                ("<", "<") | (">", ">") => i += 1, // shift, not cmp
                ("<", _) => return Some((i, "<", 1)),
                (">", _) => return Some((i, ">", 1)),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

// ------------------------------------------------------- expressions

/// Binary operator at `p`: `(op, precedence, token length)`.
fn peek_binop(toks: &[Token], p: usize, end: usize) -> Option<(&'static str, u8, usize)> {
    if p >= end {
        return None;
    }
    let t = toks[p].text.as_str();
    let t1 = if p + 1 < end { toks[p + 1].text.as_str() } else { "" };
    Some(match (t, t1) {
        ("<", "<") => ("<<", 8, 2),
        (">", ">") => (">>", 8, 2),
        ("<", "=") => ("<=", 4, 2),
        (">", "=") => (">=", 4, 2),
        ("=", "=") => ("==", 4, 2),
        ("!", "=") => ("!=", 4, 2),
        ("&", "&") => ("&&", 3, 2),
        ("|", "|") => ("||", 2, 2),
        ("*", _) => ("*", 10, 1),
        ("/", _) => ("/", 10, 1),
        ("%", _) => ("%", 10, 1),
        ("+", _) => ("+", 9, 1),
        ("-", _) => ("-", 9, 1),
        ("&", _) => ("&", 7, 1),
        ("^", _) => ("^", 6, 1),
        ("|", _) => ("|", 5, 1),
        ("<", _) => ("<", 4, 1),
        (">", _) => (">", 4, 1),
        _ => return None,
    })
}

impl<'a> Analyzer<'a> {
    /// Precedence-climbing expression evaluation over `[p, end)`;
    /// advances `p` past the parsed expression. `no_struct` disables
    /// `Name { … }` struct literals (condition position).
    fn eval(
        &mut self,
        cx: &mut Cx<'a>,
        p: &mut usize,
        end: usize,
        min: u8,
        no_struct: bool,
    ) -> AbsVal {
        let (mut lhs, _) = self.unary(cx, p, end, no_struct);
        while let Some((op, prec, len)) = peek_binop(cx.toks, *p, end) {
            if prec < min {
                break;
            }
            let line = cx.toks[*p].line;
            *p += len;
            let rhs = self.eval(cx, p, end, prec + 1, no_struct);
            lhs = self.apply_bin(cx, op, line, lhs, rhs);
        }
        lhs
    }

    fn unary(
        &mut self,
        cx: &mut Cx<'a>,
        p: &mut usize,
        end: usize,
        no_struct: bool,
    ) -> (AbsVal, Option<String>) {
        if *p >= end {
            return (AbsVal::unknown(), None);
        }
        match cx.toks[*p].text.as_str() {
            "-" => {
                *p += 1;
                let (v, _) = self.unary(cx, p, end, no_struct);
                let mut out = v;
                out.iv = out.iv.neg();
                (out, None)
            }
            "!" => {
                *p += 1;
                let (_, _) = self.unary(cx, p, end, no_struct);
                (AbsVal::unknown(), None)
            }
            "&" => {
                while *p < end && cx.toks[*p].text == "&" {
                    *p += 1;
                }
                if *p < end && cx.toks[*p].text == "mut" {
                    *p += 1;
                }
                self.unary(cx, p, end, no_struct)
            }
            "*" => {
                *p += 1;
                let (v, _) = self.unary(cx, p, end, no_struct);
                (v, None)
            }
            _ => {
                let (v, place) = self.primary(cx, p, end, no_struct);
                self.postfix(cx, p, end, v, place)
            }
        }
    }

    fn primary(
        &mut self,
        cx: &mut Cx<'a>,
        p: &mut usize,
        end: usize,
        no_struct: bool,
    ) -> (AbsVal, Option<String>) {
        if *p >= end {
            return (AbsVal::unknown(), None);
        }
        let tok = &cx.toks[*p];
        match tok.kind {
            TokenKind::Int => {
                let v = match parse_int_lit(&tok.text) {
                    Some((value, suffix)) => {
                        let weak = suffix.is_none();
                        let ty = suffix.map(|s| self.resolve_ty(&s));
                        if ty.as_deref().is_some_and(is_float_type) {
                            AbsVal {
                                iv: Interval::singleton(value),
                                ty,
                                weak: false,
                                float: true,
                                unit: None,
                                elem: None,
                            }
                        } else {
                            AbsVal::of_int(Interval::singleton(value), ty, weak)
                        }
                    }
                    None => AbsVal::unknown(),
                };
                *p += 1;
                (v, None)
            }
            TokenKind::Float => {
                let v = match parse_float_lit(&tok.text) {
                    Some((lo, hi)) => AbsVal {
                        iv: Interval::new(lo, hi),
                        ty: None,
                        weak: false,
                        float: true,
                        unit: None,
                        elem: None,
                    },
                    None => AbsVal { float: true, ..AbsVal::unknown() },
                };
                *p += 1;
                (v, None)
            }
            TokenKind::Str | TokenKind::Char | TokenKind::Lifetime => {
                *p += 1;
                (AbsVal::unknown(), None)
            }
            TokenKind::Punct => match tok.text.as_str() {
                "(" => {
                    let c = match_close(cx.toks, *p, "(", ")");
                    let inner_lo = *p + 1;
                    let v = if c <= inner_lo {
                        AbsVal::unknown()
                    } else if find_depth0(cx.toks, inner_lo, c, ",").is_some() {
                        for (alo, ahi) in split_depth0(cx.toks, inner_lo, c, ",") {
                            let mut q = alo;
                            self.eval(cx, &mut q, ahi, 0, false);
                        }
                        AbsVal::unknown()
                    } else if let Some(dots) = find_range_dots(cx.toks, inner_lo, c) {
                        let mut q = inner_lo;
                        self.eval(cx, &mut q, dots, 0, false);
                        let incl = cx.toks.get(dots + 2).is_some_and(|t| t.text == "=");
                        let mut q = dots + if incl { 3 } else { 2 };
                        self.eval(cx, &mut q, c, 0, false);
                        AbsVal::unknown()
                    } else {
                        let mut q = inner_lo;
                        self.eval(cx, &mut q, c, 0, false)
                    };
                    *p = c + 1;
                    (v, None)
                }
                "|" => self.closure(cx, p, end),
                _ => {
                    *p += 1;
                    (AbsVal::unknown(), None)
                }
            },
            TokenKind::Ident => match tok.text.as_str() {
                "if" => {
                    let (v, ni) = self.if_expr(cx, *p, end);
                    *p = ni;
                    (v, None)
                }
                "match" => {
                    let (v, ni) = self.match_expr(cx, *p, end);
                    *p = ni;
                    (v, None)
                }
                "move" => {
                    *p += 1;
                    if *p < end && cx.toks[*p].text == "|" {
                        self.closure(cx, p, end)
                    } else {
                        (AbsVal::unknown(), None)
                    }
                }
                "return" => {
                    *p += 1;
                    if *p < end && cx.toks[*p].text != ";" {
                        let v = self.eval(cx, p, end, 0, no_struct);
                        self.join_ret(cx, v);
                    }
                    (AbsVal::unknown(), None)
                }
                "true" | "false" => {
                    *p += 1;
                    (AbsVal::unknown(), None)
                }
                "self" => {
                    *p += 1;
                    let v = cx
                        .env
                        .get("self")
                        .cloned()
                        .unwrap_or_else(|| AbsVal { ty: cx.self_ty.clone(), ..AbsVal::unknown() });
                    (v, Some("self".to_string()))
                }
                _ => self.path_or_call(cx, p, end, no_struct),
            },
        }
    }

    fn closure(&mut self, cx: &mut Cx<'a>, p: &mut usize, end: usize) -> (AbsVal, Option<String>) {
        // `|params| body` — at primary position `||` is the empty
        // parameter list.
        *p += 1;
        let params_end = if *p < end && cx.toks[*p].text == "|" {
            *p
        } else {
            let mut depth = 0i32;
            let mut i = *p;
            loop {
                if i >= end {
                    break i;
                }
                let t = cx.toks[i].text.as_str();
                if is_open(t) {
                    depth += 1;
                } else if is_close(t) {
                    depth -= 1;
                } else if depth == 0 && t == "|" {
                    break i;
                }
                i += 1;
            }
        };
        self.bind_pattern_unknown(cx, *p, params_end);
        *p = params_end + 1;
        if *p < end && cx.toks[*p].text == "{" {
            let c = match_close(cx.toks, *p, "{", "}");
            self.analyze_block(cx, *p, c);
            *p = c + 1;
        } else if *p < end {
            self.eval(cx, p, end, 0, false);
        }
        (AbsVal::unknown(), None)
    }

    /// Identifier-led primary: paths, calls, macros, struct literals,
    /// environment and constant lookups.
    fn path_or_call(
        &mut self,
        cx: &mut Cx<'a>,
        p: &mut usize,
        end: usize,
        no_struct: bool,
    ) -> (AbsVal, Option<String>) {
        let start = *p;
        let mut segs: Vec<String> = vec![cx.toks[*p].text.clone()];
        *p += 1;
        while *p + 2 < end
            && cx.toks[*p].text == ":"
            && cx.toks[*p + 1].text == ":"
            && cx.toks[*p + 2].kind == TokenKind::Ident
        {
            segs.push(cx.toks[*p + 2].text.clone());
            *p += 3;
        }
        // Turbofish `::<…>` in a path position: skip the generics.
        if *p + 2 < end
            && cx.toks[*p].text == ":"
            && cx.toks[*p + 1].text == ":"
            && cx.toks[*p + 2].text == "<"
        {
            *p = skip_generics(cx.toks, *p + 2, end);
        }
        let next = cx.toks.get(*p).map(|t| t.text.as_str()).unwrap_or("");
        if next == "!" {
            // Macro invocation: skip the delimited arguments.
            let name = segs.last().cloned().unwrap_or_default();
            *p += 1;
            let open = cx.toks.get(*p).map(|t| t.text.as_str()).unwrap_or("");
            if is_open(open) {
                let close_text = match open {
                    "(" => ")",
                    "[" => "]",
                    _ => "}",
                };
                let c = match_close(cx.toks, *p, open, close_text);
                // `debug_assert!` in expression position still refines.
                if matches!(name.as_str(), "assert" | "debug_assert") {
                    let args = split_depth0(cx.toks, *p + 1, c, ",");
                    if let Some(&(alo, ahi)) = args.first() {
                        let mut q = alo;
                        self.eval(cx, &mut q, ahi, 0, true);
                        self.refine_cond(cx, alo, ahi);
                    }
                } else if matches!(name.as_str(), "assert_eq" | "debug_assert_eq") {
                    let args = split_depth0(cx.toks, *p + 1, c, ",");
                    if args.len() >= 2 {
                        self.refine_equal(cx, args[0], args[1]);
                    }
                }
                *p = c + 1;
            }
            return (AbsVal::unknown(), None);
        }
        if next == "(" {
            let c = match_close(cx.toks, *p, "(", ")");
            let arg_vals = self.eval_args(cx, *p + 1, c);
            *p = c + 1;
            return (self.resolve_call(cx, &segs, arg_vals, cx.toks[start].line), None);
        }
        if next == "{"
            && !no_struct
            && segs.last().is_some_and(|s| s.chars().next().is_some_and(|c| c.is_uppercase()))
        {
            // Struct literal: evaluate field initialisers for checks.
            let c = match_close(cx.toks, *p, "{", "}");
            for (flo, fhi) in split_depth0(cx.toks, *p + 1, c, ",") {
                let vlo = find_depth0(cx.toks, flo, fhi, ":").map(|k| k + 1).unwrap_or(flo);
                if vlo < fhi {
                    let mut q = vlo;
                    self.eval(cx, &mut q, fhi, 0, false);
                }
            }
            *p = c + 1;
            return (AbsVal { ty: segs.last().cloned(), ..AbsVal::unknown() }, None);
        }
        // Plain path value.
        if segs.len() == 1 {
            let name = &segs[0];
            if let Some(v) = cx.env.get(name) {
                return (v.clone(), Some(name.clone()));
            }
            if let Some(v) = self.consts.get(name) {
                return (v.clone(), None);
            }
            return (AbsVal::unknown(), Some(name.clone()));
        }
        // `i32::MAX`-style associated consts on primitive types.
        if segs.len() == 2 {
            let ty = self.resolve_ty(&segs[0]);
            if let Some(range) = type_range(&ty) {
                if let Some((lo, hi)) = range.bounds() {
                    match segs[1].as_str() {
                        "MAX" => {
                            return (AbsVal::of_int(Interval::singleton(hi), Some(ty), false), None)
                        }
                        "MIN" => {
                            return (AbsVal::of_int(Interval::singleton(lo), Some(ty), false), None)
                        }
                        "BITS" => {
                            let bits = type_bits(&ty).unwrap_or(64);
                            return (
                                AbsVal::of_int(
                                    Interval::singleton(bits as i128),
                                    Some("u32".to_string()),
                                    false,
                                ),
                                None,
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
        if let Some(v) = segs.last().and_then(|s| self.consts.get(s)) {
            return (v.clone(), None);
        }
        (AbsVal::unknown(), None)
    }

    fn eval_args(&mut self, cx: &mut Cx<'a>, lo: usize, hi: usize) -> Vec<AbsVal> {
        if lo >= hi {
            return Vec::new();
        }
        split_depth0(cx.toks, lo, hi, ",")
            .into_iter()
            .filter(|&(alo, ahi)| ahi > alo)
            .map(|(alo, ahi)| {
                let mut q = alo;
                self.eval(cx, &mut q, ahi, 0, false)
            })
            .collect()
    }

    /// Resolves a free or `Type::`-qualified call through the
    /// interprocedural summaries.
    fn resolve_call(
        &mut self,
        cx: &mut Cx<'a>,
        segs: &[String],
        args: Vec<AbsVal>,
        line: u32,
    ) -> AbsVal {
        let name = segs.last().cloned().unwrap_or_default();
        match name.as_str() {
            "min" | "max" if args.len() == 2 => {
                let iv = if name == "min" {
                    args[0].iv.min_(args[1].iv)
                } else {
                    args[0].iv.max_(args[1].iv)
                };
                self.check_units(cx, "comparison", line, &args[0], &args[1]);
                let mut out = args[0].join(&args[1]);
                out.iv = iv;
                return out;
            }
            "from" if segs.len() >= 2 => {
                // `i64::from(x)` is lossless by construction.
                let ty = self.resolve_ty(&segs[segs.len() - 2]);
                if let Some(range) = type_range(&ty) {
                    let src = args.first().cloned().unwrap_or_else(AbsVal::unknown);
                    let mut out = src;
                    out.iv = out.iv.meet(range);
                    out.ty = Some(ty);
                    out.weak = false;
                    return out;
                }
            }
            _ => {}
        }
        let Some(candidates) = self.fn_by_name.get(&name).cloned() else {
            return AbsVal::unknown();
        };
        let qualifier = (segs.len() >= 2).then(|| segs[segs.len() - 2].clone());
        let matching: Vec<usize> = match &qualifier {
            Some(q) => {
                let filtered: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&n| {
                        fn_item(self.files, &self.graph.nodes[n]).self_type.as_deref() == Some(q)
                    })
                    .collect();
                if filtered.is_empty() && q == "Self" {
                    candidates
                } else {
                    filtered
                }
            }
            None => candidates,
        };
        let mut out: Option<AbsVal> = None;
        for n in matching {
            let s = self.summary_of(n);
            out = Some(match out {
                Some(acc) => acc.join(&s),
                None => s,
            });
        }
        out.unwrap_or_else(AbsVal::unknown)
    }
}

// -------------------------------------------- postfix, methods, casts

impl<'a> Analyzer<'a> {
    fn postfix(
        &mut self,
        cx: &mut Cx<'a>,
        p: &mut usize,
        end: usize,
        mut val: AbsVal,
        mut place: Option<String>,
    ) -> (AbsVal, Option<String>) {
        while *p < end {
            match cx.toks[*p].text.as_str() {
                "." => {
                    let Some(next) = cx.toks.get(*p + 1) else { break };
                    if next.text == "." {
                        break; // range `..`
                    }
                    match next.kind {
                        TokenKind::Ident => {
                            let name = next.text.clone();
                            let mut after = *p + 2;
                            // `.collect::<Vec<_>>()` turbofish.
                            if after + 2 < end
                                && cx.toks[after].text == ":"
                                && cx.toks[after + 1].text == ":"
                                && cx.toks[after + 2].text == "<"
                            {
                                after = skip_generics(cx.toks, after + 2, end);
                            }
                            if cx.toks.get(after).is_some_and(|t| t.text == "(") {
                                let c = match_close(cx.toks, after, "(", ")");
                                let line = next.line;
                                let args = self.eval_args(cx, after + 1, c);
                                let new_place = (name == "len" && args.is_empty())
                                    .then(|| place.as_ref().map(|pl| format!("{pl}.len()")))
                                    .flatten();
                                val = self.method(cx, line, val, new_place.as_deref(), &name, args);
                                place = new_place;
                                *p = c + 1;
                            } else {
                                let new_place = place.as_ref().map(|pl| format!("{pl}.{name}"));
                                val = match new_place.as_ref().and_then(|pl| cx.env.get(pl)) {
                                    Some(v) => v.clone(),
                                    None => self.field_val(&val, &name),
                                };
                                place = new_place;
                                *p += 2;
                            }
                        }
                        TokenKind::Int => {
                            let name = next.text.clone();
                            let new_place = place.as_ref().map(|pl| format!("{pl}.{name}"));
                            val = match new_place.as_ref().and_then(|pl| cx.env.get(pl)) {
                                Some(v) => v.clone(),
                                None => self.field_val(&val, &name),
                            };
                            place = new_place;
                            *p += 2;
                        }
                        _ => break,
                    }
                }
                "[" => {
                    let c = match_close(cx.toks, *p, "[", "]");
                    let is_slice = find_range_dots(cx.toks, *p + 1, c).is_some();
                    if c > *p + 1 && !is_slice {
                        let mut q = *p + 1;
                        self.eval(cx, &mut q, c, 0, false);
                    }
                    let new_place =
                        place.as_ref().map(|pl| format!("{pl}{}", span_text(cx.toks, *p, c + 1)));
                    if is_slice {
                        // Slicing keeps the container type.
                    } else {
                        // A container annotated `Vec<i8>`/`[u64; N]`
                        // carries the element type as its own `ty`
                        // (declared types keep the last path segment),
                        // so fall back to it when `elem` is absent.
                        let elem_ty = val
                            .elem
                            .as_deref()
                            .or(val.ty.as_deref())
                            .filter(|e| is_int_type(e) || is_float_type(e))
                            .map(str::to_string);
                        val = match new_place.as_ref().and_then(|pl| cx.env.get(pl)) {
                            Some(v) => v.clone(),
                            None => match elem_ty.as_deref() {
                                Some(e) => AbsVal::typed_range(e).with_unit(val.unit.clone()),
                                None => AbsVal::unknown().with_unit(val.unit.clone()),
                            },
                        };
                    }
                    place = new_place;
                    *p = c + 1;
                }
                "as" if cx.toks[*p].kind == TokenKind::Ident => {
                    let line = cx.toks[*p].line;
                    *p += 1;
                    // Take the last ident of the (possibly qualified)
                    // target type.
                    let mut ty = String::new();
                    while *p < end {
                        let t = &cx.toks[*p];
                        if t.kind == TokenKind::Ident {
                            ty = t.text.clone();
                            *p += 1;
                        } else if t.text == ":" {
                            *p += 1;
                        } else {
                            break;
                        }
                    }
                    val = self.apply_cast(cx, line, val, &ty);
                    place = None;
                }
                "?" => {
                    *p += 1;
                    val = AbsVal::unknown();
                    place = None;
                }
                _ => break,
            }
        }
        (val, place)
    }

    /// Field access through the workspace struct table.
    fn field_val(&self, recv: &AbsVal, name: &str) -> AbsVal {
        let looked = recv
            .ty
            .as_ref()
            .and_then(|t| self.fields.get(&(t.clone(), name.to_string())))
            .cloned()
            .or_else(|| {
                if recv.ty.is_none() {
                    self.field_fallback.get(name).cloned().flatten()
                } else {
                    None
                }
            });
        let unit = unit_of_name(name);
        let Some((base, last)) = looked else {
            return AbsVal::unknown().with_unit(unit);
        };
        let base = self.resolve_ty(&base);
        let last = self.resolve_ty(&last);
        if base == last && (is_int_type(&base) || is_float_type(&base)) {
            AbsVal::typed_range(&base).with_unit(unit)
        } else if base == "Vec" || base == "Box" || base == "Option" {
            AbsVal { elem: Some(last), unit, ..AbsVal::unknown() }
        } else if is_int_type(&base) || is_float_type(&base) {
            // `[u32; N]`-style field: elements of the base type.
            AbsVal { elem: Some(base), unit, ..AbsVal::unknown() }
        } else {
            AbsVal { ty: Some(base), unit, ..AbsVal::unknown() }
        }
    }

    /// Method-call transfer functions.
    fn method(
        &mut self,
        cx: &mut Cx<'a>,
        line: u32,
        recv: AbsVal,
        place: Option<&str>,
        name: &str,
        args: Vec<AbsVal>,
    ) -> AbsVal {
        let arg = |i: usize| args.get(i).cloned().unwrap_or_else(AbsVal::unknown);
        match name {
            "min" | "max" if args.len() == 1 => {
                let a = arg(0);
                self.check_units(cx, "comparison", line, &recv, &a);
                let iv = if name == "min" { recv.iv.min_(a.iv) } else { recv.iv.max_(a.iv) };
                let mut out = recv.join(&a);
                out.iv = iv;
                out
            }
            "clamp" if args.len() == 2 => {
                let (a, b) = (arg(0), arg(1));
                let mut out = recv;
                out.iv = out.iv.clamp_to(a.iv, b.iv);
                out
            }
            "abs" => {
                let mut out = recv;
                out.iv = out.iv.abs();
                out
            }
            "unsigned_abs" => {
                let mut out = recv;
                out.iv = out.iv.abs();
                out.ty = out.ty.as_deref().map(unsigned_counterpart).map(str::to_string);
                out
            }
            "round" | "floor" | "ceil" | "trunc" => recv,
            "saturating_add" | "saturating_sub" | "saturating_mul" => {
                let a = arg(0);
                if name == "saturating_add" || name == "saturating_sub" {
                    self.check_units(cx, "addition", line, &recv, &a);
                }
                let raw = match name {
                    "saturating_add" => recv.iv.add(a.iv),
                    "saturating_sub" => recv.iv.sub(a.iv),
                    _ => recv.iv.mul(a.iv),
                };
                let mut out = recv;
                if let Some(range) = out.ty.as_deref().and_then(type_range) {
                    out.iv = raw.saturate_to(range);
                } else {
                    out.iv = raw;
                }
                out
            }
            "wrapping_add" | "wrapping_sub" | "wrapping_mul" | "rotate_left" | "rotate_right"
            | "saturating_pow" | "wrapping_shl" | "wrapping_shr" | "pow" => {
                let mut out = recv;
                out.iv = out.ty.as_deref().and_then(type_range).unwrap_or(Interval::TOP);
                out
            }
            "checked_add" | "checked_sub" | "checked_mul" | "checked_div" | "checked_shl"
            | "checked_rem" | "checked_pow" => AbsVal::unknown(),
            "div_ceil" => {
                let mut out = recv.clone();
                out.iv = recv.iv.div(arg(0).iv).add(Interval::new(0, 1));
                if let Some(range) = out.ty.as_deref().and_then(type_range) {
                    out.iv = out.iv.meet(range);
                }
                out
            }
            "div_euclid" => {
                let mut out = recv.clone();
                out.iv = recv.iv.div(arg(0).iv);
                out
            }
            "rem_euclid" => {
                let mut out = recv.clone();
                out.iv = recv.iv.rem(arg(0).iv).abs();
                out
            }
            "leading_zeros" | "trailing_zeros" | "count_ones" | "count_zeros" => {
                AbsVal::of_int(Interval::new(0, 128), Some("u32".to_string()), false)
            }
            "to_bits" => AbsVal::typed_range("u32"),
            "len" => match place.and_then(|pl| cx.env.get(pl)) {
                Some(v) => v.clone(),
                None => {
                    let mut v = AbsVal::typed_range("usize");
                    v.iv = Interval::new(0, u64::MAX as i128);
                    v
                }
            },
            "iter" | "iter_mut" | "into_iter" | "copied" | "cloned" | "rev" | "as_slice"
            | "as_mut_slice" | "as_ref" | "as_mut" => recv,
            "sum" | "product" => AbsVal::unknown(),
            // Workspace method: resolve through the same summaries as
            // path calls, using the receiver type (when known) to
            // disambiguate same-named methods on different impls.
            _ => self.workspace_method(&recv, name),
        }
    }

    /// Joins the summaries of every workspace fn named `name` that is
    /// a method (`self_type` present) compatible with the receiver's
    /// type — `recv.ty` unknown means every candidate stays in play,
    /// which joins toward ⊤ exactly when resolution is ambiguous.
    fn workspace_method(&mut self, recv: &AbsVal, name: &str) -> AbsVal {
        let Some(candidates) = self.fn_by_name.get(name).cloned() else {
            return AbsVal::unknown();
        };
        let mut out: Option<AbsVal> = None;
        for node_idx in candidates {
            let item = fn_item(self.files, &self.graph.nodes[node_idx]);
            let Some(self_ty) = item.self_type.as_deref() else { continue };
            if recv.ty.as_deref().is_some_and(|t| t != self_ty && t != "Self") {
                continue;
            }
            let s = self.summary_of(node_idx);
            out = Some(match out {
                Some(prev) => prev.join(&s),
                None => s,
            });
        }
        out.unwrap_or_else(AbsVal::unknown)
    }

    /// `expr as Ty`: the A2/A4 narrowing checks.
    fn apply_cast(&mut self, cx: &mut Cx<'a>, line: u32, val: AbsVal, ty: &str) -> AbsVal {
        let ty = self.resolve_ty(ty);
        if is_float_type(&ty) {
            // int→float / float→float: precision is A1's concern.
            return AbsVal {
                iv: val.iv,
                ty: Some(ty),
                weak: false,
                float: true,
                unit: val.unit,
                elem: None,
            };
        }
        let Some(dst_range) = type_range(&ty) else {
            return AbsVal { ty: Some(ty), ..AbsVal::unknown() };
        };
        let mut out = AbsVal {
            iv: val.iv,
            ty: Some(ty.clone()),
            weak: false,
            float: false,
            unit: val.unit.clone(),
            elem: None,
        };
        if val.float {
            // `as` from float saturates since Rust 1.45, so the cast
            // itself cannot wrap — but a saturated quantity is a
            // corrupted quantity. A4 demands the proof in the
            // quantization files; elsewhere A1 already covers it.
            if cx.scope.a4 {
                let symmetric = Interval::new(-127, 127);
                let required = if ty == "i8" { symmetric } else { dst_range };
                if !val.iv.subset_of(required) {
                    let label = if ty == "i8" {
                        "the symmetric INT8 code range [-127, 127]".to_string()
                    } else {
                        format!("`{ty}`")
                    };
                    self.report(
                        cx,
                        &["a4", "a2"],
                        line,
                        format!(
                            "float->{ty} cast with unproven interval {}: cannot show the \
                             value fits {label}; clamp the value or add a \
                             `debug_assert!` range precondition",
                            fmt_iv(val.iv)
                        ),
                    );
                }
            }
            out.iv = val.iv.saturate_to(dst_range);
            return out;
        }
        // int→int: pure widening is always fine; otherwise the source
        // interval must provably fit the destination.
        let widening =
            val.ty.as_deref().and_then(type_range).is_some_and(|src| src.subset_of(dst_range));
        if !widening && !val.iv.subset_of(dst_range) {
            if cx.scope.a2 && !cx.scope.a1 {
                self.report(
                    cx,
                    &["a2"],
                    line,
                    format!(
                        "narrowing cast to `{ty}` with unproven interval {}: add a \
                         `debug_assert!` bound, clamp, or use `try_from`",
                        fmt_iv(val.iv)
                    ),
                );
            } else if cx.scope.a4 {
                self.report(
                    cx,
                    &["a4", "a2"],
                    line,
                    format!(
                        "narrowing cast to `{ty}` with unproven interval {} in a \
                         quantization-audit file",
                        fmt_iv(val.iv)
                    ),
                );
            }
            out.iv = dst_range;
        } else {
            out.iv = val.iv.meet(dst_range);
            if out.iv.is_bottom() {
                out.iv = dst_range;
            }
        }
        out
    }
}

// ------------------------------------------------- binary operators

impl<'a> Analyzer<'a> {
    /// Applies a binary operator with the A2 overflow and A3 unit
    /// checks, returning the (type-normalised) result value.
    fn apply_bin(&mut self, cx: &mut Cx<'a>, op: &str, line: u32, l: AbsVal, r: AbsVal) -> AbsVal {
        // Comparisons and logical operators produce booleans; they
        // only carry the A3 cross-unit check.
        if matches!(op, "<" | "<=" | ">" | ">=" | "==" | "!=") {
            self.check_units(cx, "comparison", line, &l, &r);
            return AbsVal::unknown();
        }
        if matches!(op, "&&" | "||") {
            return AbsVal::unknown();
        }
        if matches!(op, "+" | "-") {
            self.check_units(cx, if op == "+" { "addition" } else { "subtraction" }, line, &l, &r);
        }
        let float = l.float || r.float;
        let raw = match op {
            "+" => l.iv.add(r.iv),
            "-" => l.iv.sub(r.iv),
            "*" => l.iv.mul(r.iv),
            "/" => {
                if float {
                    Interval::TOP
                } else {
                    l.iv.div(r.iv)
                }
            }
            "%" => l.iv.rem(r.iv),
            "<<" => l.iv.shl(r.iv),
            ">>" => l.iv.shr(r.iv),
            "&" => l.iv.bitand(r.iv),
            "|" => l.iv.bitor(r.iv),
            "^" => Interval::TOP,
            _ => Interval::TOP,
        };
        let raw = if float && matches!(op, "+" | "-" | "*") { float_pad(raw) } else { raw };
        let unit = result_unit(cx, self, op, line, &l, &r);
        let mut out = AbsVal {
            iv: raw,
            ty: unify_ty(&l, &r),
            weak: l.weak && r.weak,
            float,
            unit,
            elem: None,
        };
        if !float {
            out.iv = self.checked_int_result(cx, op, line, raw, &l, &r, false);
        }
        out
    }

    /// The A2 overflow check for an integer operator result, and the
    /// normalisation of the result interval into the operand type.
    #[allow(clippy::too_many_arguments)] // internal check fan-in
    fn checked_int_result(
        &mut self,
        cx: &mut Cx<'a>,
        op: &str,
        line: u32,
        raw: Interval,
        l: &AbsVal,
        r: &AbsVal,
        accumulator: bool,
    ) -> Interval {
        // Unsuffixed literals default to i32 when nothing types them.
        let ty = match unify_ty(l, r) {
            Some(t) => t,
            None if l.weak && r.weak => "i32".to_string(),
            None => return raw,
        };
        let Some(range) = type_range(&ty) else { return raw };
        let bits = type_bits(&ty).unwrap_or(64);
        if cx.scope.a2 {
            let needs_proof = match op {
                "+" => bits < PLUS_CHECK_BELOW_BITS,
                "*" | "<<" => true,
                _ => false,
            };
            if op == "<<" {
                if let Some((_, amt_hi)) = r.iv.bounds() {
                    if amt_hi > (bits - 1) as i128 {
                        self.report(
                            cx,
                            &["a2"],
                            line,
                            format!(
                                "shift amount interval {} can reach {amt_hi} on a \
                                 {bits}-bit `{ty}`; bound it below {bits} with a \
                                 `debug_assert!`",
                                fmt_iv(r.iv)
                            ),
                        );
                    }
                }
            }
            if needs_proof && !raw.subset_of(range) {
                let what = if accumulator { "loop accumulation" } else { opname(op) };
                self.report(
                    cx,
                    &["a2"],
                    line,
                    format!(
                        "{what} on `{ty}` has unproven result interval {} ⊄ {}; \
                         tighten the operands with `debug_assert!`/`clamp`, widen \
                         the type, or use `checked_*`/`saturating_*`",
                        fmt_iv(raw),
                        fmt_iv(range)
                    ),
                );
            }
        }
        if raw.subset_of(range) {
            raw
        } else {
            range
        }
    }

    /// A3: flags a cross-unit additive operation or comparison.
    fn check_units(&mut self, cx: &mut Cx<'a>, what: &str, line: u32, l: &AbsVal, r: &AbsVal) {
        if !cx.scope.a3 {
            return;
        }
        if let (Some(lu), Some(ru)) = (l.unit.as_deref(), r.unit.as_deref()) {
            if lu != ru {
                self.report(
                    cx,
                    &["a3"],
                    line,
                    format!(
                        "{what} mixes units: {lu} vs {ru}; convert explicitly or \
                         carry `// lint: allow(a3): why`"
                    ),
                );
            }
        }
    }
}

/// The operand type of a binary result: a strong type wins over a
/// weak literal; conflicting strong types yield `None` (the checker
/// then stays silent — real code would not compile).
fn unify_ty(l: &AbsVal, r: &AbsVal) -> Option<String> {
    match (&l.ty, &r.ty) {
        (Some(a), Some(b)) if a == b => Some(a.clone()),
        (Some(a), Some(_)) if r.weak => Some(a.clone()),
        (Some(_), Some(b)) if l.weak => Some(b.clone()),
        (Some(_), Some(_)) => None,
        (Some(a), None) => Some(a.clone()),
        (None, Some(b)) => Some(b.clone()),
        (None, None) => None,
    }
}

fn opname(op: &str) -> &'static str {
    match op {
        "+" => "addition",
        "*" => "multiplication",
        "<<" => "left shift",
        _ => "arithmetic",
    }
}

/// A3 unit algebra for `*` and `/`; reports unit-erasing divisions.
fn result_unit<'a>(
    cx: &Cx<'a>,
    a: &mut Analyzer<'a>,
    op: &str,
    line: u32,
    l: &AbsVal,
    r: &AbsVal,
) -> Option<String> {
    match op {
        "+" | "-" => l.unit.clone().or_else(|| r.unit.clone()),
        "*" => match (&l.unit, &r.unit) {
            (Some(u), None) | (None, Some(u)) => Some(u.clone()),
            _ => None,
        },
        "/" => match (l.unit.as_deref(), r.unit.as_deref()) {
            (Some(lu), Some(ru)) if lu == ru => None, // dimensionless ratio
            (Some(lu), Some(ru)) => {
                if cx.scope.a3 {
                    a.report(
                        cx,
                        &["a3"],
                        line,
                        format!(
                            "unit-erasing division: {lu} / {ru} drops both unit tags; \
                             name the resulting rate and carry \
                             `// lint: allow(a3): why`"
                        ),
                    );
                }
                None
            }
            (Some(lu), None) => Some(lu.to_string()),
            _ => None,
        },
        _ => None,
    }
}

/// The unsigned counterpart of a signed integer type name.
fn unsigned_counterpart(ty: &str) -> &str {
    match ty {
        "i8" => "u8",
        "i16" => "u16",
        "i32" => "u32",
        "i64" => "u64",
        "i128" => "u128",
        "isize" => "usize",
        other => other,
    }
}

/// Compact interval rendering for messages.
fn fmt_iv(iv: Interval) -> String {
    match iv.bounds() {
        None => "⊥".to_string(),
        Some((lo, hi)) => {
            let b = |v: i128| {
                if v == i128::MIN {
                    "-inf".to_string()
                } else if v == i128::MAX {
                    "+inf".to_string()
                } else {
                    v.to_string()
                }
            };
            format!("[{}, {}]", b(lo), b(hi))
        }
    }
}

/// Skips a `<…>` generic-argument list starting at `open` (a `<`),
/// returning the index after the matching `>`.
fn skip_generics(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        match toks[i].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}
