//! Interprocedural rule families over the call graph.
//!
//! * **P2 — panic reachability.** Every public function of a
//!   result-bearing crate is an entry point; anything reachable from
//!   one must be panic-free. Sources are `.unwrap()`/`.expect()`,
//!   the `panic!` macro family, and *unvalidated-parameter* hazards:
//!   indexing or slicing that involves a function parameter, and
//!   division/remainder by a parameter, when the body never guards
//!   that parameter (no assert mentioning it, no `if`/`while`/`match`
//!   condition over it, no `.min`/`.max`/`.clamp`/`.len`-style check).
//!   Derived values are not the param: `x / n.len()` and
//!   `xs[rng.next(…)]` are exempt, as is constant indexing into a
//!   fixed-size-array parameter (compile-time checked).
//!   Findings are reported at the source line — where the existing
//!   `allow(p1)`/`allow(p2)` escape hatches apply — with an example
//!   entry path in the message.
//! * **H2 — allocation reachability.** Extends H1 transitively: from
//!   the named render/forward/train entry points of `fusion3d-nerf`,
//!   nothing reachable may call `.push`/`.collect`/`.clone`/
//!   `.to_vec`/`.to_string`/`.to_owned`, `format!`/`vec!`, or
//!   `Box::new`. `Vec::new`/`String::new` (allocation-free) and
//!   `with_capacity`/`reserve`/`resize`/`extend` (the sanctioned
//!   explicit-sizing pattern) are deliberately exempt — the contract
//!   is *no per-sample allocation*, not *no buffers*. The outer
//!   `train` epoch loop is not an entry (setup before the first step
//!   may allocate), and `crates/par` is exempt as a source (its
//!   per-dispatch slot vectors are the fan-out mechanism, like D3/D5).
//!   `allow(h1)` and `allow(h2)` both suppress.
//! * **D4 — unordered reduction.** Inside a closure dispatched
//!   through a `fusion3d-par` combinator, a compound assignment
//!   (`+=`, `-=`, `*=`, `/=`) whose target is declared *outside* the
//!   closure accumulates in scheduling order — exactly the bug class
//!   that breaks the 1-vs-N-thread bitwise gate (float addition is
//!   not associative). Targets declared inside the closure (locals,
//!   closure parameters, `for` bindings) reduce in chunk-local order
//!   pinned by the combinator contract and are fine. `.sum()`/
//!   `.fold()` over chunk-local iterators are likewise ordered and
//!   not flagged.
//! * **D5 — parallel captures.** Inside those same closures, any
//!   interior-mutability or shared-state machinery — `RefCell`/
//!   `Cell`/`Mutex`/`RwLock`/atomics/`Relaxed` ordering, `.lock()`/
//!   `.borrow_mut()`/`.fetch_add()`-style calls, `unsafe`, or a
//!   `static mut` name — is a scheduling-dependent side channel.
//!   `crates/par` itself is exempt (its index-addressed result slots
//!   *are* the deterministic dispatch mechanism), mirroring D3.
//! * **U1 — suppression hygiene.** Every `// lint: allow(…)` must
//!   carry a reason (`): why` or `) -- why`), and every suppressed
//!   rule must actually suppress something; stale allows are
//!   reported so the escape-hatch inventory stays honest. A
//!   directive listing `u1` opts out of the unused check (for
//!   deliberately prophylactic allows) but still needs a reason.

use std::collections::BTreeSet;

use crate::graph::{direct_spans, fn_item, CallGraph};
use crate::lexer::{Token, TokenKind};
use crate::rules::{AllowUsage, Finding, RESULT_BEARING_CRATES};
use crate::SourceFile;

/// Hot-path entry points of `fusion3d-nerf` for H2: the render,
/// batched-forward/backward, and training-step surfaces.
const H2_ENTRY_NAMES: &[&str] = &[
    "render_image",
    "render_image_probed",
    "render_pixel",
    "render_pixel_depth",
    "render_depth_image",
    "render_views_into",
    "trace_frame",
    "shade_ray",
    "shade_ray_depth",
    "forward_batch",
    "forward_batch_infer",
    "backward_batch",
    "interpolate_batch",
    "interpolate_batch_infer",
    "train_step",
    "step",
];

/// Hot-path entry points of `fusion3d-serve` for H2: the steady-state
/// request path — admission, batch drain, and batched render. The
/// trace event loop (`run_trace`) and the registry miss path
/// (`ensure_resident`) are deliberately *not* entries: a container
/// load is the cold path by definition and may allocate while
/// decoding.
const SERVE_H2_ENTRY_NAMES: &[&str] =
    &["admit", "pop_batch_into", "render_batch", "touch", "scene"];

/// The deterministic dispatch combinators of `fusion3d-par`; closures
/// passed to these run on worker threads (D4/D5 scope).
const PAR_COMBINATORS: &[&str] = &[
    "parallel_chunks",
    "parallel_chunks_with",
    "parallel_chunks_with_stats",
    "parallel_map_reduce",
    "parallel_flat_map",
    "parallel_flat_map_with",
    "run_tasks",
];

/// Interior-mutability / shared-state type names (D5).
const INTERIOR_MUT_TYPES: &[&str] = &[
    "RefCell",
    "Cell",
    "Mutex",
    "RwLock",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "Relaxed",
];

/// Interior-mutability method calls (D5), matched as `.name(`.
const INTERIOR_MUT_METHODS: &[&str] = &[
    "lock",
    "borrow",
    "borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
    "swap",
    "store",
];

/// Assert-family macros whose mention of a parameter counts as a
/// bounds guard (P2).
const ASSERT_MACROS: &[&str] =
    &["assert", "assert_eq", "assert_ne", "debug_assert", "debug_assert_eq", "debug_assert_ne"];

/// Methods on a parameter that count as guarding it (P2):
/// `n.min(cap)`, `i.clamp(…)`, `xs.len()` checks, non-panicking
/// `xs.get(i)` access.
const GUARD_METHODS: &[&str] =
    &["min", "max", "clamp", "len", "is_empty", "get", "get_mut", "checked_div", "checked_rem"];

/// H2 allocation sources matched as `.name(` method calls.
const ALLOC_METHODS: &[&str] = &["push", "collect", "clone", "to_vec", "to_string", "to_owned"];

/// H2 allocation sources matched as `name!` macros.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Runs P2, H2, D4 and D5 over the workspace, recording every
/// suppression that fires into `usage` (for U1).
pub fn check(files: &[SourceFile], graph: &CallGraph, usage: &mut [AllowUsage]) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_p2(files, graph, usage, &mut findings);
    check_h2(files, graph, usage, &mut findings);
    check_par_closures(files, graph, usage, &mut findings);
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    findings
}

/// Reports a finding at `line` of `files[file_idx]` unless an allow
/// for any of `rules` covers it; a matching allow is recorded as used.
fn report(
    files: &[SourceFile],
    usage: &mut [AllowUsage],
    file_idx: usize,
    rules: &[&'static str],
    line: u32,
    message: String,
    findings: &mut Vec<Finding>,
) {
    let lexed = &files[file_idx].lexed;
    for rule in rules {
        if let Some(directive_line) = lexed.allow_line(rule, line) {
            usage[file_idx].insert((directive_line, rule.to_ascii_lowercase()));
            return;
        }
    }
    findings.push(Finding {
        rule: rules[0],
        path: files[file_idx].path.clone(),
        line,
        message,
        id: String::new(),
    });
}

// ---------------------------------------------------------------- P2

fn check_p2(
    files: &[SourceFile],
    graph: &CallGraph,
    usage: &mut [AllowUsage],
    findings: &mut Vec<Finding>,
) {
    // Entries: public non-test fns of result-bearing crates.
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&n| {
            let node = &graph.nodes[n];
            RESULT_BEARING_CRATES.contains(&node.krate.as_str()) && fn_item(files, node).is_pub
        })
        .collect();
    let parents = graph.reachable_from(&entries);

    for n in 0..graph.nodes.len() {
        if parents[n].is_none() {
            continue;
        }
        let node = &graph.nodes[n];
        // Sources only matter inside result-bearing crates: a call
        // that crosses into `bench`/`lint` leaves the library surface.
        if !RESULT_BEARING_CRATES.contains(&node.krate.as_str()) {
            continue;
        }
        let file = &files[node.file];
        let toks = &file.lexed.tokens;
        let item = fn_item(files, node);
        let spans = direct_spans(&file.parsed, node.fn_index);
        let guarded = guarded_params(toks, &spans, &item.params);
        let via = graph.path_string(files, &parents, n);

        for &(lo, hi) in &spans {
            for i in lo..hi {
                let t = &toks[i];
                let text = t.text.as_str();
                let prev = if i > 0 { toks[i - 1].text.as_str() } else { "" };
                let next = toks.get(i + 1).map_or("", |n| n.text.as_str());

                // (a) unwrap/expect method calls.
                if t.kind == TokenKind::Ident
                    && (text == "unwrap" || text == "expect")
                    && prev == "."
                    && next == "("
                {
                    report(
                        files,
                        usage,
                        node.file,
                        &["P2", "P1"],
                        t.line,
                        format!("`.{text}()` can panic and is reachable from public API: {via}"),
                        findings,
                    );
                }
                // (b) panic-family macros.
                if t.kind == TokenKind::Ident
                    && crate::rules::PANIC_MACROS.contains(&text)
                    && next == "!"
                {
                    report(
                        files,
                        usage,
                        node.file,
                        &["P2", "P1"],
                        t.line,
                        format!("`{text}!` is reachable from public API: {via}"),
                        findings,
                    );
                }
                // (c) indexing/slicing involving an unguarded param.
                if text == "["
                    && matches!(toks.get(i.wrapping_sub(1)), Some(p) if p.kind == TokenKind::Ident || p.text == ")" || p.text == "]")
                {
                    if let Some(param) = index_involves_param(toks, i, hi, item, &guarded) {
                        report(
                            files,
                            usage,
                            node.file,
                            &["P2"],
                            t.line,
                            format!(
                                "indexing involves parameter `{param}` with no bounds guard \
                                 in `{name}`; out-of-range input panics on a public path: {via}",
                                name = item.name
                            ),
                            findings,
                        );
                    }
                }
                // (d) division/remainder by a *bare* unguarded param —
                // `x / n`, not `x / n.len()` or `x / n.get(…)`, where
                // the divisor is a derived value, not the param itself.
                if (text == "/" || text == "%")
                    && toks.get(i + 1).is_some_and(|d| {
                        d.kind == TokenKind::Ident
                            && item.params.contains(&d.text)
                            && !guarded.contains(&d.text)
                    })
                    && !matches!(toks.get(i + 2).map(|t| t.text.as_str()), Some("." | "("))
                    && next != "="
                {
                    report(
                        files,
                        usage,
                        node.file,
                        &["P2"],
                        t.line,
                        format!(
                            "`{text} {param}` divides by parameter `{param}` with no zero \
                             guard in `{name}`; reachable from public API: {via}",
                            param = toks[i + 1].text,
                            name = item.name
                        ),
                        findings,
                    );
                }
            }
        }
    }
}

/// Parameters mentioned in any guard position within the fn body:
/// assert-family macro arguments, `if`/`while`/`match` heads, or a
/// `.min`/`.max`/`.clamp`-style method call on the parameter.
fn guarded_params(toks: &[Token], spans: &[(usize, usize)], params: &[String]) -> BTreeSet<String> {
    let mut guarded = BTreeSet::new();
    if params.is_empty() {
        return guarded;
    }
    for &(lo, hi) in spans {
        let mut i = lo;
        while i < hi {
            let text = toks[i].text.as_str();
            if toks[i].kind == TokenKind::Ident
                && ASSERT_MACROS.contains(&text)
                && toks.get(i + 1).is_some_and(|t| t.text == "!")
                && toks.get(i + 2).is_some_and(|t| t.text == "(")
            {
                let close = match_close(toks, i + 2, "(", ")");
                mark_mentions(toks, i + 3, close.min(hi), params, &mut guarded);
                i = close + 1;
                continue;
            }
            if matches!(text, "if" | "while" | "match") {
                // Head: tokens up to the `{` at depth 0.
                let mut j = i + 1;
                let mut depth = 0i32;
                while j < hi {
                    match toks[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                mark_mentions(toks, i + 1, j, params, &mut guarded);
                i = j;
                continue;
            }
            if toks[i].kind == TokenKind::Ident
                && params.contains(&toks[i].text)
                && toks.get(i + 1).is_some_and(|t| t.text == ".")
                && toks.get(i + 2).is_some_and(|t| GUARD_METHODS.contains(&t.text.as_str()))
            {
                guarded.insert(toks[i].text.clone());
            }
            i += 1;
        }
    }
    guarded
}

fn mark_mentions(
    toks: &[Token],
    lo: usize,
    hi: usize,
    params: &[String],
    guarded: &mut BTreeSet<String>,
) {
    for t in &toks[lo.min(toks.len())..hi.min(toks.len())] {
        if t.kind == TokenKind::Ident && params.contains(&t.text) {
            guarded.insert(t.text.clone());
        }
    }
}

/// For an index expression whose `[` is at `open`: the first
/// unguarded parameter involved — the indexed base (token before the
/// bracket) or a *bare* identifier inside the bracket span (not a
/// `x.method(…)` receiver, whose value is derived, not the param).
/// Constant indexing into a fixed-size-array param (`v[0]` on
/// `[u32; 3]`) is compile-time checked and never a hazard.
fn index_involves_param(
    toks: &[Token],
    open: usize,
    hi: usize,
    item: &crate::parse::FnItem,
    guarded: &BTreeSet<String>,
) -> Option<String> {
    let hazard = |t: &Token| {
        t.kind == TokenKind::Ident && item.params.contains(&t.text) && !guarded.contains(&t.text)
    };
    let close = match_close(toks, open, "[", "]");
    if open > 0 && hazard(&toks[open - 1]) {
        let base = &toks[open - 1].text;
        let const_index =
            close == open + 2 && toks.get(open + 1).is_some_and(|t| t.kind == TokenKind::Int);
        if !(const_index && item.fixed_arrays.contains(base)) {
            return Some(base.clone());
        }
    }
    toks[open + 1..close.min(hi)]
        .iter()
        .enumerate()
        .find(|(j, t)| {
            hazard(t) && !matches!(toks.get(open + 2 + j).map(|t| t.text.as_str()), Some("." | "("))
        })
        .map(|(_, t)| t.text.clone())
}

// ---------------------------------------------------------------- H2

fn check_h2(
    files: &[SourceFile],
    graph: &CallGraph,
    usage: &mut [AllowUsage],
    findings: &mut Vec<Finding>,
) {
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&n| {
            let node = &graph.nodes[n];
            let item = fn_item(files, node);
            (node.krate == "nerf"
                && H2_ENTRY_NAMES.contains(&item.name.as_str())
                // Bare `step` is a common method name; only the
                // training loop's own impl is a hot-path entry. The
                // outer `train` epoch loop is deliberately *not* one:
                // model/dataset construction before the first step may
                // allocate freely.
                && (item.name != "step" || item.self_type.as_deref() == Some("Trainer")))
                || (node.krate == "serve" && SERVE_H2_ENTRY_NAMES.contains(&item.name.as_str()))
        })
        .collect();
    let parents = graph.reachable_from(&entries);

    for n in 0..graph.nodes.len() {
        if parents[n].is_none() {
            continue;
        }
        let node = &graph.nodes[n];
        // Sources only matter inside result-bearing crates: the
        // conservative method resolver can edge into `bench`/`lint`
        // helpers that never link into the render/train binaries.
        // `par` is exempt like it is from D3/D5 — its per-dispatch
        // slot vectors and result collection *are* the deterministic
        // fan-out mechanism, amortized across a whole chunk batch.
        if !RESULT_BEARING_CRATES.contains(&node.krate.as_str()) || node.krate == "par" {
            continue;
        }
        let file = &files[node.file];
        let toks = &file.lexed.tokens;
        let via = graph.path_string(files, &parents, n);

        for (lo, hi) in direct_spans(&file.parsed, node.fn_index) {
            for i in lo..hi {
                let t = &toks[i];
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let text = t.text.as_str();
                let prev = if i > 0 { toks[i - 1].text.as_str() } else { "" };
                let next = toks.get(i + 1).map_or("", |n| n.text.as_str());
                let what = if ALLOC_METHODS.contains(&text) && prev == "." && next == "(" {
                    Some(format!("`.{text}()`"))
                } else if ALLOC_MACROS.contains(&text) && next == "!" {
                    Some(format!("`{text}!`"))
                } else if text == "new"
                    && prev == ":"
                    && i >= 3
                    && toks[i - 2].text == ":"
                    && toks[i - 3].text == "Box"
                {
                    Some("`Box::new`".to_string())
                } else {
                    None
                };
                if let Some(what) = what {
                    report(
                        files,
                        usage,
                        node.file,
                        &["H2", "H1"],
                        t.line,
                        format!(
                            "{what} allocates on the hot path: {via}; reuse a scratch \
                             buffer sized outside the per-sample loop"
                        ),
                        findings,
                    );
                }
            }
        }
    }
}

// ----------------------------------------------------------- D4 / D5

fn check_par_closures(
    files: &[SourceFile],
    graph: &CallGraph,
    usage: &mut [AllowUsage],
    findings: &mut Vec<Finding>,
) {
    for n in 0..graph.nodes.len() {
        let node = &graph.nodes[n];
        // par's own slot machinery is the dispatch mechanism (cf. D3).
        if node.krate == "par" {
            continue;
        }
        let file = &files[node.file];
        let toks = &file.lexed.tokens;
        for (lo, hi) in direct_spans(&file.parsed, node.fn_index) {
            let mut i = lo;
            while i < hi {
                let t = &toks[i];
                let is_combinator = t.kind == TokenKind::Ident
                    && PAR_COMBINATORS.contains(&t.text.as_str())
                    && i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(");
                if !is_combinator {
                    i += 1;
                    continue;
                }
                let args_close = match_close(toks, i + 1, "(", ")");
                for (body_lo, body_hi, declared) in closures_in(toks, i + 2, args_close.min(hi)) {
                    check_d5(files, usage, node.file, toks, body_lo, body_hi, findings);
                    check_d4(
                        files,
                        usage,
                        node.file,
                        toks,
                        (body_lo, body_hi),
                        &declared,
                        findings,
                    );
                }
                i = args_close + 1;
            }
        }
    }
}

/// Closures in the argument span `[lo, hi)`: returns
/// `(body_lo, body_hi, names declared inside)` per closure. Closure
/// parameters, `let` bindings, `for` bindings and nested-closure
/// parameters all count as declared inside.
fn closures_in(toks: &[Token], lo: usize, hi: usize) -> Vec<(usize, usize, BTreeSet<String>)> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        let starts_closure =
            toks[i].text == "|" && i > 0 && matches!(toks[i - 1].text.as_str(), "(" | "," | "move");
        if !starts_closure {
            i += 1;
            continue;
        }
        let mut declared = BTreeSet::new();
        // Parameter list: up to the closing `|` (possibly immediate).
        let mut j = i + 1;
        while j < hi && toks[j].text != "|" {
            if toks[j].kind == TokenKind::Ident
                && matches!(toks[j - 1].text.as_str(), "|" | "," | "(" | "mut" | "&")
            {
                declared.insert(toks[j].text.clone());
            }
            j += 1;
        }
        // Body: a brace block, or an expression up to `,`/`)` at
        // depth 0.
        let body_start = j + 1;
        let mut end = body_start;
        if toks.get(body_start).is_some_and(|t| t.text == "{") {
            end = match_close(toks, body_start, "{", "}") + 1;
        } else {
            let mut depth = 0i32;
            while end < hi {
                match toks[end].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "," if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
        }
        let body_hi = end.min(hi);
        collect_declared(toks, body_start, body_hi, &mut declared);
        out.push((body_start, body_hi, declared));
        i = body_hi.max(i + 1);
    }
    out
}

/// Names bound inside `[lo, hi)`: `let` patterns, `for` patterns, and
/// nested-closure parameters.
fn collect_declared(toks: &[Token], lo: usize, hi: usize, declared: &mut BTreeSet<String>) {
    let mut i = lo;
    while i < hi {
        match toks[i].text.as_str() {
            "let" => {
                // Collect pattern idents up to `=`/`;`, skipping the
                // type ascription after a depth-0 `:`.
                let mut j = i + 1;
                let mut depth = 0i32;
                let mut in_type = false;
                while j < hi {
                    match toks[j].text.as_str() {
                        "(" | "[" | "<" => depth += 1,
                        ")" | "]" | ">" => depth -= 1,
                        "=" if depth == 0 => break,
                        ";" if depth == 0 => break,
                        ":" if depth == 0 && toks.get(j + 1).is_some_and(|t| t.text != ":") => {
                            in_type = true
                        }
                        _ => {
                            if !in_type
                                && toks[j].kind == TokenKind::Ident
                                && !matches!(toks[j].text.as_str(), "mut" | "ref")
                            {
                                declared.insert(toks[j].text.clone());
                            }
                        }
                    }
                    j += 1;
                }
                i = j;
            }
            "for" => {
                let mut j = i + 1;
                while j < hi && toks[j].text != "in" {
                    if toks[j].kind == TokenKind::Ident
                        && !matches!(toks[j].text.as_str(), "mut" | "ref")
                    {
                        declared.insert(toks[j].text.clone());
                    }
                    j += 1;
                }
                i = j;
            }
            "|" if i > 0 && matches!(toks[i - 1].text.as_str(), "(" | "," | "move" | "=") => {
                let mut j = i + 1;
                while j < hi && toks[j].text != "|" {
                    if toks[j].kind == TokenKind::Ident
                        && matches!(toks[j - 1].text.as_str(), "|" | "," | "(" | "mut" | "&")
                    {
                        declared.insert(toks[j].text.clone());
                    }
                    j += 1;
                }
                i = j;
            }
            _ => {}
        }
        i += 1;
    }
}

/// D5: interior-mutability / shared-state machinery inside a
/// par-dispatched closure body.
fn check_d5(
    files: &[SourceFile],
    usage: &mut [AllowUsage],
    file_idx: usize,
    toks: &[Token],
    lo: usize,
    hi: usize,
    findings: &mut Vec<Finding>,
) {
    let static_muts = &files[file_idx].parsed.static_muts;
    for i in lo..hi {
        let t = &toks[i];
        let text = t.text.as_str();
        let prev = if i > 0 { toks[i - 1].text.as_str() } else { "" };
        let next = toks.get(i + 1).map_or("", |n| n.text.as_str());
        let what = if t.kind == TokenKind::Ident && INTERIOR_MUT_TYPES.contains(&text) {
            Some(format!("`{text}`"))
        } else if t.kind == TokenKind::Ident
            && INTERIOR_MUT_METHODS.contains(&text)
            && prev == "."
            && next == "("
        {
            Some(format!("`.{text}()`"))
        } else if text == "unsafe" {
            Some("`unsafe`".to_string())
        } else if t.kind == TokenKind::Ident && static_muts.contains(&t.text) {
            Some(format!("`static mut {text}`"))
        } else {
            None
        };
        if let Some(what) = what {
            report(
                files,
                usage,
                file_idx,
                &["D5"],
                t.line,
                format!(
                    "{what} inside a fusion3d-par closure shares state across \
                     workers; results then depend on scheduling — pass per-task \
                     scratch or reduce through the combinator's return value"
                ),
                findings,
            );
        }
    }
}

/// D4: compound assignment to a name declared outside the closure;
/// `(lo, hi)` is the closure body's token span.
fn check_d4(
    files: &[SourceFile],
    usage: &mut [AllowUsage],
    file_idx: usize,
    toks: &[Token],
    (lo, hi): (usize, usize),
    declared: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for i in lo..hi {
        if toks[i].text != "=" || i == 0 {
            continue;
        }
        let op = toks[i - 1].text.as_str();
        if !matches!(op, "+" | "-" | "*" | "/") {
            continue;
        }
        // `==`, `<=`, `!=` lex as other puncts before `=`; `a + =` is
        // not valid Rust, so `op` here really is a compound assign.
        let Some(root) = place_root(toks, i - 2, lo) else { continue };
        if declared.contains(&root) {
            continue;
        }
        report(
            files,
            usage,
            file_idx,
            &["D4"],
            toks[i].line,
            format!(
                "`{root} {op}=` inside a fusion3d-par closure accumulates into \
                 state declared outside it; the reduction order depends on worker \
                 scheduling — accumulate into a closure-local and merge in the \
                 combinator's in-order reduce step"
            ),
            findings,
        );
    }
}

/// The leftmost identifier of the place expression ending at `end`
/// (inclusive): walks back over `ident`, `.`, `]…[`, `)…(` and `*`.
fn place_root(toks: &[Token], end: usize, lo: usize) -> Option<String> {
    let mut i = end as isize;
    let lo = lo as isize;
    let mut root = None;
    while i >= lo {
        let t = &toks[i as usize];
        match t.text.as_str() {
            "]" => {
                let open = match_open(toks, i as usize, "[", "]")?;
                i = open as isize - 1;
            }
            ")" => {
                let open = match_open(toks, i as usize, "(", ")")?;
                i = open as isize - 1;
            }
            "." | "*" => i -= 1,
            _ if t.kind == TokenKind::Ident => {
                root = Some(t.text.clone());
                // Keep walking only across a field/deref chain.
                if i > lo && toks[i as usize - 1].text == "." {
                    i -= 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    root
}

// ---------------------------------------------------------------- U1

/// U1: reasonless and unused suppressions, run after every other rule
/// has recorded its usage.
pub fn check_unused(files: &[SourceFile], usage: &[AllowUsage]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, file) in files.iter().enumerate() {
        for (&line, directive) in &file.lexed.allows {
            let exempt_unused = directive.rules.iter().any(|r| r == "u1");
            if !directive.has_reason {
                findings.push(Finding {
                    rule: "U1",
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "suppression of `{}` carries no reason; write \
                         `// lint: allow({}): why` so the exception is auditable",
                        directive.rules.join(", "),
                        directive.rules.join(", ")
                    ),
                    id: String::new(),
                });
                continue;
            }
            if exempt_unused {
                continue;
            }
            let unused: Vec<&str> = directive
                .rules
                .iter()
                .filter(|r| !usage[idx].contains(&(line, (*r).clone())))
                .map(String::as_str)
                .collect();
            if !unused.is_empty() {
                findings.push(Finding {
                    rule: "U1",
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "unused suppression of `{}`: no finding of that rule is \
                         suppressed here — delete the allow or add `u1` to mark it \
                         deliberately prophylactic",
                        unused.join(", ")
                    ),
                    id: String::new(),
                });
            }
        }
    }
    findings
}

// ------------------------------------------------------------ shared

/// Index of the close matching the open bracket at `open`.
fn match_close(toks: &[Token], open: usize, open_text: &str, close_text: &str) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = toks[i].text.as_str();
        if t == open_text {
            depth += 1;
        } else if t == close_text {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the open matching the close bracket at `close`.
fn match_open(toks: &[Token], close: usize, open_text: &str, close_text: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = close as isize;
    while i >= 0 {
        let t = toks[i as usize].text.as_str();
        if t == close_text {
            depth += 1;
        } else if t == open_text {
            depth -= 1;
            if depth == 0 {
                return Some(i as usize);
            }
        }
        i -= 1;
    }
    None
}
