//! A lightweight item parser over the token stream.
//!
//! The interprocedural rules (P2/H2/D4/D5) need to know where
//! functions begin and end, what they are called, which type they hang
//! off, and whether they are public — but nothing about expressions or
//! types beyond brace/paren structure. This module recovers exactly
//! that item skeleton from the [`lexer`](crate::lexer) output with a
//! single forward pass plus brace matching: `fn` items (free, inherent,
//! trait-default and nested), `impl` blocks (inherent and trait),
//! inline `mod` trees, `use` declarations (with group expansion and
//! `as` renames), and `static mut` items.
//!
//! Deliberate over-approximations, documented so rule behaviour stays
//! predictable:
//!
//! * `cfg` attributes are not interpreted — both arms of a feature
//!   gate are parsed, so feature-gated code is analysed too (only
//!   attributes containing the identifier `test` exempt an item).
//! * Generics are skipped by angle-bracket matching with a special
//!   case for `->` so `fn f<F: Fn() -> T>` parses; `>>` closes two
//!   levels as two tokens.
//! * Parameter names are the identifiers directly followed by `:` at
//!   parenthesis depth 1 of the signature — enough for the P2
//!   unvalidated-parameter checks; destructured patterns contribute
//!   only their outermost bindings.

use crate::lexer::{LexedFile, Token, TokenKind};
use crate::rules::test_mask;

/// One `fn` item with its token span.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name (`render_image`, `new`, …).
    pub name: String,
    /// The `Self` type when declared inside an `impl` or `trait`
    /// block (`Some("Trainer")` for `impl Trainer { fn step … }`).
    pub self_type: Option<String>,
    /// The trait being implemented, for `impl Trait for Type` blocks.
    pub trait_name: Option<String>,
    /// Enclosing inline-module path (`["detail"]` for `mod detail`).
    pub module_path: Vec<String>,
    /// Bare `pub` (not `pub(crate)`/`pub(super)`, which stay private
    /// to the crate and are not entry points).
    pub is_pub: bool,
    /// Inside test-only code (`#[test]`, `#[cfg(test)]`, …).
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter names bound by the signature (excluding `self`).
    pub params: Vec<String>,
    /// The subset of `params` whose declared type is (or contains
    /// only) a fixed-size array `[T; N]`. Constant-index access into
    /// these is compile-time checked, so P2 does not flag it.
    /// Extended by [`resolve_array_aliases`] with params whose type
    /// is a workspace alias of a fixed-size array.
    pub fixed_arrays: Vec<String>,
    /// `(param, type name)` for params whose type is a bare (possibly
    /// referenced) path — candidates for fixed-array alias resolution.
    pub alias_typed: Vec<(String, String)>,
    /// Token range of the body `{ … }`, inclusive of both braces.
    /// `None` for body-less declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// Last path segment of the declared return type (`u64` for
    /// `-> u64`, `Interval` for `-> Option<Interval>` — the abstract
    /// interpreter only consumes primitive segments), `None` for `()`.
    pub ret_type: Option<String>,
}

/// One `const NAME: Ty = …;` item (module-level or associated).
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// The constant's name (`FIEM_MAX_INT`).
    pub name: String,
    /// Last path segment of the declared type (`i32`, `u64`).
    pub ty: Option<String>,
    /// Token range of the initialiser expression, `[start, end)` —
    /// the tokens between `=` and the terminating `;`.
    pub init: (usize, usize),
    /// 1-based line of the `const` keyword.
    pub line: u32,
}

/// One struct field, flattened out of a `struct` item. Tuple-struct
/// fields are named by position (`"0"`, `"1"`, …).
#[derive(Debug, Clone)]
pub struct StructField {
    /// The struct's name.
    pub struct_name: String,
    /// The field name (or tuple index as a string).
    pub field: String,
    /// First path segment of the field type (`Vec` for `Vec<i8>`).
    pub ty_base: String,
    /// Last path segment of the field type (`i8` for `Vec<i8>`).
    pub ty_last: String,
}

/// One imported path from a `use` declaration, group-expanded. The
/// last segment is the name in scope (the alias for `use a::b as c`,
/// `"*"` for glob imports).
#[derive(Debug, Clone)]
pub struct UseItem {
    /// Path segments, e.g. `["crate", "render", "composite_into"]`.
    pub path: Vec<String>,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// The item skeleton of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in source order (outer before nested).
    pub fns: Vec<FnItem>,
    /// Every imported path.
    pub uses: Vec<UseItem>,
    /// Names declared `static mut` at any level (D5 shared state).
    pub static_muts: Vec<String>,
    /// `type X = [T; N];` alias names declared in this file; the
    /// workspace union resolves [`FnItem::alias_typed`] params.
    pub fixed_array_aliases: Vec<String>,
    /// `const` items (module-level and associated), for constant
    /// propagation in the abstract interpreter.
    pub consts: Vec<ConstItem>,
    /// Struct fields, for field-type lookup (`w.samples` on a
    /// `FrameWorkload` parameter) in the abstract interpreter.
    pub struct_fields: Vec<StructField>,
    /// `type X = u32;` primitive aliases (name, primitive), so
    /// literal type-alias widths participate in range checks.
    pub prim_aliases: Vec<(String, String)>,
}

/// Marks every param whose type names a workspace fixed-array alias
/// (`type GridVertex = [u32; 3];`) as a fixed array. Call once per
/// lint run, after parsing all files. Alias names are matched
/// workspace-wide without module resolution — a name collision could
/// over-exempt, but alias names here are globally unique.
pub fn resolve_array_aliases(parsed: &mut [&mut ParsedFile]) {
    let aliases: std::collections::BTreeSet<String> =
        parsed.iter().flat_map(|f| f.fixed_array_aliases.iter().cloned()).collect();
    for file in parsed {
        for f in &mut file.fns {
            for (param, ty) in &f.alias_typed {
                if aliases.contains(ty) && !f.fixed_arrays.contains(param) {
                    f.fixed_arrays.push(param.clone());
                }
            }
        }
    }
}

/// Keywords that look like call syntax when followed by `(` but are
/// control flow or operators, never callees.
pub const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "in", "loop", "return", "break", "continue", "move",
    "as", "let", "mut", "ref", "fn", "impl", "where", "unsafe", "async", "await", "dyn", "box",
];

/// Parses the item skeleton out of a lexed file.
pub fn parse_file(file: &LexedFile) -> ParsedFile {
    let mask = test_mask(&file.tokens);
    let mut parser = Parser { toks: &file.tokens, test: &mask, out: ParsedFile::default() };
    parser.items(0, file.tokens.len(), &mut Vec::new(), None);
    parser.out
}

struct Parser<'a> {
    toks: &'a [Token],
    test: &'a [bool],
    out: ParsedFile,
}

/// The `impl`/`trait` context a fn is declared in.
#[derive(Clone, Copy)]
struct ImplCtx<'a> {
    self_type: &'a str,
    trait_name: Option<&'a str>,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    /// Parses the items in `[start, end)`, appending to `self.out`.
    /// `mods` is the enclosing inline-module path.
    fn items(
        &mut self,
        start: usize,
        end: usize,
        mods: &mut Vec<String>,
        ctx: Option<ImplCtx<'_>>,
    ) {
        let mut i = start;
        let mut pending_pub = false;
        while i < end {
            match self.text(i) {
                "#" if self.text(i + 1) == "[" => {
                    // Attribute: skip by bracket matching; visibility
                    // (if any) follows the attributes, so keep state.
                    i = self.match_close(i + 1, "[", "]") + 1;
                }
                "pub" => {
                    if self.text(i + 1) == "(" {
                        // pub(crate)/pub(super)/pub(in …): crate-local.
                        i = self.match_close(i + 1, "(", ")") + 1;
                    } else {
                        pending_pub = true;
                        i += 1;
                    }
                }
                // `const NAME: Ty = …;` items are recorded for constant
                // propagation; `const fn` keeps `const` as a modifier.
                "const" if self.is_ident(i + 1) && self.text(i + 2) == ":" => {
                    i = self.const_item(i);
                    pending_pub = false;
                }
                // Modifiers between visibility and `fn`.
                "const" | "unsafe" | "async" | "extern" => i += 1,
                "struct" => {
                    i = self.struct_item(i);
                    pending_pub = false;
                }
                "fn" => {
                    i = self.fn_item(i, pending_pub, mods, ctx);
                    pending_pub = false;
                }
                "impl" => {
                    i = self.impl_item(i, mods);
                    pending_pub = false;
                }
                "trait" => {
                    i = self.trait_item(i, mods);
                    pending_pub = false;
                }
                "mod" => {
                    i = self.mod_item(i, mods);
                    pending_pub = false;
                }
                "use" => {
                    i = self.use_item(i);
                    pending_pub = false;
                }
                "static" => {
                    if self.text(i + 1) == "mut" && self.is_ident(i + 2) {
                        let name = self.text(i + 2).to_string();
                        self.out.static_muts.push(name);
                    }
                    i = self.skip_to_item_end(i + 1);
                    pending_pub = false;
                }
                "type" => {
                    i = self.type_alias(i);
                    pending_pub = false;
                }
                // Other items and stray tokens: advance. Braced item
                // bodies (struct/enum/union) contain no fns, and any
                // `{`/`}` encountered here nest correctly because fn
                // bodies are consumed whole by `fn_item`.
                _ => {
                    i += 1;
                    pending_pub = false;
                }
            }
        }
    }

    /// Parses `fn name<…>(params) -> … { body }` starting at the `fn`
    /// keyword; records the item and returns the index one past it.
    fn fn_item(
        &mut self,
        at: usize,
        is_pub: bool,
        mods: &[String],
        ctx: Option<ImplCtx<'_>>,
    ) -> usize {
        let mut i = at + 1;
        if !self.is_ident(i) {
            return i; // `fn` in type position (`fn()` pointer type)
        }
        let name = self.text(i).to_string();
        let line = self.toks[at].line;
        i += 1;
        if self.text(i) == "<" {
            i = self.match_angles(i) + 1;
        }
        if self.text(i) != "(" {
            return i;
        }
        let params_close = self.match_close(i, "(", ")");
        let (params, fixed_arrays, alias_typed) = self.param_names(i, params_close);
        // Find the body `{` (or `;` for a declaration) at depth 0 of
        // the return type / where clause, capturing the return type's
        // last path segment along the way.
        let mut j = params_close + 1;
        let mut depth = 0i32;
        let mut body = None;
        let mut in_ret = false;
        let mut ret_type = None;
        while j < self.toks.len() {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    let close = self.match_close(j, "{", "}");
                    body = Some((j, close));
                    break;
                }
                ";" if depth == 0 => break,
                ">" if depth == 0 && self.text(j.wrapping_sub(1)) == "-" => in_ret = true,
                "where" if depth == 0 => in_ret = false,
                t if in_ret
                    && depth == 0
                    && self.is_ident(j)
                    && !matches!(t, "dyn" | "impl" | "mut" | "const") =>
                {
                    ret_type = Some(t.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        let is_test = self.test.get(at).copied().unwrap_or(false);
        self.out.fns.push(FnItem {
            name,
            self_type: ctx.map(|c| c.self_type.to_string()),
            trait_name: ctx.and_then(|c| c.trait_name.map(str::to_string)),
            module_path: mods.to_vec(),
            is_pub,
            is_test,
            line,
            params,
            fixed_arrays,
            alias_typed,
            body,
            ret_type,
        });
        if let Some((open, close)) = body {
            // Nested fn items (helpers declared inside a body) become
            // their own nodes; the call graph subtracts their spans
            // from the enclosing body.
            let mut inner_mods = mods.to_vec();
            self.items(open + 1, close, &mut inner_mods, ctx);
            close + 1
        } else {
            j + 1
        }
    }

    /// Parameter names: identifiers at paren depth 1 directly followed
    /// by `:` (excluding `self` and lifetime/type positions). The
    /// second list holds params whose type span contains a `;` — in
    /// type position that can only be a fixed-size array `[T; N]`.
    /// The third pairs params with a bare-path type (`&GridVertex`,
    /// `cfg::Plan`) with that path's last segment, for workspace
    /// fixed-array alias resolution.
    fn param_names(
        &self,
        open: usize,
        close: usize,
    ) -> (Vec<String>, Vec<String>, Vec<(String, String)>) {
        let mut names = Vec::new();
        let mut fixed = Vec::new();
        let mut alias_typed = Vec::new();
        // (param name, last type ident, type is still a bare path)
        let mut current: Option<(String, Option<String>, bool)> = None;
        let mut finish = |cur: &mut Option<(String, Option<String>, bool)>| {
            if let Some((name, last_ty, bare)) = cur.take() {
                if let (Some(ty), true) = (last_ty, bare) {
                    alias_typed.push((name, ty));
                }
            }
        };
        let mut depth = 0i32;
        let mut i = open;
        while i <= close {
            match self.text(i) {
                "(" | "[" | "{" => {
                    depth += 1;
                    if let Some(cur) = current.as_mut() {
                        cur.2 = false;
                    }
                }
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 1 => finish(&mut current),
                ";" => {
                    if let Some((name, _, _)) = current.take() {
                        fixed.push(name);
                    }
                }
                "<" | ">" | "*" | "dyn" | "impl" => {
                    if let Some(cur) = current.as_mut() {
                        cur.2 = false;
                    }
                }
                ":" if depth == 1
                    && self.text(i + 1) != ":"
                    && self.text(i.wrapping_sub(1)) != ":" =>
                {
                    if i > open && self.is_ident(i - 1) {
                        let name = self.text(i - 1);
                        if name != "self" {
                            names.push(name.to_string());
                            finish(&mut current);
                            current = Some((name.to_string(), None, true));
                        }
                    }
                }
                _ => {
                    if self.is_ident(i) {
                        if let Some(cur) = current.as_mut() {
                            cur.1 = Some(self.text(i).to_string());
                        }
                    }
                }
            }
            i += 1;
        }
        finish(&mut current);
        (names, fixed, alias_typed)
    }

    /// Parses `const NAME: Ty = init;` starting at `const`; records the
    /// item (name, declared-type last segment, initialiser token span)
    /// and returns the index one past the terminating `;`.
    fn const_item(&mut self, at: usize) -> usize {
        let name = self.text(at + 1).to_string();
        let line = self.toks[at].line;
        let mut ty = None;
        let mut depth = 0i32;
        let mut i = at + 3;
        let mut eq = None;
        while i < self.toks.len() {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 => {
                    eq = Some(i);
                    break;
                }
                ";" if depth == 0 => break, // `const X: Ty;` (trait decl)
                t if depth == 0 && self.is_ident(i) => ty = Some(t.to_string()),
                _ => {}
            }
            i += 1;
        }
        let Some(eq) = eq else { return i + 1 };
        let mut j = eq + 1;
        let mut depth = 0i32;
        while j < self.toks.len() {
            match self.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        self.out.consts.push(ConstItem { name, ty, init: (eq + 1, j), line });
        j + 1
    }

    /// Parses `struct Name { … }` / `struct Name(…);` / `struct Name;`
    /// starting at `struct`, flattening the fields into
    /// [`ParsedFile::struct_fields`]; returns the index one past it.
    fn struct_item(&mut self, at: usize) -> usize {
        if !self.is_ident(at + 1) {
            return at + 1;
        }
        let name = self.text(at + 1).to_string();
        let mut i = at + 2;
        if self.text(i) == "<" {
            i = self.match_angles(i) + 1;
        }
        // Skip a where clause before the body, if any.
        while i < self.toks.len() && !matches!(self.text(i), "{" | "(" | ";") {
            i += 1;
        }
        match self.text(i) {
            "{" => {
                let close = self.match_close(i, "{", "}");
                self.record_fields(&name, i + 1, close, false);
                close + 1
            }
            "(" => {
                let close = self.match_close(i, "(", ")");
                self.record_fields(&name, i + 1, close, true);
                // Tuple struct: consume through the trailing `;`.
                let mut j = close + 1;
                while j < self.toks.len() && self.text(j) != ";" {
                    j += 1;
                }
                j + 1
            }
            _ => i + 1,
        }
    }

    /// Records the fields in a struct body span `[lo, hi)`. Named
    /// fields are `ident :` pairs at depth 0; tuple fields are the
    /// comma-separated type segments, named by position. The recorded
    /// type is its (first, last) path-segment pair — enough to
    /// recognise both `u64` and the element type of `Vec<i8>`.
    fn record_fields(&mut self, struct_name: &str, lo: usize, hi: usize, tuple: bool) {
        let mut field: Option<String> = None;
        let mut ty: Vec<String> = Vec::new();
        let mut tuple_idx = 0usize;
        let mut depth = 0i32;
        let mut angles = 0i32;
        let mut i = lo;
        let flush =
            |field: &mut Option<String>, ty: &mut Vec<String>, out: &mut Vec<StructField>| {
                if let (Some(f), false) = (field.take(), ty.is_empty()) {
                    out.push(StructField {
                        struct_name: struct_name.to_string(),
                        field: f,
                        ty_base: ty[0].clone(),
                        ty_last: ty[ty.len() - 1].clone(),
                    });
                }
                ty.clear();
            };
        if tuple {
            field = Some("0".to_string());
        }
        while i < hi {
            match self.text(i) {
                "#" if self.text(i + 1) == "[" => {
                    i = self.match_close(i + 1, "[", "]") + 1;
                    continue;
                }
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => angles += 1,
                ">" => angles -= 1,
                "," if depth == 0 && angles == 0 => {
                    flush(&mut field, &mut ty, &mut self.out.struct_fields);
                    if tuple {
                        tuple_idx += 1;
                        field = Some(tuple_idx.to_string());
                    }
                }
                ":" if !tuple
                    && depth == 0
                    && angles == 0
                    && self.text(i + 1) != ":"
                    && self.text(i.wrapping_sub(1)) != ":"
                    && i > lo
                    && self.is_ident(i - 1) =>
                {
                    field = Some(self.text(i - 1).to_string());
                    ty.clear();
                }
                t if self.is_ident(i)
                    && !matches!(t, "pub" | "crate" | "dyn" | "mut")
                    && (field.is_some() || tuple) =>
                {
                    ty.push(t.to_string());
                }
                _ => {}
            }
            i += 1;
        }
        flush(&mut field, &mut ty, &mut self.out.struct_fields);
    }

    /// Parses `impl<…> [Trait for] Type { … }`; returns one past it.
    fn impl_item(&mut self, at: usize, mods: &mut Vec<String>) -> usize {
        let mut i = at + 1;
        if self.text(i) == "<" {
            i = self.match_angles(i) + 1;
        }
        // Collect the path(s) up to the body: `Trait for Type` or
        // `Type`. Only the last identifier of each path matters.
        let mut first_path_last = None;
        let mut second_path_last = None;
        let mut saw_for = false;
        while i < self.toks.len() {
            match self.text(i) {
                "{" => break,
                ";" => return i + 1, // e.g. `impl Trait for Type;` (never in practice)
                "for" => {
                    saw_for = true;
                    i += 1;
                }
                "where" => {
                    // Skip the where clause to the body brace.
                    while i < self.toks.len() && self.text(i) != "{" {
                        i += 1;
                    }
                    break;
                }
                "<" => i = self.match_angles(i) + 1,
                _ => {
                    if self.is_ident(i) {
                        let slot =
                            if saw_for { &mut second_path_last } else { &mut first_path_last };
                        *slot = Some(self.text(i).to_string());
                    }
                    i += 1;
                }
            }
        }
        if self.text(i) != "{" {
            return i;
        }
        let close = self.match_close(i, "{", "}");
        let (self_type, trait_name) =
            if saw_for { (second_path_last, first_path_last) } else { (first_path_last, None) };
        if let Some(self_type) = self_type {
            let ctx = ImplCtx { self_type: &self_type, trait_name: trait_name.as_deref() };
            self.items(i + 1, close, mods, Some(ctx));
        }
        close + 1
    }

    /// Parses `trait Name { … }`; default methods get the trait as
    /// their `Self` type so conservative method resolution finds them.
    fn trait_item(&mut self, at: usize, mods: &mut Vec<String>) -> usize {
        let mut i = at + 1;
        if !self.is_ident(i) {
            return i;
        }
        let name = self.text(i).to_string();
        i += 1;
        while i < self.toks.len() && !matches!(self.text(i), "{" | ";") {
            if self.text(i) == "<" {
                i = self.match_angles(i) + 1;
            } else {
                i += 1;
            }
        }
        if self.text(i) != "{" {
            return i + 1;
        }
        let close = self.match_close(i, "{", "}");
        let ctx = ImplCtx { self_type: &name, trait_name: Some(&name) };
        self.items(i + 1, close, mods, Some(ctx));
        close + 1
    }

    /// Parses `type Name = …;`, recording the name when the aliased
    /// type contains a `;` at bracket depth — in type position that
    /// can only be a fixed-size array `[T; N]`. Returns one past the
    /// terminating `;`.
    fn type_alias(&mut self, at: usize) -> usize {
        let name = if self.is_ident(at + 1) { Some(self.text(at + 1).to_string()) } else { None };
        let mut depth = 0i32;
        let mut is_array = false;
        let mut rhs_idents = 0usize;
        let mut rhs_last = None;
        let mut saw_eq = false;
        let mut i = at + 1;
        while i < self.toks.len() {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => break,
                ";" => is_array = true,
                "=" if depth == 0 => saw_eq = true,
                t if saw_eq && self.is_ident(i) => {
                    rhs_idents += 1;
                    rhs_last = Some(t.to_string());
                }
                _ => {}
            }
            i += 1;
        }
        if let Some(name) = name {
            if is_array {
                self.out.fixed_array_aliases.push(name);
            } else if let (1, Some(prim)) = (rhs_idents, rhs_last) {
                // `type SampleCount = u64;` — a literal width alias.
                self.out.prim_aliases.push((name, prim));
            }
        }
        i + 1
    }

    /// Parses `mod name { … }` (recursing) or `mod name;` (skipped —
    /// the file walker visits the out-of-line file itself).
    fn mod_item(&mut self, at: usize, mods: &mut Vec<String>) -> usize {
        if !self.is_ident(at + 1) {
            return at + 1;
        }
        let name = self.text(at + 1).to_string();
        match self.text(at + 2) {
            "{" => {
                let close = self.match_close(at + 2, "{", "}");
                mods.push(name);
                self.items(at + 3, close, mods, None);
                mods.pop();
                close + 1
            }
            _ => at + 2,
        }
    }

    /// Parses `use path::{a, b as c};` into flattened [`UseItem`]s.
    fn use_item(&mut self, at: usize) -> usize {
        let line = self.toks[at].line;
        let mut end = at + 1;
        while end < self.toks.len() && self.text(end) != ";" {
            end += 1;
        }
        let mut paths = Vec::new();
        self.expand_use(at + 1, end, &mut Vec::new(), &mut paths);
        for path in paths {
            if !path.is_empty() {
                self.out.uses.push(UseItem { path, line });
            }
        }
        end + 1
    }

    /// Recursive group expansion for one use-tree span `[i, end)`.
    fn expand_use(
        &self,
        mut i: usize,
        end: usize,
        prefix: &mut Vec<String>,
        out: &mut Vec<Vec<String>>,
    ) {
        let base_len = prefix.len();
        let mut last_alias: Option<String> = None;
        while i < end {
            match self.text(i) {
                "{" => {
                    // Split the group body on top-level commas and
                    // expand each arm with the current prefix.
                    let close = self.match_close(i, "{", "}");
                    let mut arm_start = i + 1;
                    let mut depth = 0i32;
                    let mut j = i + 1;
                    while j <= close.min(end) {
                        match self.text(j) {
                            "{" => depth += 1,
                            "}" if depth > 0 => depth -= 1,
                            "," if depth == 0 => {
                                self.expand_use(arm_start, j, prefix, out);
                                arm_start = j + 1;
                            }
                            "}" => {
                                self.expand_use(arm_start, j, prefix, out);
                                arm_start = j + 1;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    prefix.truncate(base_len);
                    return;
                }
                "as" => {
                    if self.is_ident(i + 1) {
                        last_alias = Some(self.text(i + 1).to_string());
                    }
                    i += 2;
                }
                ":" => i += 1,
                "*" => {
                    prefix.push("*".to_string());
                    break;
                }
                "," => break,
                _ => {
                    if self.is_ident(i) {
                        prefix.push(self.text(i).to_string());
                    }
                    i += 1;
                }
            }
        }
        let mut path = prefix.clone();
        if let (Some(alias), Some(last)) = (last_alias, path.last_mut()) {
            *last = alias;
        }
        if path.len() > base_len {
            out.push(path);
        }
        prefix.truncate(base_len);
    }

    /// Skips to the end of a non-fn item: the `;` or the matching
    /// close of the first `{` at depth 0. Returns one past it.
    fn skip_to_item_end(&self, mut i: usize) -> usize {
        let mut depth = 0i32;
        while i < self.toks.len() {
            match self.text(i) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return self.match_close(i, "{", "}") + 1,
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Index of the close matching the open bracket at `open`; the
    /// last token on unbalanced input (tolerated, like the lexer).
    fn match_close(&self, open: usize, open_text: &str, close_text: &str) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.toks.len() {
            let t = self.text(i);
            if t == open_text {
                depth += 1;
            } else if t == close_text {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.toks.len().saturating_sub(1)
    }

    /// Matches generic angle brackets starting at a `<`; `->` arrows
    /// inside bounds (`F: Fn() -> T`) do not close a level. Returns
    /// the index of the closing `>`.
    fn match_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.toks.len() {
            match self.text(i) {
                "<" => depth += 1,
                ">" if self.text(i.wrapping_sub(1)) == "-" => {} // `->`
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                // `(…)` inside bounds may contain `<`-free commas etc.
                "(" => i = self.match_close(i, "(", ")"),
                ";" | "{" => return i.saturating_sub(1), // malformed: bail
                _ => {}
            }
            i += 1;
        }
        self.toks.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src))
    }

    #[test]
    fn free_impl_and_nested_fns_are_found() {
        let src = r#"
            pub fn top(a: u32, b: &[f32]) -> u32 { helper(a) }
            fn helper(x: u32) -> u32 { x }
            struct S;
            impl S {
                pub fn method(&self, n: usize) -> usize {
                    fn inner(k: usize) -> usize { k }
                    inner(n)
                }
            }
            impl Clone for S { fn clone(&self) -> S { S } }
            mod detail { pub fn nested_mod_fn() {} }
        "#;
        let parsed = parse(src);
        let names: Vec<(&str, Option<&str>, bool)> = parsed
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_type.as_deref(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("top", None, true),
                ("helper", None, false),
                ("method", Some("S"), true),
                ("inner", Some("S"), false),
                ("clone", Some("S"), false),
                ("nested_mod_fn", None, true),
            ]
        );
        assert_eq!(parsed.fns[0].params, vec!["a", "b"]);
        assert_eq!(parsed.fns[2].params, vec!["n"]);
        assert_eq!(parsed.fns[4].trait_name.as_deref(), Some("Clone"));
        assert_eq!(parsed.fns[5].module_path, vec!["detail"]);
    }

    #[test]
    fn generics_with_fn_bounds_parse() {
        let src = "pub fn map<F: Fn(u32) -> u32>(f: F, xs: &[u32]) -> u32 { f(xs[0]) }";
        let parsed = parse(src);
        assert_eq!(parsed.fns.len(), 1);
        assert_eq!(parsed.fns[0].name, "map");
        assert_eq!(parsed.fns[0].params, vec!["f", "xs"]);
        assert!(parsed.fns[0].body.is_some());
    }

    #[test]
    fn pub_crate_is_not_public() {
        let parsed = parse("pub(crate) fn internal() {} pub fn external() {}");
        assert!(!parsed.fns[0].is_pub);
        assert!(parsed.fns[1].is_pub);
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "#[test]\nfn check() { assert!(true); }\npub fn real() {}";
        let parsed = parse(src);
        assert!(parsed.fns[0].is_test);
        assert!(!parsed.fns[1].is_test);
    }

    #[test]
    fn use_groups_expand_with_aliases() {
        let src = "use crate::render::{composite, composite_into as ci};\nuse std::fmt::Write;";
        let parsed = parse(src);
        let paths: Vec<Vec<&str>> =
            parsed.uses.iter().map(|u| u.path.iter().map(String::as_str).collect()).collect();
        assert_eq!(
            paths,
            vec![
                vec!["crate", "render", "composite"],
                vec!["crate", "render", "ci"],
                vec!["std", "fmt", "Write"],
            ]
        );
    }

    #[test]
    fn fixed_array_params_are_detected() {
        let src =
            "pub fn hash(v: &[u32; 3], xs: &[u32], n: usize, m: [f32; 16]) -> u32 { n as u32 }";
        let parsed = parse(src);
        assert_eq!(parsed.fns[0].params, vec!["v", "xs", "n", "m"]);
        assert_eq!(parsed.fns[0].fixed_arrays, vec!["v", "m"]);
    }

    #[test]
    fn static_mut_is_recorded() {
        let parsed = parse("static mut COUNTER: u32 = 0;\nstatic OK: u32 = 0;");
        assert_eq!(parsed.static_muts, vec!["COUNTER"]);
    }

    #[test]
    fn trait_default_methods_get_trait_self_type() {
        let src = "trait Kernel { fn run(&self); fn twice(&self) { self.run(); self.run(); } }";
        let parsed = parse(src);
        assert_eq!(parsed.fns.len(), 2);
        assert_eq!(parsed.fns[0].name, "run");
        assert!(parsed.fns[0].body.is_none());
        assert_eq!(parsed.fns[1].name, "twice");
        assert_eq!(parsed.fns[1].self_type.as_deref(), Some("Kernel"));
    }
}
