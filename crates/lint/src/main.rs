//! CLI for `fusion3d-lint`.
//!
//! ```text
//! fusion3d-lint [--root <dir>] [--json]
//! ```
//!
//! Human mode prints one `path:line [RULE] message` row per finding
//! plus a summary; `--json` prints one JSON object per finding (JSON
//! Lines, stable field order) so CI can diff findings across commits.
//! Exit status is 0 when the workspace is clean, 1 when findings
//! exist, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use fusion3d_lint::{find_workspace_root, lint_workspace, Finding};

struct Options {
    root: Option<PathBuf>,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options { root: None, json: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => options.json = true,
            "--root" => {
                let value = args.next().ok_or("--root requires a path argument")?;
                options.root = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                return Err("usage: fusion3d-lint [--root <dir>] [--json]".to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_finding_json(f: &Finding) {
    println!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
        f.rule,
        json_escape(&f.path),
        f.line,
        json_escape(&f.message)
    );
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let root = match options.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("fusion3d-lint: no workspace root at or above the current directory");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("fusion3d-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if options.json {
        for finding in &report.findings {
            print_finding_json(finding);
        }
    } else {
        for finding in &report.findings {
            println!("{}:{} [{}] {}", finding.path, finding.line, finding.rule, finding.message);
        }
    }
    eprintln!(
        "fusion3d-lint: {} finding(s) across {} file(s)",
        report.findings.len(),
        report.files_scanned
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
