//! CLI for `fusion3d-lint`.
//!
//! ```text
//! fusion3d-lint [--root <dir>] [--json] [--baseline <file>] [--write-baseline <file>]
//! ```
//!
//! Human mode prints one `path:line [RULE] message` row per finding
//! plus a summary; `--json` prints one JSON object per finding (JSON
//! Lines, stable field order) so CI can diff findings across commits.
//!
//! `--baseline <file>` reads a committed JSON-lines artifact of known
//! findings and fails only on findings *not* in it, so the gate is
//! adoptable incrementally; `--write-baseline <file>` writes the
//! current findings in that format. A missing or empty baseline file
//! means "no known findings".
//!
//! Exit status is 0 when the workspace is clean (or fully baselined),
//! 1 when new findings exist, 2 on usage or I/O errors.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use fusion3d_lint::{find_workspace_root, lint_workspace, Finding};

struct Options {
    root: Option<PathBuf>,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options { root: None, json: false, baseline: None, write_baseline: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => options.json = true,
            "--root" => {
                let value = args.next().ok_or("--root requires a path argument")?;
                options.root = Some(PathBuf::from(value));
            }
            "--baseline" => {
                let value = args.next().ok_or("--baseline requires a file argument")?;
                options.baseline = Some(PathBuf::from(value));
            }
            "--write-baseline" => {
                let value = args.next().ok_or("--write-baseline requires a file argument")?;
                options.write_baseline = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                return Err("usage: fusion3d-lint [--root <dir>] [--json] \
                            [--baseline <file>] [--write-baseline <file>]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"schema\":2,\"id\":\"{}\",\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
        json_escape(&f.id),
        f.rule,
        json_escape(&f.path),
        f.line,
        json_escape(&f.message)
    )
}

/// Extracts the `"id"` value from one serialized finding record.
fn record_id(line: &str) -> Option<&str> {
    let rest = line.split_once("\"id\":\"")?.1;
    rest.split_once('"').map(|(id, _)| id)
}

/// Reads a JSON-lines baseline into the set of finding ids it names
/// (schema 2: `rule:crate:fn-path:snippet-hash[#n]`). Matching on ids
/// instead of serialized records means a baselined finding survives
/// line renumbering and message-wording tweaks, but retires when the
/// flagged line or its enclosing function changes. A missing file is
/// an empty baseline; a file with lines that are not schema-2 finding
/// records is a malformed artifact and a hard error (exit 2), not an
/// empty one — silently matching nothing would report every finding
/// as new.
fn read_baseline(path: &PathBuf) -> Result<BTreeSet<String>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeSet::new()),
        Err(err) => return Err(format!("cannot read baseline {}: {err}", path.display())),
    };
    let mut baseline = BTreeSet::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let id = if line.starts_with('{') && line.ends_with('}') && line.contains("\"rule\":") {
            record_id(line)
        } else {
            None
        };
        match id {
            Some(id) => {
                baseline.insert(id.to_string());
            }
            None => {
                return Err(format!(
                    "malformed baseline {}: line {} is not a schema-2 finding record \
                     (regenerate with --write-baseline)",
                    path.display(),
                    idx + 1
                ))
            }
        }
    }
    Ok(baseline)
}

/// `"3 A2, 1 U1"`-style per-rule tally for the summary line.
fn rule_counts(findings: &[&Finding]) -> String {
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    counts.iter().map(|(rule, n)| format!("{n} {rule}")).collect::<Vec<_>>().join(", ")
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let root = match options.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("fusion3d-lint: no workspace root at or above the current directory");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("fusion3d-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &options.write_baseline {
        let mut text = String::new();
        for finding in &report.findings {
            text.push_str(&finding_json(finding));
            text.push('\n');
        }
        if let Err(err) = std::fs::write(path, text) {
            eprintln!("fusion3d-lint: cannot write baseline {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    let baseline = match options.baseline.as_ref().map(read_baseline).transpose() {
        Ok(baseline) => baseline.unwrap_or_default(),
        Err(message) => {
            eprintln!("fusion3d-lint: {message}");
            return ExitCode::from(2);
        }
    };
    let (new, known): (Vec<&Finding>, Vec<&Finding>) =
        report.findings.iter().partition(|f| !baseline.contains(&f.id));

    if options.json {
        for finding in &new {
            println!("{}", finding_json(finding));
        }
    } else {
        for finding in &new {
            println!("{}:{} [{}] {}", finding.path, finding.line, finding.rule, finding.message);
        }
    }
    let by_rule = rule_counts(&new);
    eprintln!(
        "fusion3d-lint: {} new finding(s){}, {} baselined, across {} file(s)",
        new.len(),
        if by_rule.is_empty() { String::new() } else { format!(" ({by_rule})") },
        known.len(),
        report.files_scanned
    );
    if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
