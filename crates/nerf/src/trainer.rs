//! The training loop: instant 3D reconstruction on the algorithm side.
//!
//! Each step samples a batch of training rays, runs the full
//! three-stage pipeline forward, computes an L2 photometric loss,
//! backpropagates through compositing, the MLPs, and the hash grid,
//! and applies Adam. The trainer also maintains the occupancy grid
//! (periodically refreshed from the current density field) and keeps a
//! byte-accurate ledger of inter- and intra-stage data volumes — the
//! quantities behind the paper's Fig. 3 bandwidth analysis.

use crate::adam::AdamConfig;
use crate::batch::{KernelScratch, SampleBatch};
use crate::dataset::Dataset;
use crate::image::Image;
use crate::math::Vec3;
use crate::model::{ModelGrads, ModelOptimizer, NerfModel};
use crate::occupancy::OccupancyGrid;
use crate::pipeline::{render_image, PipelineConfig};
use crate::render::{composite_backward_into, composite_into, SampleGrad};
use crate::sampler::{sample_ray_into, SamplerConfig};
use fusion3d_par::Pool;
use rand::Rng;

/// Number of gradient shards per training step. Fixed (never derived
/// from the thread count) so the shard boundaries — and therefore the
/// f32 gradient-accumulation order — are identical no matter how many
/// workers execute them. Thread counts above this see no further
/// training speedup.
const GRAD_SHARDS: usize = 16;

/// Byte ledger of the data volumes moved by training, split along the
/// paper's Fig. 3 stage boundaries.
///
/// "Internal" volumes are the partial sums that a stage-local
/// accelerator would have to spill off-chip; "boundary" volumes are
/// the hand-offs between stages; `end_to_end_io` is the only traffic
/// the fully fused end-to-end accelerator must move off-chip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DataVolume {
    /// Stage I → Stage II hand-off (sample positions, `t`, `δt`).
    pub stage1_to_stage2: u64,
    /// Stage II internal traffic (feature-table gathers forward,
    /// read-modify-write scatters backward).
    pub stage2_internal: u64,
    /// Stage II → Stage III hand-off (encoded features forward,
    /// feature gradients backward).
    pub stage2_to_stage3: u64,
    /// Stage III internal traffic (MLP activations forward and
    /// backward, compositing state).
    pub stage3_internal: u64,
    /// True end-to-end input/output: training images in, final model
    /// parameters out.
    pub end_to_end_io: u64,
}

impl DataVolume {
    /// Total intermediate volume (everything except end-to-end I/O).
    pub fn total_intermediate(&self) -> u64 {
        self.stage1_to_stage2 + self.stage2_internal + self.stage2_to_stage3 + self.stage3_internal
    }

    /// Sum of the stage-boundary hand-offs only.
    pub fn inter_stage(&self) -> u64 {
        self.stage1_to_stage2 + self.stage2_to_stage3
    }

    /// Sum of the within-stage partial-sum traffic only.
    pub fn intra_stage(&self) -> u64 {
        self.stage2_internal + self.stage3_internal
    }
}

impl std::ops::Add for DataVolume {
    type Output = DataVolume;
    fn add(self, rhs: DataVolume) -> DataVolume {
        DataVolume {
            stage1_to_stage2: self.stage1_to_stage2 + rhs.stage1_to_stage2,
            stage2_internal: self.stage2_internal + rhs.stage2_internal,
            stage2_to_stage3: self.stage2_to_stage3 + rhs.stage2_to_stage3,
            stage3_internal: self.stage3_internal + rhs.stage3_internal,
            end_to_end_io: self.end_to_end_io + rhs.end_to_end_io,
        }
    }
}

/// Estimates the data volume one training step moves, from the model
/// architecture alone — the analytic form of the trainer's ledger,
/// used to project Fig. 3 / Fig. 13(b) volumes to paper scale without
/// running a full-size training job.
///
/// `rays` and `samples` are the step's batch statistics. The formula
/// matches the trainer's per-step accounting exactly.
pub fn estimate_step_volume(
    config: &crate::model::ModelConfig,
    rays: u64,
    samples: u64,
) -> DataVolume {
    estimate_step_volume_dims(config.grid.output_dim() as u64, rays, samples)
}

/// [`estimate_step_volume`] in terms of the encoded feature dimension
/// alone, usable with any [`crate::encoding::Encoding`].
pub fn estimate_step_volume_dims(enc_dim: u64, rays: u64, samples: u64) -> DataVolume {
    DataVolume {
        // Stage I → II: position (12 B) + t (4 B) + δt (4 B) per
        // sample, plus a per-ray direction.
        stage1_to_stage2: samples * 20 + rays * 12,
        // Stage II internal: the per-level interpolated-feature
        // partial sums — read-modify-written during the training
        // scatter (3 passes). The eight corner fetches behind each
        // level stay inside the interpolation array's registers and
        // are modelled as SRAM traffic by `fusion3d-mem`, not as
        // spillable intermediate volume.
        stage2_internal: samples * enc_dim * 4 * 3,
        // Stage II → III: encoded features forward + gradients back.
        stage2_to_stage3: samples * enc_dim * 4 * 2,
        // Stage III internal: per-sample compositing terms (weight,
        // transmittance, α) plus per-ray accumulators; the tiny MLPs
        // are fully fused (as in Instant-NGP and the chip's MLP
        // engine), so their activations never spill.
        stage3_internal: samples * 48 + rays * 32,
        end_to_end_io: 0,
    }
}

/// Trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Rays per optimization step.
    pub rays_per_batch: usize,
    /// Adam settings (applied to all three parameter groups).
    pub adam: AdamConfig,
    /// Stage-I sampler settings.
    pub sampler: SamplerConfig,
    /// Occupancy-grid resolution per axis.
    pub occupancy_resolution: u32,
    /// Density threshold for occupancy.
    pub occupancy_threshold: f32,
    /// Refresh the occupancy grid every this many iterations.
    pub occupancy_update_interval: u32,
    /// EMA decay used in occupancy refreshes.
    pub occupancy_decay: f32,
    /// Iterations before the first occupancy refresh (the grid starts
    /// fully occupied).
    pub occupancy_warmup: u32,
    /// Background color composited behind the last sample.
    pub background: Vec3,
    /// Multiplicative learning-rate decay applied every
    /// `lr_decay_interval` iterations (1.0 disables the schedule).
    pub lr_decay: f32,
    /// Iterations between learning-rate decays.
    pub lr_decay_interval: u32,
}

impl Default for TrainerConfig {
    /// Settings tuned for fast CPU training of the compact default
    /// model while retaining the structure of Instant-NGP's schedule.
    fn default() -> Self {
        TrainerConfig {
            rays_per_batch: 128,
            adam: AdamConfig::default(),
            sampler: SamplerConfig { steps_per_diagonal: 96, max_samples_per_ray: 64 },
            occupancy_resolution: 24,
            occupancy_threshold: 0.5,
            occupancy_update_interval: 24,
            occupancy_decay: 0.9,
            occupancy_warmup: 48,
            background: Vec3::ONE,
            // Instant-NGP-style schedule: a gentle exponential decay
            // keeps late iterations from oscillating.
            lr_decay: 0.85,
            lr_decay_interval: 160,
        }
    }
}

/// Statistics of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Mean squared photometric error over the batch.
    pub loss: f64,
    /// Rays processed.
    pub rays: usize,
    /// Sample points processed.
    pub samples: usize,
}

/// Reusable per-shard scratch for one slice of a training batch: a
/// private gradient buffer plus the forward/backward working memory,
/// so the hot loop allocates nothing per ray.
#[derive(Debug)]
struct ShardScratch {
    grads: ModelGrads,
    samples: SampleBatch,
    kernel: KernelScratch,
    sample_grads: Vec<SampleGrad>,
    d_sigma: Vec<f32>,
    d_color: Vec<Vec3>,
}

impl ShardScratch {
    fn new<E: crate::encoding::Encoding>(model: &NerfModel<E>) -> Self {
        ShardScratch {
            grads: model.alloc_grads(),
            samples: SampleBatch::new(),
            kernel: KernelScratch::new(),
            sample_grads: Vec::new(),
            d_sigma: Vec::new(),
            d_color: Vec::new(),
        }
    }
}

/// A NeRF trainer owning the model, occupancy grid, and optimizer
/// state. Generic over the model's spatial encoding (hash grid by
/// default).
#[derive(Debug)]
pub struct Trainer<E: crate::encoding::Encoding = crate::encoding::HashGrid> {
    model: NerfModel<E>,
    occupancy: OccupancyGrid,
    optimizer: ModelOptimizer,
    grads: ModelGrads,
    config: TrainerConfig,
    iteration: u32,
    volume: DataVolume,
    shards: Vec<ShardScratch>,
}

impl<E: crate::encoding::Encoding> Trainer<E> {
    /// Creates a trainer for `model`. The occupancy grid starts fully
    /// occupied (no gating) until the first refresh.
    pub fn new(model: NerfModel<E>, config: TrainerConfig) -> Self {
        let mut occupancy =
            OccupancyGrid::new(config.occupancy_resolution, config.occupancy_threshold);
        occupancy.fill();
        let optimizer = ModelOptimizer::new(config.adam, &model);
        let grads = model.alloc_grads();
        Trainer {
            model,
            occupancy,
            optimizer,
            grads,
            config,
            iteration: 0,
            volume: DataVolume::default(),
            shards: Vec::new(),
        }
    }

    /// The model being trained.
    #[inline]
    pub fn model(&self) -> &NerfModel<E> {
        &self.model
    }

    /// Mutable model access (used by quantized-training experiments).
    #[inline]
    pub fn model_mut(&mut self) -> &mut NerfModel<E> {
        &mut self.model
    }

    /// The current occupancy grid.
    #[inline]
    pub fn occupancy(&self) -> &OccupancyGrid {
        &self.occupancy
    }

    /// The trainer configuration.
    #[inline]
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Iterations completed.
    #[inline]
    pub fn iteration(&self) -> u32 {
        self.iteration
    }

    /// The cumulative data-volume ledger.
    #[inline]
    pub fn data_volume(&self) -> &DataVolume {
        &self.volume
    }

    /// Consumes the trainer, returning the trained model and occupancy
    /// grid.
    pub fn into_parts(self) -> (NerfModel<E>, OccupancyGrid) {
        (self.model, self.occupancy)
    }

    /// Registers the one-time end-to-end input volume (the training
    /// images). Call once before training when tracking Fig. 3
    /// volumes.
    pub fn record_dataset_input(&mut self, dataset: &Dataset) {
        // RGB f32 pixels plus 12 floats of camera pose per view.
        let pixels: u64 = dataset.total_rays();
        self.volume.end_to_end_io += pixels * 12 + dataset.views().len() as u64 * 48;
    }

    /// Registers the one-time end-to-end output volume (the trained
    /// parameters). Call once after training when tracking Fig. 3
    /// volumes.
    pub fn record_model_output(&mut self) {
        self.volume.end_to_end_io += self.model.param_count() as u64 * 4;
    }

    fn maybe_refresh_occupancy<R: Rng>(&mut self, rng: &mut R) {
        if self.iteration >= self.config.occupancy_warmup
            && self.iteration.is_multiple_of(self.config.occupancy_update_interval)
        {
            let model = &self.model;
            self.occupancy.update(|p| model.density_at(p), self.config.occupancy_decay, rng);
        }
    }

    fn account_step_volume(&mut self, rays: usize, samples: usize) {
        self.volume = self.volume
            + estimate_step_volume_dims(
                self.model.grid().output_dim() as u64,
                rays as u64,
                samples as u64,
            );
    }

    /// Runs one optimization step on a random batch from `dataset`.
    pub fn step<R: Rng>(&mut self, dataset: &Dataset, rng: &mut R) -> StepStats {
        if self.config.lr_decay != 1.0
            && self.config.lr_decay_interval > 0
            && self.iteration > 0
            && self.iteration.is_multiple_of(self.config.lr_decay_interval)
        {
            let decays = self.iteration / self.config.lr_decay_interval;
            self.optimizer.set_learning_rate(
                self.config.adam.learning_rate * self.config.lr_decay.powi(decays as i32),
            );
        }
        self.maybe_refresh_occupancy(rng);
        let batch = dataset.sample_batch(self.config.rays_per_batch, rng);

        // Shard the batch into contiguous ray ranges, one gradient
        // buffer per shard. Shard geometry depends only on the batch
        // size, and shards merge in shard-index order below, so the
        // updated parameters are bitwise-identical for any thread
        // count.
        let max_shards = GRAD_SHARDS.min(batch.len()).max(1);
        let rays_per_shard = batch.len().div_ceil(max_shards);
        // Re-derive the count from the shard size so the last shard
        // ends exactly at the batch boundary: batch sizes that are not
        // multiples of GRAD_SHARDS would otherwise leave trailing
        // shards whose start lies past the end of the batch.
        let shard_count = batch.len().div_ceil(rays_per_shard.max(1)).max(1);
        while self.shards.len() < shard_count {
            // lint: allow(h2): shards grow lazily to the shard count
            // on the first step, then are reused by every later one
            self.shards.push(ShardScratch::new(&self.model));
        }
        let inv_norm = 1.0 / (batch.len() as f32 * 3.0);

        // Split the borrow: workers read the model/occupancy/config
        // while holding exclusive access to their shard scratch.
        let Trainer { model, occupancy, config, shards, .. } = &mut *self;
        let model: &NerfModel<E> = model;
        let occupancy: &OccupancyGrid = occupancy;
        let config: &TrainerConfig = config;
        let batch_ref = &batch;

        let shard_stats: Vec<(f64, usize)> =
            Pool::new().run_tasks(&mut shards[..shard_count], |index, scratch| {
                scratch.grads.zero();
                let start = (index * rays_per_shard).min(batch_ref.len());
                let end = (start + rays_per_shard).min(batch_ref.len());
                let mut loss_sum = 0.0f64;
                let mut sample_count = 0usize;
                for (ray, target) in &batch_ref[start..end] {
                    // Stage I into the reusable SoA batch, then one
                    // batched forward/backward over the whole ray.
                    sample_ray_into(ray, occupancy, &config.sampler, &mut scratch.samples);
                    sample_count += scratch.samples.len();
                    model.forward_batch(
                        scratch.samples.positions(),
                        ray.direction,
                        &mut scratch.kernel,
                    );
                    scratch.kernel.build_shaded(scratch.samples.dts());
                    let (color, _) = composite_into(
                        &scratch.kernel.shaded,
                        config.background,
                        false,
                        &mut scratch.kernel.weights,
                    );
                    let err = color - *target;
                    loss_sum += (err.length_squared() / 3.0) as f64;
                    // d(mean squared error)/d(pixel color).
                    let d_pixel = err * (2.0 * inv_norm);
                    composite_backward_into(
                        &scratch.kernel.shaded,
                        config.background,
                        d_pixel,
                        &mut scratch.sample_grads,
                    );
                    scratch.d_sigma.clear();
                    scratch.d_color.clear();
                    for g in &scratch.sample_grads {
                        scratch.d_sigma.push(g.d_sigma); // lint: allow(h2): amortized into retained scratch capacity
                        scratch.d_color.push(g.d_color); // lint: allow(h2): amortized into retained scratch capacity
                    }
                    model.backward_batch(
                        scratch.samples.positions(),
                        &scratch.d_sigma,
                        &scratch.d_color,
                        &mut scratch.kernel,
                        &mut scratch.grads,
                    );
                }
                (loss_sum, sample_count)
            });

        // Fixed-order merge: shard gradients and losses accumulate in
        // shard-index order regardless of which worker finished first.
        let mut loss_sum = 0.0f64;
        let mut sample_count = 0usize;
        for (loss, samples) in shard_stats {
            loss_sum += loss;
            sample_count += samples;
        }
        self.grads.zero();
        for scratch in &self.shards[..shard_count] {
            self.grads.accumulate(&scratch.grads);
        }

        self.optimizer.step(&mut self.model, &self.grads);
        self.iteration += 1;
        self.account_step_volume(batch.len(), sample_count);
        StepStats { loss: loss_sum / batch.len() as f64, rays: batch.len(), samples: sample_count }
    }

    /// Runs `iterations` steps and returns the mean loss of the final
    /// quarter of them.
    pub fn train<R: Rng>(&mut self, dataset: &Dataset, iterations: u32, rng: &mut R) -> f64 {
        let mut tail = Vec::new();
        for i in 0..iterations {
            let stats = self.step(dataset, rng);
            if i >= iterations - iterations.div_ceil(4) {
                tail.push(stats.loss);
            }
        }
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }

    /// Renders every view of `dataset` with the current model and
    /// returns the mean PSNR.
    pub fn evaluate_psnr(&self, dataset: &Dataset) -> f64 {
        let cfg = PipelineConfig {
            sampler: self.config.sampler,
            background: self.config.background,
            early_stop: false,
        };
        let mut total = 0.0;
        for view in dataset.views() {
            let rendered = render_image(&self.model, &self.occupancy, &view.camera, &cfg);
            total += rendered.psnr(&view.image);
        }
        total / dataset.views().len() as f64
    }

    /// Renders an arbitrary view with the current model.
    pub fn render(&self, camera: &crate::camera::Camera) -> Image {
        let cfg = PipelineConfig {
            sampler: self.config.sampler,
            background: self.config.background,
            early_stop: true,
        };
        render_image(&self.model, &self.occupancy, camera, &cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::HashGridConfig;
    use crate::model::ModelConfig;
    use crate::scenes::{ProceduralScene, SyntheticScene};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_model(seed: u64) -> NerfModel {
        let mut rng = SmallRng::seed_from_u64(seed);
        NerfModel::new(
            ModelConfig {
                grid: HashGridConfig {
                    levels: 4,
                    features_per_level: 2,
                    log2_table_size: 11,
                    base_resolution: 4,
                    max_resolution: 32,
                },
                hidden_dim: 16,
                geo_feature_dim: 7,
            },
            &mut rng,
        )
    }

    fn test_config() -> TrainerConfig {
        TrainerConfig {
            rays_per_batch: 64,
            sampler: SamplerConfig { steps_per_diagonal: 48, max_samples_per_ray: 32 },
            occupancy_resolution: 16,
            occupancy_update_interval: 20,
            occupancy_warmup: 40,
            ..TrainerConfig::default()
        }
    }

    #[test]
    fn data_volume_accounting() {
        let v = DataVolume {
            stage1_to_stage2: 10,
            stage2_internal: 100,
            stage2_to_stage3: 20,
            stage3_internal: 200,
            end_to_end_io: 5,
        };
        assert_eq!(v.total_intermediate(), 330);
        assert_eq!(v.inter_stage(), 30);
        assert_eq!(v.intra_stage(), 300);
        let sum = v + v;
        assert_eq!(sum.total_intermediate(), 660);
        assert_eq!(sum.end_to_end_io, 10);
    }

    #[test]
    fn training_reduces_loss_on_a_scene() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Hotdog);
        let dataset = Dataset::from_scene(&scene, 6, 24, 0.9);
        let mut trainer = Trainer::new(test_model(1), test_config());
        let mut rng = SmallRng::seed_from_u64(2);

        let first: f64 = (0..5).map(|_| trainer.step(&dataset, &mut rng).loss).sum::<f64>() / 5.0;
        for _ in 0..120 {
            trainer.step(&dataset, &mut rng);
        }
        let last: f64 = (0..5).map(|_| trainer.step(&dataset, &mut rng).loss).sum::<f64>() / 5.0;
        assert!(last < first * 0.5, "loss should drop by >2x: first {first}, last {last}");
        assert_eq!(trainer.iteration(), 130);
    }

    #[test]
    fn occupancy_tightens_during_training() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Mic);
        let dataset = Dataset::from_scene(&scene, 5, 20, 0.9);
        let mut trainer = Trainer::new(test_model(3), test_config());
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(trainer.occupancy().occupancy_ratio(), 1.0);
        for _ in 0..150 {
            trainer.step(&dataset, &mut rng);
        }
        let ratio = trainer.occupancy().occupancy_ratio();
        assert!(ratio < 0.9, "occupancy grid should prune empty space, got {ratio}");
    }

    #[test]
    fn volume_ledger_grows_every_step() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
        let dataset = Dataset::from_scene(&scene, 3, 16, 0.9);
        let mut trainer = Trainer::new(test_model(5), test_config());
        let mut rng = SmallRng::seed_from_u64(6);
        trainer.record_dataset_input(&dataset);
        let io_before = trainer.data_volume().end_to_end_io;
        assert!(io_before > 0);
        trainer.step(&dataset, &mut rng);
        let v1 = *trainer.data_volume();
        trainer.step(&dataset, &mut rng);
        let v2 = *trainer.data_volume();
        assert!(v2.total_intermediate() > v1.total_intermediate());
        assert!(v1.stage2_internal > v1.stage2_to_stage3, "gathers dominate hand-offs");
        trainer.record_model_output();
        assert!(trainer.data_volume().end_to_end_io > io_before);
        // The key Fig. 3 relation: intermediate volume dwarfs the
        // end-to-end I/O even after a handful of iterations.
        assert!(
            trainer.data_volume().total_intermediate() > trainer.data_volume().end_to_end_io / 100
        );
    }

    #[test]
    fn step_handles_batch_sizes_not_multiple_of_shard_count() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Chair);
        let dataset = Dataset::from_scene(&scene, 3, 16, 0.9);
        // Sizes where ceil-division sharding would place a shard start
        // past the end of the batch if the count were not re-derived.
        for rays_per_batch in [17, 50, 100] {
            let config = TrainerConfig { rays_per_batch, ..test_config() };
            let mut trainer = Trainer::new(test_model(9), config);
            let mut rng = SmallRng::seed_from_u64(10);
            let stats = trainer.step(&dataset, &mut rng);
            assert_eq!(stats.rays, rays_per_batch);
            assert!(stats.loss.is_finite() && stats.loss >= 0.0);
        }
    }

    #[test]
    fn step_stats_are_consistent() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Chair);
        let dataset = Dataset::from_scene(&scene, 3, 16, 0.9);
        let mut trainer = Trainer::new(test_model(7), test_config());
        let mut rng = SmallRng::seed_from_u64(8);
        let stats = trainer.step(&dataset, &mut rng);
        assert_eq!(stats.rays, 64);
        assert!(stats.samples > 0);
        assert!(stats.loss.is_finite() && stats.loss >= 0.0);
    }
}

#[cfg(test)]
mod lr_schedule_tests {
    use super::*;
    use crate::encoding::HashGridConfig;
    use crate::model::{ModelConfig, NerfModel};
    use crate::scenes::{ProceduralScene, SyntheticScene};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn learning_rate_decays_on_schedule() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Mic);
        let dataset = Dataset::from_scene(&scene, 2, 12, 0.9);
        let mut rng = SmallRng::seed_from_u64(1);
        let model = NerfModel::new(
            ModelConfig {
                grid: HashGridConfig {
                    levels: 2,
                    features_per_level: 2,
                    log2_table_size: 8,
                    base_resolution: 4,
                    max_resolution: 8,
                },
                hidden_dim: 8,
                geo_feature_dim: 3,
            },
            &mut rng,
        );
        let config = TrainerConfig {
            rays_per_batch: 8,
            sampler: SamplerConfig { steps_per_diagonal: 16, max_samples_per_ray: 8 },
            occupancy_warmup: 1000,
            lr_decay: 0.5,
            lr_decay_interval: 4,
            ..TrainerConfig::default()
        };
        let mut trainer = Trainer::new(model, config);
        // Parameter movement shrinks once the decays kick in: compare
        // the parameter delta of an early step against a late one on
        // comparable gradients.
        let snapshot = |t: &Trainer| t.model().grid().params().to_vec();
        let delta = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
        };
        let before = snapshot(&trainer);
        trainer.step(&dataset, &mut rng);
        let early = delta(&before, &snapshot(&trainer));
        for _ in 0..16 {
            trainer.step(&dataset, &mut rng);
        }
        let before_late = snapshot(&trainer);
        trainer.step(&dataset, &mut rng);
        let late = delta(&before_late, &snapshot(&trainer));
        // After 4 decays of 0.5x the max per-step movement (which Adam
        // ties to the learning rate) must be much smaller.
        assert!(late < early * 0.5, "late step moved {late}, early step moved {early}");
    }

    #[test]
    fn unit_decay_disables_the_schedule() {
        let config = TrainerConfig { lr_decay: 1.0, ..TrainerConfig::default() };
        assert_eq!(config.lr_decay, 1.0);
        // Constructing a trainer with the schedule disabled must not
        // alter the configured learning rate over steps — verified
        // indirectly through the default config used by every other
        // training test in this crate.
    }
}
