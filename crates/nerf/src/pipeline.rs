//! The end-to-end three-stage inference pipeline and workload tracing.
//!
//! [`render_image`] chains Stage I (sampling), Stage II (feature
//! interpolation via the model's hash grid), and Stage III (MLP +
//! volumetric rendering) exactly as the accelerator does, while
//! [`trace_frame`] captures the per-ray workload statistics that the
//! cycle-level simulator in `fusion3d-core` replays.
//!
//! Frame-level entry points dispatch one row of pixels per work chunk
//! across the [`fusion3d_par::Pool`] workers. Chunk geometry and the
//! raster-order merge are independent of the thread count, so a frame
//! is bitwise-identical whether rendered on one core or sixteen.

use crate::batch::RayScratch;
use crate::camera::Camera;
use crate::encoding::Encoding;
use crate::image::Image;
use crate::math::{Ray, Vec3};
use crate::model::NerfModel;
use crate::occupancy::OccupancyGrid;
use crate::render::composite_into;
use crate::sampler::{sample_ray, sample_ray_into, RayWorkload, SamplerConfig};
use fusion3d_par::Pool;

/// Configuration shared by rendering and tracing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Stage-I sampler settings.
    pub sampler: SamplerConfig,
    /// Background radiance composited behind the last sample.
    pub background: Vec3,
    /// Enables early ray termination (inference only).
    pub early_stop: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            sampler: SamplerConfig::default(),
            background: Vec3::ONE,
            early_stop: true,
        }
    }
}

/// Runs all three stages for one ray through the batched kernels:
/// Stage-I sampling into the scratch's [`crate::batch::SampleBatch`],
/// one batched Stage-II/III model forward over every retained sample,
/// and compositing. Returns the pixel color and final transmittance;
/// the per-sample weights stay in `scratch.kernel.weights` for depth
/// queries. The caller owns `scratch` so frame loops reuse one
/// working set per worker instead of allocating per pixel.
fn shade_ray<E: Encoding>(
    model: &NerfModel<E>,
    occupancy: &OccupancyGrid,
    ray: &Ray,
    config: &PipelineConfig,
    early_stop: bool,
    scratch: &mut RayScratch,
) -> (Vec3, f32) {
    sample_ray_into(ray, occupancy, &config.sampler, &mut scratch.samples);
    model.forward_batch_infer(scratch.samples.positions(), ray.direction, &mut scratch.kernel);
    scratch.kernel.build_shaded(scratch.samples.dts());
    let result = composite_into(
        &scratch.kernel.shaded,
        config.background,
        early_stop,
        &mut scratch.kernel.weights,
    );
    crate::probe!({
        scratch.kernel.probes.rays += 1;
        if result.1 < 1e-4 {
            scratch.kernel.probes.rays_saturated += 1;
        }
    });
    result
}

/// The blend-weighted mean sample parameter of one ray, or `None` for
/// rays that never absorb. Shared by [`render_pixel_depth`] and the
/// frame-level [`render_depth_image`].
fn shade_ray_depth<E: Encoding>(
    model: &NerfModel<E>,
    occupancy: &OccupancyGrid,
    ray: &Ray,
    config: &PipelineConfig,
    scratch: &mut RayScratch,
) -> Option<f32> {
    // Early stop must be off: the weighted-mean depth needs every
    // sample's exact blend weight.
    let (_, final_transmittance) = shade_ray(model, occupancy, ray, config, false, scratch);
    let opacity = 1.0 - final_transmittance;
    if opacity < 1e-3 {
        return None;
    }
    let depth: f32 =
        scratch.samples.ts().iter().zip(&scratch.kernel.weights).map(|(&t, &w)| t * w).sum::<f32>()
            / opacity;
    Some(depth)
}

/// Renders a single pixel: runs all three stages for one ray.
pub fn render_pixel<E: Encoding>(
    model: &NerfModel<E>,
    occupancy: &OccupancyGrid,
    ray: &Ray,
    config: &PipelineConfig,
) -> Vec3 {
    let mut scratch = RayScratch::new();
    shade_ray(model, occupancy, ray, config, config.early_stop, &mut scratch).0
}

/// Renders a full frame through the end-to-end pipeline, dispatching
/// one pixel row per work chunk across the worker pool. The output is
/// bitwise-identical for any `FUSION3D_THREADS` setting.
pub fn render_image<E: Encoding>(
    model: &NerfModel<E>,
    occupancy: &OccupancyGrid,
    camera: &Camera,
    config: &PipelineConfig,
) -> Image {
    let width = camera.width() as usize;
    let count = width * camera.height() as usize;
    let pixels = Pool::new().parallel_flat_map_with(
        count,
        width.max(1),
        RayScratch::new,
        |_, range, scratch| {
            range
                .map(|i| {
                    let ray = camera.ray_for_pixel((i % width) as u32, (i / width) as u32);
                    shade_ray(model, occupancy, &ray, config, config.early_stop, scratch).0
                })
                // lint: allow(h2): per-chunk pixel buffer is the
                // parallel dispatch's return convention — one
                // allocation per chunk, amortized over its rays
                .collect()
        },
    );
    let mut img = Image::new(camera.width(), camera.height());
    img.pixels_mut().copy_from_slice(&pixels);
    img
}

/// Renders several cameras against one scene in a single batched
/// dispatch — the serving layer's multi-request kernel. Every pixel
/// row of every view becomes one work chunk, so a batch of small
/// frames saturates the pool as well as one large frame does.
///
/// Pixels are written through `pixels_out` (one raster-order slice
/// per camera, each exactly `width * height` long) and each view's
/// retained Stage-II/III sample total lands in `samples_out` — the
/// quantity the serving scheduler's cost model charges cycles for.
/// Output slices shorter or longer than their camera's frame are
/// skipped rather than partially filled. Chunk geometry and the merge
/// order depend only on the camera list, so the result is
/// bitwise-identical for any `FUSION3D_THREADS` setting.
pub fn render_views_into<E: Encoding>(
    model: &NerfModel<E>,
    occupancy: &OccupancyGrid,
    cameras: &[Camera],
    config: &PipelineConfig,
    pixels_out: &mut [&mut [Vec3]],
    samples_out: &mut [u64],
) {
    debug_assert!(
        pixels_out.len() == cameras.len() && samples_out.len() == cameras.len(),
        "one pixel slice and one sample slot per camera"
    );
    let mut rows: Vec<(usize, u32)> =
        Vec::with_capacity(cameras.iter().map(|c| c.height() as usize).sum());
    for (view, camera) in cameras.iter().enumerate() {
        for y in 0..camera.height() {
            // lint: allow(h2): per-dispatch row table — one entry per
            // pixel row, amortized over that row's rays
            rows.push((view, y));
        }
    }
    let chunks = Pool::new().parallel_chunks_with(
        rows.len(),
        1,
        RayScratch::new,
        |_, range, scratch: &mut RayScratch| {
            let (view, y) = rows[range.start];
            let Some(camera) = cameras.get(view) else {
                return (view, 0u32, Vec::new(), 0u64);
            };
            let mut samples = 0u64;
            let row: Vec<Vec3> = (0..camera.width())
                .map(|x| {
                    let ray = camera.ray_for_pixel(x, y);
                    let p = shade_ray(model, occupancy, &ray, config, config.early_stop, scratch).0;
                    samples += scratch.samples.len() as u64;
                    p
                })
                // lint: allow(h2): per-chunk pixel buffer — see
                // render_image
                .collect();
            (view, y, row, samples)
        },
    );
    for slot in samples_out.iter_mut() {
        *slot = 0;
    }
    for (view, y, row, samples) in &chunks {
        let start = *y as usize * row.len();
        if let Some(out) = pixels_out.get_mut(*view) {
            if let Some(dst) = out.get_mut(start..start + row.len()) {
                dst.copy_from_slice(row);
            }
        }
        if let Some(slot) = samples_out.get_mut(*view) {
            *slot += samples;
        }
    }
}

/// [`render_image`] with hot-path probe counters recorded into
/// `report` (`obs` builds only). Identical pixels to [`render_image`]:
/// the probes never influence the compute. Each chunk's counter delta
/// is taken against its worker's running totals and the deltas merge
/// in chunk order, so the recorded totals are bitwise-identical for
/// any `FUSION3D_THREADS` setting.
#[cfg(feature = "obs")]
pub fn render_image_probed<E: Encoding>(
    model: &NerfModel<E>,
    occupancy: &OccupancyGrid,
    camera: &Camera,
    config: &PipelineConfig,
    report: &mut fusion3d_obs::Report,
) -> Image {
    use crate::probes::ProbeCounters;
    let width = camera.width() as usize;
    let count = width * camera.height() as usize;
    let (chunks, dispatch): (Vec<(Vec<Vec3>, ProbeCounters)>, _) = Pool::new()
        .parallel_chunks_with_stats(
            count,
            width.max(1),
            RayScratch::new,
            |_, range, scratch: &mut RayScratch| {
                let before = scratch.kernel.probes;
                let pixels = range
                    .map(|i| {
                        let ray = camera.ray_for_pixel((i % width) as u32, (i / width) as u32);
                        shade_ray(model, occupancy, &ray, config, config.early_stop, scratch).0
                    })
                    // lint: allow(h2): per-chunk pixel buffer — see
                    // render_image
                    .collect();
                (pixels, scratch.kernel.probes.diff(&before))
            },
        );
    dispatch.record("render", &mut report.metrics);
    let mut totals = ProbeCounters::default();
    let mut img = Image::new(camera.width(), camera.height());
    let out = img.pixels_mut();
    let mut at = 0usize;
    for (pixels, delta) in &chunks {
        out[at..at + pixels.len()].copy_from_slice(pixels);
        at += pixels.len();
        totals.add(delta);
    }
    totals.record(&mut report.metrics);
    img
}

/// Renders the expected ray-termination depth of one pixel: the
/// blend-weighted mean sample parameter, with rays that never absorb
/// returning `None`. AR/VR compositors consume this channel for
/// occlusion between virtual and reconstructed content.
pub fn render_pixel_depth<E: Encoding>(
    model: &NerfModel<E>,
    occupancy: &OccupancyGrid,
    ray: &Ray,
    config: &PipelineConfig,
) -> Option<f32> {
    let mut scratch = RayScratch::new();
    shade_ray_depth(model, occupancy, ray, config, &mut scratch)
}

/// Renders a normalized depth map: nearer surfaces brighter, rays
/// that escape black. The normalization divides by the frame's
/// maximum depth. Depths evaluate one pixel row per work chunk across
/// the pool; the max-depth reduction runs serially over the
/// raster-ordered result, so the frame is thread-count independent.
pub fn render_depth_image<E: Encoding>(
    model: &NerfModel<E>,
    occupancy: &OccupancyGrid,
    camera: &Camera,
    config: &PipelineConfig,
) -> Image {
    let width = camera.width() as usize;
    let count = width * camera.height() as usize;
    let depths: Vec<Option<f32>> = Pool::new().parallel_flat_map_with(
        count,
        width.max(1),
        RayScratch::new,
        |_, range, scratch| {
            range
                .map(|i| {
                    let ray = camera.ray_for_pixel((i % width) as u32, (i / width) as u32);
                    shade_ray_depth(model, occupancy, &ray, config, scratch)
                })
                // lint: allow(h2): per-chunk depth buffer — see
                // render_image
                .collect()
        },
    );
    let max = depths.iter().flatten().cloned().fold(0.0f32, f32::max).max(1e-6);
    let mut img = Image::new(camera.width(), camera.height());
    for (i, d) in depths.iter().enumerate() {
        let v = d.map_or(0.0, |t| 1.0 - (t / max).clamp(0.0, 1.0) * 0.9);
        img.pixels_mut()[i] = Vec3::splat(v);
    }
    img
}

/// Stage-level workload statistics of one frame, consumed by the
/// accelerator simulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameTrace {
    /// Per-ray Stage-I workloads, in raster order (rays that miss the
    /// model cube entirely are included with zero pairs).
    pub workloads: Vec<RayWorkload>,
    /// Total retained samples (Stage II/III workload).
    pub total_samples: u64,
    /// Total marching steps (Stage I workload).
    pub total_steps: u64,
}

impl FrameTrace {
    /// Number of rays in the frame.
    pub fn ray_count(&self) -> usize {
        self.workloads.len()
    }

    /// Mean retained samples per ray.
    pub fn mean_samples_per_ray(&self) -> f64 {
        if self.workloads.is_empty() {
            0.0
        } else {
            self.total_samples as f64 / self.workloads.len() as f64
        }
    }

    /// Fraction of rays with at least one valid ray–cube pair.
    pub fn hit_rate(&self) -> f64 {
        if self.workloads.is_empty() {
            return 0.0;
        }
        let hits = self.workloads.iter().filter(|w| w.valid_pairs > 0).count();
        hits as f64 / self.workloads.len() as f64
    }
}

/// Captures the Stage-I workload of a frame without shading it. Rays
/// trace one pixel row per work chunk across the pool; per-chunk
/// traces merge in chunk order, so the result matches a serial sweep
/// exactly.
pub fn trace_frame(
    occupancy: &OccupancyGrid,
    camera: &Camera,
    sampler: &SamplerConfig,
) -> FrameTrace {
    let width = camera.width() as usize;
    let count = width * camera.height() as usize;
    let chunks = Pool::new().parallel_chunks(count, width.max(1), |_, range| {
        let mut chunk = FrameTrace::default();
        for i in range {
            let ray = camera.ray_for_pixel((i % width) as u32, (i / width) as u32);
            let (samples, workload) = sample_ray(&ray, occupancy, sampler);
            chunk.total_samples += samples.len() as u64;
            chunk.total_steps += workload.total_steps() as u64;
            // lint: allow(h2): the per-ray workload list is the
            // frame trace's output product, not shading scratch
            chunk.workloads.push(workload);
        }
        chunk
    });
    let mut trace = FrameTrace::default();
    for chunk in chunks {
        trace.total_samples += chunk.total_samples;
        trace.total_steps += chunk.total_steps;
        trace.workloads.extend(chunk.workloads);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::{orbit_poses, Camera};
    use crate::encoding::HashGridConfig;
    use crate::model::{ModelConfig, NerfModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_model() -> NerfModel {
        let mut rng = SmallRng::seed_from_u64(0);
        NerfModel::new(
            ModelConfig {
                grid: HashGridConfig {
                    levels: 2,
                    features_per_level: 2,
                    log2_table_size: 8,
                    base_resolution: 4,
                    max_resolution: 8,
                },
                hidden_dim: 8,
                geo_feature_dim: 3,
            },
            &mut rng,
        )
    }

    fn test_camera() -> Camera {
        let pose = orbit_poses(Vec3::splat(0.5), 1.2, 1)[0];
        Camera::new(pose, 8, 8, 0.8)
    }

    #[test]
    fn empty_occupancy_renders_background() {
        let model = tiny_model();
        let occ = OccupancyGrid::new(8, 0.0);
        let cfg = PipelineConfig { background: Vec3::new(0.3, 0.6, 0.9), ..Default::default() };
        let img = render_image(&model, &occ, &test_camera(), &cfg);
        assert!(img.pixels().iter().all(|&p| p == cfg.background));
    }

    #[test]
    fn full_occupancy_renders_something_else() {
        let model = tiny_model();
        let mut occ = OccupancyGrid::new(8, 0.0);
        occ.fill();
        let cfg = PipelineConfig { background: Vec3::ONE, ..Default::default() };
        let img = render_image(&model, &occ, &test_camera(), &cfg);
        // With density exp(~0) ≈ 1 everywhere, pixels through the cube
        // blend model colors with the background.
        let non_bg = img.pixels().iter().filter(|&&p| p != Vec3::ONE).count();
        assert!(non_bg > 0, "expected some non-background pixels");
        for p in img.pixels() {
            assert!(p.is_finite());
        }
    }

    #[test]
    fn early_stop_matches_exact_within_tolerance() {
        let model = tiny_model();
        let mut occ = OccupancyGrid::new(8, 0.0);
        occ.fill();
        let cam = test_camera();
        let exact = render_image(
            &model,
            &occ,
            &cam,
            &PipelineConfig { early_stop: false, ..Default::default() },
        );
        let eager = render_image(
            &model,
            &occ,
            &cam,
            &PipelineConfig { early_stop: true, ..Default::default() },
        );
        assert!(exact.psnr(&eager) > 40.0, "psnr {}", exact.psnr(&eager));
    }

    #[test]
    fn render_views_matches_per_view_render_image() {
        let model = tiny_model();
        let mut occ = OccupancyGrid::new(8, 0.0);
        occ.fill();
        let cfg = PipelineConfig::default();
        let poses = orbit_poses(Vec3::splat(0.5), 1.2, 3);
        let cameras: Vec<Camera> = poses.iter().map(|&p| Camera::new(p, 8, 6, 0.8)).collect();
        let mut frames: Vec<Vec<Vec3>> = cameras.iter().map(|_| vec![Vec3::ZERO; 48]).collect();
        let mut samples = vec![0u64; cameras.len()];
        {
            let mut slices: Vec<&mut [Vec3]> =
                frames.iter_mut().map(|f| f.as_mut_slice()).collect();
            render_views_into(&model, &occ, &cameras, &cfg, &mut slices, &mut samples);
        }
        for (i, camera) in cameras.iter().enumerate() {
            let solo = render_image(&model, &occ, camera, &cfg);
            assert_eq!(frames[i].as_slice(), solo.pixels(), "view {i} pixels diverge");
            assert!(samples[i] > 0, "view {i} retained no samples");
        }
    }

    #[test]
    fn render_views_handles_empty_batch() {
        let model = tiny_model();
        let occ = OccupancyGrid::new(8, 0.0);
        render_views_into(&model, &occ, &[], &PipelineConfig::default(), &mut [], &mut []);
    }

    #[test]
    fn frame_trace_statistics() {
        let mut occ = OccupancyGrid::new(8, 0.0);
        occ.fill();
        let cam = test_camera();
        let trace = trace_frame(&occ, &cam, &SamplerConfig::default());
        assert_eq!(trace.ray_count(), 64);
        assert!(trace.total_samples > 0);
        assert!(trace.total_steps >= trace.total_samples);
        assert!(trace.hit_rate() > 0.3, "hit rate {}", trace.hit_rate());
        assert!(trace.mean_samples_per_ray() > 1.0);
    }

    #[test]
    fn empty_trace_is_degenerate() {
        let t = FrameTrace::default();
        assert_eq!(t.ray_count(), 0);
        assert_eq!(t.mean_samples_per_ray(), 0.0);
        assert_eq!(t.hit_rate(), 0.0);
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;
    use crate::camera::{orbit_poses, Camera};
    use crate::encoding::HashGridConfig;
    use crate::model::{ModelConfig, NerfModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dense_model() -> NerfModel {
        let mut rng = SmallRng::seed_from_u64(3);
        NerfModel::new(
            ModelConfig {
                grid: HashGridConfig {
                    levels: 2,
                    features_per_level: 2,
                    log2_table_size: 8,
                    base_resolution: 4,
                    max_resolution: 8,
                },
                hidden_dim: 8,
                geo_feature_dim: 3,
            },
            &mut rng,
        )
    }

    #[test]
    fn empty_space_has_no_depth() {
        let model = dense_model();
        let occ = OccupancyGrid::new(8, 0.0); // all empty
        let ray = Ray::new(Vec3::new(-1.0, 0.4, 0.45), Vec3::X);
        assert_eq!(render_pixel_depth(&model, &occ, &ray, &PipelineConfig::default()), None);
    }

    #[test]
    fn depth_lies_within_the_ray_span() {
        // Untrained density exp(~0) = 1 absorbs over the cube: the
        // expected depth must sit between entry and exit.
        let model = dense_model();
        let mut occ = OccupancyGrid::new(8, 0.0);
        occ.fill();
        let ray = Ray::new(Vec3::new(-1.0, 0.4, 0.45), Vec3::X);
        let depth = render_pixel_depth(&model, &occ, &ray, &PipelineConfig::default())
            .expect("ray absorbs");
        assert!((1.0..=2.0).contains(&depth), "depth {depth}");
    }

    #[test]
    fn nearer_geometry_reads_nearer() {
        // Occupancy restricted to the front slab vs the back slab:
        // front depth < back depth for the same ray.
        let model = dense_model();
        let front = OccupancyGrid::from_oracle(8, 0.0, |p| p.x < 0.3);
        let back = OccupancyGrid::from_oracle(8, 0.0, |p| p.x > 0.7);
        let ray = Ray::new(Vec3::new(-1.0, 0.4, 0.45), Vec3::X);
        let cfg = PipelineConfig::default();
        let d_front = render_pixel_depth(&model, &front, &ray, &cfg).expect("front absorbs");
        let d_back = render_pixel_depth(&model, &back, &ray, &cfg).expect("back absorbs");
        assert!(d_front < d_back, "front {d_front} vs back {d_back}");
    }

    #[test]
    fn depth_image_shape_and_range() {
        let model = dense_model();
        let mut occ = OccupancyGrid::new(8, 0.0);
        occ.fill();
        let pose = orbit_poses(Vec3::splat(0.5), 1.2, 1)[0];
        let cam = Camera::new(pose, 8, 8, 0.8);
        let img = render_depth_image(&model, &occ, &cam, &PipelineConfig::default());
        assert_eq!(img.pixel_count(), 64);
        for p in img.pixels() {
            assert!(p.x >= 0.0 && p.x <= 1.0);
            assert_eq!(p.x, p.y);
            assert_eq!(p.y, p.z);
        }
    }
}
