//! Structure-of-arrays batches and reusable kernel scratch for the
//! NeRF hot path.
//!
//! The batched compute core ([`crate::encoding`] gathers,
//! [`crate::mlp`] GEMMs, [`crate::render`] compositing) operates on a
//! whole ray's samples at once instead of one point per call. The
//! types here own every buffer those kernels touch:
//!
//! * [`SampleBatch`] — Stage I output as parallel `t`/`δt`/position
//!   arrays, filled in place by [`crate::sampler::sample_ray_into`];
//! * [`KernelScratch`] — all Stage II/III working memory (encoded
//!   features, MLP activation caches, per-sample densities/colors and
//!   their gradients), allocated once and reused across rays and
//!   training steps;
//! * [`RayScratch`] — the pair of them, one per worker thread.
//!
//! The batched kernels take a capacity fingerprint of the scratch on
//! entry and `debug_assert` it unchanged on exit, so any allocation
//! sneaking into a per-sample loop fails loudly in debug builds.

use crate::encoding::EncodingScratch;
use crate::math::{TSpan, Vec3};
use crate::mlp::MlpBatchCache;
use crate::render::ShadedSample;

/// Structure-of-arrays batch of retained ray samples (Stage I output).
///
/// Parallel arrays indexed by sample: `ts()[i]`, `dts()[i]`, and
/// `positions()[i]` describe sample `i`, in marching order. Reuse one
/// batch per worker; [`crate::sampler::sample_ray_into`] clears and
/// refills it without allocating once the buffers have grown to the
/// ray cap.
#[derive(Debug, Clone, Default)]
pub struct SampleBatch {
    ts: Vec<f32>,
    dts: Vec<f32>,
    positions: Vec<Vec3>,
    /// Ray–octant-cube pair scratch for Stage I, reused across rays by
    /// `sample_ray_into` (at most eight entries).
    pub(crate) pairs: Vec<(u8, TSpan)>,
}

impl SampleBatch {
    /// Creates an empty batch sized lazily on first use.
    pub fn new() -> Self {
        SampleBatch::default()
    }

    /// Number of samples in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the batch holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Ray parameters of the samples, in marching order.
    #[inline]
    pub fn ts(&self) -> &[f32] {
        &self.ts
    }

    /// Integration intervals of the samples.
    #[inline]
    pub fn dts(&self) -> &[f32] {
        &self.dts
    }

    /// Sample positions in normalized model coordinates.
    #[inline]
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Removes all samples, keeping the buffer capacity.
    pub fn clear(&mut self) {
        self.ts.clear();
        self.dts.clear();
        self.positions.clear();
    }

    /// Appends one sample.
    #[inline]
    pub fn push(&mut self, t: f32, dt: f32, position: Vec3) {
        self.ts.push(t); // lint: allow(h2): amortized into reserved SoA capacity
        self.dts.push(dt); // lint: allow(h2): amortized into reserved SoA capacity
        self.positions.push(position); // lint: allow(h2): amortized into reserved SoA capacity
    }
}

/// All Stage II/III working memory for one worker: encoded features,
/// MLP activation caches, per-sample outputs, and the gradient
/// buffers of the backward pass — allocated once and resized only
/// when the batch shape changes.
///
/// Filled by [`crate::model::NerfModel::forward_batch`] /
/// [`crate::model::NerfModel::backward_batch`]; the per-sample
/// results are exposed through [`KernelScratch::sigma`] and
/// [`KernelScratch::color`].
#[derive(Debug, Clone, Default)]
pub struct KernelScratch {
    /// Hash-grid corner address/weight scratch shared by the encoding
    /// forward and backward kernels.
    pub(crate) enc: EncodingScratch,
    /// Point-major encoded features (`batch × enc_dim`).
    pub(crate) encoded: Vec<f32>,
    /// Density-MLP activation cache.
    pub(crate) density_cache: MlpBatchCache,
    /// Color-MLP activation cache.
    pub(crate) color_cache: MlpBatchCache,
    /// Sample-major color-MLP input (geo features ‖ SH coefficients).
    pub(crate) color_input: Vec<f32>,
    /// Per-sample densities `σ`.
    pub(crate) sigma: Vec<f32>,
    /// Per-sample RGB radiance.
    pub(crate) color: Vec<Vec3>,
    /// Whether the raw density logit hit the clamp (zero gradient).
    pub(crate) raw_clamped: Vec<bool>,
    /// Sample-major color gradient rows fed to the color MLP backward.
    pub(crate) d_rgb: Vec<f32>,
    /// Gradient w.r.t. the color-MLP input.
    pub(crate) d_color_in: Vec<f32>,
    /// Gradient w.r.t. the density-MLP output.
    pub(crate) d_density_out: Vec<f32>,
    /// Gradient w.r.t. the encoded features.
    pub(crate) d_encoded: Vec<f32>,
    /// Per-sample compositing inputs built by
    /// [`KernelScratch::build_shaded`].
    pub(crate) shaded: Vec<ShadedSample>,
    /// Per-sample blend weights from `composite_into`.
    pub(crate) weights: Vec<f32>,
    /// Samples the scratch is currently sized for.
    pub(crate) batch: usize,
    /// Hot-path probe counters, accumulated across every batch this
    /// worker processes (`obs` builds only).
    #[cfg(feature = "obs")]
    pub(crate) probes: crate::probes::ProbeCounters,
}

impl KernelScratch {
    /// Creates an empty scratch sized lazily by the first batched
    /// kernel call.
    pub fn new() -> Self {
        KernelScratch::default()
    }

    /// Number of samples in the batch the scratch currently holds.
    #[inline]
    pub fn batch_len(&self) -> usize {
        self.batch
    }

    /// Per-sample densities written by the last
    /// [`crate::model::NerfModel::forward_batch`].
    #[inline]
    pub fn sigma(&self) -> &[f32] {
        &self.sigma
    }

    /// Per-sample colors written by the last
    /// [`crate::model::NerfModel::forward_batch`].
    #[inline]
    pub fn color(&self) -> &[Vec3] {
        &self.color
    }

    /// The probe counters accumulated by this worker so far.
    #[cfg(feature = "obs")]
    pub fn probes(&self) -> &crate::probes::ProbeCounters {
        &self.probes
    }

    /// Sizes every per-sample buffer for a batch of `n` samples with
    /// the given feature dimensions. Idempotent for a matching shape.
    pub(crate) fn resize(
        &mut self,
        n: usize,
        enc_dim: usize,
        density_out_dim: usize,
        color_in_dim: usize,
    ) {
        fn fit<T: Copy + Default>(buf: &mut Vec<T>, len: usize) {
            if buf.len() != len {
                buf.resize(len, T::default());
            }
        }
        fit(&mut self.encoded, n * enc_dim);
        fit(&mut self.color_input, n * color_in_dim);
        fit(&mut self.sigma, n);
        fit(&mut self.color, n);
        fit(&mut self.raw_clamped, n);
        fit(&mut self.d_rgb, n * 3);
        fit(&mut self.d_color_in, n * color_in_dim);
        fit(&mut self.d_density_out, n * density_out_dim);
        fit(&mut self.d_encoded, n * enc_dim);
        self.batch = n;
    }

    /// Builds the compositing input from the forward results and the
    /// batch's integration intervals.
    ///
    /// # Panics
    ///
    /// Panics if `dts.len()` differs from the current batch length.
    pub(crate) fn build_shaded(&mut self, dts: &[f32]) {
        assert_eq!(dts.len(), self.batch, "dt buffer does not match the batch");
        self.shaded.clear();
        for ((&sigma, &color), &dt) in self.sigma.iter().zip(self.color.iter()).zip(dts.iter()) {
            // lint: allow(h2): amortized — `shaded` is cleared and
            // refilled within capacity retained across rays
            self.shaded.push(ShadedSample { sigma, color, dt });
        }
    }

    /// Sum of every buffer's capacity, in elements. The batched
    /// kernels assert this is unchanged across their per-sample loops
    /// (debug builds), which is what "allocation-free hot path" means
    /// operationally.
    #[cfg(debug_assertions)]
    pub(crate) fn capacity_fingerprint(&self) -> usize {
        self.enc.capacity()
            + self.encoded.capacity()
            + self.density_cache.capacity()
            + self.color_cache.capacity()
            + self.color_input.capacity()
            + self.sigma.capacity()
            + self.color.capacity()
            + self.raw_clamped.capacity()
            + self.d_rgb.capacity()
            + self.d_color_in.capacity()
            + self.d_density_out.capacity()
            + self.d_encoded.capacity()
    }
}

/// One worker's complete per-ray working set: the Stage-I sample
/// batch plus the Stage-II/III kernel scratch.
#[derive(Debug, Clone, Default)]
pub struct RayScratch {
    /// Stage-I output buffers.
    pub(crate) samples: SampleBatch,
    /// Stage-II/III working memory.
    pub(crate) kernel: KernelScratch,
}

impl RayScratch {
    /// Creates an empty scratch sized lazily on first use.
    pub fn new() -> Self {
        RayScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_batch_push_and_clear() {
        let mut batch = SampleBatch::new();
        assert!(batch.is_empty());
        batch.push(0.5, 0.1, Vec3::splat(0.3));
        batch.push(0.6, 0.1, Vec3::splat(0.4));
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.ts(), &[0.5, 0.6]);
        assert_eq!(batch.dts(), &[0.1, 0.1]);
        assert_eq!(batch.positions()[1], Vec3::splat(0.4));
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn kernel_scratch_resize_is_idempotent() {
        let mut scratch = KernelScratch::new();
        scratch.resize(5, 4, 3, 7);
        assert_eq!(scratch.batch_len(), 5);
        assert_eq!(scratch.sigma().len(), 5);
        #[cfg(debug_assertions)]
        let stamp = scratch.capacity_fingerprint();
        scratch.resize(5, 4, 3, 7);
        #[cfg(debug_assertions)]
        assert_eq!(scratch.capacity_fingerprint(), stamp, "matching shape must not reallocate");
    }

    #[test]
    fn build_shaded_mirrors_forward_outputs() {
        let mut scratch = KernelScratch::new();
        scratch.resize(2, 2, 2, 2);
        scratch.sigma.copy_from_slice(&[1.0, 2.0]);
        scratch.color.copy_from_slice(&[Vec3::X, Vec3::Y]);
        scratch.build_shaded(&[0.25, 0.5]);
        assert_eq!(scratch.shaded.len(), 2);
        assert_eq!(scratch.shaded[1].sigma, 2.0);
        assert_eq!(scratch.shaded[1].color, Vec3::Y);
        assert_eq!(scratch.shaded[0].dt, 0.25);
    }
}
