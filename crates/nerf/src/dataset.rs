//! Posed-image datasets generated from procedural scenes.

use crate::camera::{orbit_poses, Camera};
use crate::image::Image;
use crate::math::{Ray, Vec3};
use crate::scenes::ProceduralScene;
use rand::Rng;

/// One training or test view: a camera and its ground-truth image.
#[derive(Debug, Clone)]
pub struct View {
    /// The capture camera.
    pub camera: Camera,
    /// The ground-truth image.
    pub image: Image,
}

/// A dataset of posed images of one scene.
#[derive(Debug, Clone)]
pub struct Dataset {
    views: Vec<View>,
    background: Vec3,
}

impl Dataset {
    /// Renders `view_count` orbit views of `scene` at the given
    /// resolution and vertical field of view (radians).
    ///
    /// # Panics
    ///
    /// Panics if `view_count` is zero or the camera parameters are
    /// invalid.
    pub fn from_scene(
        scene: &ProceduralScene,
        view_count: usize,
        resolution: u32,
        fov_y: f32,
    ) -> Self {
        assert!(view_count > 0, "dataset needs at least one view");
        let center = Vec3::new(0.5, 0.4, 0.5);
        let views = orbit_poses(center, 1.25, view_count)
            .into_iter()
            .map(|pose| {
                let camera = Camera::new(pose, resolution, resolution, fov_y);
                let image = scene.render(&camera);
                View { camera, image }
            })
            .collect();
        Dataset { views, background: scene.background() }
    }

    /// Builds a dataset from explicit views (used in tests).
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty.
    pub fn from_views(views: Vec<View>, background: Vec3) -> Self {
        assert!(!views.is_empty(), "dataset needs at least one view");
        Dataset { views, background }
    }

    /// The dataset's views.
    #[inline]
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// The scene background color used where rays miss geometry.
    #[inline]
    pub fn background(&self) -> Vec3 {
        self.background
    }

    /// Total pixel (ray) count across all views.
    pub fn total_rays(&self) -> u64 {
        self.views.iter().map(|v| v.camera.pixel_count()).sum()
    }

    /// Splits off every `holdout_every`-th view into a test set,
    /// returning `(train, test)` — the standard NeRF evaluation
    /// protocol of scoring on views the model never saw.
    ///
    /// # Panics
    ///
    /// Panics if the split would leave either set empty.
    pub fn split(self, holdout_every: usize) -> (Dataset, Dataset) {
        assert!(holdout_every >= 2, "holdout_every must be at least 2");
        let background = self.background;
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, view) in self.views.into_iter().enumerate() {
            if i % holdout_every == 0 {
                test.push(view);
            } else {
                train.push(view);
            }
        }
        assert!(!train.is_empty() && !test.is_empty(), "split left an empty set; use more views");
        (Dataset { views: train, background }, Dataset { views: test, background })
    }

    /// Draws a uniformly random training ray and its target color.
    pub fn sample_ray<R: Rng>(&self, rng: &mut R) -> (Ray, Vec3) {
        let view = &self.views[rng.gen_range(0..self.views.len())];
        let x = rng.gen_range(0..view.camera.width());
        let y = rng.gen_range(0..view.camera.height());
        (view.camera.ray_for_pixel(x, y), view.image.get(x, y))
    }

    /// Draws a batch of training rays.
    pub fn sample_batch<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<(Ray, Vec3)> {
        // lint: allow(h2): one batch-list allocation per training step,
        // not per sample
        (0..count).map(|_| self.sample_ray(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::SyntheticScene;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_dataset() -> Dataset {
        let scene = ProceduralScene::synthetic(SyntheticScene::Hotdog);
        Dataset::from_scene(&scene, 3, 16, 0.8)
    }

    #[test]
    fn from_scene_builds_requested_views() {
        let ds = tiny_dataset();
        assert_eq!(ds.views().len(), 3);
        assert_eq!(ds.total_rays(), 3 * 16 * 16);
        assert_eq!(ds.background(), Vec3::ONE);
        for v in ds.views() {
            assert_eq!(v.image.width(), 16);
            assert_eq!(v.image.height(), 16);
        }
    }

    #[test]
    fn views_are_distinct() {
        let ds = tiny_dataset();
        let a = ds.views()[0].camera.pose().position;
        let b = ds.views()[1].camera.pose().position;
        assert!(a.distance(b) > 0.1, "orbit poses must differ");
    }

    #[test]
    fn sampled_rays_match_their_pixels() {
        let ds = tiny_dataset();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..32 {
            let (ray, target) = ds.sample_ray(&mut rng);
            assert!((ray.direction.length() - 1.0).abs() < 1e-5);
            assert!(target.is_finite());
            // Target colors are valid radiance values.
            for c in target.to_array() {
                assert!((0.0..=1.0).contains(&c));
            }
        }
    }

    #[test]
    fn batch_sampling_returns_requested_count() {
        let ds = tiny_dataset();
        let mut rng = SmallRng::seed_from_u64(10);
        assert_eq!(ds.sample_batch(17, &mut rng).len(), 17);
    }

    #[test]
    fn split_partitions_views() {
        let ds =
            Dataset::from_scene(&ProceduralScene::synthetic(SyntheticScene::Hotdog), 6, 12, 0.8);
        let total = ds.views().len();
        let (train, test) = ds.split(3);
        assert_eq!(train.views().len() + test.views().len(), total);
        assert_eq!(test.views().len(), 2);
        assert_eq!(train.background(), test.background());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_split_rejected() {
        let ds = tiny_dataset();
        let _ = ds.split(1);
    }

    #[test]
    #[should_panic(expected = "at least one view")]
    fn empty_dataset_rejected() {
        Dataset::from_views(Vec::new(), Vec3::ONE);
    }
}
