//! Rays and ray-segment bookkeeping for the sampling stage.

use super::Vec3;

/// A parametric ray `origin + t * direction`.
///
/// Directions are not required to be unit length, but the sampling stage
/// produces unit directions so that the `t` parameter measures metric
/// distance along the ray.
///
/// # Examples
///
/// ```
/// use fusion3d_nerf::math::{Ray, Vec3};
///
/// let ray = Ray::new(Vec3::ZERO, Vec3::X);
/// assert_eq!(ray.at(2.5), Vec3::new(2.5, 0.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ray {
    /// Ray origin in world or normalized-model coordinates.
    pub origin: Vec3,
    /// Ray direction.
    pub direction: Vec3,
}

impl Ray {
    /// Creates a ray from an origin and direction.
    #[inline]
    pub const fn new(origin: Vec3, direction: Vec3) -> Self {
        Ray { origin, direction }
    }

    /// The point at parameter `t` along the ray.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Returns the ray with its direction normalized to unit length.
    ///
    /// Returns `None` when the direction is (numerically) zero.
    #[inline]
    pub fn normalized(&self) -> Option<Ray> {
        self.direction.try_normalize().map(|d| Ray::new(self.origin, d))
    }

    /// Precomputed reciprocal direction, used by the slab-method
    /// ray–box intersection. Components of a zero direction map to
    /// `±inf`, which the slab method handles correctly.
    #[inline]
    pub fn inv_direction(&self) -> Vec3 {
        Vec3::new(1.0 / self.direction.x, 1.0 / self.direction.y, 1.0 / self.direction.z)
    }
}

/// A `t` interval `[t_near, t_far]` along a ray, produced by ray–box
/// intersection and consumed by the point sampler.
///
/// An interval is *valid* (non-empty) when `t_near <= t_far` and
/// `t_far >= 0`. The sampling stage discards invalid intervals before
/// dispatching work to sampling cores.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TSpan {
    /// Entry parameter (clamped to zero by [`TSpan::clamped_to_front`]).
    pub t_near: f32,
    /// Exit parameter.
    pub t_far: f32,
}

impl TSpan {
    /// An empty span, used as the identity for intersection.
    pub const EMPTY: TSpan = TSpan { t_near: f32::INFINITY, t_far: f32::NEG_INFINITY };

    /// Creates a span from entry and exit parameters.
    #[inline]
    pub const fn new(t_near: f32, t_far: f32) -> Self {
        TSpan { t_near, t_far }
    }

    /// Whether the span contains at least one point at `t >= 0`.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.t_near <= self.t_far && self.t_far >= 0.0
    }

    /// The span length (zero for invalid spans).
    #[inline]
    pub fn length(&self) -> f32 {
        (self.t_far - self.t_near).max(0.0)
    }

    /// The span with `t_near` clamped to zero, so that sampling never
    /// walks behind the ray origin (the camera).
    #[inline]
    pub fn clamped_to_front(&self) -> TSpan {
        TSpan::new(self.t_near.max(0.0), self.t_far)
    }

    /// Intersection of two spans.
    #[inline]
    pub fn intersect(&self, other: &TSpan) -> TSpan {
        TSpan::new(self.t_near.max(other.t_near), self.t_far.min(other.t_far))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ray_evaluation() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(r.at(0.0), r.origin);
        assert_eq!(r.at(1.5), Vec3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn ray_normalization() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 4.0));
        let n = r.normalized().unwrap();
        assert!((n.direction.length() - 1.0).abs() < 1e-6);
        assert!(Ray::new(Vec3::ZERO, Vec3::ZERO).normalized().is_none());
    }

    #[test]
    fn inv_direction_handles_zero_components() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, -2.0));
        let inv = r.inv_direction();
        assert_eq!(inv.x, 1.0);
        assert!(inv.y.is_infinite());
        assert_eq!(inv.z, -0.5);
    }

    #[test]
    fn span_validity() {
        assert!(TSpan::new(0.0, 1.0).is_valid());
        assert!(TSpan::new(-1.0, 0.5).is_valid());
        assert!(!TSpan::new(2.0, 1.0).is_valid());
        assert!(!TSpan::new(-3.0, -1.0).is_valid());
        assert!(!TSpan::EMPTY.is_valid());
    }

    #[test]
    fn span_length_and_clamp() {
        assert_eq!(TSpan::new(1.0, 4.0).length(), 3.0);
        assert_eq!(TSpan::new(4.0, 1.0).length(), 0.0);
        let clamped = TSpan::new(-2.0, 5.0).clamped_to_front();
        assert_eq!(clamped.t_near, 0.0);
        assert_eq!(clamped.t_far, 5.0);
    }

    #[test]
    fn span_intersection() {
        let a = TSpan::new(0.0, 3.0);
        let b = TSpan::new(1.0, 5.0);
        let c = a.intersect(&b);
        assert_eq!(c, TSpan::new(1.0, 3.0));
        assert!(!a.intersect(&TSpan::new(4.0, 6.0)).is_valid());
        assert_eq!(a.intersect(&TSpan::EMPTY), TSpan::EMPTY.intersect(&a));
    }
}
