//! Axis-aligned bounding boxes and ray–box intersection.
//!
//! This module implements both intersection paths that the paper's
//! Technique T1-1 (*Model Normalization & Partitioning*) contrasts:
//!
//! * [`Aabb::intersect_general`] — the general ray–box test against an
//!   arbitrary box, which on the standard pipeline costs solving six
//!   linear plane equations (18 divisions, 54 multiplications, and 54
//!   additions per the paper's accounting of [26]);
//! * [`Aabb::intersect_unit_cube`] — the simplified test against the
//!   *normalized* `[0,1]^3` model cube, which costs only 3
//!   multiplications and 3 multiply-accumulate operations because the
//!   box planes are the constants `0` and `1` and the reciprocal
//!   direction is precomputed once per ray.
//!
//! Both report their arithmetic cost through [`OpCount`] so that the
//! accelerator simulator and the T1 ablation (Table VI) can account for
//! the computational saving.

use super::{Ray, TSpan, Vec3};

/// Arithmetic operation counts for a computation, used to drive the
/// cycle and energy models of the accelerator simulator.
///
/// Counts are additive: combining two computations sums their counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OpCount {
    /// Number of divisions.
    pub div: u64,
    /// Number of multiplications.
    pub mul: u64,
    /// Number of additions/subtractions.
    pub add: u64,
    /// Number of fused multiply-accumulate operations.
    pub mac: u64,
}

impl OpCount {
    /// A count of zero operations.
    pub const ZERO: OpCount = OpCount { div: 0, mul: 0, add: 0, mac: 0 };

    /// Creates an operation count.
    #[inline]
    pub const fn new(div: u64, mul: u64, add: u64, mac: u64) -> Self {
        OpCount { div, mul, add, mac }
    }

    /// Total scalar operations, counting a MAC as one fused op.
    #[inline]
    pub const fn total(&self) -> u64 {
        self.div + self.mul + self.add + self.mac
    }

    /// Weighted cost where a division costs `div_weight` basic ops
    /// (hardware dividers are substantially more expensive than
    /// multipliers; the simulator uses this to convert counts into
    /// cycles).
    #[inline]
    pub const fn weighted(&self, div_weight: u64) -> u64 {
        self.div * div_weight + self.mul + self.add + self.mac
    }
}

impl std::ops::Add for OpCount {
    type Output = OpCount;
    #[inline]
    fn add(self, rhs: OpCount) -> OpCount {
        OpCount {
            div: self.div + rhs.div,
            mul: self.mul + rhs.mul,
            add: self.add + rhs.add,
            mac: self.mac + rhs.mac,
        }
    }
}

impl std::ops::AddAssign for OpCount {
    #[inline]
    fn add_assign(&mut self, rhs: OpCount) {
        *self = *self + rhs;
    }
}

/// The arithmetic cost of one general (unnormalized) ray–box
/// intersection, as accounted by the paper: solving six linear plane
/// equations requires 18 divisions, 54 multiplications, and 54
/// additions.
pub const GENERAL_INTERSECT_COST: OpCount = OpCount::new(18, 54, 54, 0);

/// The arithmetic cost of one normalized unit-cube intersection under
/// Technique T1-1: 3 multiplications and 3 MACs (the per-ray reciprocal
/// direction is shared across all eight partition cubes).
pub const NORMALIZED_INTERSECT_COST: OpCount = OpCount::new(0, 3, 0, 3);

/// An axis-aligned bounding box.
///
/// # Examples
///
/// ```
/// use fusion3d_nerf::math::{Aabb, Ray, Vec3};
///
/// let unit = Aabb::unit_cube();
/// let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
/// let span = unit.intersect_unit_cube(&ray).expect("ray hits the cube");
/// assert!((span.t_near - 1.0).abs() < 1e-6);
/// assert!((span.t_far - 2.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from its two corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when any `min` component exceeds the
    /// corresponding `max` component.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb min must not exceed max: min={min:?} max={max:?}"
        );
        Aabb { min, max }
    }

    /// The normalized model cube `[0,0,0]..[1,1,1]` that Technique
    /// T1-1 maps every scene into.
    #[inline]
    pub fn unit_cube() -> Self {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    /// Box center.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Box extent (`max - min`).
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Surface diagonal length.
    #[inline]
    pub fn diagonal(&self) -> f32 {
        self.extent().length()
    }

    /// Whether `p` lies inside the box (inclusive bounds).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The smallest box containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb::new(self.min.min(other.min), self.max.max(other.max))
    }

    /// The affine map taking this box onto the unit cube, returned as
    /// `(scale, offset)` such that `normalized = (p - offset).hadamard(scale)`.
    ///
    /// This is the *model normalization* step of Technique T1-1: once a
    /// scene's bounding box is known, every world-space point and camera
    /// is remapped so that all subsequent intersection tests run against
    /// the fixed `[0,1]^3` cube.
    #[inline]
    pub fn normalization(&self) -> (Vec3, Vec3) {
        let e = self.extent();
        let scale = Vec3::new(
            if e.x > 0.0 { 1.0 / e.x } else { 1.0 },
            if e.y > 0.0 { 1.0 / e.y } else { 1.0 },
            if e.z > 0.0 { 1.0 / e.z } else { 1.0 },
        );
        (scale, self.min)
    }

    /// Maps a world-space point into normalized model coordinates.
    #[inline]
    pub fn normalize_point(&self, p: Vec3) -> Vec3 {
        let (scale, offset) = self.normalization();
        (p - offset).hadamard(scale)
    }

    /// Maps a world-space ray into normalized model coordinates.
    ///
    /// The direction is *not* re-normalized to unit length: keeping the
    /// scaled direction makes `t` values in normalized space correspond
    /// to the same parametric positions as in world space.
    #[inline]
    pub fn normalize_ray(&self, ray: &Ray) -> Ray {
        let (scale, offset) = self.normalization();
        Ray::new((ray.origin - offset).hadamard(scale), ray.direction.hadamard(scale))
    }

    /// General slab-method ray–box intersection against an arbitrary
    /// box. Returns the entry/exit span, or `None` when the ray misses.
    ///
    /// This models the *unoptimized* Stage-I path: each call accounts
    /// for [`GENERAL_INTERSECT_COST`] in the accelerator's cost model.
    pub fn intersect_general(&self, ray: &Ray) -> Option<TSpan> {
        let mut span = TSpan::new(f32::NEG_INFINITY, f32::INFINITY);
        for axis in 0..3 {
            let (o, d) = (ray.origin[axis], ray.direction[axis]);
            let (lo, hi) = (self.min[axis], self.max[axis]);
            if d == 0.0 {
                // Axis-parallel: the ray misses unless the origin lies
                // inside the slab (inclusive, so boundary rays hit).
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (t0, t1) = ((lo - o) * inv, (hi - o) * inv);
                span = span.intersect(&TSpan::new(t0.min(t1), t0.max(t1)));
            }
        }
        if span.is_valid() {
            Some(span.clamped_to_front())
        } else {
            None
        }
    }

    /// Simplified intersection against the normalized unit cube with a
    /// precomputed reciprocal direction (Technique T1-1).
    ///
    /// Because the cube planes are the constants 0 and 1, the six plane
    /// equations collapse to `t = -o * inv` and `t = (1 - o) * inv`,
    /// i.e. 3 multiplications plus 3 MACs per cube; each call accounts
    /// for [`NORMALIZED_INTERSECT_COST`].
    ///
    /// The receiver's own bounds are ignored — the test is always
    /// against `[0,1]^3`. Call through [`Aabb::unit_cube()`] for
    /// clarity.
    pub fn intersect_unit_cube(&self, ray: &Ray) -> Option<TSpan> {
        let mut span = TSpan::new(f32::NEG_INFINITY, f32::INFINITY);
        for axis in 0..3 {
            let (o, d) = (ray.origin[axis], ray.direction[axis]);
            if d == 0.0 {
                // Axis-parallel ray: hardware handles this with a
                // comparator, no arithmetic.
                if !(0.0..=1.0).contains(&o) {
                    return None;
                }
            } else {
                // t_lo = −o · inv (one MUL); t_hi = (1 − o) · inv =
                // inv − o · inv (one MAC reusing the product) — the
                // paper's 3 MUL + 3 MAC accounting.
                let inv = 1.0 / d;
                let t_lo = -o * inv;
                let t_hi = inv + t_lo;
                span = span.intersect(&TSpan::new(t_lo.min(t_hi), t_lo.max(t_hi)));
            }
        }
        if span.is_valid() {
            Some(span.clamped_to_front())
        } else {
            None
        }
    }

    /// The eight octant sub-cubes of this box, indexed so that bit 0 of
    /// the index selects the upper X half, bit 1 the upper Y half, and
    /// bit 2 the upper Z half.
    ///
    /// Technique T1-1 partitions the normalized space into these eight
    /// cubes and tests every ray against all of them in parallel; only
    /// ray–cube pairs with valid intersections are dispatched to the
    /// sampling cores.
    pub fn octants(&self) -> [Aabb; 8] {
        let c = self.center();
        let mut out = [*self; 8];
        for (i, cube) in out.iter_mut().enumerate() {
            let min = Vec3::new(
                if i & 1 == 0 { self.min.x } else { c.x },
                if i & 2 == 0 { self.min.y } else { c.y },
                if i & 4 == 0 { self.min.z } else { c.z },
            );
            *cube = Aabb::new(min, min + self.extent() * 0.5);
        }
        out
    }
}

impl Default for Aabb {
    /// The unit cube.
    fn default() -> Self {
        Aabb::unit_cube()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_span_close(a: TSpan, near: f32, far: f32) {
        assert!((a.t_near - near).abs() < 1e-5, "t_near {} != {near}", a.t_near);
        assert!((a.t_far - far).abs() < 1e-5, "t_far {} != {far}", a.t_far);
    }

    #[test]
    fn op_count_arithmetic() {
        let a = OpCount::new(1, 2, 3, 4);
        let b = OpCount::new(10, 20, 30, 40);
        let c = a + b;
        assert_eq!(c, OpCount::new(11, 22, 33, 44));
        assert_eq!(c.total(), 110);
        assert_eq!(OpCount::new(2, 1, 1, 0).weighted(10), 22);
        let mut d = OpCount::ZERO;
        d += a;
        assert_eq!(d, a);
    }

    #[test]
    fn paper_cost_constants() {
        // The paper's accounting: general = 18 div + 54 mul + 54 add;
        // normalized = 3 mul + 3 MAC.
        assert_eq!(GENERAL_INTERSECT_COST.total(), 126);
        assert_eq!(NORMALIZED_INTERSECT_COST.total(), 6);
        // The saving that motivates T1-1 is >20x in raw op count.
        assert!(GENERAL_INTERSECT_COST.total() / NORMALIZED_INTERSECT_COST.total() >= 20);
    }

    #[test]
    fn basic_geometry() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.extent(), Vec3::new(2.0, 4.0, 6.0));
        assert!(b.contains(Vec3::new(1.0, 1.0, 1.0)));
        assert!(b.contains(b.min) && b.contains(b.max));
        assert!(!b.contains(Vec3::new(-0.1, 1.0, 1.0)));
        let u = b.union(&Aabb::new(Vec3::splat(-1.0), Vec3::splat(0.5)));
        assert_eq!(u.min, Vec3::splat(-1.0));
        assert_eq!(u.max, Vec3::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn normalization_maps_box_to_unit_cube() {
        let b = Aabb::new(Vec3::new(-2.0, 0.0, 4.0), Vec3::new(2.0, 8.0, 5.0));
        assert_eq!(b.normalize_point(b.min), Vec3::ZERO);
        assert_eq!(b.normalize_point(b.max), Vec3::ONE);
        assert_eq!(b.normalize_point(b.center()), Vec3::splat(0.5));
    }

    #[test]
    fn normalized_ray_hits_match_world_hits() {
        let b = Aabb::new(Vec3::new(-3.0, -1.0, 2.0), Vec3::new(5.0, 7.0, 10.0));
        let ray = Ray::new(Vec3::new(-10.0, 3.0, 6.0), Vec3::X);
        let world = b.intersect_general(&ray).unwrap();
        let nray = b.normalize_ray(&ray);
        let norm = Aabb::unit_cube().intersect_unit_cube(&nray).unwrap();
        // t parameters agree because the direction is scaled, not
        // re-normalized.
        assert_span_close(norm, world.t_near, world.t_far);
    }

    #[test]
    fn general_intersection_cases() {
        let b = Aabb::unit_cube();
        // Straight through the middle.
        let hit = b.intersect_general(&Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X)).unwrap();
        assert_span_close(hit, 1.0, 2.0);
        // Miss to the side.
        assert!(b.intersect_general(&Ray::new(Vec3::new(-1.0, 2.0, 0.5), Vec3::X)).is_none());
        // Box entirely behind the origin.
        assert!(b.intersect_general(&Ray::new(Vec3::new(3.0, 0.5, 0.5), Vec3::X)).is_none());
        // Origin inside the box: near clamps to zero.
        let inside = b.intersect_general(&Ray::new(Vec3::splat(0.5), Vec3::X)).unwrap();
        assert_span_close(inside, 0.0, 0.5);
    }

    #[test]
    fn unit_cube_fast_path_matches_general() {
        let cube = Aabb::unit_cube();
        let rays = [
            Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X),
            Ray::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(1.0, 1.0, 1.0).normalize()),
            Ray::new(Vec3::new(2.0, 2.0, 2.0), Vec3::new(-1.0, -1.0, -1.0).normalize()),
            Ray::new(Vec3::new(-0.5, -0.5, 0.5), Vec3::new(1.0, 0.3, 0.1).normalize()),
            Ray::new(Vec3::new(0.5, -1.0, 0.5), Vec3::Y),
        ];
        for ray in rays {
            let g = cube.intersect_general(&ray);
            let f = cube.intersect_unit_cube(&ray);
            match (g, f) {
                (Some(a), Some(b)) => assert_span_close(b, a.t_near, a.t_far),
                (None, None) => {}
                other => panic!("fast path disagrees with general: {other:?} for {ray:?}"),
            }
        }
    }

    #[test]
    fn axis_parallel_ray_outside_slab_misses() {
        let cube = Aabb::unit_cube();
        // Direction has zero Y component and origin outside the Y slab.
        let ray = Ray::new(Vec3::new(-1.0, 2.0, 0.5), Vec3::X);
        assert!(cube.intersect_unit_cube(&ray).is_none());
        assert!(cube.intersect_general(&ray).is_none());
    }

    #[test]
    fn octants_partition_the_cube() {
        let cube = Aabb::unit_cube();
        let octs = cube.octants();
        // Each octant has half the extent.
        for o in &octs {
            assert_eq!(o.extent(), Vec3::splat(0.5));
            // Octant corners stay inside the parent.
            assert!(cube.contains(o.min) && cube.contains(o.max));
        }
        // The eight octants cover all corners of the parent cube.
        assert_eq!(octs[0].min, Vec3::ZERO);
        assert_eq!(octs[7].max, Vec3::ONE);
        // Octant index bits select the half-space.
        assert_eq!(octs[1].min.x, 0.5);
        assert_eq!(octs[2].min.y, 0.5);
        assert_eq!(octs[4].min.z, 0.5);
        // Volumes sum to the parent volume.
        let vol: f32 = octs
            .iter()
            .map(|o| {
                let e = o.extent();
                e.x * e.y * e.z
            })
            .sum();
        assert!((vol - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ray_intersects_union_of_octants_iff_it_intersects_cube() {
        let cube = Aabb::unit_cube();
        let octs = cube.octants();
        // Rays avoid the exact octant-boundary planes (x/y/z = 0.5),
        // where the slab method is degenerate for axis-parallel rays.
        let rays = [
            Ray::new(Vec3::new(-1.0, 0.3, 0.7), Vec3::X),
            Ray::new(Vec3::new(0.51, 0.49, -1.0), Vec3::Z),
            Ray::new(Vec3::new(-1.0, 5.0, 0.5), Vec3::X),
        ];
        for ray in rays {
            let whole = cube.intersect_general(&ray).is_some();
            let any_oct = octs.iter().any(|o| o.intersect_general(&ray).is_some());
            assert_eq!(whole, any_oct, "octant coverage mismatch for {ray:?}");
        }
    }
}
