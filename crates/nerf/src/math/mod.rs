//! Geometric primitives: vectors, rays, bounding boxes, and the
//! operation-count accounting used by the accelerator cost model.

mod aabb;
mod ray;
mod vec3;

pub use aabb::{Aabb, OpCount, GENERAL_INTERSECT_COST, NORMALIZED_INTERSECT_COST};
pub use ray::{Ray, TSpan};
pub use vec3::Vec3;
