//! Three-component vector used for positions, directions, and colors.

use std::fmt;
use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A three-component `f32` vector.
///
/// `Vec3` is used throughout the crate for 3D positions, ray directions,
/// and RGB radiance values. All arithmetic is component-wise except
/// [`Vec3::dot`] and [`Vec3::cross`].
///
/// # Examples
///
/// ```
/// use fusion3d_nerf::math::Vec3;
///
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::splat(2.0);
/// assert_eq!(a + b, Vec3::new(3.0, 4.0, 5.0));
/// assert_eq!(a.dot(b), 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };
    /// The unit X axis.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// The unit Y axis.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// The unit Z axis.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use fusion3d_nerf::math::Vec3;
    /// assert_eq!(Vec3::splat(3.0), Vec3::new(3.0, 3.0, 3.0));
    /// ```
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    ///
    /// # Examples
    ///
    /// ```
    /// # use fusion3d_nerf::math::Vec3;
    /// assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
    /// ```
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Does not panic, but returns a vector of NaNs when `self` has zero
    /// length. Use [`Vec3::try_normalize`] when the input may be zero.
    #[inline]
    pub fn normalize(self) -> Vec3 {
        self / self.length()
    }

    /// Returns the unit-length vector, or `None` if the length is too
    /// small for a numerically meaningful direction.
    #[inline]
    pub fn try_normalize(self) -> Option<Vec3> {
        let len = self.length();
        if len > 1e-12 {
            Some(self / len)
        } else {
            None
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Smallest of the three components.
    #[inline]
    pub fn min_element(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Largest of the three components.
    #[inline]
    pub fn max_element(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Component-wise product (Hadamard product).
    #[inline]
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Component-wise floor.
    #[inline]
    pub fn floor(self) -> Vec3 {
        Vec3::new(self.x.floor(), self.y.floor(), self.z.floor())
    }

    /// Component-wise fractional part (`self - self.floor()`).
    #[inline]
    pub fn fract(self) -> Vec3 {
        self - self.floor()
    }

    /// Component-wise clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: f32, hi: f32) -> Vec3 {
        Vec3::new(self.x.clamp(lo, hi), self.y.clamp(lo, hi), self.z.clamp(lo, hi))
    }

    /// Linear interpolation `self * (1 - t) + rhs * t`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use fusion3d_nerf::math::Vec3;
    /// let mid = Vec3::ZERO.lerp(Vec3::ONE, 0.5);
    /// assert_eq!(mid, Vec3::splat(0.5));
    /// ```
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f32) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_squared(self, rhs: Vec3) -> f32 {
        (self - rhs).length_squared()
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f32 {
        self.distance_squared(rhs).sqrt()
    }

    /// Returns `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    /// Indexes the components as `0 => x`, `1 => y`, `2 => z`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // lint: allow(p1): the Index contract requires an out-of-bounds panic
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    fn index_mut(&mut self, index: usize) -> &mut f32 {
        match index {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            // lint: allow(p1): the Index contract requires an out-of-bounds panic
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f32> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f32> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f32) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).to_array(), [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::splat(7.0), Vec3::new(7.0, 7.0, 7.0));
        assert_eq!(Vec3::default(), Vec3::ZERO);
        assert_eq!(Vec3::from([4.0, 5.0, 6.0]), Vec3::new(4.0, 5.0, 6.0));
    }

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        c -= a;
        c *= 2.0;
        c /= 2.0;
        assert_eq!(c, b);
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        // Cross product is perpendicular to both operands.
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-5);
        assert!(c.dot(b).abs() < 1e-5);
    }

    #[test]
    fn lengths_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length_squared(), 25.0);
        assert_eq!(v.length(), 5.0);
        let n = v.normalize();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert!(Vec3::ZERO.try_normalize().is_none());
        assert!(v.try_normalize().is_some());
    }

    #[test]
    fn component_ops() {
        let a = Vec3::new(-1.0, 2.5, 3.0);
        let b = Vec3::new(0.0, 2.0, 4.0);
        assert_eq!(a.min(b), Vec3::new(-1.0, 2.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(0.0, 2.5, 4.0));
        assert_eq!(a.min_element(), -1.0);
        assert_eq!(a.max_element(), 3.0);
        assert_eq!(a.abs(), Vec3::new(1.0, 2.5, 3.0));
        assert_eq!(a.floor(), Vec3::new(-1.0, 2.0, 3.0));
        assert_eq!(a.fract(), Vec3::new(0.0, 0.5, 0.0));
        assert_eq!(a.clamp(0.0, 2.0), Vec3::new(0.0, 2.0, 2.0));
        assert_eq!(a.hadamard(b), Vec3::new(0.0, 5.0, 12.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(5.0, 6.0, 7.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(3.0, 4.0, 5.0));
    }

    #[test]
    fn distances() {
        let a = Vec3::ZERO;
        let b = Vec3::new(0.0, 3.0, 4.0);
        assert_eq!(a.distance_squared(b), 25.0);
        assert_eq!(a.distance(b), 5.0);
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        v[1] = 9.0;
        assert_eq!(v.y, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn sum_iterator() {
        let total: Vec3 = (0..4).map(|i| Vec3::splat(i as f32)).sum();
        assert_eq!(total, Vec3::splat(6.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn display_format() {
        assert_eq!(Vec3::new(1.0, 2.5, -3.0).to_string(), "(1, 2.5, -3)");
    }
}
