//! Pinhole cameras and per-pixel ray generation (the front of Stage I).

use crate::math::{Ray, Vec3};

/// A rigid camera pose stored as an orthonormal basis plus position.
///
/// The camera looks along `forward`, with `right` and `up` completing
/// a right-handed frame.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pose {
    /// Camera position in world coordinates.
    pub position: Vec3,
    /// Unit right axis of the image plane.
    pub right: Vec3,
    /// Unit up axis of the image plane.
    pub up: Vec3,
    /// Unit viewing direction.
    pub forward: Vec3,
}

impl Pose {
    /// Builds a pose at `eye` looking at `target` with the given
    /// approximate up vector.
    ///
    /// # Panics
    ///
    /// Panics if `eye == target` or if `up` is parallel to the view
    /// direction (the frame would be degenerate).
    pub fn look_at(eye: Vec3, target: Vec3, up_hint: Vec3) -> Self {
        // lint: allow(p1): documented panic — a degenerate frame is a caller bug
        let forward = (target - eye).try_normalize().expect("look_at requires eye != target");
        let right = forward
            .cross(up_hint)
            .try_normalize()
            // lint: allow(p1): documented panic — a degenerate frame is a caller bug
            .expect("up hint must not be parallel to the view direction");
        let up = right.cross(forward);
        Pose { position: eye, right, up, forward }
    }
}

/// A pinhole camera: a pose plus intrinsics.
///
/// # Examples
///
/// ```
/// use fusion3d_nerf::camera::{Camera, Pose};
/// use fusion3d_nerf::math::Vec3;
///
/// let pose = Pose::look_at(Vec3::new(0.0, 0.0, -2.0), Vec3::ZERO, Vec3::Y);
/// let cam = Camera::new(pose, 64, 64, 60.0_f32.to_radians());
/// let center = cam.ray_for_pixel(32, 32);
/// // The central ray points roughly along the viewing direction.
/// assert!(center.direction.dot(pose.forward) > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Camera {
    pose: Pose,
    width: u32,
    height: u32,
    /// Vertical field of view in radians.
    fov_y: f32,
}

impl Camera {
    /// Creates a camera.
    ///
    /// # Panics
    ///
    /// Panics if either image dimension is zero or the field of view
    /// is not in `(0, π)`.
    pub fn new(pose: Pose, width: u32, height: u32, fov_y: f32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert!(
            fov_y > 0.0 && fov_y < std::f32::consts::PI,
            "field of view must be in (0, pi), got {fov_y}"
        );
        Camera { pose, width, height, fov_y }
    }

    /// The camera pose.
    #[inline]
    pub fn pose(&self) -> &Pose {
        &self.pose
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Vertical field of view in radians.
    #[inline]
    pub fn fov_y(&self) -> f32 {
        self.fov_y
    }

    /// Total number of pixels (rays per frame).
    #[inline]
    pub fn pixel_count(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Generates the unit-direction ray through the center of pixel
    /// `(x, y)`, with `(0, 0)` the top-left pixel.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the pixel is out of range.
    pub fn ray_for_pixel(&self, x: u32, y: u32) -> Ray {
        debug_assert!(x < self.width && y < self.height, "pixel out of range");
        self.ray_for_uv((x as f32 + 0.5) / self.width as f32, (y as f32 + 0.5) / self.height as f32)
    }

    /// Generates the ray through normalized image coordinates
    /// `(u, v) ∈ [0,1]^2`, with `v = 0` the top row.
    pub fn ray_for_uv(&self, u: f32, v: f32) -> Ray {
        let tan_half = (self.fov_y * 0.5).tan();
        let aspect = self.width as f32 / self.height as f32;
        let px = (2.0 * u - 1.0) * tan_half * aspect;
        let py = (1.0 - 2.0 * v) * tan_half;
        let dir = (self.pose.right * px + self.pose.up * py + self.pose.forward).normalize();
        Ray::new(self.pose.position, dir)
    }

    /// Iterates over all pixel rays in row-major order, yielding
    /// `(x, y, ray)`.
    pub fn rays(&self) -> impl Iterator<Item = (u32, u32, Ray)> + '_ {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| (x, y, self.ray_for_pixel(x, y))))
    }
}

/// Places `count` cameras on a sphere of radius `radius` around
/// `center`, all looking at the center — the capture pattern of the
/// NeRF-Synthetic dataset. Elevations alternate to cover the upper
/// hemisphere; a golden-angle azimuth spiral avoids clustering.
pub fn orbit_poses(center: Vec3, radius: f32, count: usize) -> Vec<Pose> {
    assert!(radius > 0.0, "orbit radius must be positive");
    let golden = std::f32::consts::PI * (3.0 - 5.0f32.sqrt());
    (0..count)
        .map(|i| {
            // lint: allow(p2): the closure only runs for i < count, so
            // count >= 1 here; count == 0 yields no poses, no division
            let frac = (i as f32 + 0.5) / count as f32;
            // Elevation between ~10° and ~60° above the horizon.
            let elev = 0.17 + 0.9 * frac;
            let azim = golden * i as f32;
            let eye = center
                + Vec3::new(
                    radius * elev.cos() * azim.cos(),
                    radius * elev.sin(),
                    radius * elev.cos() * azim.sin(),
                );
            Pose::look_at(eye, center, Vec3::Y)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn look_at_produces_orthonormal_frame() {
        let p = Pose::look_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::Y);
        assert!((p.forward.length() - 1.0).abs() < 1e-6);
        assert!((p.right.length() - 1.0).abs() < 1e-6);
        assert!((p.up.length() - 1.0).abs() < 1e-6);
        assert!(p.forward.dot(p.right).abs() < 1e-6);
        assert!(p.forward.dot(p.up).abs() < 1e-6);
        assert!(p.right.dot(p.up).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "eye != target")]
    fn look_at_rejects_degenerate_eye() {
        Pose::look_at(Vec3::ONE, Vec3::ONE, Vec3::Y);
    }

    #[test]
    fn central_ray_is_forward() {
        let pose = Pose::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y);
        let cam = Camera::new(pose, 101, 101, 1.0);
        let r = cam.ray_for_uv(0.5, 0.5);
        assert!(r.direction.dot(pose.forward) > 0.9999);
        assert_eq!(r.origin, pose.position);
    }

    #[test]
    fn corner_rays_diverge_symmetrically() {
        let pose = Pose::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y);
        let cam = Camera::new(pose, 64, 64, 1.2);
        let tl = cam.ray_for_uv(0.0, 0.0);
        let tr = cam.ray_for_uv(1.0, 0.0);
        let bl = cam.ray_for_uv(0.0, 1.0);
        // Top-left and top-right mirror in the right axis.
        assert!((tl.direction.dot(pose.right) + tr.direction.dot(pose.right)).abs() < 1e-5);
        // Top-left and bottom-left mirror in the up axis.
        assert!((tl.direction.dot(pose.up) + bl.direction.dot(pose.up)).abs() < 1e-5);
        // v = 0 is the top row: positive up component.
        assert!(tl.direction.dot(pose.up) > 0.0);
    }

    #[test]
    fn all_rays_unit_length() {
        let pose = Pose::look_at(Vec3::new(2.0, 1.0, -3.0), Vec3::ZERO, Vec3::Y);
        let cam = Camera::new(pose, 8, 6, 0.9);
        let mut count = 0;
        for (_, _, ray) in cam.rays() {
            assert!((ray.direction.length() - 1.0).abs() < 1e-5);
            count += 1;
        }
        assert_eq!(count, 48);
        assert_eq!(cam.pixel_count(), 48);
    }

    #[test]
    fn orbit_poses_lie_on_sphere_and_face_center() {
        let center = Vec3::splat(0.5);
        let poses = orbit_poses(center, 3.0, 24);
        assert_eq!(poses.len(), 24);
        for p in &poses {
            assert!(((p.position - center).length() - 3.0).abs() < 1e-4);
            let toward = (center - p.position).normalize();
            assert!(p.forward.dot(toward) > 0.999);
            // Cameras stay above the horizon.
            assert!(p.position.y > center.y);
        }
    }

    #[test]
    #[should_panic(expected = "field of view")]
    fn camera_rejects_bad_fov() {
        let pose = Pose::look_at(Vec3::new(0.0, 0.0, -1.0), Vec3::ZERO, Vec3::Y);
        Camera::new(pose, 4, 4, 0.0);
    }
}
