//! Dense voxel-grid feature encoding — the TensoRF/RT-NeRF-class
//! alternative to the multiresolution hash grid.
//!
//! A [`DenseGrid`] stores features at every vertex of a single
//! `resolution^3` grid, addressed directly (no hashing, no
//! collisions). It implements the same [`Encoding`] interface as
//! [`crate::encoding::HashGrid`], which is what lets the paper's
//! Sampling and Post-Processing modules transfer to TensoRF-style
//! pipelines (Sec. VI-C) and lets the MoE Level-1 tiling wrap either
//! representation.
//!
//! [`Encoding`]: crate::encoding::Encoding

use crate::encoding::Encoding;
use crate::hash::{cell_corners, dense_index};
use crate::math::{Aabb, Vec3};
use rand::Rng;

/// Configuration of a dense voxel grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DenseGridConfig {
    /// Grid resolution per axis (vertices per axis = resolution + 1).
    pub resolution: u32,
    /// Features stored per vertex.
    pub features_per_vertex: usize,
}

impl Default for DenseGridConfig {
    /// A 32³ grid with 4 features per vertex — TensoRF-class capacity
    /// at test-friendly scale.
    fn default() -> Self {
        DenseGridConfig { resolution: 32, features_per_vertex: 4 }
    }
}

impl DenseGridConfig {
    /// Number of grid vertices.
    pub const fn vertex_count(&self) -> usize {
        let v = self.resolution as usize + 1;
        v * v * v
    }

    /// Total learnable parameters.
    pub const fn param_count(&self) -> usize {
        self.vertex_count() * self.features_per_vertex
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.resolution == 0 {
            return Err("resolution must be at least 1".into());
        }
        if self.resolution > 512 {
            return Err(format!(
                "resolution {} would allocate {} vertices; cap is 512",
                self.resolution,
                (self.resolution as u64 + 1).pow(3)
            ));
        }
        if self.features_per_vertex == 0 {
            return Err("features_per_vertex must be at least 1".into());
        }
        Ok(())
    }
}

/// A dense trilinearly-interpolated feature grid over a configurable
/// spatial domain.
///
/// By default the grid spans the whole normalized model cube; scoping
/// it to a sub-box via [`DenseGrid::with_domain`] concentrates its
/// fixed vertex budget on that region — how each expert of a
/// dense-grid (TensoRF-class) MoE dedicates its capacity to its own
/// part of the scene.
#[derive(Debug, Clone)]
pub struct DenseGrid {
    config: DenseGridConfig,
    domain: Aabb,
    params: Vec<f32>,
}

impl DenseGrid {
    /// Creates a zero-initialized grid over the whole model cube.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DenseGridConfig::validate`].
    pub fn new(config: DenseGridConfig) -> Self {
        DenseGrid::with_domain(config, Aabb::unit_cube())
    }

    /// Creates a zero-initialized grid covering only `domain` (queries
    /// outside clamp to the domain boundary).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DenseGridConfig::validate`].
    pub fn with_domain(config: DenseGridConfig, domain: Aabb) -> Self {
        // lint: allow(p1): documented panic — constructors reject invalid configs
        config.validate().expect("invalid dense grid config");
        DenseGrid { config, domain, params: vec![0.0; config.param_count()] }
    }

    /// Creates a grid with features drawn uniformly from
    /// `[-1e-4, 1e-4]`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_random_init<R: Rng>(config: DenseGridConfig, rng: &mut R) -> Self {
        let mut grid = DenseGrid::new(config);
        for p in grid.params.iter_mut() {
            *p = rng.gen_range(-1e-4..1e-4);
        }
        grid
    }

    /// [`DenseGrid::with_random_init`] over a sub-domain.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_random_init_in_domain<R: Rng>(
        config: DenseGridConfig,
        domain: Aabb,
        rng: &mut R,
    ) -> Self {
        let mut grid = DenseGrid::with_domain(config, domain);
        for p in grid.params.iter_mut() {
            *p = rng.gen_range(-1e-4..1e-4);
        }
        grid
    }

    /// The grid configuration.
    pub fn config(&self) -> &DenseGridConfig {
        &self.config
    }

    /// The spatial domain the grid covers.
    pub fn domain(&self) -> &Aabb {
        &self.domain
    }

    /// Locates `p` (clamped to the unit cube): base vertex plus
    /// trilinear fractional position.
    fn locate(&self, p: Vec3) -> ([u32; 3], Vec3) {
        let res = self.config.resolution as f32;
        let q = self.domain.normalize_point(p).clamp(0.0, 1.0) * res;
        let max_base = self.config.resolution - 1;
        let bx = (q.x.floor() as u32).min(max_base);
        let by = (q.y.floor() as u32).min(max_base);
        let bz = (q.z.floor() as u32).min(max_base);
        let frac = Vec3::new(q.x - bx as f32, q.y - by as f32, q.z - bz as f32).clamp(0.0, 1.0);
        ([bx, by, bz], frac)
    }

    #[inline]
    fn corner_weight(frac: Vec3, i: usize) -> f32 {
        let wx = if i & 1 == 0 { 1.0 - frac.x } else { frac.x };
        let wy = if i & 2 == 0 { 1.0 - frac.y } else { frac.y };
        let wz = if i & 4 == 0 { 1.0 - frac.z } else { frac.z };
        wx * wy * wz
    }
}

impl Encoding for DenseGrid {
    fn output_dim(&self) -> usize {
        self.config.features_per_vertex
    }

    fn gather_locality(&self) -> (usize, usize) {
        // A single fully dense level: every gather is local.
        (1, 0)
    }

    fn interpolate(&self, p: Vec3, out: &mut [f32]) {
        assert_eq!(out.len(), self.output_dim(), "output buffer size mismatch");
        out.fill(0.0);
        let (base, frac) = self.locate(p);
        let f = self.config.features_per_vertex;
        for (i, &corner) in cell_corners(base).iter().enumerate() {
            let w = Self::corner_weight(frac, i);
            let slot = dense_index(corner, self.config.resolution) as usize * f;
            for (o, &v) in out.iter_mut().zip(&self.params[slot..slot + f]) {
                *o += w * v;
            }
        }
    }

    fn backward(&self, p: Vec3, d_out: &[f32], grads: &mut [f32]) {
        assert_eq!(d_out.len(), self.output_dim(), "gradient buffer size mismatch");
        assert_eq!(grads.len(), self.params.len(), "parameter gradient size mismatch");
        let (base, frac) = self.locate(p);
        let f = self.config.features_per_vertex;
        for (i, &corner) in cell_corners(base).iter().enumerate() {
            let w = Self::corner_weight(frac, i);
            let slot = dense_index(corner, self.config.resolution) as usize * f;
            for (g, &d) in grads[slot..slot + f].iter_mut().zip(d_out) {
                *g += w * d;
            }
        }
    }

    fn param_count(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small() -> DenseGridConfig {
        DenseGridConfig { resolution: 8, features_per_vertex: 3 }
    }

    #[test]
    fn config_counts() {
        let c = small();
        assert_eq!(c.vertex_count(), 9 * 9 * 9);
        assert_eq!(c.param_count(), 9 * 9 * 9 * 3);
        assert!(c.validate().is_ok());
        assert!(DenseGridConfig { resolution: 0, ..c }.validate().is_err());
        assert!(DenseGridConfig { features_per_vertex: 0, ..c }.validate().is_err());
        assert!(DenseGridConfig { resolution: 1000, ..c }.validate().is_err());
    }

    #[test]
    fn constant_grid_interpolates_to_constant() {
        let mut grid = DenseGrid::new(small());
        for p in grid.params_mut() {
            *p = 0.25;
        }
        for probe in [Vec3::splat(0.1), Vec3::splat(0.77), Vec3::new(0.0, 1.0, 0.5)] {
            let mut out = vec![0.0; 3];
            grid.interpolate(probe, &mut out);
            for v in out {
                assert!((v - 0.25).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn interpolation_is_exact_at_vertices() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut grid = DenseGrid::with_random_init(small(), &mut rng);
        // Set a distinctive feature at vertex (2, 3, 4).
        let idx = dense_index([2, 3, 4], 8) as usize * 3;
        grid.params_mut()[idx] = 0.875;
        let p = Vec3::new(2.0 / 8.0, 3.0 / 8.0, 4.0 / 8.0);
        let mut out = vec![0.0; 3];
        grid.interpolate(p, &mut out);
        assert!((out[0] - 0.875).abs() < 1e-5, "vertex sample {}", out[0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut grid = DenseGrid::with_random_init(small(), &mut rng);
        let p = Vec3::new(0.41, 0.13, 0.77);
        let d_out = vec![1.0f32, -0.5, 2.0];
        let mut grads = vec![0.0f32; grid.param_count()];
        grid.backward(p, &d_out, &mut grads);
        let loss = |g: &DenseGrid| {
            let mut out = vec![0.0; 3];
            g.interpolate(p, &mut out);
            out[0] - 0.5 * out[1] + 2.0 * out[2]
        };
        let h = 1e-3;
        let nonzero: Vec<usize> =
            grads.iter().enumerate().filter(|(_, g)| g.abs() > 1e-4).map(|(i, _)| i).collect();
        assert!(!nonzero.is_empty());
        for &i in nonzero.iter().take(12) {
            let orig = grid.params()[i];
            grid.params_mut()[i] = orig + h;
            let up = loss(&grid);
            grid.params_mut()[i] = orig - h;
            let down = loss(&grid);
            grid.params_mut()[i] = orig;
            let fd = (up - down) / (2.0 * h);
            assert!((fd - grads[i]).abs() < 1e-3, "param {i}: {fd} vs {}", grads[i]);
        }
    }

    #[test]
    fn dense_grid_has_no_collisions() {
        // Unlike the hash grid, distinct cells never share storage:
        // writing one vertex leaves far-away queries untouched.
        let mut grid = DenseGrid::new(small());
        let idx = dense_index([0, 0, 0], 8) as usize;
        grid.params_mut()[idx] = 1.0;
        let mut out = vec![0.0; 3];
        grid.interpolate(Vec3::splat(0.9), &mut out);
        assert!(out.iter().all(|&v| v == 0.0), "distant cell affected: {out:?}");
    }

    #[test]
    fn scoped_domain_concentrates_resolution() {
        // A grid scoped to the lower-X half maps its full resolution
        // onto that half: two points that fall in the same cell of an
        // unscoped grid land in different cells of the scoped one.
        let cfg = DenseGridConfig { resolution: 4, features_per_vertex: 1 };
        let domain = Aabb::new(Vec3::ZERO, Vec3::new(0.5, 1.0, 1.0));
        let mut scoped = DenseGrid::with_domain(cfg, domain);
        let idx = dense_index([1, 0, 0], 4) as usize;
        scoped.params_mut()[idx] = 1.0;
        // In domain coordinates x scales by 2: world x = 0.125 is
        // vertex 1 of the scoped grid.
        let mut out = [0.0f32];
        scoped.interpolate(Vec3::new(0.125, 0.0, 0.0), &mut out);
        assert!((out[0] - 1.0).abs() < 1e-6, "scoped vertex sample {}", out[0]);
        // Queries outside the domain clamp to its boundary.
        let mut edge = [0.0f32];
        scoped.interpolate(Vec3::new(0.5, 0.0, 0.0), &mut edge);
        let mut beyond = [0.0f32];
        scoped.interpolate(Vec3::new(0.9, 0.0, 0.0), &mut beyond);
        assert_eq!(edge, beyond);
    }

    #[test]
    fn out_of_range_points_clamp() {
        let mut rng = SmallRng::seed_from_u64(3);
        let grid = DenseGrid::with_random_init(small(), &mut rng);
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        grid.interpolate(Vec3::new(1.0, 0.5, 0.0), &mut a);
        grid.interpolate(Vec3::new(7.0, 0.5, -3.0), &mut b);
        assert_eq!(a, b);
    }
}
