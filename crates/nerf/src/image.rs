//! RGB image buffers and the PSNR quality metric used as the paper's
//! unified evaluation standard (25 PSNR for training, 30 for
//! inference).

use crate::math::Vec3;
use std::fmt;

/// An RGB image with `f32` radiance values in `[0, 1]`.
///
/// Pixels are stored row-major, `(0, 0)` at the top-left.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: u32,
    height: u32,
    pixels: Vec<Vec3>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        // lint: allow(h2): one pixel-buffer allocation per created
        // image — per frame, not per sample, on the render path
        Image { width, height, pixels: vec![Vec3::ZERO; (width * height) as usize] }
    }

    /// Creates an image filled with `color`.
    pub fn filled(width: u32, height: u32, color: Vec3) -> Self {
        let mut img = Image::new(width, height);
        img.pixels.fill(color);
        img
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of pixels.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.pixels.len()
    }

    /// Flat pixel storage, row-major.
    #[inline]
    pub fn pixels(&self) -> &[Vec3] {
        &self.pixels
    }

    /// Mutable flat pixel storage.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [Vec3] {
        &mut self.pixels
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height, "pixel out of range");
        (y * self.width + x) as usize
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when out of range.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Vec3 {
        // lint: allow(p2): bounds are debug-asserted in `index`, which
        // maps (x, y) into the row-major flat range
        self.pixels[self.index(x, y)]
    }

    /// Writes pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when out of range.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, color: Vec3) {
        let i = self.index(x, y);
        self.pixels[i] = color;
    }

    /// Mean squared error against another image of the same size.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn mse(&self, other: &Image) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image dimensions differ"
        );
        let sum: f64 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(a, b)| {
                let d = *a - *b;
                (d.x as f64).powi(2) + (d.y as f64).powi(2) + (d.z as f64).powi(2)
            })
            .sum();
        sum / (self.pixels.len() as f64 * 3.0)
    }

    /// Peak signal-to-noise ratio in dB against a reference image,
    /// assuming a peak value of 1.0. Identical images yield
    /// `f64::INFINITY`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn psnr(&self, reference: &Image) -> f64 {
        let mse = self.mse(reference);
        if mse == 0.0 {
            f64::INFINITY
        } else {
            -10.0 * mse.log10()
        }
    }

    /// Serializes to a binary PPM (P6) byte vector, for dumping debug
    /// renders. Values are clamped to `[0, 1]` and quantized to 8 bits.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for p in &self.pixels {
            let c = p.clamp(0.0, 1.0);
            out.push((c.x * 255.0).round() as u8);
            out.push((c.y * 255.0).round() as u8);
            out.push((c.z * 255.0).round() as u8);
        }
        out
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Image({}x{})", self.width, self.height)
    }
}

/// Computes PSNR between two raw pixel slices (peak 1.0), used where
/// full [`Image`] buffers are unnecessary.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn psnr_slices(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert_eq!(a.len(), b.len(), "pixel slices differ in length");
    assert!(!a.is_empty(), "cannot compute PSNR of empty slices");
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            let d = *x - *y;
            (d.x as f64).powi(2) + (d.y as f64).powi(2) + (d.z as f64).powi(2)
        })
        .sum();
    let mse = sum / (a.len() as f64 * 3.0);
    if mse == 0.0 {
        f64::INFINITY
    } else {
        -10.0 * mse.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.pixel_count(), 12);
        assert_eq!(img.get(2, 1), Vec3::ZERO);
        img.set(2, 1, Vec3::ONE);
        assert_eq!(img.get(2, 1), Vec3::ONE);
        assert_eq!(img.pixels()[6], Vec3::ONE);
    }

    #[test]
    fn filled_image() {
        let img = Image::filled(2, 2, Vec3::splat(0.5));
        assert!(img.pixels().iter().all(|&p| p == Vec3::splat(0.5)));
    }

    #[test]
    fn mse_of_identical_images_is_zero() {
        let img = Image::filled(8, 8, Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(img.mse(&img), 0.0);
        assert_eq!(img.psnr(&img), f64::INFINITY);
    }

    #[test]
    fn psnr_known_value() {
        // Constant offset of 0.1 in every channel: MSE = 0.01,
        // PSNR = -10 log10(0.01) = 20 dB.
        let a = Image::filled(16, 16, Vec3::splat(0.5));
        let b = Image::filled(16, 16, Vec3::splat(0.6));
        assert!((a.psnr(&b) - 20.0).abs() < 1e-4);
        // PSNR is symmetric.
        assert_eq!(a.psnr(&b), b.psnr(&a));
    }

    #[test]
    fn psnr_decreases_with_error() {
        let reference = Image::filled(8, 8, Vec3::splat(0.5));
        let close = Image::filled(8, 8, Vec3::splat(0.52));
        let far = Image::filled(8, 8, Vec3::splat(0.8));
        assert!(close.psnr(&reference) > far.psnr(&reference));
    }

    #[test]
    fn slice_psnr_matches_image_psnr() {
        let a = Image::filled(4, 4, Vec3::splat(0.2));
        let b = Image::filled(4, 4, Vec3::splat(0.4));
        assert!((psnr_slices(a.pixels(), b.pixels()) - a.psnr(&b)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn mse_rejects_mismatched_images() {
        let a = Image::new(4, 4);
        let b = Image::new(4, 5);
        let _ = a.mse(&b);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::filled(3, 2, Vec3::ONE);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), b"P6\n3 2\n255\n".len() + 3 * 2 * 3);
        // Fully white image: all payload bytes 255.
        assert!(ppm[b"P6\n3 2\n255\n".len()..].iter().all(|&b| b == 255));
    }
}

/// Computes the mean structural similarity (SSIM) between two images
/// over their luma channels, using the standard 8×8 windows with
/// stride 4 and the usual stabilization constants (`K1 = 0.01`,
/// `K2 = 0.03`, peak 1.0).
///
/// SSIM complements PSNR in NeRF evaluations: it is sensitive to
/// structural blur that a per-pixel metric underweights. Returns a
/// value in `[-1, 1]`, 1.0 for identical images.
///
/// # Panics
///
/// Panics if the images differ in size or are smaller than one 8×8
/// window.
pub fn ssim(a: &Image, b: &Image) -> f64 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()), "image dimensions differ");
    const WIN: u32 = 8;
    const STRIDE: u32 = 4;
    assert!(a.width() >= WIN && a.height() >= WIN, "images must be at least {WIN}x{WIN}");
    let luma = |img: &Image, x: u32, y: u32| -> f64 {
        let p = img.get(x, y);
        0.2126 * p.x as f64 + 0.7152 * p.y as f64 + 0.0722 * p.z as f64
    };
    const C1: f64 = 0.01 * 0.01;
    const C2: f64 = 0.03 * 0.03;
    let mut total = 0.0;
    let mut windows = 0u64;
    let mut wy = 0;
    while wy + WIN <= a.height() {
        let mut wx = 0;
        while wx + WIN <= a.width() {
            let (mut ma, mut mb) = (0.0, 0.0);
            for y in wy..wy + WIN {
                for x in wx..wx + WIN {
                    ma += luma(a, x, y);
                    mb += luma(b, x, y);
                }
            }
            let n = (WIN * WIN) as f64;
            ma /= n;
            mb /= n;
            let (mut va, mut vb, mut cov) = (0.0, 0.0, 0.0);
            for y in wy..wy + WIN {
                for x in wx..wx + WIN {
                    let da = luma(a, x, y) - ma;
                    let db = luma(b, x, y) - mb;
                    va += da * da;
                    vb += db * db;
                    cov += da * db;
                }
            }
            va /= n - 1.0;
            vb /= n - 1.0;
            cov /= n - 1.0;
            total += ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            windows += 1;
            wx += STRIDE;
        }
        wy += STRIDE;
    }
    total / windows as f64
}

#[cfg(test)]
mod ssim_tests {
    use super::*;

    #[test]
    fn identical_images_score_one() {
        let img = Image::filled(16, 16, Vec3::new(0.3, 0.5, 0.7));
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn structured_noise_scores_below_brightness_shift() {
        // A small uniform brightness shift preserves structure; a
        // checkerboard corruption of the same energy destroys it.
        let mut base = Image::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                let v = (x as f32 / 15.0) * 0.5 + (y as f32 / 15.0) * 0.3;
                base.set(x, y, Vec3::splat(v));
            }
        }
        let mut shifted = base.clone();
        for p in shifted.pixels_mut() {
            *p += Vec3::splat(0.05);
        }
        let mut checkered = base.clone();
        for y in 0..16 {
            for x in 0..16 {
                let sign = if (x + y) % 2 == 0 { 0.05 } else { -0.05 };
                let p = checkered.get(x, y) + Vec3::splat(sign);
                checkered.set(x, y, p);
            }
        }
        let s_shift = ssim(&base, &shifted);
        let s_check = ssim(&base, &checkered);
        assert!(s_shift > s_check, "shift {s_shift} vs checker {s_check}");
        assert!(s_check < 0.9);
    }

    #[test]
    fn ssim_is_symmetric() {
        let mut a = Image::new(12, 12);
        let mut b = Image::new(12, 12);
        for y in 0..12 {
            for x in 0..12 {
                a.set(x, y, Vec3::splat(((x * y) % 7) as f32 / 7.0));
                b.set(x, y, Vec3::splat(((x + y) % 5) as f32 / 5.0));
            }
        }
        assert!((ssim(&a, &b) - ssim(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn tiny_images_rejected() {
        let a = Image::new(4, 4);
        ssim(&a, &a);
    }
}
