//! # fusion3d-nerf
//!
//! The NeRF algorithm substrate of the Fusion-3D reproduction (MICRO
//! 2024): a from-scratch Instant-NGP-style radiance field with the
//! complete three-stage pipeline the accelerator targets —
//!
//! * **Stage I — sampling** ([`sampler`], [`occupancy`], [`camera`],
//!   [`math`]): per-pixel ray generation, normalized-model-cube
//!   partitioning into octants, and occupancy-grid-gated ray marching;
//! * **Stage II — feature interpolation** ([`encoding`], [`hash`]):
//!   multiresolution hash-grid encoding with forward gather and
//!   backward scatter, plus access tracing for the memory-subsystem
//!   simulator;
//! * **Stage III — post-processing** ([`mlp`], [`render`]): tiny
//!   density/color MLPs and differentiable volumetric compositing.
//!
//! On top of the stages sit the [`pipeline`] (end-to-end inference and
//! workload tracing), the [`trainer`] (instant reconstruction with a
//! byte-accurate data-volume ledger), INT8 [`quant`]ization
//! experiments, and procedural [`scenes`]/[`dataset`]s standing in for
//! NeRF-Synthetic and NeRF-360.
//!
//! ## Quickstart
//!
//! ```
//! use fusion3d_nerf::dataset::Dataset;
//! use fusion3d_nerf::model::{ModelConfig, NerfModel};
//! use fusion3d_nerf::scenes::{ProceduralScene, SyntheticScene};
//! use fusion3d_nerf::trainer::{Trainer, TrainerConfig};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
//! let dataset = Dataset::from_scene(&scene, 4, 16, 0.9);
//! let model = NerfModel::new(ModelConfig::default(), &mut rng);
//! let mut trainer = Trainer::new(model, TrainerConfig::default());
//! let stats = trainer.step(&dataset, &mut rng);
//! assert!(stats.loss.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adam;
pub mod batch;
pub mod camera;
pub mod dataset;
pub mod dense_grid;
pub mod encoding;
pub mod hash;
pub mod image;
pub mod io;
pub mod math;
pub mod mlp;
pub mod mlp_int8;
pub mod model;
pub mod occupancy;
pub mod pipeline;
pub mod quant;
pub mod reference;
pub mod render;
pub mod sampler;
pub mod scenes;
pub mod trainer;

pub use batch::{KernelScratch, RayScratch, SampleBatch};
pub use camera::{Camera, Pose};
pub use dataset::Dataset;
pub use dense_grid::{DenseGrid, DenseGridConfig};
pub use encoding::{Encoding, HashGrid, HashGridConfig};
pub use image::Image;
pub use math::{Aabb, Ray, Vec3};
pub use model::{ModelConfig, NerfModel};
pub use occupancy::OccupancyGrid;
pub use pipeline::{render_image, trace_frame, FrameTrace, PipelineConfig};
pub use sampler::{RayWorkload, SamplerConfig};
pub use scenes::{LargeScene, ProceduralScene, SyntheticScene};
pub use trainer::{DataVolume, Trainer, TrainerConfig};
