//! # fusion3d-nerf
//!
//! The NeRF algorithm substrate of the Fusion-3D reproduction (MICRO
//! 2024): a from-scratch Instant-NGP-style radiance field with the
//! complete three-stage pipeline the accelerator targets —
//!
//! * **Stage I — sampling** ([`sampler`], [`occupancy`], [`camera`],
//!   [`math`]): per-pixel ray generation, normalized-model-cube
//!   partitioning into octants, and occupancy-grid-gated ray marching;
//! * **Stage II — feature interpolation** ([`encoding`], [`hash`]):
//!   multiresolution hash-grid encoding with forward gather and
//!   backward scatter, plus access tracing for the memory-subsystem
//!   simulator;
//! * **Stage III — post-processing** ([`mlp`], [`render`]): tiny
//!   density/color MLPs and differentiable volumetric compositing.
//!
//! On top of the stages sit the [`pipeline`] (end-to-end inference and
//! workload tracing), the [`trainer`] (instant reconstruction with a
//! byte-accurate data-volume ledger), INT8 [`quant`]ization
//! experiments, and procedural [`scenes`]/[`dataset`]s standing in for
//! NeRF-Synthetic and NeRF-360.
//!
//! ## Quickstart
//!
//! ```
//! use fusion3d_nerf::dataset::Dataset;
//! use fusion3d_nerf::model::{ModelConfig, NerfModel};
//! use fusion3d_nerf::scenes::{ProceduralScene, SyntheticScene};
//! use fusion3d_nerf::trainer::{Trainer, TrainerConfig};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
//! let dataset = Dataset::from_scene(&scene, 4, 16, 0.9);
//! let model = NerfModel::new(ModelConfig::default(), &mut rng);
//! let mut trainer = Trainer::new(model, TrainerConfig::default());
//! let stats = trainer.step(&dataset, &mut rng);
//! assert!(stats.loss.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adam;
pub mod batch;
pub mod camera;
pub mod dataset;
pub mod dense_grid;
pub mod encoding;
pub mod hash;
pub mod image;
pub mod io;
pub mod math;
pub mod mlp;
pub mod mlp_int8;
pub mod model;
pub mod occupancy;
pub mod pipeline;
#[cfg(feature = "obs")]
pub mod probes;
pub mod quant;
pub mod reference;
pub mod render;
pub mod sampler;
pub mod scenes;
pub mod trainer;

pub use batch::{KernelScratch, RayScratch, SampleBatch};
pub use camera::{Camera, Pose};
pub use dataset::Dataset;
pub use dense_grid::{DenseGrid, DenseGridConfig};
pub use encoding::{Encoding, HashGrid, HashGridConfig};
pub use image::Image;
pub use math::{Aabb, Ray, Vec3};
pub use model::{ModelConfig, NerfModel};
pub use occupancy::OccupancyGrid;
pub use pipeline::{render_image, trace_frame, FrameTrace, PipelineConfig};
pub use sampler::{RayWorkload, SamplerConfig};
pub use scenes::{LargeScene, ProceduralScene, SyntheticScene};
pub use trainer::{DataVolume, Trainer, TrainerConfig};

/// Hot-path probe hook. With the `obs` feature the body is compiled
/// in verbatim; without it the macro expands to nothing and its
/// arguments are never evaluated (or even type-checked), so probe
/// sites cost zero in the default build. Keep bodies to a few integer
/// adds per *batch* — never per sample (see [`probes`]).
#[cfg(feature = "obs")]
macro_rules! probe {
    ($($body:tt)*) => {
        $($body)*
    };
}
/// No-op twin of the `obs`-enabled probe hook (see above).
#[cfg(not(feature = "obs"))]
macro_rules! probe {
    ($($body:tt)*) => {};
}
pub(crate) use probe;

#[cfg(test)]
mod probe_macro_tests {
    #[test]
    #[cfg(feature = "obs")]
    fn probe_bodies_run_with_obs() {
        let mut hits = 0u32;
        crate::probe!({
            hits += 1;
        });
        assert_eq!(hits, 1);
    }

    /// The default build must carry zero probe code. The body below
    /// calls a function that does not exist, so this test *compiling*
    /// already proves the macro discards its body before type-checking
    /// — there is nothing left to execute, let alone pay for.
    #[test]
    #[cfg(not(feature = "obs"))]
    fn probe_bodies_compile_out() {
        #[allow(unused_mut)]
        let mut hits = 0u32;
        crate::probe!({
            hits += 1;
            calling_a_function_that_does_not_exist();
        });
        assert_eq!(hits, 0);
    }
}
