//! Compact binary serialization of trained models.
//!
//! A core motivation of the paper (Sec. I) is NeRF's small storage
//! footprint — roughly 10 MB of parameters, far below point-cloud
//! reconstructions — which is what makes streaming a freshly-trained
//! scene over a 0.625 GB/s USB link practical. This module provides
//! that artifact: a versioned binary container for a model's three
//! parameter groups plus its occupancy grid, with a choice of `f32`
//! or `f16` parameter precision (the inference datapath's storage
//! format, halving the payload at negligible quality cost).
//!
//! The format is deliberately simple and self-describing:
//!
//! ```text
//! magic  "F3DM"            4 bytes
//! version u16              (currently 1)
//! precision u8             0 = f32, 1 = f16
//! reserved u8
//! geo_feature_dim u32
//! counts: encoding, density, color parameter counts   3 × u64
//! occupancy: resolution u32, threshold f32, bitmap    ceil(res³/8) bytes
//! parameters                encoding ‖ density ‖ color
//! ```

use crate::encoding::Encoding;
use crate::model::NerfModel;
use crate::occupancy::OccupancyGrid;

/// Magic bytes identifying a Fusion-3D model container.
pub const MAGIC: [u8; 4] = *b"F3DM";
/// Current container version.
pub const VERSION: u16 = 1;

/// Parameter storage precision inside the container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// IEEE-754 single precision (lossless).
    F32,
    /// IEEE-754 half precision (half the size; rounds parameters).
    F16,
}

impl Precision {
    fn tag(self) -> u8 {
        match self {
            Precision::F32 => 0,
            Precision::F16 => 1,
        }
    }

    fn bytes_per_param(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F16 => 2,
        }
    }
}

/// Errors produced when decoding a model container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input is shorter than its header claims.
    Truncated,
    /// The magic bytes do not match [`MAGIC`].
    BadMagic,
    /// The container version is not supported.
    UnsupportedVersion(u16),
    /// Unknown precision tag.
    BadPrecision(u8),
    /// The stored parameter counts do not match the target model.
    ShapeMismatch {
        /// Expected (encoding, density, color) counts.
        expected: (u64, u64, u64),
        /// Counts found in the container.
        found: (u64, u64, u64),
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "container is truncated"),
            DecodeError::BadMagic => write!(f, "not a Fusion-3D model container"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported container version {v}"),
            DecodeError::BadPrecision(t) => write!(f, "unknown precision tag {t}"),
            DecodeError::ShapeMismatch { expected, found } => {
                write!(f, "parameter shape mismatch: expected {expected:?}, found {found:?}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer(Vec<u8>);

impl Writer {
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn params(&mut self, values: &[f32], precision: Precision) {
        match precision {
            Precision::F32 => {
                for v in values {
                    self.f32(*v);
                }
            }
            Precision::F16 => {
                for v in values {
                    self.0.extend_from_slice(&fusion3d_arith_f16_bits(*v).to_le_bytes());
                }
            }
        }
    }
}

// A minimal local f32 -> f16 conversion so `fusion3d-nerf` does not
// depend on `fusion3d-arith` (which sits above it in the workspace
// layering). Round-to-nearest-even, matching `fusion3d_arith::half`.
fn fusion3d_arith_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x7F_FFFF;
    if exp == 0xFF {
        return if frac == 0 { sign | 0x7C00 } else { sign | 0x7E00 };
    }
    let h_exp = exp - 127 + 15;
    if h_exp >= 0x1F {
        return sign | 0x7C00;
    }
    if h_exp <= 0 {
        if h_exp < -10 {
            return sign;
        }
        let sig = frac | 0x80_0000;
        // f16 subnormal LSB weighs 2^-24; the significand carries
        // 2^(unbiased - 23) per unit, so shift right by -unbiased - 1.
        let shift = (-(exp - 127) - 1) as u32;
        let sub = sig >> shift;
        let remainder = sig & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let round_up = remainder > half || (remainder == half && sub & 1 == 1);
        return sign | (sub + round_up as u32) as u16;
    }
    let sub = frac >> 13;
    let remainder = frac & 0x1FFF;
    let round_up = remainder > 0x1000 || (remainder == 0x1000 && sub & 1 == 1);
    let mut h = (h_exp as u32) << 10 | sub;
    h += round_up as u32;
    if h >= 0x7C00 {
        return sign | 0x7C00;
    }
    sign | h as u16
}

fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as i32;
    let frac = (bits & 0x3FF) as u32;
    let out = if exp == 0x1F {
        sign | 0x7F80_0000 | (frac << 13)
    } else if exp == 0 {
        if frac == 0 {
            sign
        } else {
            let mut e = -14i32;
            let mut f = frac;
            while f & 0x400 == 0 {
                f <<= 1;
                e -= 1;
            }
            sign | (((e + 127) as u32) << 23) | ((f & 0x3FF) << 13)
        }
    } else {
        sign | (((exp - 15 + 127) as u32) << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.data.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }
    /// Reads exactly `N` bytes into a fixed array (the checked,
    /// panic-free counterpart of `take(N).try_into()`).
    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_le_bytes(self.array()?))
    }
    fn params(&mut self, out: &mut [f32], precision: Precision) -> Result<(), DecodeError> {
        match precision {
            Precision::F32 => {
                for v in out.iter_mut() {
                    *v = self.f32()?;
                }
            }
            Precision::F16 => {
                for v in out.iter_mut() {
                    *v = f16_bits_to_f32(self.u16()?);
                }
            }
        }
        Ok(())
    }
}

/// Serializes a trained model plus its occupancy grid into a
/// self-contained byte vector.
pub fn encode_model<E: Encoding>(
    model: &NerfModel<E>,
    occupancy: &OccupancyGrid,
    precision: Precision,
) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(64 + model.param_count() * precision.bytes_per_param()));
    w.0.extend_from_slice(&MAGIC);
    w.u16(VERSION);
    w.0.push(precision.tag());
    w.0.push(0); // reserved
    w.u32(model.geo_feature_dim() as u32);
    w.u64(model.grid().param_count() as u64);
    w.u64(model.density_mlp().param_count() as u64);
    w.u64(model.color_mlp().param_count() as u64);
    // Occupancy grid: resolution, threshold, packed bitmap.
    w.u32(occupancy.resolution());
    w.f32(occupancy.threshold());
    let cells = occupancy.cell_count();
    let mut bitmap = vec![0u8; cells.div_ceil(8)];
    for cell in occupancy.occupied_cells() {
        bitmap[cell / 8] |= 1 << (cell % 8);
    }
    w.0.extend_from_slice(&bitmap);
    // Parameters.
    w.params(model.grid().params(), precision);
    w.params(model.density_mlp().params(), precision);
    w.params(model.color_mlp().params(), precision);
    w.0
}

/// Decodes a container into an existing model of matching shape,
/// returning the restored occupancy grid.
///
/// The model supplies the architecture (the container stores only
/// parameters); counts are verified against it.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the container is malformed or its
/// shapes do not match `model`.
pub fn decode_model_into<E: Encoding>(
    data: &[u8],
    model: &mut NerfModel<E>,
) -> Result<OccupancyGrid, DecodeError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let precision = match r.take(2)?[0] {
        0 => Precision::F32,
        1 => Precision::F16,
        t => return Err(DecodeError::BadPrecision(t)),
    };
    let _geo = r.u32()?;
    let counts = (r.u64()?, r.u64()?, r.u64()?);
    let expected = (
        model.grid().param_count() as u64,
        model.density_mlp().param_count() as u64,
        model.color_mlp().param_count() as u64,
    );
    if counts != expected {
        return Err(DecodeError::ShapeMismatch { expected, found: counts });
    }
    let resolution = r.u32()?;
    let threshold = r.f32()?;
    let mut occupancy = OccupancyGrid::new(resolution, threshold.max(0.0));
    let cells = occupancy.cell_count();
    let bitmap = r.take(cells.div_ceil(8))?;
    for cell in 0..cells {
        if bitmap[cell / 8] >> (cell % 8) & 1 == 1 {
            occupancy.set_cell(cell, true);
        }
    }
    r.params(model.grid_mut().params_mut(), precision)?;
    r.params(model.density_mlp_mut().params_mut(), precision)?;
    r.params(model.color_mlp_mut().params_mut(), precision)?;
    Ok(occupancy)
}

/// The container size in bytes for a model at a given precision,
/// without encoding it.
pub fn container_size<E: Encoding>(
    model: &NerfModel<E>,
    occupancy: &OccupancyGrid,
    precision: Precision,
) -> usize {
    // Header: 4 magic + 2 version + 2 flags + 4 geo + 24 counts +
    // 4 resolution + 4 threshold.
    44 + occupancy.cell_count().div_ceil(8) + model.param_count() * precision.bytes_per_param()
}

/// The self-describing prefix of a model container, decoded without
/// touching the parameter payload.
///
/// This is the serving layer's load/evict hook: a scene registry can
/// price a container against its residency budget (and verify it
/// matches the architecture it would be decoded into) from the first
/// 44 bytes alone, deferring the full parameter decode until the
/// scene is actually admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerHeader {
    /// Container format version (currently [`VERSION`]).
    pub version: u16,
    /// Parameter storage precision of the payload.
    pub precision: Precision,
    /// Geometry-feature width recorded by the trainer.
    pub geo_feature_dim: u32,
    /// Stored (encoding, density MLP, color MLP) parameter counts.
    pub param_counts: (u64, u64, u64),
    /// Occupancy-grid resolution (cells per axis).
    pub occupancy_resolution: u32,
}

impl ContainerHeader {
    /// Total parameter count across the three groups.
    pub fn param_count(&self) -> u64 {
        let (e, d, c) = self.param_counts;
        e.saturating_add(d).saturating_add(c)
    }

    /// Exact byte size of a well-formed container with this header —
    /// the unit the registry's LRU byte budget is charged in.
    pub fn container_bytes(&self) -> u64 {
        let cells = (self.occupancy_resolution as u64).pow(3);
        44 + cells.div_ceil(8)
            + self.param_count().saturating_mul(self.precision.bytes_per_param() as u64)
    }
}

/// Decodes only the fixed-size container header.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the prefix is truncated, the magic
/// or version is wrong, or the precision tag is unknown.
pub fn peek_header(data: &[u8]) -> Result<ContainerHeader, DecodeError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let precision = match r.take(2)?[0] {
        0 => Precision::F32,
        1 => Precision::F16,
        t => return Err(DecodeError::BadPrecision(t)),
    };
    let geo_feature_dim = r.u32()?;
    let param_counts = (r.u64()?, r.u64()?, r.u64()?);
    let occupancy_resolution = r.u32()?;
    Ok(ContainerHeader { version, precision, geo_feature_dim, param_counts, occupancy_resolution })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::HashGridConfig;
    use crate::math::Vec3;
    use crate::model::{ModelConfig, PointContext};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_model(seed: u64) -> NerfModel {
        let mut rng = SmallRng::seed_from_u64(seed);
        NerfModel::new(
            ModelConfig {
                grid: HashGridConfig {
                    levels: 3,
                    features_per_level: 2,
                    log2_table_size: 9,
                    base_resolution: 4,
                    max_resolution: 16,
                },
                hidden_dim: 12,
                geo_feature_dim: 3,
            },
            &mut rng,
        )
    }

    fn test_occupancy() -> OccupancyGrid {
        OccupancyGrid::from_oracle(10, 0.25, |p| p.x + p.y < 1.0)
    }

    #[test]
    fn f32_round_trip_is_lossless() {
        let model = test_model(1);
        let occ = test_occupancy();
        let bytes = encode_model(&model, &occ, Precision::F32);
        assert_eq!(bytes.len(), container_size(&model, &occ, Precision::F32));

        let mut restored = test_model(2); // different params, same shape
        let occ2 = decode_model_into(&bytes, &mut restored).expect("decode");
        assert_eq!(restored.grid().params(), model.grid().params());
        assert_eq!(restored.density_mlp().params(), model.density_mlp().params());
        assert_eq!(restored.color_mlp().params(), model.color_mlp().params());
        assert_eq!(occ2.resolution(), occ.resolution());
        assert_eq!(
            occ2.occupied_cells().collect::<Vec<_>>(),
            occ.occupied_cells().collect::<Vec<_>>()
        );
    }

    #[test]
    fn peek_header_matches_container_without_decoding() {
        let model = test_model(9);
        let occ = test_occupancy();
        for precision in [Precision::F32, Precision::F16] {
            let bytes = encode_model(&model, &occ, precision);
            let header = peek_header(&bytes).expect("header");
            assert_eq!(header.version, VERSION);
            assert_eq!(header.precision, precision);
            assert_eq!(header.geo_feature_dim, 3);
            assert_eq!(header.param_count(), model.param_count() as u64);
            assert_eq!(header.occupancy_resolution, occ.resolution());
            assert_eq!(header.container_bytes(), bytes.len() as u64);
            assert_eq!(header.container_bytes() as usize, container_size(&model, &occ, precision));
        }
        assert_eq!(peek_header(&[0u8; 10]), Err(DecodeError::BadMagic));
        assert_eq!(peek_header(b"F3DM"), Err(DecodeError::Truncated));
    }

    #[test]
    fn f16_halves_the_parameter_payload() {
        let model = test_model(3);
        let occ = test_occupancy();
        let full = encode_model(&model, &occ, Precision::F32);
        let half = encode_model(&model, &occ, Precision::F16);
        let header = container_size(&model, &occ, Precision::F32) - model.param_count() * 4;
        assert_eq!(full.len() - header, 2 * (half.len() - header));
    }

    #[test]
    fn f16_round_trip_preserves_field_output() {
        let model = test_model(4);
        let occ = test_occupancy();
        let bytes = encode_model(&model, &occ, Precision::F16);
        let mut restored = test_model(5);
        decode_model_into(&bytes, &mut restored).expect("decode");
        let mut ctx = PointContext::new();
        for probe in 0..16 {
            let p = Vec3::new(
                (probe as f32 * 0.137).fract(),
                (probe as f32 * 0.311).fract(),
                (probe as f32 * 0.539).fract(),
            );
            let a = model.forward(p, Vec3::Z, &mut ctx);
            let b = restored.forward(p, Vec3::Z, &mut ctx);
            assert!(
                (a.sigma - b.sigma).abs() < 0.02 * (1.0 + a.sigma),
                "sigma drifted: {} vs {}",
                a.sigma,
                b.sigma
            );
            assert!((a.color - b.color).length() < 0.01, "color drifted");
        }
    }

    #[test]
    fn malformed_containers_are_rejected() {
        let model = test_model(6);
        let occ = test_occupancy();
        let bytes = encode_model(&model, &occ, Precision::F32);

        let mut m = test_model(7);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_model_into(&bad, &mut m), Err(DecodeError::BadMagic)));
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(matches!(decode_model_into(&bad, &mut m), Err(DecodeError::UnsupportedVersion(_))));
        // Bad precision tag.
        let mut bad = bytes.clone();
        bad[6] = 7;
        assert!(matches!(decode_model_into(&bad, &mut m), Err(DecodeError::BadPrecision(7))));
        // Truncation.
        let bad = &bytes[..bytes.len() - 3];
        assert!(matches!(decode_model_into(bad, &mut m), Err(DecodeError::Truncated)));
        // Shape mismatch.
        let mut rng = SmallRng::seed_from_u64(8);
        let mut other = NerfModel::new(
            ModelConfig {
                grid: HashGridConfig {
                    levels: 2,
                    features_per_level: 2,
                    log2_table_size: 8,
                    base_resolution: 4,
                    max_resolution: 8,
                },
                hidden_dim: 8,
                geo_feature_dim: 3,
            },
            &mut rng,
        );
        assert!(matches!(
            decode_model_into(&bytes, &mut other),
            Err(DecodeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn paper_scale_model_fits_the_storage_claim() {
        // The intro's motivation: a full paper-scale model is ~10 MB,
        // and f16 storage halves it — easily streamed over USB.
        let mut rng = SmallRng::seed_from_u64(9);
        let model = NerfModel::new(
            ModelConfig {
                grid: HashGridConfig {
                    levels: 10,
                    features_per_level: 2,
                    log2_table_size: 15,
                    base_resolution: 16,
                    max_resolution: 2048,
                },
                hidden_dim: 64,
                geo_feature_dim: 15,
            },
            &mut rng,
        );
        let occ = OccupancyGrid::new(64, 0.5);
        let f32_mb = container_size(&model, &occ, Precision::F32) as f64 / 1e6;
        let f16_mb = container_size(&model, &occ, Precision::F16) as f64 / 1e6;
        assert!((1.0..=12.0).contains(&f32_mb), "f32 container {f32_mb} MB");
        assert!(f16_mb < f32_mb * 0.6, "f16 container {f16_mb} MB");
        // Transfer time over the USB link is far under a frame time.
        let seconds = f16_mb * 1e6 / 0.625e9;
        assert!(seconds < 0.01, "model streams in {seconds} s");
    }

    #[test]
    fn display_of_errors() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadMagic.to_string().contains("container"));
    }
}

#[cfg(test)]
mod f16_conversion_tests {
    use super::{f16_bits_to_f32, fusion3d_arith_f16_bits};

    #[test]
    fn known_values_round_trip() {
        for (v, bits) in
            [(0.0f32, 0x0000u16), (1.0, 0x3C00), (-2.0, 0xC000), (0.5, 0x3800), (65504.0, 0x7BFF)]
        {
            assert_eq!(fusion3d_arith_f16_bits(v), bits, "{v}");
            assert_eq!(f16_bits_to_f32(bits), v, "{bits:#x}");
        }
    }

    #[test]
    fn subnormals_convert_exactly() {
        let tiny = 2f32.powi(-24); // smallest f16 subnormal
        assert_eq!(fusion3d_arith_f16_bits(tiny), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), tiny);
        let big_sub = f16_bits_to_f32(0x03FF);
        assert_eq!(fusion3d_arith_f16_bits(big_sub), 0x03FF);
    }

    #[test]
    fn every_f16_bit_pattern_round_trips() {
        // Exhaustive: all non-NaN f16 values survive the local
        // converter pair (and therefore match `fusion3d_arith::half`,
        // which passes the same property).
        for bits in 0..=u16::MAX {
            let exp = (bits >> 10) & 0x1F;
            let frac = bits & 0x3FF;
            if exp == 0x1F && frac != 0 {
                continue; // NaN payloads are canonicalized
            }
            let v = f16_bits_to_f32(bits);
            assert_eq!(fusion3d_arith_f16_bits(v), bits, "pattern {bits:#06x}");
        }
    }
}
