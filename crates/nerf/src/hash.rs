//! The multiresolution grid's spatial hash function.
//!
//! This is the hash of Instant-NGP (Müller et al. 2022): the vertex
//! coordinate components are multiplied by per-dimension constants and
//! XOR-ed together, then masked down to the table size (a power of
//! two). Two structural properties of this function are load-bearing
//! for the paper's Technique T4 (*Two-Level Hash Tiling*):
//!
//! 1. **YZ spread** — the Y and Z dimensions use large odd constants,
//!    so vertices that differ in their Y/Z offset land far apart in the
//!    table (on average about a quarter of the table apart). Level-2
//!    tiling exploits this by giving each of the four YZ-offset groups
//!    its own SRAM group.
//! 2. **X parity alternation** — the X dimension uses the constant 1,
//!    so two vertices that differ by exactly one unit in X always hash
//!    to addresses of opposite parity. Level-3 tiling exploits this by
//!    splitting each SRAM group into an even bank and an odd bank.
//!
//! Both properties are verified by unit and property-based tests in
//! this module and consumed by `fusion3d-mem`'s tiling model.

/// Per-dimension hash constants `[π₁, π₂, π₃]` from Instant-NGP.
///
/// `π₁ = 1` (identity on X), `π₂` and `π₃` are large odd primes
/// applied to Y and Z.
pub const HASH_PRIMES: [u32; 3] = [1, 2_654_435_761, 805_459_861];

/// A vertex coordinate on one level of the multiresolution grid.
pub type GridVertex = [u32; 3];

/// Computes the spatial hash of a grid vertex into a table of
/// `1 << log2_table_size` entries.
///
/// # Panics
///
/// Panics in debug builds if `log2_table_size > 31`.
///
/// # Examples
///
/// ```
/// use fusion3d_nerf::hash::spatial_hash;
///
/// let a = spatial_hash([3, 7, 9], 14);
/// let b = spatial_hash([4, 7, 9], 14); // one unit along X
/// assert_ne!(a & 1, b & 1, "X neighbours always differ in parity");
/// ```
#[inline]
pub fn spatial_hash(v: GridVertex, log2_table_size: u32) -> u32 {
    debug_assert!(log2_table_size <= 31, "table size exponent too large");
    let h = v[0].wrapping_mul(HASH_PRIMES[0])
        ^ v[1].wrapping_mul(HASH_PRIMES[1])
        ^ v[2].wrapping_mul(HASH_PRIMES[2]);
    h & ((1u32 << log2_table_size) - 1)
}

/// Computes the dense (collision-free) index of a vertex on a level
/// whose full grid fits in the table, i.e. `(resolution + 1)^3 <=
/// table size`. Instant-NGP addresses coarse levels densely and only
/// hashes the fine levels.
///
/// The layout is X-major: `x + (res+1) * (y + (res+1) * z)`.
#[inline]
pub fn dense_index(v: GridVertex, resolution: u32) -> u32 {
    let stride = resolution + 1;
    v[0] + stride * (v[1] + stride * v[2])
}

/// Whether a level of the given resolution can be addressed densely
/// within a table of `1 << log2_table_size` entries.
#[inline]
pub fn level_is_dense(resolution: u32, log2_table_size: u32) -> bool {
    let stride = (resolution + 1) as u64;
    stride * stride * stride <= 1u64 << log2_table_size
}

/// Addresses a vertex on a level: densely when the level fits,
/// hashed otherwise. This mirrors Instant-NGP's per-level addressing
/// and is the function whose access pattern the memory subsystem
/// simulates.
#[inline]
pub fn vertex_address(v: GridVertex, resolution: u32, log2_table_size: u32) -> u32 {
    if level_is_dense(resolution, log2_table_size) {
        dense_index(v, resolution)
    } else {
        spatial_hash(v, log2_table_size)
    }
}

/// The eight corner vertices of the grid cell containing a point, in
/// offset order: bit 0 = +1 in X, bit 1 = +1 in Y, bit 2 = +1 in Z.
///
/// This ordering matters to the memory subsystem: corners `i` and
/// `i ^ 1` form an X-parity pair (Level-3 tiling), and the two-bit
/// value `i >> 1` is the YZ-offset group (Level-2 tiling).
#[inline]
pub fn cell_corners(base: GridVertex) -> [GridVertex; 8] {
    let mut out = [base; 8];
    for (i, c) in out.iter_mut().enumerate() {
        c[0] = base[0] + (i as u32 & 1);
        c[1] = base[1] + ((i as u32 >> 1) & 1);
        c[2] = base[2] + ((i as u32 >> 2) & 1);
    }
    out
}

/// The YZ-offset group (0..4) of corner `i` of a cell: the two-bit
/// value formed by the Y and Z offset bits. Level-2 tiling assigns
/// each group a dedicated SRAM group.
#[inline]
pub const fn yz_group(corner_index: usize) -> usize {
    (corner_index >> 1) & 0b11
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hash_is_deterministic_and_masked() {
        let v = [12, 34, 56];
        assert_eq!(spatial_hash(v, 10), spatial_hash(v, 10));
        assert!(spatial_hash(v, 10) < 1 << 10);
        assert!(spatial_hash(v, 4) < 1 << 4);
    }

    #[test]
    fn x_neighbours_have_opposite_parity() {
        // The property Level-3 tiling relies on: +1 in X flips the
        // address parity (π₁ = 1 and π₂, π₃ are odd, so bit 0 of the
        // hash is bit 0 of x XOR parity terms that do not change).
        for x in 0..50u32 {
            for y in [0u32, 3, 17, 255] {
                for z in [0u32, 5, 19, 511] {
                    let a = spatial_hash([x, y, z], 14);
                    let b = spatial_hash([x + 1, y, z], 14);
                    assert_ne!(a & 1, b & 1, "parity must flip at ({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn dense_index_is_bijective_on_small_grid() {
        let res = 7;
        let mut seen = std::collections::HashSet::new();
        for z in 0..=res {
            for y in 0..=res {
                for x in 0..=res {
                    assert!(seen.insert(dense_index([x, y, z], res)));
                }
            }
        }
        assert_eq!(seen.len(), 8 * 8 * 8);
        assert_eq!(*seen.iter().max().unwrap(), 8 * 8 * 8 - 1);
    }

    #[test]
    fn density_threshold_matches_table_capacity() {
        assert!(level_is_dense(15, 12)); // 16^3 = 4096 = 2^12
        assert!(!level_is_dense(16, 12)); // 17^3 > 4096
        assert!(level_is_dense(255, 24)); // 256^3 = 2^24
    }

    #[test]
    fn vertex_address_switches_modes() {
        // Dense level: address equals dense index.
        assert_eq!(vertex_address([1, 2, 3], 15, 12), dense_index([1, 2, 3], 15));
        // Hashed level: address equals the spatial hash.
        assert_eq!(vertex_address([1, 2, 3], 1024, 12), spatial_hash([1, 2, 3], 12));
    }

    #[test]
    fn corner_enumeration_order() {
        let corners = cell_corners([10, 20, 30]);
        assert_eq!(corners[0], [10, 20, 30]);
        assert_eq!(corners[1], [11, 20, 30]);
        assert_eq!(corners[2], [10, 21, 30]);
        assert_eq!(corners[4], [10, 20, 31]);
        assert_eq!(corners[7], [11, 21, 31]);
        // Corner pairs (2k, 2k+1) differ only in X.
        for k in 0..4 {
            let a = corners[2 * k];
            let b = corners[2 * k + 1];
            assert_eq!(a[1], b[1]);
            assert_eq!(a[2], b[2]);
            assert_eq!(b[0], a[0] + 1);
        }
    }

    #[test]
    fn yz_groups_partition_corners() {
        let groups: Vec<usize> = (0..8).map(yz_group).collect();
        assert_eq!(groups, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn yz_offset_spreads_addresses() {
        // The average distance between addresses of vertices differing
        // in YZ offset should be a large fraction of the table —
        // roughly a quarter per the paper. We verify it is at least
        // 1/8 of the table on average over many cells.
        let log2 = 14u32;
        let table = 1u64 << log2;
        let mut total: u64 = 0;
        let mut count: u64 = 0;
        for seed in 0..200u32 {
            let base = [seed * 37 + 1, seed * 91 + 5, seed * 53 + 11];
            let addrs: Vec<u32> =
                cell_corners(base).iter().map(|&c| spatial_hash(c, log2)).collect();
            for i in 0..8 {
                for j in (i + 1)..8 {
                    if yz_group(i) != yz_group(j) {
                        let d = (addrs[i] as i64 - addrs[j] as i64).unsigned_abs();
                        total += d.min(table - d);
                        count += 1;
                    }
                }
            }
        }
        let avg = total as f64 / count as f64;
        assert!(avg > table as f64 / 8.0, "YZ-offset spread too small: {avg} of {table}");
    }

    proptest! {
        #[test]
        fn prop_hash_in_range(x in 0u32..1_000_000, y in 0u32..1_000_000,
                              z in 0u32..1_000_000, log2 in 1u32..24) {
            prop_assert!(spatial_hash([x, y, z], log2) < 1u32 << log2);
        }

        #[test]
        fn prop_x_parity_flips(x in 0u32..u32::MAX - 1, y: u32, z: u32) {
            let a = spatial_hash([x, y, z], 16);
            let b = spatial_hash([x + 1, y, z], 16);
            prop_assert_ne!(a & 1, b & 1);
        }

        #[test]
        fn prop_dense_index_within_capacity(x in 0u32..=32, y in 0u32..=32,
                                            z in 0u32..=32) {
            let res = 32;
            let idx = dense_index([x, y, z], res);
            prop_assert!(idx < (res + 1).pow(3));
        }

        #[test]
        fn prop_corners_contain_base_and_opposite(bx in 0u32..1000,
                                                  by in 0u32..1000,
                                                  bz in 0u32..1000) {
            let c = cell_corners([bx, by, bz]);
            prop_assert_eq!(c[0], [bx, by, bz]);
            prop_assert_eq!(c[7], [bx + 1, by + 1, bz + 1]);
        }
    }
}
