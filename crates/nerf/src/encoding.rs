//! Multiresolution hash-grid feature encoding (Stage II of the NeRF
//! pipeline).
//!
//! A [`HashGrid`] stores `L` levels of feature tables. Each level `l`
//! covers the normalized model cube `[0,1]^3` with a virtual grid of
//! resolution `N_l` (growing geometrically from `base_resolution` to
//! `max_resolution`) and stores `F` features per vertex in a table of
//! `2^log2_table_size` entries. Querying a point gathers the eight
//! surrounding vertices on every level, trilinearly interpolates their
//! features, and concatenates the per-level results.
//!
//! The forward pass (inference) *aggregates* features; the backward
//! pass (training) *distributes* gradients back onto the same eight
//! vertices — the symmetric workload pair that motivates the paper's
//! shared reconfigurable interpolation array (Technique T2-1).

use crate::hash::{cell_corners, vertex_address, GridVertex};
use crate::math::Vec3;
use rand::Rng;

/// A spatial feature encoding: a learnable map from points in the
/// normalized model cube to feature vectors, with an explicit backward
/// pass.
///
/// The crate ships two implementations: the multiresolution
/// [`HashGrid`] (Instant-NGP, the paper's primary target) and the
/// dense voxel grid of [`crate::dense_grid::DenseGrid`]
/// (TensoRF/RT-NeRF-class). [`crate::model::NerfModel`] is generic
/// over this trait, which is what lets the paper's modules transfer
/// across NeRF pipelines (Sec. VI-C).
///
/// `Send + Sync` is required so models can be shared immutably across
/// the worker threads of [`fusion3d_par::Pool`] during parallel
/// rendering and sharded-gradient training.
pub trait Encoding: std::fmt::Debug + Send + Sync {
    /// Dimension of the encoded feature vector.
    fn output_dim(&self) -> usize;

    /// Encodes point `p` into `out` (length [`Encoding::output_dim`]).
    ///
    /// # Panics
    ///
    /// Implementations panic if `out` has the wrong length.
    fn interpolate(&self, p: Vec3, out: &mut [f32]);

    /// Scatters `d_out` (gradient w.r.t. the encoded features) into
    /// `grads` (length [`Encoding::param_count`]).
    ///
    /// # Panics
    ///
    /// Implementations panic on buffer size mismatches.
    fn backward(&self, p: Vec3, d_out: &[f32], grads: &mut [f32]);

    /// Number of learnable parameters.
    fn param_count(&self) -> usize;

    /// Immutable view of the parameters.
    fn params(&self) -> &[f32];

    /// Mutable view of the parameters.
    fn params_mut(&mut self) -> &mut [f32];
}

/// Configuration of a multiresolution hash grid.
///
/// # Examples
///
/// ```
/// use fusion3d_nerf::encoding::HashGridConfig;
///
/// let cfg = HashGridConfig::default();
/// assert_eq!(cfg.output_dim(), cfg.levels * cfg.features_per_level);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HashGridConfig {
    /// Number of resolution levels `L`.
    pub levels: usize,
    /// Features stored per vertex `F`.
    pub features_per_level: usize,
    /// Table size exponent: each level holds `2^log2_table_size`
    /// feature vectors.
    pub log2_table_size: u32,
    /// Coarsest virtual grid resolution `N_min`.
    pub base_resolution: u32,
    /// Finest virtual grid resolution `N_max`.
    pub max_resolution: u32,
}

impl Default for HashGridConfig {
    /// A mid-size configuration suitable for fast tests and examples:
    /// 8 levels × 2 features, `2^14` entries per level, resolutions
    /// 16 → 256. The paper's chip stores `2 × 5 × 64 KB` of hash SRAM,
    /// matching 2-feature tables at `2^14`–`2^15` entries per level.
    fn default() -> Self {
        HashGridConfig {
            levels: 8,
            features_per_level: 2,
            log2_table_size: 14,
            base_resolution: 16,
            max_resolution: 256,
        }
    }
}

impl HashGridConfig {
    /// Output feature dimension `L * F`.
    #[inline]
    pub const fn output_dim(&self) -> usize {
        self.levels * self.features_per_level
    }

    /// Entries per level table.
    #[inline]
    pub const fn table_size(&self) -> usize {
        1usize << self.log2_table_size
    }

    /// Total number of learnable parameters.
    #[inline]
    pub const fn param_count(&self) -> usize {
        self.levels * self.table_size() * self.features_per_level
    }

    /// Total parameter storage in bytes at `f32` precision. Drives the
    /// model-size axis of Fig. 13(b) and Fig. 14(b).
    #[inline]
    pub const fn param_bytes(&self) -> usize {
        self.param_count() * core::mem::size_of::<f32>()
    }

    /// The virtual grid resolution of level `l`, growing geometrically
    /// between `base_resolution` and `max_resolution` as in
    /// Instant-NGP.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.levels`.
    pub fn level_resolution(&self, level: usize) -> u32 {
        assert!(level < self.levels, "level {level} out of range");
        if self.levels == 1 {
            return self.base_resolution;
        }
        let b = (self.max_resolution as f64 / self.base_resolution as f64)
            .powf(1.0 / (self.levels as f64 - 1.0));
        (self.base_resolution as f64 * b.powi(level as i32)).round() as u32
    }

    /// Validates the configuration, returning a description of the
    /// first problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` when any dimension is zero, the resolution range
    /// is inverted, or the table exponent exceeds 31.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels == 0 {
            return Err("levels must be at least 1".into());
        }
        if self.features_per_level == 0 {
            return Err("features_per_level must be at least 1".into());
        }
        if self.log2_table_size == 0 || self.log2_table_size > 31 {
            return Err(format!("log2_table_size must be in 1..=31, got {}", self.log2_table_size));
        }
        if self.base_resolution == 0 {
            return Err("base_resolution must be at least 1".into());
        }
        if self.max_resolution < self.base_resolution {
            return Err(format!(
                "max_resolution ({}) must be >= base_resolution ({})",
                self.max_resolution, self.base_resolution
            ));
        }
        Ok(())
    }
}

/// One feature-table access performed while encoding a point, captured
/// for the memory-subsystem simulator (bank conflicts, Level-2/3
/// tiling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FeatureAccess {
    /// Grid level of the access.
    pub level: u8,
    /// Corner index 0..8 (bit 0 = X offset, bit 1 = Y, bit 2 = Z).
    pub corner: u8,
    /// Table address within the level.
    pub address: u32,
}

/// A trained or trainable multiresolution hash grid.
///
/// Parameters are stored level-major: level `l`'s table occupies
/// `params[l * T * F .. (l + 1) * T * F]` with `F` contiguous features
/// per vertex.
#[derive(Debug, Clone)]
pub struct HashGrid {
    config: HashGridConfig,
    resolutions: Vec<u32>,
    params: Vec<f32>,
}

impl HashGrid {
    /// Creates a grid with all features initialized to zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`HashGridConfig::validate`].
    pub fn new(config: HashGridConfig) -> Self {
        // lint: allow(p1): documented panic — constructors reject invalid configs
        config.validate().expect("invalid hash grid config");
        let resolutions = (0..config.levels).map(|l| config.level_resolution(l)).collect();
        HashGrid { config, resolutions, params: vec![0.0; config.param_count()] }
    }

    /// Creates a grid with features drawn uniformly from
    /// `[-1e-4, 1e-4]`, the Instant-NGP initialization.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`HashGridConfig::validate`].
    pub fn with_random_init<R: Rng>(config: HashGridConfig, rng: &mut R) -> Self {
        let mut grid = HashGrid::new(config);
        for p in grid.params.iter_mut() {
            *p = rng.gen_range(-1e-4..1e-4);
        }
        grid
    }

    /// The grid's configuration.
    #[inline]
    pub fn config(&self) -> &HashGridConfig {
        &self.config
    }

    /// The virtual resolution of each level.
    #[inline]
    pub fn resolutions(&self) -> &[u32] {
        &self.resolutions
    }

    /// Immutable view of the parameter vector.
    #[inline]
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable view of the parameter vector (used by the optimizer).
    #[inline]
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Number of learnable parameters.
    #[inline]
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    #[inline]
    fn level_offset(&self, level: usize) -> usize {
        level * self.config.table_size() * self.config.features_per_level
    }

    /// Computes the cell base vertex and trilinear weights of `p` on
    /// `level`. `p` is clamped into `[0,1]^3`.
    fn locate(&self, level: usize, p: Vec3) -> (GridVertex, Vec3) {
        let res = self.resolutions[level] as f32;
        let q = p.clamp(0.0, 1.0) * res;
        // Clamp the base so that base+1 stays within the virtual grid.
        let max_base = self.resolutions[level].saturating_sub(1);
        let bx = (q.x.floor() as u32).min(max_base);
        let by = (q.y.floor() as u32).min(max_base);
        let bz = (q.z.floor() as u32).min(max_base);
        let frac = Vec3::new(q.x - bx as f32, q.y - by as f32, q.z - bz as f32).clamp(0.0, 1.0);
        ([bx, by, bz], frac)
    }

    /// The trilinear weight of corner `i` for fractional position `w`.
    #[inline]
    fn corner_weight(frac: Vec3, i: usize) -> f32 {
        let wx = if i & 1 == 0 { 1.0 - frac.x } else { frac.x };
        let wy = if i & 2 == 0 { 1.0 - frac.y } else { frac.y };
        let wz = if i & 4 == 0 { 1.0 - frac.z } else { frac.z };
        wx * wy * wz
    }

    /// Encodes point `p` (normalized coordinates) into `out`, which
    /// must have length [`HashGridConfig::output_dim`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.config().output_dim()`.
    pub fn interpolate(&self, p: Vec3, out: &mut [f32]) {
        assert_eq!(out.len(), self.config.output_dim(), "output buffer size mismatch");
        let f = self.config.features_per_level;
        for level in 0..self.config.levels {
            let (base, frac) = self.locate(level, p);
            let corners = cell_corners(base);
            let level_out = &mut out[level * f..(level + 1) * f];
            level_out.fill(0.0);
            let offset = self.level_offset(level);
            for (i, &corner) in corners.iter().enumerate() {
                let w = Self::corner_weight(frac, i);
                let addr =
                    vertex_address(corner, self.resolutions[level], self.config.log2_table_size)
                        as usize;
                let slot = offset + addr * f;
                for (o, &v) in level_out.iter_mut().zip(&self.params[slot..slot + f]) {
                    *o += w * v;
                }
            }
        }
    }

    /// Convenience wrapper allocating the output vector.
    pub fn encode(&self, p: Vec3) -> Vec<f32> {
        let mut out = vec![0.0; self.config.output_dim()];
        self.interpolate(p, &mut out);
        out
    }

    /// Backward pass: scatters `d_out` (gradient w.r.t. the encoded
    /// features, length `output_dim`) into `grads` (gradient buffer of
    /// length [`HashGrid::param_count`]) using the same trilinear
    /// weights as the forward pass.
    ///
    /// # Panics
    ///
    /// Panics on buffer size mismatches.
    pub fn backward(&self, p: Vec3, d_out: &[f32], grads: &mut [f32]) {
        assert_eq!(d_out.len(), self.config.output_dim(), "gradient buffer size mismatch");
        assert_eq!(grads.len(), self.params.len(), "parameter gradient size mismatch");
        let f = self.config.features_per_level;
        for level in 0..self.config.levels {
            let (base, frac) = self.locate(level, p);
            let corners = cell_corners(base);
            let d_level = &d_out[level * f..(level + 1) * f];
            let offset = self.level_offset(level);
            for (i, &corner) in corners.iter().enumerate() {
                let w = Self::corner_weight(frac, i);
                let addr =
                    vertex_address(corner, self.resolutions[level], self.config.log2_table_size)
                        as usize;
                let slot = offset + addr * f;
                for (g, &d) in grads[slot..slot + f].iter_mut().zip(d_level) {
                    *g += w * d;
                }
            }
        }
    }

    /// Records the table accesses the encoding of `p` performs, for
    /// the memory-subsystem simulator. Appends `8 * levels` entries to
    /// `trace`.
    pub fn record_accesses(&self, p: Vec3, trace: &mut Vec<FeatureAccess>) {
        for level in 0..self.config.levels {
            let (base, _) = self.locate(level, p);
            for (i, &corner) in cell_corners(base).iter().enumerate() {
                trace.push(FeatureAccess {
                    level: level as u8,
                    corner: i as u8,
                    address: vertex_address(
                        corner,
                        self.resolutions[level],
                        self.config.log2_table_size,
                    ),
                });
            }
        }
    }
}

impl Encoding for HashGrid {
    fn output_dim(&self) -> usize {
        self.config.output_dim()
    }

    fn interpolate(&self, p: Vec3, out: &mut [f32]) {
        HashGrid::interpolate(self, p, out);
    }

    fn backward(&self, p: Vec3, d_out: &[f32], grads: &mut [f32]) {
        HashGrid::backward(self, p, d_out, grads);
    }

    fn param_count(&self) -> usize {
        HashGrid::param_count(self)
    }

    fn params(&self) -> &[f32] {
        HashGrid::params(self)
    }

    fn params_mut(&mut self) -> &mut [f32] {
        HashGrid::params_mut(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_config() -> HashGridConfig {
        HashGridConfig {
            levels: 4,
            features_per_level: 2,
            log2_table_size: 10,
            base_resolution: 4,
            max_resolution: 32,
        }
    }

    #[test]
    fn config_dimensions() {
        let cfg = small_config();
        assert_eq!(cfg.output_dim(), 8);
        assert_eq!(cfg.table_size(), 1024);
        assert_eq!(cfg.param_count(), 4 * 1024 * 2);
        assert_eq!(cfg.param_bytes(), cfg.param_count() * 4);
    }

    #[test]
    fn resolutions_grow_geometrically() {
        let cfg = small_config();
        let rs: Vec<u32> = (0..cfg.levels).map(|l| cfg.level_resolution(l)).collect();
        assert_eq!(rs.first(), Some(&4));
        assert_eq!(rs.last(), Some(&32));
        for w in rs.windows(2) {
            assert!(w[1] > w[0], "resolutions must strictly increase: {rs:?}");
        }
    }

    #[test]
    fn single_level_resolution() {
        let cfg = HashGridConfig { levels: 1, ..small_config() };
        assert_eq!(cfg.level_resolution(0), cfg.base_resolution);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(HashGridConfig { levels: 0, ..small_config() }.validate().is_err());
        assert!(HashGridConfig { features_per_level: 0, ..small_config() }.validate().is_err());
        assert!(HashGridConfig { log2_table_size: 0, ..small_config() }.validate().is_err());
        assert!(HashGridConfig { log2_table_size: 40, ..small_config() }.validate().is_err());
        assert!(HashGridConfig { base_resolution: 0, ..small_config() }.validate().is_err());
        assert!(HashGridConfig { max_resolution: 2, ..small_config() }.validate().is_err());
        assert!(small_config().validate().is_ok());
    }

    #[test]
    fn zero_grid_encodes_to_zero() {
        let grid = HashGrid::new(small_config());
        let out = grid.encode(Vec3::splat(0.3));
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn constant_table_interpolates_to_constant() {
        // If every vertex stores the same value, trilinear
        // interpolation must return exactly that value (weights sum
        // to 1).
        let mut grid = HashGrid::new(small_config());
        for p in grid.params_mut() {
            *p = 0.75;
        }
        for p in [Vec3::splat(0.1), Vec3::splat(0.5), Vec3::new(0.9, 0.2, 0.7)] {
            let out = grid.encode(p);
            for v in out {
                assert!((v - 0.75).abs() < 1e-5, "expected 0.75, got {v}");
            }
        }
    }

    #[test]
    fn interpolation_is_continuous_across_cell_boundaries() {
        let mut rng = SmallRng::seed_from_u64(7);
        let grid = HashGrid::with_random_init(small_config(), &mut rng);
        // Query two points straddling a cell boundary on the coarsest
        // level; the encoded features must be close.
        let eps = 1e-5;
        let a = grid.encode(Vec3::new(0.25 - eps, 0.4, 0.4));
        let b = grid.encode(Vec3::new(0.25 + eps, 0.4, 0.4));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "discontinuity: {x} vs {y}");
        }
    }

    #[test]
    fn out_of_range_points_are_clamped() {
        let mut rng = SmallRng::seed_from_u64(3);
        let grid = HashGrid::with_random_init(small_config(), &mut rng);
        let inside = grid.encode(Vec3::new(0.0, 1.0, 0.5));
        let outside = grid.encode(Vec3::new(-2.0, 5.0, 0.5));
        assert_eq!(inside, outside);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut grid = HashGrid::with_random_init(small_config(), &mut rng);
        let p = Vec3::new(0.31, 0.62, 0.18);
        let dim = grid.config().output_dim();
        // Loss = sum of outputs; dL/dout = ones.
        let d_out = vec![1.0f32; dim];
        let mut grads = vec![0.0f32; grid.param_count()];
        grid.backward(p, &d_out, &mut grads);

        // Check a handful of parameters with central differences.
        let mut checked = 0;
        let candidates: Vec<usize> =
            grads.iter().enumerate().filter(|(_, g)| g.abs() > 1e-4).map(|(i, _)| i).collect();
        for &i in candidates.iter().take(16) {
            let h = 1e-3f32;
            let orig = grid.params()[i];
            grid.params_mut()[i] = orig + h;
            let up: f32 = grid.encode(p).iter().sum();
            grid.params_mut()[i] = orig - h;
            let down: f32 = grid.encode(p).iter().sum();
            grid.params_mut()[i] = orig;
            let fd = (up - down) / (2.0 * h);
            assert!(
                (fd - grads[i]).abs() < 1e-3,
                "param {i}: finite diff {fd} vs analytic {}",
                grads[i]
            );
            checked += 1;
        }
        assert!(checked > 0, "no nonzero gradients found");
    }

    #[test]
    fn access_trace_has_expected_shape() {
        let grid = HashGrid::new(small_config());
        let mut trace = Vec::new();
        grid.record_accesses(Vec3::splat(0.4), &mut trace);
        assert_eq!(trace.len(), 8 * grid.config().levels);
        for a in &trace {
            assert!((a.level as usize) < grid.config().levels);
            assert!(a.corner < 8);
            assert!(
                (a.address as usize)
                    < grid
                        .config()
                        .table_size()
                        .max((grid.resolutions()[a.level as usize] as usize + 1).pow(3))
            );
        }
    }

    #[test]
    #[should_panic(expected = "output buffer size mismatch")]
    fn interpolate_rejects_wrong_buffer() {
        let grid = HashGrid::new(small_config());
        let mut out = vec![0.0; 3];
        grid.interpolate(Vec3::ZERO, &mut out);
    }
}
