//! Multiresolution hash-grid feature encoding (Stage II of the NeRF
//! pipeline).
//!
//! A [`HashGrid`] stores `L` levels of feature tables. Each level `l`
//! covers the normalized model cube `[0,1]^3` with a virtual grid of
//! resolution `N_l` (growing geometrically from `base_resolution` to
//! `max_resolution`) and stores `F` features per vertex in a table of
//! `2^log2_table_size` entries. Querying a point gathers the eight
//! surrounding vertices on every level, trilinearly interpolates their
//! features, and concatenates the per-level results.
//!
//! The forward pass (inference) *aggregates* features; the backward
//! pass (training) *distributes* gradients back onto the same eight
//! vertices — the symmetric workload pair that motivates the paper's
//! shared reconfigurable interpolation array (Technique T2-1).

use crate::hash::{
    cell_corners, dense_index, level_is_dense, vertex_address, GridVertex, HASH_PRIMES,
};
use crate::math::Vec3;
use rand::Rng;

/// Reusable corner-address and trilinear-weight buffers shared by the
/// batched encoding kernels.
///
/// [`HashGrid::interpolate_batch`] fills the buffers level-major
/// (entry `(level * n + point) * 8 + corner`) and
/// [`HashGrid::backward_batch`] reuses them, so the address
/// computation — `locate`, corner enumeration, dense-vs-hash branch —
/// runs once per (point, level) instead of twice. Keep one scratch per
/// worker; the kernels resize it only when the batch shape changes.
#[derive(Debug, Clone, Default)]
pub struct EncodingScratch {
    addrs: Vec<u32>,
    weights: Vec<f32>,
    prepared_points: usize,
    prepared_levels: usize,
    prepared_fingerprint: u64,
}

impl EncodingScratch {
    /// Creates an empty scratch sized lazily on first use.
    pub fn new() -> Self {
        EncodingScratch::default()
    }

    /// Total buffer capacity in elements, for the hot-loop
    /// allocation-freedom debug assertion.
    #[cfg(debug_assertions)]
    pub(crate) fn capacity(&self) -> usize {
        self.addrs.capacity() + self.weights.capacity()
    }

    /// Sizes the buffers for `points * levels * 8` corner entries and
    /// marks them unprepared.
    fn resize_for(&mut self, points: usize, levels: usize) {
        let need = points * levels * 8;
        if self.addrs.len() != need {
            self.addrs.resize(need, 0);
        }
        if self.weights.len() != need {
            self.weights.resize(need, 0.0);
        }
        self.prepared_points = 0;
        self.prepared_levels = 0;
        self.prepared_fingerprint = 0;
    }
}

/// A cheap order-sensitive fingerprint of a position batch, used to
/// detect whether an [`EncodingScratch`] still describes the batch a
/// backward pass is asked about (so forward work is reused when it
/// matches and recomputed — never trusted — when it does not).
fn position_fingerprint(positions: &[Vec3]) -> u64 {
    match (positions.first(), positions.last()) {
        (Some(a), Some(b)) => {
            let mix = |v: Vec3| {
                (v.x.to_bits() as u64)
                    ^ ((v.y.to_bits() as u64) << 21)
                    ^ ((v.z.to_bits() as u64) << 42)
            };
            (positions.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ mix(*a)
                ^ mix(*b).rotate_left(17)
        }
        _ => 0,
    }
}

/// Addresses and trilinear weights of the eight corners of the cell
/// at `base` with fractional position `frac`, in the corner order of
/// [`cell_corners`].
///
/// The eight corner addresses share their per-axis terms, so they are
/// assembled from three products instead of calling
/// [`vertex_address`] eight times. Under wrapping arithmetic
/// `(y+1)·π₂ = y·π₂ + π₂`, so every address is bit-identical to the
/// scalar `spatial_hash` / `dense_index` result; the weight factors
/// multiply in exactly the order of the scalar `corner_weight`.
/// Points staged per block by the fused batched forward pass.
const ENC_BLOCK: usize = 16;

/// Per-axis SoA staging for a block of located points: base vertex
/// coordinates and fractional offsets, one lane per point.
///
/// Splitting `locate` out of the gather loop lets the compiler
/// vectorize its conversion-heavy body (clamp, scale, float→int
/// truncate, frac) across the block, which would otherwise serialize
/// against the latency-bound table gathers.
struct LocateBlock {
    bx: [u32; ENC_BLOCK],
    by: [u32; ENC_BLOCK],
    bz: [u32; ENC_BLOCK],
    fx: [f32; ENC_BLOCK],
    fy: [f32; ENC_BLOCK],
    fz: [f32; ENC_BLOCK],
}

impl LocateBlock {
    fn new() -> Self {
        LocateBlock {
            bx: [0; ENC_BLOCK],
            by: [0; ENC_BLOCK],
            bz: [0; ENC_BLOCK],
            fx: [0.0; ENC_BLOCK],
            fy: [0.0; ENC_BLOCK],
            fz: [0.0; ENC_BLOCK],
        }
    }

    /// Locates up to [`ENC_BLOCK`] points at one level. `q as u32`
    /// truncates exactly like `q.floor() as u32` for the clamped
    /// (non-negative, saturating for NaN) coordinates, so every lane
    /// is bit-identical to the scalar `locate`.
    fn locate(&mut self, pts: &[Vec3], res_f: f32, max_base: u32) {
        for (j, &p) in pts.iter().enumerate() {
            let q = p.clamp(0.0, 1.0) * res_f;
            let cx = (q.x as u32).min(max_base);
            let cy = (q.y as u32).min(max_base);
            let cz = (q.z as u32).min(max_base);
            self.bx[j] = cx;
            self.by[j] = cy;
            self.bz[j] = cz;
            self.fx[j] = (q.x - cx as f32).clamp(0.0, 1.0);
            self.fy[j] = (q.y - cy as f32).clamp(0.0, 1.0);
            self.fz[j] = (q.z - cz as f32).clamp(0.0, 1.0);
        }
    }

    #[inline]
    fn base(&self, j: usize) -> GridVertex {
        [self.bx[j], self.by[j], self.bz[j]]
    }

    #[inline]
    fn frac(&self, j: usize) -> Vec3 {
        Vec3::new(self.fx[j], self.fy[j], self.fz[j])
    }
}

#[inline(always)]
fn corner_addrs_weights(
    base: GridVertex,
    frac: Vec3,
    dense: bool,
    res: u32,
    mask: u32,
) -> ([u32; 8], [f32; 8]) {
    let mut addrs = [0u32; 8];
    if dense {
        let base_idx = dense_index(base, res);
        let dy = res + 1;
        let dz = dy * dy;
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = base_idx
                + (i as u32 & 1)
                + if i & 2 == 0 { 0 } else { dy }
                + if i & 4 == 0 { 0 } else { dz };
        }
    } else {
        let hx0 = base[0].wrapping_mul(HASH_PRIMES[0]);
        let hx = [hx0, hx0.wrapping_add(HASH_PRIMES[0])];
        let hy0 = base[1].wrapping_mul(HASH_PRIMES[1]);
        let hy = [hy0, hy0.wrapping_add(HASH_PRIMES[1])];
        let hz0 = base[2].wrapping_mul(HASH_PRIMES[2]);
        let hz = [hz0, hz0.wrapping_add(HASH_PRIMES[2])];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = (hx[i & 1] ^ hy[(i >> 1) & 1] ^ hz[(i >> 2) & 1]) & mask;
        }
    }
    let wx = [1.0 - frac.x, frac.x];
    let wy = [1.0 - frac.y, frac.y];
    let wz = [1.0 - frac.z, frac.z];
    // The XY outer product is shared between the two Z faces; each
    // weight is still the scalar `corner_weight`'s `(wx * wy) * wz`
    // with the same left association, just with the common factor
    // computed once and in shuffle-free lane order.
    let wxy = [wx[0] * wy[0], wx[1] * wy[0], wx[0] * wy[1], wx[1] * wy[1]];
    let weights = [
        wxy[0] * wz[0],
        wxy[1] * wz[0],
        wxy[2] * wz[0],
        wxy[3] * wz[0],
        wxy[0] * wz[1],
        wxy[1] * wz[1],
        wxy[2] * wz[1],
        wxy[3] * wz[1],
    ];
    (addrs, weights)
}

/// A spatial feature encoding: a learnable map from points in the
/// normalized model cube to feature vectors, with an explicit backward
/// pass.
///
/// The crate ships two implementations: the multiresolution
/// [`HashGrid`] (Instant-NGP, the paper's primary target) and the
/// dense voxel grid of [`crate::dense_grid::DenseGrid`]
/// (TensoRF/RT-NeRF-class). [`crate::model::NerfModel`] is generic
/// over this trait, which is what lets the paper's modules transfer
/// across NeRF pipelines (Sec. VI-C).
///
/// `Send + Sync` is required so models can be shared immutably across
/// the worker threads of [`fusion3d_par::Pool`] during parallel
/// rendering and sharded-gradient training.
pub trait Encoding: std::fmt::Debug + Send + Sync {
    /// Dimension of the encoded feature vector.
    fn output_dim(&self) -> usize;

    /// `(dense_levels, hashed_levels)` of the encoding's gather
    /// structure: dense levels resolve every eight-corner fetch inside
    /// a contiguous per-level row (the local case), hashed levels
    /// scatter corners across the table (the conflict-prone case the
    /// chip's two-level tiling targets). Drives the gather-locality
    /// probes; encodings without a grid structure report `(0, 0)`.
    fn gather_locality(&self) -> (usize, usize) {
        (0, 0)
    }

    /// Encodes point `p` into `out` (length [`Encoding::output_dim`]).
    ///
    /// # Panics
    ///
    /// Implementations panic if `out` has the wrong length.
    fn interpolate(&self, p: Vec3, out: &mut [f32]);

    /// Scatters `d_out` (gradient w.r.t. the encoded features) into
    /// `grads` (length [`Encoding::param_count`]).
    ///
    /// # Panics
    ///
    /// Implementations panic on buffer size mismatches.
    fn backward(&self, p: Vec3, d_out: &[f32], grads: &mut [f32]);

    /// Encodes a batch of points into `out`, point-major: the row of
    /// `positions[i]` is `out[i * output_dim() .. (i + 1) * output_dim()]`.
    ///
    /// The default implementation loops the scalar
    /// [`Encoding::interpolate`]. Overrides may batch however they
    /// like but must stay **bitwise-identical** to that scalar loop —
    /// the determinism contract the `reference` module's differential
    /// tests enforce.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != positions.len() * output_dim()`.
    fn interpolate_batch(
        &self,
        positions: &[Vec3],
        out: &mut [f32],
        _scratch: &mut EncodingScratch,
    ) {
        let dim = self.output_dim();
        assert_eq!(out.len(), positions.len() * dim, "output buffer size mismatch");
        for (p, row) in positions.iter().zip(out.chunks_exact_mut(dim)) {
            self.interpolate(*p, row);
        }
    }

    /// Encodes a batch of points into `out` like
    /// [`Encoding::interpolate_batch`], but retains nothing for a
    /// backward pass — the pure-forward variant inference pipelines
    /// use, needing no scratch. Same bitwise contract: identical to
    /// looping the scalar [`Encoding::interpolate`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != positions.len() * output_dim()`.
    fn interpolate_batch_infer(&self, positions: &[Vec3], out: &mut [f32]) {
        let dim = self.output_dim();
        assert_eq!(out.len(), positions.len() * dim, "output buffer size mismatch");
        for (p, row) in positions.iter().zip(out.chunks_exact_mut(dim)) {
            self.interpolate(*p, row);
        }
    }

    /// Scatters a batch of feature gradients (`d_out`, point-major as
    /// in [`Encoding::interpolate_batch`]) into `grads`, accumulating
    /// in point order. Same bitwise contract as the forward batch:
    /// identical to looping the scalar [`Encoding::backward`].
    ///
    /// # Panics
    ///
    /// Panics on buffer size mismatches.
    fn backward_batch(
        &self,
        positions: &[Vec3],
        d_out: &[f32],
        grads: &mut [f32],
        _scratch: &mut EncodingScratch,
    ) {
        let dim = self.output_dim();
        assert_eq!(d_out.len(), positions.len() * dim, "gradient buffer size mismatch");
        for (p, row) in positions.iter().zip(d_out.chunks_exact(dim)) {
            self.backward(*p, row, grads);
        }
    }

    /// Pre-sizes `scratch` for a batch of `n` points so the batched
    /// kernels never grow a buffer inside their per-sample loops.
    /// Default: no scratch is used, nothing to reserve.
    fn reserve_batch_scratch(&self, _scratch: &mut EncodingScratch, _n: usize) {}

    /// Number of learnable parameters.
    fn param_count(&self) -> usize;

    /// Immutable view of the parameters.
    fn params(&self) -> &[f32];

    /// Mutable view of the parameters.
    fn params_mut(&mut self) -> &mut [f32];
}

/// Configuration of a multiresolution hash grid.
///
/// # Examples
///
/// ```
/// use fusion3d_nerf::encoding::HashGridConfig;
///
/// let cfg = HashGridConfig::default();
/// assert_eq!(cfg.output_dim(), cfg.levels * cfg.features_per_level);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HashGridConfig {
    /// Number of resolution levels `L`.
    pub levels: usize,
    /// Features stored per vertex `F`.
    pub features_per_level: usize,
    /// Table size exponent: each level holds `2^log2_table_size`
    /// feature vectors.
    pub log2_table_size: u32,
    /// Coarsest virtual grid resolution `N_min`.
    pub base_resolution: u32,
    /// Finest virtual grid resolution `N_max`.
    pub max_resolution: u32,
}

impl Default for HashGridConfig {
    /// A mid-size configuration suitable for fast tests and examples:
    /// 8 levels × 2 features, `2^14` entries per level, resolutions
    /// 16 → 256. The paper's chip stores `2 × 5 × 64 KB` of hash SRAM,
    /// matching 2-feature tables at `2^14`–`2^15` entries per level.
    fn default() -> Self {
        HashGridConfig {
            levels: 8,
            features_per_level: 2,
            log2_table_size: 14,
            base_resolution: 16,
            max_resolution: 256,
        }
    }
}

impl HashGridConfig {
    /// Output feature dimension `L * F`.
    #[inline]
    pub const fn output_dim(&self) -> usize {
        self.levels * self.features_per_level
    }

    /// Entries per level table.
    #[inline]
    pub const fn table_size(&self) -> usize {
        1usize << self.log2_table_size
    }

    /// Total number of learnable parameters.
    #[inline]
    pub const fn param_count(&self) -> usize {
        self.levels * self.table_size() * self.features_per_level
    }

    /// Total parameter storage in bytes at `f32` precision. Drives the
    /// model-size axis of Fig. 13(b) and Fig. 14(b).
    #[inline]
    pub const fn param_bytes(&self) -> usize {
        self.param_count() * core::mem::size_of::<f32>()
    }

    /// The virtual grid resolution of level `l`, growing geometrically
    /// between `base_resolution` and `max_resolution` as in
    /// Instant-NGP.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.levels`.
    pub fn level_resolution(&self, level: usize) -> u32 {
        assert!(level < self.levels, "level {level} out of range");
        if self.levels == 1 {
            return self.base_resolution;
        }
        let b = (self.max_resolution as f64 / self.base_resolution as f64)
            .powf(1.0 / (self.levels as f64 - 1.0));
        (self.base_resolution as f64 * b.powi(level as i32)).round() as u32
    }

    /// Validates the configuration, returning a description of the
    /// first problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` when any dimension is zero, the resolution range
    /// is inverted, or the table exponent exceeds 31.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels == 0 {
            return Err("levels must be at least 1".into());
        }
        if self.features_per_level == 0 {
            return Err("features_per_level must be at least 1".into());
        }
        if self.log2_table_size == 0 || self.log2_table_size > 31 {
            return Err(format!("log2_table_size must be in 1..=31, got {}", self.log2_table_size));
        }
        if self.base_resolution == 0 {
            return Err("base_resolution must be at least 1".into());
        }
        if self.max_resolution < self.base_resolution {
            return Err(format!(
                "max_resolution ({}) must be >= base_resolution ({})",
                self.max_resolution, self.base_resolution
            ));
        }
        Ok(())
    }
}

/// One feature-table access performed while encoding a point, captured
/// for the memory-subsystem simulator (bank conflicts, Level-2/3
/// tiling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FeatureAccess {
    /// Grid level of the access.
    pub level: u8,
    /// Corner index 0..8 (bit 0 = X offset, bit 1 = Y, bit 2 = Z).
    pub corner: u8,
    /// Table address within the level.
    pub address: u32,
}

/// A trained or trainable multiresolution hash grid.
///
/// Parameters are stored level-major: level `l`'s table occupies
/// `params[l * T * F .. (l + 1) * T * F]` with `F` contiguous features
/// per vertex.
#[derive(Debug, Clone)]
pub struct HashGrid {
    config: HashGridConfig,
    resolutions: Vec<u32>,
    params: Vec<f32>,
}

impl HashGrid {
    /// Creates a grid with all features initialized to zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`HashGridConfig::validate`].
    pub fn new(config: HashGridConfig) -> Self {
        // lint: allow(p1): documented panic — constructors reject invalid configs
        config.validate().expect("invalid hash grid config");
        let resolutions = (0..config.levels).map(|l| config.level_resolution(l)).collect();
        // lint: allow(h1): one-time parameter allocation at construction, not hot-path
        HashGrid { config, resolutions, params: vec![0.0; config.param_count()] }
    }

    /// Creates a grid with features drawn uniformly from
    /// `[-1e-4, 1e-4]`, the Instant-NGP initialization.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`HashGridConfig::validate`].
    pub fn with_random_init<R: Rng>(config: HashGridConfig, rng: &mut R) -> Self {
        let mut grid = HashGrid::new(config);
        for p in grid.params.iter_mut() {
            *p = rng.gen_range(-1e-4..1e-4);
        }
        grid
    }

    /// The grid's configuration.
    #[inline]
    pub fn config(&self) -> &HashGridConfig {
        &self.config
    }

    /// The virtual resolution of each level.
    #[inline]
    pub fn resolutions(&self) -> &[u32] {
        &self.resolutions
    }

    /// Immutable view of the parameter vector.
    #[inline]
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable view of the parameter vector (used by the optimizer).
    #[inline]
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Number of learnable parameters.
    #[inline]
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    #[inline]
    fn level_offset(&self, level: usize) -> usize {
        level * self.config.table_size() * self.config.features_per_level
    }

    /// Computes the cell base vertex and trilinear weights of `p` on
    /// `level`. `p` is clamped into `[0,1]^3`.
    fn locate(&self, level: usize, p: Vec3) -> (GridVertex, Vec3) {
        debug_assert!(level < self.resolutions.len(), "level out of range");
        let res = self.resolutions[level] as f32;
        let q = p.clamp(0.0, 1.0) * res;
        // Clamp the base so that base+1 stays within the virtual grid.
        let max_base = self.resolutions[level].saturating_sub(1);
        let bx = (q.x.floor() as u32).min(max_base);
        let by = (q.y.floor() as u32).min(max_base);
        let bz = (q.z.floor() as u32).min(max_base);
        let frac = Vec3::new(q.x - bx as f32, q.y - by as f32, q.z - bz as f32).clamp(0.0, 1.0);
        ([bx, by, bz], frac)
    }

    /// The trilinear weight of corner `i` for fractional position `w`.
    #[inline]
    fn corner_weight(frac: Vec3, i: usize) -> f32 {
        let wx = if i & 1 == 0 { 1.0 - frac.x } else { frac.x };
        let wy = if i & 2 == 0 { 1.0 - frac.y } else { frac.y };
        let wz = if i & 4 == 0 { 1.0 - frac.z } else { frac.z };
        wx * wy * wz
    }

    /// Encodes point `p` (normalized coordinates) into `out`, which
    /// must have length [`HashGridConfig::output_dim`].
    ///
    /// This is the allocation-free replacement for the deprecated
    /// [`HashGrid::encode`]: size the buffer once, reuse it per point.
    ///
    /// # Examples
    ///
    /// ```
    /// use fusion3d_nerf::encoding::{Encoding, HashGrid, HashGridConfig};
    /// use fusion3d_nerf::math::Vec3;
    ///
    /// let grid = HashGrid::new(HashGridConfig::default());
    /// let mut features = vec![0.0; grid.config().output_dim()];
    /// grid.interpolate(Vec3::splat(0.5), &mut features);
    /// assert_eq!(features.len(), grid.output_dim());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.config().output_dim()`.
    pub fn interpolate(&self, p: Vec3, out: &mut [f32]) {
        assert_eq!(out.len(), self.config.output_dim(), "output buffer size mismatch");
        let f = self.config.features_per_level;
        for level in 0..self.config.levels {
            let (base, frac) = self.locate(level, p);
            let corners = cell_corners(base);
            let level_out = &mut out[level * f..(level + 1) * f];
            level_out.fill(0.0);
            let offset = self.level_offset(level);
            for (i, &corner) in corners.iter().enumerate() {
                let w = Self::corner_weight(frac, i);
                let addr =
                    vertex_address(corner, self.resolutions[level], self.config.log2_table_size)
                        as usize;
                let slot = offset + addr * f;
                for (o, &v) in level_out.iter_mut().zip(&self.params[slot..slot + f]) {
                    *o += w * v;
                }
            }
        }
    }

    /// Convenience wrapper allocating the output vector.
    ///
    /// Migrate to the into-buffer API — see the example on
    /// [`HashGrid::interpolate`]; batches should use
    /// [`HashGrid::interpolate_batch_infer`].
    #[deprecated(note = "allocates a Vec per point; interpolate into a reused buffer or use \
                interpolate_batch for batches")]
    pub fn encode(&self, p: Vec3) -> Vec<f32> {
        // lint: allow(h1): deprecated compatibility shim — hot paths use interpolate_batch
        let mut out = vec![0.0; self.config.output_dim()];
        self.interpolate(p, &mut out);
        out
    }

    /// Fills `scratch` with the corner addresses and trilinear weights
    /// of every (point, level) pair, **level-major**: all points of
    /// level 0 first, then level 1, and so on. The per-level
    /// dense-vs-hashed addressing decision is hoisted out of the point
    /// loop, and the per-axis weight factors are computed once per
    /// point and combined per corner in exactly the order of the
    /// scalar `corner_weight`, so downstream gathers/scatters stay
    /// bitwise-identical to the scalar kernels.
    fn prepare_batch_scratch(&self, positions: &[Vec3], scratch: &mut EncodingScratch) {
        let n = positions.len();
        let levels = self.config.levels;
        scratch.resize_for(n, levels);
        for level in 0..levels {
            let res = self.resolutions[level];
            let dense = level_is_dense(res, self.config.log2_table_size);
            let level_base = level * n * 8;
            let mask = (1u32 << self.config.log2_table_size) - 1;
            for (s, &p) in positions.iter().enumerate() {
                let (base, frac) = self.locate(level, p);
                let (addrs, weights) = corner_addrs_weights(base, frac, dense, res, mask);
                let entry = level_base + s * 8;
                scratch.addrs[entry..entry + 8].copy_from_slice(&addrs);
                scratch.weights[entry..entry + 8].copy_from_slice(&weights);
            }
        }
        scratch.prepared_points = n;
        scratch.prepared_levels = levels;
        scratch.prepared_fingerprint = position_fingerprint(positions);
    }

    /// One level of the fused f==2 forward pass over the whole batch.
    ///
    /// Points run through in [`ENC_BLOCK`]-sized blocks: a SoA locate
    /// pass vectorizes the coordinate conversions, then the gather
    /// consumes the block four points at a time — eight independent
    /// accumulation chains keep the latency-bound dependent loads
    /// overlapped. Each chain still adds corner-ascending, so blocking
    /// and interleaving change scheduling, not bits.
    ///
    /// The gather indexes a per-level table slice with re-masked
    /// addresses: `addr & mask` is a value no-op (hashed addresses are
    /// already masked; dense levels fit inside the table by
    /// definition) that lets the compiler prove `slot + 1` in bounds
    /// and drop the per-load bounds checks.
    ///
    /// With `SPILL`, the corner addresses and weights are also written
    /// to the level's `spill_addrs` / `spill_weights` slabs (each
    /// `n * 8` entries, `point * 8 + corner`) for a later
    /// [`HashGrid::backward_batch`]; inference skips the stores
    /// entirely.
    fn interpolate_level_f2<const SPILL: bool>(
        &self,
        level: usize,
        positions: &[Vec3],
        out: &mut [f32],
        spill_addrs: &mut [u32],
        spill_weights: &mut [f32],
    ) {
        let n = positions.len();
        let dim = self.config.output_dim();
        let col = level * 2;
        let res = self.resolutions[level];
        let dense = level_is_dense(res, self.config.log2_table_size);
        let mask = (1u32 << self.config.log2_table_size) - 1;
        let offset = self.level_offset(level);
        let table = &self.params[offset..offset + (mask as usize + 1) * 2];
        let mask_us = mask as usize;
        // Last valid pair-base slot. Clamping each gather index to it is
        // a value no-op (masked addresses never exceed it) that lets the
        // compiler prove `slot + 1 < table.len()` and drop the
        // per-corner bounds checks, replacing 2 branches per corner
        // with one branch-free `min`.
        let last = table.len() - 2;
        let res_f = res as f32;
        let max_base = res.saturating_sub(1);
        let mut block = LocateBlock::new();
        let mut s0 = 0usize;
        while s0 < n {
            let m = (n - s0).min(ENC_BLOCK);
            block.locate(&positions[s0..s0 + m], res_f, max_base);
            const GATHER_WIDTH: usize = 4;
            let mut j = 0usize;
            while j + GATHER_WIDTH <= m {
                let s = s0 + j;
                let cw: [([u32; 8], [f32; 8]); GATHER_WIDTH] = [
                    corner_addrs_weights(block.base(j), block.frac(j), dense, res, mask),
                    corner_addrs_weights(block.base(j + 1), block.frac(j + 1), dense, res, mask),
                    corner_addrs_weights(block.base(j + 2), block.frac(j + 2), dense, res, mask),
                    corner_addrs_weights(block.base(j + 3), block.frac(j + 3), dense, res, mask),
                ];
                if SPILL {
                    let entry = s * 8;
                    for (p, (aa, wa)) in cw.iter().enumerate() {
                        spill_addrs[entry + p * 8..entry + p * 8 + 8].copy_from_slice(aa);
                        spill_weights[entry + p * 8..entry + p * 8 + 8].copy_from_slice(wa);
                    }
                }
                let mut acc = [[0.0f32; 2]; GATHER_WIDTH];
                for i in 0..8 {
                    for (p, (aa, wa)) in cw.iter().enumerate() {
                        let slot = ((aa[i] as usize & mask_us) * 2).min(last);
                        acc[p][0] += wa[i] * table[slot];
                        acc[p][1] += wa[i] * table[slot + 1];
                    }
                }
                for (p, a) in acc.iter().enumerate() {
                    out[(s + p) * dim + col] = a[0];
                    out[(s + p) * dim + col + 1] = a[1];
                }
                j += GATHER_WIDTH;
            }
            while j < m {
                let s = s0 + j;
                let (addrs, weights) =
                    corner_addrs_weights(block.base(j), block.frac(j), dense, res, mask);
                if SPILL {
                    let entry = s * 8;
                    spill_addrs[entry..entry + 8].copy_from_slice(&addrs);
                    spill_weights[entry..entry + 8].copy_from_slice(&weights);
                }
                let mut a0 = 0.0f32;
                let mut a1 = 0.0f32;
                for (&addr, &w) in addrs.iter().zip(&weights) {
                    let slot = ((addr as usize & mask_us) * 2).min(last);
                    a0 += w * table[slot];
                    a1 += w * table[slot + 1];
                }
                out[s * dim + col] = a0;
                out[s * dim + col + 1] = a1;
                j += 1;
            }
            s0 += m;
        }
    }

    /// Batched [`HashGrid::interpolate`] for inference: encodes
    /// `positions` into `out` (point-major rows of `output_dim`
    /// features), iterating **level-major** so each level's feature
    /// table stays cache-resident across the whole batch. Unlike
    /// [`HashGrid::interpolate_batch`], nothing is retained for a
    /// backward pass — the pure-forward counterpart of the scalar
    /// kernel, used by the render pipeline.
    ///
    /// Bitwise-identical to looping the scalar kernel over the batch.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != positions.len() * output_dim()`.
    pub fn interpolate_batch_infer(&self, positions: &[Vec3], out: &mut [f32]) {
        let dim = self.config.output_dim();
        let n = positions.len();
        assert_eq!(out.len(), n * dim, "output buffer size mismatch");
        if self.config.features_per_level == 2 {
            for level in 0..self.config.levels {
                self.interpolate_level_f2::<false>(level, positions, out, &mut [], &mut []);
            }
        } else {
            for (p, row) in positions.iter().zip(out.chunks_exact_mut(dim)) {
                self.interpolate(*p, row);
            }
        }
    }

    /// Batched [`HashGrid::interpolate`]: encodes `positions` into
    /// `out` (point-major rows of `output_dim` features), iterating
    /// **level-major** so each level's feature table stays
    /// cache-resident across the whole batch. The corner addresses and
    /// weights are left in `scratch` for a following
    /// [`HashGrid::backward_batch`] on the same positions; inference
    /// paths that never run a backward should use
    /// [`HashGrid::interpolate_batch_infer`] instead.
    ///
    /// Bitwise-identical to looping the scalar kernel over the batch.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != positions.len() * output_dim()`.
    pub fn interpolate_batch(
        &self,
        positions: &[Vec3],
        out: &mut [f32],
        scratch: &mut EncodingScratch,
    ) {
        let dim = self.config.output_dim();
        let n = positions.len();
        assert_eq!(out.len(), n * dim, "output buffer size mismatch");
        let levels = self.config.levels;
        scratch.resize_for(n, levels);
        let f = self.config.features_per_level;
        // One fused level-major pass: the corner addresses and weights
        // are computed in registers, spilled to `scratch` for a later
        // `backward_batch`, and consumed by the gather immediately —
        // the forward path never reads them back from memory.
        for level in 0..levels {
            let res = self.resolutions[level];
            let dense = level_is_dense(res, self.config.log2_table_size);
            let mask = (1u32 << self.config.log2_table_size) - 1;
            let offset = self.level_offset(level);
            let level_base = level * n * 8;
            let col = level * f;
            if f == 2 {
                self.interpolate_level_f2::<true>(
                    level,
                    positions,
                    out,
                    &mut scratch.addrs[level_base..level_base + n * 8],
                    &mut scratch.weights[level_base..level_base + n * 8],
                );
            } else {
                for (s, &p) in positions.iter().enumerate() {
                    let (base, frac) = self.locate(level, p);
                    let (addrs, weights) = corner_addrs_weights(base, frac, dense, res, mask);
                    let entry = level_base + s * 8;
                    scratch.addrs[entry..entry + 8].copy_from_slice(&addrs);
                    scratch.weights[entry..entry + 8].copy_from_slice(&weights);
                    let row = &mut out[s * dim + col..s * dim + col + f];
                    row.fill(0.0);
                    for (&addr, &w) in addrs.iter().zip(&weights) {
                        let slot = offset + addr as usize * f;
                        for (o, &v) in row.iter_mut().zip(&self.params[slot..slot + f]) {
                            *o += w * v;
                        }
                    }
                }
            }
        }
        scratch.prepared_points = n;
        scratch.prepared_levels = levels;
        scratch.prepared_fingerprint = position_fingerprint(positions);
    }

    /// Batched [`HashGrid::backward`]: scatters point-major feature
    /// gradients `d_out` into `grads`, level-major, reusing the corner
    /// addresses/weights a preceding [`HashGrid::interpolate_batch`]
    /// left in `scratch` (they are recomputed if the scratch does not
    /// match `positions`). Accumulation order per table slot equals
    /// the scalar loop's — point-ascending, corner-ascending — so the
    /// result is bitwise-identical.
    ///
    /// # Panics
    ///
    /// Panics on buffer size mismatches.
    pub fn backward_batch(
        &self,
        positions: &[Vec3],
        d_out: &[f32],
        grads: &mut [f32],
        scratch: &mut EncodingScratch,
    ) {
        let dim = self.config.output_dim();
        let n = positions.len();
        assert_eq!(d_out.len(), n * dim, "gradient buffer size mismatch");
        assert_eq!(grads.len(), self.params.len(), "parameter gradient size mismatch");
        if scratch.prepared_points != n
            || scratch.prepared_levels != self.config.levels
            || scratch.prepared_fingerprint != position_fingerprint(positions)
        {
            self.prepare_batch_scratch(positions, scratch);
        }
        let f = self.config.features_per_level;
        for level in 0..self.config.levels {
            let offset = self.level_offset(level);
            let level_base = level * n * 8;
            let col = level * f;
            if f == 2 {
                // Same re-masked per-level slice as the forward
                // gather, eliminating the per-store bounds checks.
                let mask = (1u32 << self.config.log2_table_size) - 1;
                let table = &mut grads[offset..offset + (mask as usize + 1) * 2];
                for s in 0..n {
                    let entry = level_base + s * 8;
                    let addrs = &scratch.addrs[entry..entry + 8];
                    let weights = &scratch.weights[entry..entry + 8];
                    let d0 = d_out[s * dim + col];
                    let d1 = d_out[s * dim + col + 1];
                    for (&addr, &w) in addrs.iter().zip(weights) {
                        let slot = (addr & mask) as usize * 2;
                        table[slot] += w * d0;
                        table[slot + 1] += w * d1;
                    }
                }
            } else {
                for s in 0..n {
                    let entry = level_base + s * 8;
                    let d_level = &d_out[s * dim + col..s * dim + col + f];
                    for c in 0..8 {
                        let w = scratch.weights[entry + c];
                        let slot = offset + scratch.addrs[entry + c] as usize * f;
                        for (g, &d) in grads[slot..slot + f].iter_mut().zip(d_level) {
                            *g += w * d;
                        }
                    }
                }
            }
        }
    }

    /// Backward pass: scatters `d_out` (gradient w.r.t. the encoded
    /// features, length `output_dim`) into `grads` (gradient buffer of
    /// length [`HashGrid::param_count`]) using the same trilinear
    /// weights as the forward pass.
    ///
    /// # Panics
    ///
    /// Panics on buffer size mismatches.
    pub fn backward(&self, p: Vec3, d_out: &[f32], grads: &mut [f32]) {
        assert_eq!(d_out.len(), self.config.output_dim(), "gradient buffer size mismatch");
        assert_eq!(grads.len(), self.params.len(), "parameter gradient size mismatch");
        let f = self.config.features_per_level;
        for level in 0..self.config.levels {
            let (base, frac) = self.locate(level, p);
            let corners = cell_corners(base);
            let d_level = &d_out[level * f..(level + 1) * f];
            let offset = self.level_offset(level);
            for (i, &corner) in corners.iter().enumerate() {
                let w = Self::corner_weight(frac, i);
                let addr =
                    vertex_address(corner, self.resolutions[level], self.config.log2_table_size)
                        as usize;
                let slot = offset + addr * f;
                for (g, &d) in grads[slot..slot + f].iter_mut().zip(d_level) {
                    *g += w * d;
                }
            }
        }
    }

    /// Records the table accesses the encoding of `p` performs, for
    /// the memory-subsystem simulator. Appends `8 * levels` entries to
    /// `trace`.
    pub fn record_accesses(&self, p: Vec3, trace: &mut Vec<FeatureAccess>) {
        for level in 0..self.config.levels {
            let (base, _) = self.locate(level, p);
            for (i, &corner) in cell_corners(base).iter().enumerate() {
                trace.push(FeatureAccess {
                    level: level as u8,
                    corner: i as u8,
                    address: vertex_address(
                        corner,
                        self.resolutions[level],
                        self.config.log2_table_size,
                    ),
                });
            }
        }
    }
}

impl Encoding for HashGrid {
    fn output_dim(&self) -> usize {
        self.config.output_dim()
    }

    fn gather_locality(&self) -> (usize, usize) {
        let dense = self
            .resolutions
            .iter()
            .filter(|&&res| level_is_dense(res, self.config.log2_table_size))
            .count();
        (dense, self.config.levels - dense)
    }

    fn interpolate(&self, p: Vec3, out: &mut [f32]) {
        HashGrid::interpolate(self, p, out);
    }

    fn backward(&self, p: Vec3, d_out: &[f32], grads: &mut [f32]) {
        HashGrid::backward(self, p, d_out, grads);
    }

    fn interpolate_batch(
        &self,
        positions: &[Vec3],
        out: &mut [f32],
        scratch: &mut EncodingScratch,
    ) {
        HashGrid::interpolate_batch(self, positions, out, scratch);
    }

    fn interpolate_batch_infer(&self, positions: &[Vec3], out: &mut [f32]) {
        HashGrid::interpolate_batch_infer(self, positions, out);
    }

    fn backward_batch(
        &self,
        positions: &[Vec3],
        d_out: &[f32],
        grads: &mut [f32],
        scratch: &mut EncodingScratch,
    ) {
        HashGrid::backward_batch(self, positions, d_out, grads, scratch);
    }

    fn reserve_batch_scratch(&self, scratch: &mut EncodingScratch, n: usize) {
        scratch.resize_for(n, self.config.levels);
    }

    fn param_count(&self) -> usize {
        HashGrid::param_count(self)
    }

    fn params(&self) -> &[f32] {
        HashGrid::params(self)
    }

    fn params_mut(&mut self) -> &mut [f32] {
        HashGrid::params_mut(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_config() -> HashGridConfig {
        HashGridConfig {
            levels: 4,
            features_per_level: 2,
            log2_table_size: 10,
            base_resolution: 4,
            max_resolution: 32,
        }
    }

    /// Allocating per-point encode, replacing the deprecated
    /// `HashGrid::encode` in tests.
    fn encode(grid: &HashGrid, p: Vec3) -> Vec<f32> {
        let mut out = vec![0.0; grid.config().output_dim()];
        grid.interpolate(p, &mut out);
        out
    }

    #[test]
    fn config_dimensions() {
        let cfg = small_config();
        assert_eq!(cfg.output_dim(), 8);
        assert_eq!(cfg.table_size(), 1024);
        assert_eq!(cfg.param_count(), 4 * 1024 * 2);
        assert_eq!(cfg.param_bytes(), cfg.param_count() * 4);
    }

    #[test]
    fn resolutions_grow_geometrically() {
        let cfg = small_config();
        let rs: Vec<u32> = (0..cfg.levels).map(|l| cfg.level_resolution(l)).collect();
        assert_eq!(rs.first(), Some(&4));
        assert_eq!(rs.last(), Some(&32));
        for w in rs.windows(2) {
            assert!(w[1] > w[0], "resolutions must strictly increase: {rs:?}");
        }
    }

    #[test]
    fn single_level_resolution() {
        let cfg = HashGridConfig { levels: 1, ..small_config() };
        assert_eq!(cfg.level_resolution(0), cfg.base_resolution);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(HashGridConfig { levels: 0, ..small_config() }.validate().is_err());
        assert!(HashGridConfig { features_per_level: 0, ..small_config() }.validate().is_err());
        assert!(HashGridConfig { log2_table_size: 0, ..small_config() }.validate().is_err());
        assert!(HashGridConfig { log2_table_size: 40, ..small_config() }.validate().is_err());
        assert!(HashGridConfig { base_resolution: 0, ..small_config() }.validate().is_err());
        assert!(HashGridConfig { max_resolution: 2, ..small_config() }.validate().is_err());
        assert!(small_config().validate().is_ok());
    }

    #[test]
    fn zero_grid_encodes_to_zero() {
        let grid = HashGrid::new(small_config());
        let out = encode(&grid, Vec3::splat(0.3));
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn constant_table_interpolates_to_constant() {
        // If every vertex stores the same value, trilinear
        // interpolation must return exactly that value (weights sum
        // to 1).
        let mut grid = HashGrid::new(small_config());
        for p in grid.params_mut() {
            *p = 0.75;
        }
        for p in [Vec3::splat(0.1), Vec3::splat(0.5), Vec3::new(0.9, 0.2, 0.7)] {
            let out = encode(&grid, p);
            for v in out {
                assert!((v - 0.75).abs() < 1e-5, "expected 0.75, got {v}");
            }
        }
    }

    #[test]
    fn interpolation_is_continuous_across_cell_boundaries() {
        let mut rng = SmallRng::seed_from_u64(7);
        let grid = HashGrid::with_random_init(small_config(), &mut rng);
        // Query two points straddling a cell boundary on the coarsest
        // level; the encoded features must be close.
        let eps = 1e-5;
        let a = encode(&grid, Vec3::new(0.25 - eps, 0.4, 0.4));
        let b = encode(&grid, Vec3::new(0.25 + eps, 0.4, 0.4));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "discontinuity: {x} vs {y}");
        }
    }

    #[test]
    fn out_of_range_points_are_clamped() {
        let mut rng = SmallRng::seed_from_u64(3);
        let grid = HashGrid::with_random_init(small_config(), &mut rng);
        let inside = encode(&grid, Vec3::new(0.0, 1.0, 0.5));
        let outside = encode(&grid, Vec3::new(-2.0, 5.0, 0.5));
        assert_eq!(inside, outside);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut grid = HashGrid::with_random_init(small_config(), &mut rng);
        let p = Vec3::new(0.31, 0.62, 0.18);
        let dim = grid.config().output_dim();
        // Loss = sum of outputs; dL/dout = ones.
        let d_out = vec![1.0f32; dim];
        let mut grads = vec![0.0f32; grid.param_count()];
        grid.backward(p, &d_out, &mut grads);

        // Check a handful of parameters with central differences.
        let mut checked = 0;
        let candidates: Vec<usize> =
            grads.iter().enumerate().filter(|(_, g)| g.abs() > 1e-4).map(|(i, _)| i).collect();
        for &i in candidates.iter().take(16) {
            let h = 1e-3f32;
            let orig = grid.params()[i];
            grid.params_mut()[i] = orig + h;
            let up: f32 = encode(&grid, p).iter().sum();
            grid.params_mut()[i] = orig - h;
            let down: f32 = encode(&grid, p).iter().sum();
            grid.params_mut()[i] = orig;
            let fd = (up - down) / (2.0 * h);
            assert!(
                (fd - grads[i]).abs() < 1e-3,
                "param {i}: finite diff {fd} vs analytic {}",
                grads[i]
            );
            checked += 1;
        }
        assert!(checked > 0, "no nonzero gradients found");
    }

    #[test]
    fn access_trace_has_expected_shape() {
        let grid = HashGrid::new(small_config());
        let mut trace = Vec::new();
        grid.record_accesses(Vec3::splat(0.4), &mut trace);
        assert_eq!(trace.len(), 8 * grid.config().levels);
        for a in &trace {
            assert!((a.level as usize) < grid.config().levels);
            assert!(a.corner < 8);
            assert!(
                (a.address as usize)
                    < grid
                        .config()
                        .table_size()
                        .max((grid.resolutions()[a.level as usize] as usize + 1).pow(3))
            );
        }
    }

    #[test]
    #[should_panic(expected = "output buffer size mismatch")]
    fn interpolate_rejects_wrong_buffer() {
        let grid = HashGrid::new(small_config());
        let mut out = vec![0.0; 3];
        grid.interpolate(Vec3::ZERO, &mut out);
    }
}
