//! INT8 quantization of model parameters and the quantized-training
//! experiment behind the paper's Table II.
//!
//! Table II shows that *training* cannot tolerate aggressive INT8
//! quantization: quantizing every iteration diverges, every 200
//! iterations costs ~5.7 dB, every 1000 iterations ~1.6 dB, while
//! quantizing only the final model is benign. This motivates the
//! accelerator's mixed-precision datapath (floating point for
//! training, Technique T2-2).

use crate::dataset::Dataset;
use crate::encoding::Encoding;
use crate::model::NerfModel;
use crate::trainer::{Trainer, TrainerConfig};
use rand::Rng;

/// How often training weights are quantized in the Table II sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum QuantSchedule {
    /// Never quantize during training (quality reference).
    Never,
    /// Quantize all weights every `N` iterations.
    Every(u32),
}

impl QuantSchedule {
    /// Whether iteration `iter` triggers a quantization.
    pub fn triggers_at(self, iter: u32) -> bool {
        match self {
            QuantSchedule::Never => false,
            QuantSchedule::Every(n) => n > 0 && iter > 0 && iter.is_multiple_of(n),
        }
    }

    /// Human-readable label matching the paper's column headers.
    pub fn label(self) -> String {
        match self {
            QuantSchedule::Never => "Never".to_string(),
            QuantSchedule::Every(1) => "Every Iter.".to_string(),
            QuantSchedule::Every(n) => format!("{n} Iter."),
        }
    }
}

/// Symmetric per-tensor INT8 quantization: returns the scale such that
/// `value ≈ round(value / scale) * scale` with the quantized integer
/// in `[-127, 127]`.
///
/// An all-zero tensor returns scale 1 (any scale reproduces zeros).
pub fn int8_scale(values: &[f32]) -> f32 {
    let max = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max == 0.0 {
        1.0
    } else {
        max / 127.0
    }
}

/// Quantizes a tensor to INT8 and immediately dequantizes in place —
/// the "fake quantization" used to measure quality impact.
pub fn fake_quantize_int8(values: &mut [f32]) {
    let scale = int8_scale(values);
    for v in values.iter_mut() {
        let q = (*v / scale).round().clamp(-127.0, 127.0);
        *v = q * scale;
    }
}

/// Applies fake INT8 quantization to every parameter group of a model
/// (grid and both MLPs, each with its own scale) — the benign
/// *post-training* quantization used by the inference datapath.
pub fn quantize_model_int8<E: Encoding>(model: &mut NerfModel<E>) {
    fake_quantize_int8(model.grid_mut().params_mut());
    fake_quantize_int8(model.density_mlp_mut().params_mut());
    fake_quantize_int8(model.color_mlp_mut().params_mut());
}

/// Quantizes *all* weights with a single shared INT8 scale — the
/// Table II protocol ("quantize all the weights after every N
/// iteration"). A shared scale is what a uniform INT8 training
/// datapath implies, and it is what makes frequent quantization
/// destructive: the MLP weights (order 1) set the scale, so the
/// hash-grid features (order 10⁻⁴ early in training, 10⁻² later)
/// round toward zero and the field repeatedly loses what it learned.
pub fn quantize_model_int8_shared_scale<E: Encoding>(model: &mut NerfModel<E>) {
    let max = model
        .grid()
        .params()
        .iter()
        .chain(model.density_mlp().params())
        .chain(model.color_mlp().params())
        .fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
    let quantize = |values: &mut [f32]| {
        for v in values.iter_mut() {
            *v = (*v / scale).round().clamp(-127.0, 127.0) * scale;
        }
    };
    quantize(model.grid_mut().params_mut());
    quantize(model.density_mlp_mut().params_mut());
    quantize(model.color_mlp_mut().params_mut());
}

/// Result of one quantized-training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantTrainResult {
    /// The schedule used.
    pub schedule: QuantSchedule,
    /// Test PSNR after training (dB).
    pub psnr: f64,
    /// Whether training diverged (non-finite or absurd loss).
    pub diverged: bool,
}

/// Trains `model` with weights fake-quantized to INT8 on `schedule`,
/// returning the final PSNR on `dataset` — one cell of Table II.
///
/// Divergence is detected from non-finite losses or a final loss
/// worse than the starting loss by a large factor.
pub fn train_with_quantization<E: Encoding, R: Rng>(
    model: NerfModel<E>,
    dataset: &Dataset,
    config: TrainerConfig,
    schedule: QuantSchedule,
    iterations: u32,
    rng: &mut R,
) -> QuantTrainResult {
    let mut trainer = Trainer::new(model, config);
    let mut diverged = false;
    let mut first_loss = None;
    for i in 0..iterations {
        let stats = trainer.step(dataset, rng);
        if first_loss.is_none() {
            first_loss = Some(stats.loss);
        }
        if !stats.loss.is_finite() {
            diverged = true;
            break;
        }
        if schedule.triggers_at(i + 1) {
            quantize_model_int8_shared_scale(trainer.model_mut());
        }
    }
    // A quantized-training run deploys the quantized weights — the
    // final model is evaluated as the INT8 datapath would hold it.
    if !matches!(schedule, QuantSchedule::Never) {
        quantize_model_int8_shared_scale(trainer.model_mut());
    }
    let psnr = if diverged { f64::NEG_INFINITY } else { trainer.evaluate_psnr(dataset) };
    // A run that ends no better than it started counts as
    // non-convergent for Table II purposes.
    if let Some(first) = first_loss {
        if psnr.is_finite() && !diverged {
            let final_mse = 10f64.powf(-psnr / 10.0);
            if final_mse > first {
                diverged = true;
            }
        }
    }
    QuantTrainResult { schedule, psnr, diverged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::HashGridConfig;
    use crate::model::ModelConfig;
    use crate::scenes::{ProceduralScene, SyntheticScene};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn schedule_triggering() {
        assert!(!QuantSchedule::Never.triggers_at(100));
        assert!(QuantSchedule::Every(10).triggers_at(10));
        assert!(QuantSchedule::Every(10).triggers_at(20));
        assert!(!QuantSchedule::Every(10).triggers_at(15));
        assert!(!QuantSchedule::Every(10).triggers_at(0));
        assert!(QuantSchedule::Every(1).triggers_at(1));
    }

    #[test]
    fn schedule_labels() {
        assert_eq!(QuantSchedule::Never.label(), "Never");
        assert_eq!(QuantSchedule::Every(1).label(), "Every Iter.");
        assert_eq!(QuantSchedule::Every(200).label(), "200 Iter.");
    }

    #[test]
    fn int8_scale_covers_range() {
        assert_eq!(int8_scale(&[0.0, 0.0]), 1.0);
        let s = int8_scale(&[-2.54, 1.0]);
        assert!((s - 2.54 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn fake_quantization_bounds_error() {
        let mut vals: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) / 37.0).collect();
        let orig = vals.clone();
        fake_quantize_int8(&mut vals);
        let scale = int8_scale(&orig);
        for (q, o) in vals.iter().zip(&orig) {
            assert!((q - o).abs() <= scale * 0.5 + 1e-6, "{q} vs {o}");
        }
        // Quantization is idempotent.
        let once = vals.clone();
        fake_quantize_int8(&mut vals);
        for (a, b) in once.iter().zip(&vals) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn quantizing_a_model_perturbs_but_preserves_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut model = NerfModel::new(
            ModelConfig {
                grid: HashGridConfig {
                    levels: 2,
                    features_per_level: 2,
                    log2_table_size: 8,
                    base_resolution: 4,
                    max_resolution: 8,
                },
                hidden_dim: 8,
                geo_feature_dim: 3,
            },
            &mut rng,
        );
        let before = model.param_count();
        quantize_model_int8(&mut model);
        assert_eq!(model.param_count(), before);
        assert!(model.grid().params().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn frequent_quantization_hurts_quality() {
        // A miniature version of Table II: training with per-iteration
        // INT8 quantization must end up no better than training with
        // final-only quantization.
        let scene = ProceduralScene::synthetic(SyntheticScene::Hotdog);
        let dataset = Dataset::from_scene(&scene, 4, 16, 0.9);
        let cfg = TrainerConfig {
            rays_per_batch: 48,
            occupancy_warmup: 1000, // keep the grid full for determinism
            ..TrainerConfig::default()
        };
        let model_cfg = ModelConfig {
            grid: HashGridConfig {
                levels: 3,
                features_per_level: 2,
                log2_table_size: 10,
                base_resolution: 4,
                max_resolution: 16,
            },
            hidden_dim: 16,
            geo_feature_dim: 3,
        };
        let iters = 80;
        let mut rng = SmallRng::seed_from_u64(7);
        let base_model = NerfModel::new(model_cfg, &mut rng);

        let mut rng_a = SmallRng::seed_from_u64(11);
        let never = train_with_quantization(
            base_model.clone(),
            &dataset,
            cfg,
            QuantSchedule::Never,
            iters,
            &mut rng_a,
        );
        let mut rng_b = SmallRng::seed_from_u64(11);
        let every = train_with_quantization(
            base_model,
            &dataset,
            cfg,
            QuantSchedule::Every(1),
            iters,
            &mut rng_b,
        );
        assert!(never.psnr.is_finite());
        assert!(
            every.diverged || every.psnr <= never.psnr + 0.2,
            "per-iteration quantization should not beat float training: {} vs {}",
            every.psnr,
            never.psnr
        );
    }
}
