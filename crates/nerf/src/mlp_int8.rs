//! Bit-accurate INT8 inference for the tiny MLPs — the integer half of
//! the accelerator's mixed-precision datapath (Technique T2-2).
//!
//! Training stays in floating point (Table II), but a *trained* MLP
//! can run inference in INT8: weights are quantized per layer with a
//! symmetric scale, activations are quantized dynamically per layer,
//! and products accumulate in `i32` exactly as an integer MAC array
//! would. [`QuantizedMlp::forward`] reproduces the arithmetic the
//! chip's MLP engine performs, so quality comparisons against the
//! float path measure the real deployment error.

use crate::mlp::{Activation, Mlp};

/// Widest layer for which the `i8 × i8 → i32` MAC accumulation is
/// provably exact. `fusion3d-lint`'s A4 audit re-derives the claim on
/// every run: `MAX_EXACT_MAC_WIDTH * 127 * 128 ≤ i32::MAX` (the worst
/// per-term magnitude is `|-128| · 127` — activations are clamped to
/// the symmetric code range but `i8` weights could in principle reach
/// `-128`). The accelerator's layers are 22–64 wide; 2^16 leaves four
/// orders of headroom while keeping the proof airtight.
pub const MAX_EXACT_MAC_WIDTH: usize = 1 << 16;

/// One INT8-quantized linear layer.
#[derive(Debug, Clone)]
struct QuantizedLayer {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out × in` INT8 weights.
    weights: Vec<i8>,
    /// Dequantization scale of the weights.
    weight_scale: f32,
    /// Biases stay in f32 (added after dequantization, as in the
    /// chip's accumulator path).
    biases: Vec<f32>,
    activation: Activation,
}

/// An MLP with INT8 weights and an integer MAC forward path.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLayer>,
    input_dim: usize,
}

impl QuantizedMlp {
    /// Quantizes a trained float MLP, layer by layer.
    pub fn quantize(mlp: &Mlp) -> Self {
        let dims = mlp.dims();
        let layers = (0..mlp.layer_count())
            .map(|l| {
                let (w, b) = mlp.layer_params(l);
                let max = w.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                // Symmetric quantization: scale by `max/127` and clamp
                // to ±127, deliberately wasting the `-128` code so the
                // representable range is sign-symmetric. An asymmetric
                // scheme would buy 0.4 % extra range on one side at
                // the price of a zero-point term in every MAC; the
                // chip's MAC array (and the A4 width audit above)
                // assume the symmetric form.
                let weight_scale = if max == 0.0 { 1.0 } else { max / 127.0 };
                QuantizedLayer {
                    in_dim: dims[l],
                    out_dim: dims[l + 1],
                    weights: w
                        .iter()
                        .map(|v| (v / weight_scale).round().clamp(-127.0, 127.0) as i8)
                        .collect(),
                    weight_scale,
                    biases: b.to_vec(),
                    activation: mlp.layer_activation(l),
                }
            })
            .collect();
        QuantizedMlp { layers, input_dim: mlp.input_dim() }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(self.input_dim, |l| l.out_dim)
    }

    /// Total INT8 weight bytes (the engine's weight-store footprint —
    /// a quarter of the float model's).
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len()).sum()
    }

    /// Runs inference through the integer MAC path.
    ///
    /// Per layer: activations quantize to INT8 with a dynamic
    /// symmetric scale, the `i8 × i8` products accumulate in `i32`,
    /// and the accumulator dequantizes through the product of the two
    /// scales before bias and activation. The accumulation is exact:
    /// `fusion3d-lint`'s A2 interval analysis proves from the
    /// [`MAX_EXACT_MAC_WIDTH`] preconditions below that `acc` stays
    /// inside `i32` — deleting either `debug_assert!` makes the lint
    /// gate fail.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_dim, "input size mismatch");
        // lint: allow(h2): int8 reference path favors clarity;
        // throughput numbers come from the f32 batched kernels
        let mut x = input.to_vec();
        for layer in &self.layers {
            debug_assert!(
                layer.in_dim <= MAX_EXACT_MAC_WIDTH && layer.out_dim <= MAX_EXACT_MAC_WIDTH,
                "layer wider than the proven-exact i32 MAC bound"
            );
            // Dynamic activation quantization.
            let max = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let x_scale = if max == 0.0 { 1.0 } else { max / 127.0 };
            let xq: Vec<i8> = x
                .iter()
                .map(|v| (v / x_scale).round().clamp(-127.0, 127.0) as i8)
                // lint: allow(h2): int8 reference path — see `x` above
                .collect();
            let dequant = layer.weight_scale * x_scale;
            let mut y = Vec::with_capacity(layer.out_dim);
            for o in 0..layer.out_dim {
                let row = &layer.weights[o * layer.in_dim..(o + 1) * layer.in_dim];
                let mut acc: i32 = 0;
                for i in 0..layer.in_dim {
                    acc += row[i] as i32 * xq[i] as i32;
                }
                let val = acc as f32 * dequant + layer.biases[o];
                // lint: allow(h2): int8 reference path — see `x` above
                y.push(layer.activation.apply(val));
            }
            x = y;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpCache;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn trained_like_mlp(seed: u64) -> Mlp {
        // A randomly-initialized MLP stands in for a trained one: the
        // quantization error bound depends only on weight/activation
        // magnitudes.
        let mut rng = SmallRng::seed_from_u64(seed);
        Mlp::new(&[22, 32, 32, 3], Activation::Relu, Activation::Sigmoid, &mut rng)
    }

    #[test]
    fn quantized_forward_tracks_float_forward() {
        let mlp = trained_like_mlp(1);
        let q = QuantizedMlp::quantize(&mlp);
        assert_eq!(q.input_dim(), 22);
        assert_eq!(q.output_dim(), 3);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut cache = MlpCache::new();
        let mut worst = 0.0f32;
        for _ in 0..64 {
            let input: Vec<f32> = (0..22).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let float_out = mlp.forward(&input, &mut cache).to_vec();
            let q_out = q.forward(&input);
            for (a, b) in float_out.iter().zip(&q_out) {
                worst = worst.max((a - b).abs());
            }
        }
        // Sigmoid outputs in [0,1]: INT8 keeps them within ~2%.
        assert!(worst < 0.02, "worst-case deviation {worst}");
    }

    #[test]
    fn weight_store_shrinks_4x() {
        let mlp = trained_like_mlp(3);
        let q = QuantizedMlp::quantize(&mlp);
        let float_weight_bytes: usize =
            (0..mlp.layer_count()).map(|l| mlp.layer_params(l).0.len() * 4).sum();
        assert_eq!(q.weight_bytes() * 4, float_weight_bytes);
    }

    #[test]
    fn zero_input_is_exact() {
        let mlp = trained_like_mlp(4);
        let q = QuantizedMlp::quantize(&mlp);
        let mut cache = MlpCache::new();
        let zeros = vec![0.0f32; 22];
        let float_out = mlp.forward(&zeros, &mut cache).to_vec();
        let q_out = q.forward(&zeros);
        // With zero input only biases flow; both paths agree to float
        // rounding.
        for (a, b) in float_out.iter().zip(&q_out) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn symmetric_quantization_pins_code_range() {
        // The quantizer clamps to ±127 — the `-128` code is
        // deliberately unrepresentable so the range is sign-symmetric
        // (no zero-point term in the MAC). Feed weights that would
        // saturate both rails and check no code escapes [-127, 127].
        let mlp = trained_like_mlp(6);
        let q = QuantizedMlp::quantize(&mlp);
        let codes: Vec<i8> = q.layers.iter().flat_map(|l| l.weights.iter().copied()).collect();
        assert!(!codes.is_empty());
        assert!(codes.iter().all(|&c| (-127..=127).contains(&c)), "asymmetric code emitted");
        // The extremal magnitude weight maps to exactly ±127.
        assert!(codes.iter().any(|&c| c == 127 || c == -127));
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn rejects_wrong_input() {
        let q = QuantizedMlp::quantize(&trained_like_mlp(5));
        q.forward(&[1.0]);
    }
}
