//! Procedural analytic scenes standing in for the NeRF-Synthetic and
//! NeRF-360 datasets.
//!
//! The paper's experiments depend on scene *statistics* — occupancy
//! ratio, ray hit rate, samples per ray — rather than photographic
//! content, so each named scene is modelled as a composition of signed
//! -distance primitives inside the normalized model cube, with the
//! compositions chosen so that the per-scene sparsity ordering matches
//! the paper's ablation spread (e.g. *mic* and *ficus* are sparse and
//! show the largest Stage-I speedups in Tab. VI; *ship* is dense and
//! shows the smallest). Ground-truth images are produced by sphere
//! tracing with headlight shading, giving exact, noise-free training
//! targets.

use crate::camera::Camera;
use crate::image::Image;
use crate::math::{Aabb, Ray, Vec3};
use crate::occupancy::OccupancyGrid;

/// The eight object-scale scenes mirroring NeRF-Synthetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SyntheticScene {
    /// A seat with four legs and a back.
    Chair,
    /// A kit of cylinders and a kick drum.
    Drums,
    /// A sparse plant: thin trunk with scattered leaf spheres.
    Ficus,
    /// Two sausages on a wide plate.
    Hotdog,
    /// A studded brick assembly.
    Lego,
    /// A grid of small material-test spheres.
    Materials,
    /// A microphone: small head on a thin stand (sparsest scene).
    Mic,
    /// A large hull with masts and superstructure (densest scene).
    Ship,
}

impl SyntheticScene {
    /// All eight scenes in the paper's table order.
    pub const ALL: [SyntheticScene; 8] = [
        SyntheticScene::Ship,
        SyntheticScene::Mic,
        SyntheticScene::Materials,
        SyntheticScene::Lego,
        SyntheticScene::Hotdog,
        SyntheticScene::Ficus,
        SyntheticScene::Drums,
        SyntheticScene::Chair,
    ];

    /// The scene's lowercase name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SyntheticScene::Chair => "chair",
            SyntheticScene::Drums => "drums",
            SyntheticScene::Ficus => "ficus",
            SyntheticScene::Hotdog => "hotdog",
            SyntheticScene::Lego => "lego",
            SyntheticScene::Materials => "materials",
            SyntheticScene::Mic => "mic",
            SyntheticScene::Ship => "ship",
        }
    }
}

/// The seven unbounded large-scale scenes mirroring NeRF-360.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LargeScene {
    /// A frame of thin tubes over grass (sparse foreground).
    Bicycle,
    /// A dense miniature tree on a table.
    Bonsai,
    /// A kitchen counter with utensils.
    Counter,
    /// A table among dense vegetation (densest; smallest speedup).
    Garden,
    /// A room corner with appliances.
    Kitchen,
    /// Furniture in a box-shaped room.
    Room,
    /// A single wide tree stump on the ground.
    Stump,
}

impl LargeScene {
    /// All seven scenes in the paper's table order.
    pub const ALL: [LargeScene; 7] = [
        LargeScene::Bicycle,
        LargeScene::Bonsai,
        LargeScene::Counter,
        LargeScene::Garden,
        LargeScene::Kitchen,
        LargeScene::Room,
        LargeScene::Stump,
    ];

    /// The scene's lowercase name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            LargeScene::Bicycle => "bicycle",
            LargeScene::Bonsai => "bonsai",
            LargeScene::Counter => "counter",
            LargeScene::Garden => "garden",
            LargeScene::Kitchen => "kitchen",
            LargeScene::Room => "room",
            LargeScene::Stump => "stump",
        }
    }
}

/// A signed-distance primitive with an albedo.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Shape {
    Sphere {
        center: Vec3,
        radius: f32,
    },
    Box {
        center: Vec3,
        half: Vec3,
    },
    /// Capsule along the segment `a`–`b` with the given radius.
    Capsule {
        a: Vec3,
        b: Vec3,
        radius: f32,
    },
    /// Torus in the XZ plane around `center`.
    Torus {
        center: Vec3,
        major: f32,
        minor: f32,
    },
}

impl Shape {
    fn sdf(&self, p: Vec3) -> f32 {
        match *self {
            Shape::Sphere { center, radius } => p.distance(center) - radius,
            Shape::Box { center, half } => {
                let q = (p - center).abs() - half;
                let outside = q.max(Vec3::ZERO).length();
                let inside = q.max_element().min(0.0);
                outside + inside
            }
            Shape::Capsule { a, b, radius } => {
                let pa = p - a;
                let ba = b - a;
                let h = (pa.dot(ba) / ba.length_squared()).clamp(0.0, 1.0);
                (pa - ba * h).length() - radius
            }
            Shape::Torus { center, major, minor } => {
                let q = p - center;
                let ring = Vec3::new(q.x, 0.0, q.z).length() - major;
                (ring * ring + q.y * q.y).sqrt() - minor
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Primitive {
    shape: Shape,
    albedo: Vec3,
}

/// A procedural scene: a union of SDF primitives inside the normalized
/// model cube, plus a background color.
#[derive(Debug, Clone)]
pub struct ProceduralScene {
    name: String,
    primitives: Vec<Primitive>,
    background: Vec3,
}

impl ProceduralScene {
    /// Builds the procedural stand-in for a NeRF-Synthetic scene.
    pub fn synthetic(scene: SyntheticScene) -> Self {
        let mut prims = Vec::new();
        let c = |x: f32, y: f32, z: f32| Vec3::new(x, y, z);
        match scene {
            SyntheticScene::Mic => {
                // Sparsest: small head on a thin stand.
                prims.push(Primitive {
                    shape: Shape::Sphere { center: c(0.5, 0.68, 0.5), radius: 0.06 },
                    albedo: c(0.75, 0.75, 0.8),
                });
                prims.push(Primitive {
                    shape: Shape::Capsule {
                        a: c(0.5, 0.2, 0.5),
                        b: c(0.5, 0.62, 0.5),
                        radius: 0.015,
                    },
                    albedo: c(0.25, 0.25, 0.28),
                });
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.5, 0.19, 0.5), half: c(0.07, 0.01, 0.07) },
                    albedo: c(0.2, 0.2, 0.22),
                });
            }
            SyntheticScene::Ficus => {
                // Thin trunk plus scattered leaf spheres.
                prims.push(Primitive {
                    shape: Shape::Capsule {
                        a: c(0.5, 0.18, 0.5),
                        b: c(0.5, 0.55, 0.5),
                        radius: 0.02,
                    },
                    albedo: c(0.45, 0.3, 0.15),
                });
                let leaves = [
                    (0.42, 0.62, 0.45),
                    (0.58, 0.66, 0.52),
                    (0.5, 0.72, 0.58),
                    (0.45, 0.7, 0.6),
                    (0.56, 0.6, 0.42),
                    (0.38, 0.58, 0.55),
                    (0.62, 0.7, 0.45),
                ];
                for &(x, y, z) in &leaves {
                    prims.push(Primitive {
                        shape: Shape::Sphere { center: c(x, y, z), radius: 0.045 },
                        albedo: c(0.15, 0.55, 0.2),
                    });
                }
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.5, 0.15, 0.5), half: c(0.06, 0.03, 0.06) },
                    albedo: c(0.6, 0.35, 0.2),
                });
            }
            SyntheticScene::Drums => {
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.5, 0.3, 0.5), half: c(0.09, 0.07, 0.09) },
                    albedo: c(0.7, 0.15, 0.15),
                });
                for (i, &(x, z)) in
                    [(0.35, 0.4), (0.65, 0.4), (0.38, 0.62), (0.62, 0.62)].iter().enumerate()
                {
                    prims.push(Primitive {
                        shape: Shape::Torus {
                            center: c(x, 0.42 + 0.02 * i as f32, z),
                            major: 0.05,
                            minor: 0.02,
                        },
                        albedo: c(0.8, 0.75, 0.6),
                    });
                }
                prims.push(Primitive {
                    shape: Shape::Sphere { center: c(0.5, 0.52, 0.42), radius: 0.05 },
                    albedo: c(0.85, 0.8, 0.3),
                });
            }
            SyntheticScene::Materials => {
                // A 3x3 grid of small spheres on a thin slab.
                for i in 0..3 {
                    for j in 0..3 {
                        let hue = (i * 3 + j) as f32 / 9.0;
                        prims.push(Primitive {
                            shape: Shape::Sphere {
                                center: c(0.3 + 0.2 * i as f32, 0.34, 0.3 + 0.2 * j as f32),
                                radius: 0.055,
                            },
                            albedo: c(0.3 + 0.7 * hue, 0.8 - 0.6 * hue, 0.4),
                        });
                    }
                }
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.5, 0.26, 0.5), half: c(0.32, 0.015, 0.32) },
                    albedo: c(0.4, 0.4, 0.45),
                });
            }
            SyntheticScene::Lego => {
                // A studded brick assembly.
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.5, 0.34, 0.5), half: c(0.18, 0.05, 0.12) },
                    albedo: c(0.9, 0.7, 0.1),
                });
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.42, 0.46, 0.5), half: c(0.1, 0.07, 0.1) },
                    albedo: c(0.85, 0.6, 0.1),
                });
                prims.push(Primitive {
                    shape: Shape::Capsule {
                        a: c(0.62, 0.4, 0.5),
                        b: c(0.72, 0.58, 0.5),
                        radius: 0.03,
                    },
                    albedo: c(0.5, 0.5, 0.5),
                });
                for k in 0..4 {
                    prims.push(Primitive {
                        shape: Shape::Sphere {
                            center: c(0.36 + 0.09 * k as f32, 0.41, 0.45),
                            radius: 0.02,
                        },
                        albedo: c(0.9, 0.7, 0.1),
                    });
                }
            }
            SyntheticScene::Hotdog => {
                for &z in &[0.46, 0.54] {
                    prims.push(Primitive {
                        shape: Shape::Capsule {
                            a: c(0.32, 0.35, z),
                            b: c(0.68, 0.35, z),
                            radius: 0.035,
                        },
                        albedo: c(0.75, 0.3, 0.12),
                    });
                }
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.5, 0.29, 0.5), half: c(0.26, 0.02, 0.17) },
                    albedo: c(0.92, 0.88, 0.8),
                });
            }
            SyntheticScene::Chair => {
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.5, 0.38, 0.5), half: c(0.13, 0.02, 0.13) },
                    albedo: c(0.6, 0.4, 0.25),
                });
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.5, 0.52, 0.615), half: c(0.13, 0.13, 0.015) },
                    albedo: c(0.6, 0.4, 0.25),
                });
                for &(x, z) in &[(0.39, 0.39), (0.61, 0.39), (0.39, 0.61), (0.61, 0.61)] {
                    prims.push(Primitive {
                        shape: Shape::Capsule { a: c(x, 0.2, z), b: c(x, 0.37, z), radius: 0.015 },
                        albedo: c(0.45, 0.3, 0.2),
                    });
                }
            }
            SyntheticScene::Ship => {
                // Densest: wide hull, deck, masts, and superstructure.
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.5, 0.32, 0.5), half: c(0.3, 0.08, 0.16) },
                    albedo: c(0.35, 0.22, 0.12),
                });
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.5, 0.42, 0.5), half: c(0.26, 0.025, 0.13) },
                    albedo: c(0.5, 0.34, 0.18),
                });
                for &x in &[0.35, 0.5, 0.65] {
                    prims.push(Primitive {
                        shape: Shape::Capsule {
                            a: c(x, 0.44, 0.5),
                            b: c(x, 0.74, 0.5),
                            radius: 0.015,
                        },
                        albedo: c(0.3, 0.2, 0.12),
                    });
                    prims.push(Primitive {
                        shape: Shape::Box { center: c(x, 0.62, 0.5), half: c(0.07, 0.045, 0.008) },
                        albedo: c(0.9, 0.9, 0.85),
                    });
                }
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.6, 0.48, 0.5), half: c(0.07, 0.04, 0.07) },
                    albedo: c(0.55, 0.4, 0.25),
                });
                // Surrounding "sea" slab makes the scene dense.
                prims.push(Primitive {
                    shape: Shape::Box { center: c(0.5, 0.2, 0.5), half: c(0.42, 0.035, 0.42) },
                    albedo: c(0.1, 0.25, 0.4),
                });
            }
        }
        ProceduralScene { name: scene.name().to_string(), primitives: prims, background: Vec3::ONE }
    }

    /// Builds the procedural stand-in for a NeRF-360 large scene.
    ///
    /// Large scenes include a ground slab and peripheral structure, so
    /// their occupancy is substantially higher than the object scenes.
    pub fn large(scene: LargeScene) -> Self {
        let mut s = match scene {
            LargeScene::Bicycle => ProceduralScene::synthetic(SyntheticScene::Ficus),
            LargeScene::Bonsai => ProceduralScene::synthetic(SyntheticScene::Materials),
            LargeScene::Counter => ProceduralScene::synthetic(SyntheticScene::Lego),
            LargeScene::Garden => ProceduralScene::synthetic(SyntheticScene::Ship),
            LargeScene::Kitchen => ProceduralScene::synthetic(SyntheticScene::Hotdog),
            LargeScene::Room => ProceduralScene::synthetic(SyntheticScene::Chair),
            LargeScene::Stump => ProceduralScene::synthetic(SyntheticScene::Drums),
        };
        s.name = scene.name().to_string();
        // Ground plane: its footprint varies with the scene — bicycle
        // and stump are sparse foregrounds over patchy ground, while
        // garden and the indoor scenes have dense full-extent floors.
        let ground_half = match scene {
            LargeScene::Bicycle => 0.20,
            LargeScene::Stump => 0.26,
            LargeScene::Bonsai => 0.30,
            LargeScene::Counter => 0.36,
            LargeScene::Kitchen => 0.42,
            LargeScene::Room => 0.45,
            LargeScene::Garden => 0.48,
        };
        s.primitives.push(Primitive {
            shape: Shape::Box {
                center: Vec3::new(0.5, 0.1, 0.5),
                half: Vec3::new(ground_half, 0.04, ground_half),
            },
            albedo: Vec3::new(0.35, 0.42, 0.25),
        });
        // Peripheral structure (walls / vegetation) raising occupancy.
        let extra: &[(f32, f32, f32, f32)] = match scene {
            LargeScene::Garden => &[
                (0.12, 0.3, 0.15, 0.12),
                (0.88, 0.3, 0.2, 0.13),
                (0.15, 0.32, 0.85, 0.14),
                (0.85, 0.28, 0.85, 0.12),
                (0.5, 0.3, 0.12, 0.1),
            ],
            LargeScene::Room | LargeScene::Kitchen => {
                &[(0.08, 0.4, 0.5, 0.1), (0.92, 0.4, 0.5, 0.1)]
            }
            LargeScene::Counter => &[(0.15, 0.35, 0.2, 0.09), (0.8, 0.3, 0.8, 0.08)],
            LargeScene::Bicycle => &[],
            _ => &[(0.2, 0.28, 0.8, 0.06)],
        };
        for &(x, y, z, r) in extra {
            s.primitives.push(Primitive {
                shape: Shape::Sphere { center: Vec3::new(x, y, z), radius: r },
                albedo: Vec3::new(0.3, 0.5, 0.3),
            });
        }
        s.background = Vec3::new(0.55, 0.7, 0.9);
        s
    }

    /// The scene name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scene's background color.
    pub fn background(&self) -> Vec3 {
        self.background
    }

    /// Number of SDF primitives.
    pub fn primitive_count(&self) -> usize {
        self.primitives.len()
    }

    /// Signed distance to the nearest surface and that primitive's
    /// albedo.
    pub fn sdf(&self, p: Vec3) -> (f32, Vec3) {
        let mut best = (f32::INFINITY, Vec3::ONE);
        for prim in &self.primitives {
            let d = prim.shape.sdf(p);
            if d < best.0 {
                best = (d, prim.albedo);
            }
        }
        best
    }

    /// Whether `p` lies within `margin` of any surface (interior
    /// counts) — the ground-truth occupancy oracle.
    pub fn occupied(&self, p: Vec3, margin: f32) -> bool {
        self.sdf(p).0 < margin
    }

    /// Outward surface normal by central differences.
    pub fn normal(&self, p: Vec3) -> Vec3 {
        let h = 1e-3;
        let d = |q: Vec3| self.sdf(q).0;
        Vec3::new(
            d(p + Vec3::X * h) - d(p - Vec3::X * h),
            d(p + Vec3::Y * h) - d(p - Vec3::Y * h),
            d(p + Vec3::Z * h) - d(p - Vec3::Z * h),
        )
        .try_normalize()
        .unwrap_or(Vec3::Y)
    }

    /// Sphere-traces a ray; returns the hit parameter and shaded color,
    /// or `None` when the ray escapes the model cube.
    pub fn trace(&self, ray: &Ray) -> Option<(f32, Vec3)> {
        let span = Aabb::unit_cube().intersect_general(ray)?;
        let mut t = span.t_near.max(0.0) + 1e-4;
        for _ in 0..192 {
            if t > span.t_far {
                return None;
            }
            let p = ray.at(t);
            let (d, albedo) = self.sdf(p);
            if d < 1e-3 {
                let n = self.normal(p);
                let l = -ray.direction;
                let diffuse = 0.35 + 0.65 * n.dot(l).max(0.0);
                return Some((t, (albedo * diffuse).clamp(0.0, 1.0)));
            }
            t += d.max(2e-3);
        }
        None
    }

    /// Renders the ground-truth image seen by `camera`.
    pub fn render(&self, camera: &Camera) -> Image {
        let mut img = Image::new(camera.width(), camera.height());
        for (x, y, ray) in camera.rays() {
            let color = self.trace(&ray).map_or(self.background, |(_, c)| c);
            img.set(x, y, color);
        }
        img
    }

    /// Builds the ground-truth occupancy grid for this scene.
    pub fn occupancy_grid(&self, resolution: u32) -> OccupancyGrid {
        debug_assert!(resolution > 0, "occupancy grid needs at least one cell");
        let margin = 1.5 / resolution as f32;
        OccupancyGrid::from_oracle(resolution, 0.0, |p| self.occupied(p, margin))
    }

    /// Fraction of the model cube within `margin` of geometry, via a
    /// deterministic lattice probe at the given resolution.
    pub fn occupancy_ratio(&self, resolution: u32, margin: f32) -> f64 {
        let mut hits = 0u64;
        let n = resolution as usize;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let p = Vec3::new(
                        (x as f32 + 0.5) / n as f32,
                        (y as f32 + 0.5) / n as f32,
                        (z as f32 + 0.5) / n as f32,
                    );
                    if self.occupied(p, margin) {
                        hits += 1;
                    }
                }
            }
        }
        hits as f64 / (n * n * n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::{orbit_poses, Camera};

    #[test]
    fn all_synthetic_scenes_have_geometry() {
        for kind in SyntheticScene::ALL {
            let scene = ProceduralScene::synthetic(kind);
            assert!(scene.primitive_count() > 0, "{} empty", scene.name());
            let ratio = scene.occupancy_ratio(16, 0.05);
            assert!(ratio > 0.0 && ratio < 0.6, "{}: occupancy {ratio} out of range", scene.name());
        }
    }

    #[test]
    fn mic_is_sparser_than_ship() {
        // The paper's T1 ablation (Tab. VI) shows mic with the largest
        // speedup (20.2x) and ship with the smallest (5.4x); the
        // corresponding scene statistic is sparsity.
        let mic = ProceduralScene::synthetic(SyntheticScene::Mic).occupancy_ratio(16, 0.03);
        let ship = ProceduralScene::synthetic(SyntheticScene::Ship).occupancy_ratio(16, 0.03);
        assert!(mic * 2.0 < ship, "mic ({mic}) should be far sparser than ship ({ship})");
    }

    #[test]
    fn large_scenes_are_denser_than_their_object_counterparts() {
        let room = ProceduralScene::large(LargeScene::Room).occupancy_ratio(12, 0.03);
        let chair = ProceduralScene::synthetic(SyntheticScene::Chair).occupancy_ratio(12, 0.03);
        assert!(room > chair, "room {room} vs chair {chair}");
    }

    #[test]
    fn sdf_sign_convention() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Mic);
        // Center of the mic head is inside.
        let (inside, _) = scene.sdf(Vec3::new(0.5, 0.68, 0.5));
        assert!(inside < 0.0);
        // A corner of the cube is far outside.
        let (outside, _) = scene.sdf(Vec3::new(0.02, 0.95, 0.02));
        assert!(outside > 0.1);
    }

    #[test]
    fn trace_hits_geometry_and_misses_sky() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Chair);
        // Aim at the seat center.
        let hit = scene.trace(&Ray::new(
            Vec3::new(0.5, 0.45, -1.0),
            (Vec3::new(0.5, 0.4, 0.5) - Vec3::new(0.5, 0.45, -1.0)).normalize(),
        ));
        assert!(hit.is_some());
        let (t, color) = hit.unwrap();
        assert!(t > 0.0);
        assert!(color.is_finite());
        // Aim above everything.
        let miss = scene.trace(&Ray::new(Vec3::new(0.5, 0.95, -1.0), Vec3::Z));
        assert!(miss.is_none());
    }

    #[test]
    fn normals_point_outward() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Mic);
        // Just above the mic head sphere, normal should point up-ish.
        let surface = Vec3::new(0.5, 0.68 + 0.06, 0.5);
        let n = scene.normal(surface);
        assert!(n.y > 0.8, "normal {n:?}");
    }

    #[test]
    fn render_produces_foreground_and_background() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Hotdog);
        let pose = orbit_poses(Vec3::new(0.5, 0.35, 0.5), 1.1, 4)[0];
        let cam = Camera::new(pose, 32, 32, 0.8);
        let img = scene.render(&cam);
        let bg = scene.background();
        let fg_pixels = img.pixels().iter().filter(|&&p| p != bg).count();
        assert!(fg_pixels > 10, "some pixels hit geometry: {fg_pixels}");
        assert!(fg_pixels < img.pixel_count(), "some pixels see the background");
    }

    #[test]
    fn occupancy_grid_covers_geometry() {
        let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
        let grid = scene.occupancy_grid(16);
        // The brick center is occupied.
        assert!(grid.is_occupied(Vec3::new(0.5, 0.34, 0.5)));
        // Empty upper corner is not.
        assert!(!grid.is_occupied(Vec3::new(0.05, 0.92, 0.05)));
        let r = grid.occupancy_ratio();
        assert!(r > 0.005 && r < 0.5, "ratio {r}");
    }

    #[test]
    fn scene_names_match_paper_tables() {
        assert_eq!(SyntheticScene::ALL.len(), 8);
        assert_eq!(LargeScene::ALL.len(), 7);
        assert_eq!(SyntheticScene::Ship.name(), "ship");
        assert_eq!(LargeScene::Garden.name(), "garden");
        let names: Vec<&str> = LargeScene::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["bicycle", "bonsai", "counter", "garden", "kitchen", "room", "stump"]
        );
    }
}
