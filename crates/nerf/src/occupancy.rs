//! Occupancy grid: the NeRF pipeline's built-in gating function.
//!
//! The occupancy grid stores one bit per cell of a coarse grid over
//! the normalized model cube. Stage I consults it to discard sample
//! points in empty space before Stages II/III ever see them. The paper
//! further observes (Sec. II-A, V-A) that the grid acts as a natural
//! *Mixture-of-Experts gating function* in the multi-chip system: a
//! chip whose expert has an empty cell contributes nothing for samples
//! in that cell, so expert outputs can be fused by simple addition.

use crate::math::Vec3;
use rand::Rng;

/// A cubical occupancy grid over `[0,1]^3`.
#[derive(Debug, Clone)]
pub struct OccupancyGrid {
    resolution: u32,
    /// One bit per cell, X-major within Y within Z.
    bits: Vec<u64>,
    /// Exponential-moving-average density estimate per cell, updated
    /// by [`OccupancyGrid::update`].
    densities: Vec<f32>,
    threshold: f32,
}

impl OccupancyGrid {
    /// Creates an all-empty grid with `resolution^3` cells.
    ///
    /// `threshold` is the density above which a cell counts as
    /// occupied (Instant-NGP uses ~0.01 × grid diagonal steps).
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero or the threshold is negative.
    pub fn new(resolution: u32, threshold: f32) -> Self {
        assert!(resolution > 0, "occupancy resolution must be positive");
        assert!(threshold >= 0.0, "occupancy threshold must be non-negative");
        let cells = (resolution as usize).pow(3);
        OccupancyGrid {
            resolution,
            bits: vec![0; cells.div_ceil(64)],
            densities: vec![0.0; cells],
            threshold,
        }
    }

    /// Grid resolution per axis.
    #[inline]
    pub fn resolution(&self) -> u32 {
        self.resolution
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        (self.resolution as usize).pow(3)
    }

    /// The occupancy threshold.
    #[inline]
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The linear index of the cell containing `p`, or `None` when `p`
    /// lies outside `[0,1]^3`.
    #[inline]
    pub fn cell_index(&self, p: Vec3) -> Option<usize> {
        if !(0.0..=1.0).contains(&p.x) || !(0.0..=1.0).contains(&p.y) || !(0.0..=1.0).contains(&p.z)
        {
            return None;
        }
        let r = self.resolution;
        let to_cell = |v: f32| ((v * r as f32) as u32).min(r - 1);
        let (x, y, z) = (to_cell(p.x), to_cell(p.y), to_cell(p.z));
        Some((x + r * (y + r * z)) as usize)
    }

    /// The center of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn cell_center(&self, index: usize) -> Vec3 {
        assert!(index < self.cell_count(), "cell index out of range");
        let r = self.resolution as usize;
        let x = index % r;
        let y = (index / r) % r;
        let z = index / (r * r);
        let inv = 1.0 / self.resolution as f32;
        Vec3::new((x as f32 + 0.5) * inv, (y as f32 + 0.5) * inv, (z as f32 + 0.5) * inv)
    }

    /// The side length of a cell.
    #[inline]
    pub fn cell_size(&self) -> f32 {
        1.0 / self.resolution as f32
    }

    /// Whether cell `index` is occupied.
    #[inline]
    pub fn is_cell_occupied(&self, index: usize) -> bool {
        debug_assert!(index / 64 < self.bits.len(), "cell index out of range");
        (self.bits[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Whether the cell containing `p` is occupied. Points outside the
    /// model cube are never occupied.
    #[inline]
    pub fn is_occupied(&self, p: Vec3) -> bool {
        self.cell_index(p).is_some_and(|i| self.is_cell_occupied(i))
    }

    /// Sets the occupancy bit for a cell.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn set_cell(&mut self, index: usize, occupied: bool) {
        assert!(index < self.cell_count(), "cell index out of range");
        if occupied {
            self.bits[index / 64] |= 1 << (index % 64);
        } else {
            self.bits[index / 64] &= !(1 << (index % 64));
        }
    }

    /// Marks every cell occupied — the state at the start of training,
    /// before any density estimates exist.
    pub fn fill(&mut self) {
        let cells = self.cell_count();
        for (i, word) in self.bits.iter_mut().enumerate() {
            let remaining = cells - (i * 64).min(cells);
            *word = if remaining >= 64 { u64::MAX } else { (1u64 << remaining) - 1 };
        }
    }

    /// Fraction of cells currently occupied.
    pub fn occupancy_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.cell_count() as f64
    }

    /// Iterates over the indices of occupied cells.
    pub fn occupied_cells(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.cell_count()).filter(move |&i| self.is_cell_occupied(i))
    }

    /// Refreshes the grid from a density field: each cell's EMA
    /// density is decayed by `decay` and raised to the density sampled
    /// at a jittered point inside the cell, then thresholded. This is
    /// Instant-NGP's periodic occupancy-grid update (run every few
    /// training iterations).
    pub fn update<F, R>(&mut self, density: F, decay: f32, rng: &mut R)
    where
        F: Fn(Vec3) -> f32,
        R: Rng,
    {
        let size = self.cell_size();
        for i in 0..self.cell_count() {
            let jitter = Vec3::new(
                rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
            ) * size;
            let p = (self.cell_center(i) + jitter).clamp(0.0, 1.0);
            let d = density(p);
            self.densities[i] = (self.densities[i] * decay).max(d);
            self.set_cell(i, self.densities[i] > self.threshold);
        }
    }

    /// The ray parameter at which a ray leaves the grid cell
    /// containing `ray.at(t)`, used by the sampler to skip across
    /// empty cells in one step (DDA traversal).
    ///
    /// Returns a value strictly greater than `t`. If the point lies
    /// outside the grid or the direction is zero, returns `t` plus one
    /// cell size as a safe fallback.
    pub fn cell_exit_t(&self, ray: &crate::math::Ray, t: f32) -> f32 {
        let p = ray.at(t);
        let size = self.cell_size();
        if self.cell_index(p).is_none() {
            return t + size;
        }
        let r = self.resolution as f32;
        let mut exit = f32::INFINITY;
        for axis in 0..3 {
            let d = ray.direction[axis];
            if d == 0.0 {
                continue;
            }
            let coord = p[axis] * r;
            let boundary = if d > 0.0 { coord.floor() + 1.0 } else { coord.ceil() - 1.0 };
            let t_axis = t + (boundary / r - p[axis]) / d;
            if t_axis > t {
                exit = exit.min(t_axis);
            }
        }
        if exit.is_finite() && exit > t {
            exit
        } else {
            t + size
        }
    }

    /// Builds the grid directly from a boolean occupancy oracle, used
    /// to derive ground-truth grids from procedural scenes. Each cell
    /// is tested at its center and the eight half-offset corners.
    pub fn from_oracle<F>(resolution: u32, threshold: f32, occupied: F) -> Self
    where
        F: Fn(Vec3) -> bool,
    {
        let mut grid = OccupancyGrid::new(resolution, threshold);
        let size = grid.cell_size();
        for i in 0..grid.cell_count() {
            let c = grid.cell_center(i);
            let hit = occupied(c)
                || (0..8).any(|k| {
                    let off = Vec3::new(
                        if k & 1 == 0 { -0.45 } else { 0.45 },
                        if k & 2 == 0 { -0.45 } else { 0.45 },
                        if k & 4 == 0 { -0.45 } else { 0.45 },
                    ) * size;
                    occupied((c + off).clamp(0.0, 1.0))
                });
            grid.set_cell(i, hit);
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn new_grid_is_empty() {
        let g = OccupancyGrid::new(8, 0.01);
        assert_eq!(g.cell_count(), 512);
        assert_eq!(g.occupancy_ratio(), 0.0);
        assert!(!g.is_occupied(Vec3::splat(0.5)));
    }

    #[test]
    fn fill_sets_every_cell() {
        let mut g = OccupancyGrid::new(5, 0.01); // 125 cells, not a multiple of 64
        g.fill();
        assert_eq!(g.occupancy_ratio(), 1.0);
        assert_eq!(g.occupied_cells().count(), 125);
    }

    #[test]
    fn set_and_query_round_trip() {
        let mut g = OccupancyGrid::new(4, 0.0);
        let p = Vec3::new(0.9, 0.1, 0.4);
        let idx = g.cell_index(p).unwrap();
        assert!(!g.is_occupied(p));
        g.set_cell(idx, true);
        assert!(g.is_occupied(p));
        g.set_cell(idx, false);
        assert!(!g.is_occupied(p));
    }

    #[test]
    fn points_outside_cube_are_never_occupied() {
        let mut g = OccupancyGrid::new(4, 0.0);
        g.fill();
        assert!(g.cell_index(Vec3::new(-0.1, 0.5, 0.5)).is_none());
        assert!(g.cell_index(Vec3::new(0.5, 1.1, 0.5)).is_none());
        assert!(!g.is_occupied(Vec3::splat(2.0)));
        // Boundary points belong to the cube.
        assert!(g.is_occupied(Vec3::ZERO));
        assert!(g.is_occupied(Vec3::ONE));
    }

    #[test]
    fn cell_center_round_trips_through_index() {
        let g = OccupancyGrid::new(6, 0.0);
        for i in [0, 1, 7, 35, 100, 215] {
            let c = g.cell_center(i);
            assert_eq!(g.cell_index(c), Some(i), "center of cell {i} maps back");
        }
    }

    #[test]
    fn update_marks_dense_region() {
        let mut g = OccupancyGrid::new(8, 0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        // Density 10 inside a central ball of radius 0.25, zero outside.
        let density = |p: Vec3| {
            if p.distance(Vec3::splat(0.5)) < 0.25 {
                10.0
            } else {
                0.0
            }
        };
        g.update(density, 0.95, &mut rng);
        assert!(g.is_occupied(Vec3::splat(0.5)), "ball center occupied");
        assert!(!g.is_occupied(Vec3::new(0.05, 0.05, 0.05)), "corner empty");
        let ratio = g.occupancy_ratio();
        assert!(ratio > 0.01 && ratio < 0.35, "ratio {ratio} out of range");
    }

    #[test]
    fn update_decay_eventually_clears_cells() {
        let mut g = OccupancyGrid::new(4, 0.5);
        let mut rng = SmallRng::seed_from_u64(2);
        g.update(|_| 10.0, 0.5, &mut rng);
        assert_eq!(g.occupancy_ratio(), 1.0);
        // Density source disappears; EMA decays below threshold.
        for _ in 0..10 {
            g.update(|_| 0.0, 0.5, &mut rng);
        }
        assert_eq!(g.occupancy_ratio(), 0.0);
    }

    #[test]
    fn oracle_construction() {
        let g = OccupancyGrid::from_oracle(16, 0.0, |p| p.x < 0.5);
        assert!(g.is_occupied(Vec3::new(0.1, 0.5, 0.5)));
        assert!(!g.is_occupied(Vec3::new(0.9, 0.5, 0.5)));
        // Roughly half the cells are occupied (boundary cells inflate
        // the count slightly because corners are also tested).
        let r = g.occupancy_ratio();
        assert!(r > 0.45 && r < 0.65, "ratio {r}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_cell_rejects_out_of_range() {
        let mut g = OccupancyGrid::new(2, 0.0);
        g.set_cell(8, true);
    }
}
