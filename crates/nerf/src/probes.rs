//! Hot-path probe counters (`obs` feature only).
//!
//! The batched kernels are the performance-critical core of the crate,
//! so their instrumentation follows two rules:
//!
//! 1. **Compile-out-able** — every increment sits behind the
//!    `crate::probe!` macro, which expands to nothing without the `obs`
//!    feature. The default build carries zero probe code; a regression
//!    test compiles both ways and the perf harness holds the default
//!    build to a 0% delta.
//! 2. **Once per batch** — probes count at batch/ray granularity
//!    (a handful of integer adds per `forward_batch` call), never
//!    inside per-sample or per-corner loops, keeping the probed build
//!    within 1% of the unprobed one.
//!
//! Counters accumulate in the worker's [`crate::batch::KernelScratch`]
//! and are surfaced by taking per-chunk deltas that merge in chunk
//! order ([`crate::pipeline::render_image_probed`]), so recorded totals
//! are independent of the thread count.

/// Plain-integer hot-path counters carried by a worker's kernel
/// scratch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounters {
    /// Batched encoding invocations (one per model forward).
    pub encode_batches: u64,
    /// Points encoded across those batches.
    pub encode_points: u64,
    /// Point×level gather groups that hit *dense* levels (every corner
    /// lands in a contiguous per-level row — the local case).
    pub gathers_dense: u64,
    /// Point×level gather groups that hit *hashed* levels (corners
    /// scatter across the table — the conflict-prone case the paper's
    /// two-level tiling targets).
    pub gathers_hashed: u64,
    /// Batched MLP forward passes (density + color counted once).
    pub mlp_forward_batches: u64,
    /// Samples through the MLP forward path.
    pub mlp_forward_samples: u64,
    /// Batched backward passes (training).
    pub mlp_backward_batches: u64,
    /// Samples through the backward path.
    pub mlp_backward_samples: u64,
    /// Rays shaded end-to-end.
    pub rays: u64,
    /// Rays whose compositing saturated (final transmittance below the
    /// early-stop threshold) — the early-termination opportunity.
    pub rays_saturated: u64,
}

impl ProbeCounters {
    /// Counter-wise difference `self − before`; used to extract one
    /// chunk's contribution from a worker's running totals.
    #[must_use]
    pub fn diff(&self, before: &ProbeCounters) -> ProbeCounters {
        ProbeCounters {
            encode_batches: self.encode_batches - before.encode_batches,
            encode_points: self.encode_points - before.encode_points,
            gathers_dense: self.gathers_dense - before.gathers_dense,
            gathers_hashed: self.gathers_hashed - before.gathers_hashed,
            mlp_forward_batches: self.mlp_forward_batches - before.mlp_forward_batches,
            mlp_forward_samples: self.mlp_forward_samples - before.mlp_forward_samples,
            mlp_backward_batches: self.mlp_backward_batches - before.mlp_backward_batches,
            mlp_backward_samples: self.mlp_backward_samples - before.mlp_backward_samples,
            rays: self.rays - before.rays,
            rays_saturated: self.rays_saturated - before.rays_saturated,
        }
    }

    /// Counter-wise accumulation.
    pub fn add(&mut self, other: &ProbeCounters) {
        self.encode_batches += other.encode_batches;
        self.encode_points += other.encode_points;
        self.gathers_dense += other.gathers_dense;
        self.gathers_hashed += other.gathers_hashed;
        self.mlp_forward_batches += other.mlp_forward_batches;
        self.mlp_forward_samples += other.mlp_forward_samples;
        self.mlp_backward_batches += other.mlp_backward_batches;
        self.mlp_backward_samples += other.mlp_backward_samples;
        self.rays += other.rays;
        self.rays_saturated += other.rays_saturated;
    }

    /// Fraction of gather groups hitting hashed (scatter-prone)
    /// levels — the hash-grid gather-locality figure.
    pub fn hashed_gather_fraction(&self) -> f64 {
        let total = self.gathers_dense + self.gathers_hashed;
        if total == 0 {
            0.0
        } else {
            self.gathers_hashed as f64 / total as f64
        }
    }

    /// Record the counters under the `kernel.` prefix.
    pub fn record(&self, metrics: &mut fusion3d_obs::Metrics) {
        metrics.counter_add("kernel.encode.batches", "batches", self.encode_batches);
        metrics.counter_add("kernel.encode.points", "points", self.encode_points);
        metrics.counter_add("kernel.gathers.dense", "groups", self.gathers_dense);
        metrics.counter_add("kernel.gathers.hashed", "groups", self.gathers_hashed);
        metrics.gauge_set("kernel.gathers.hashed_fraction", "ratio", self.hashed_gather_fraction());
        metrics.counter_add("kernel.mlp.forward_batches", "batches", self.mlp_forward_batches);
        metrics.counter_add("kernel.mlp.forward_samples", "samples", self.mlp_forward_samples);
        metrics.counter_add("kernel.mlp.backward_batches", "batches", self.mlp_backward_batches);
        metrics.counter_add("kernel.mlp.backward_samples", "samples", self.mlp_backward_samples);
        metrics.counter_add("kernel.rays", "rays", self.rays);
        metrics.counter_add("kernel.rays_saturated", "rays", self.rays_saturated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_and_add_round_trip() {
        let mut a = ProbeCounters::default();
        a.encode_batches = 3;
        a.encode_points = 90;
        a.gathers_hashed = 40;
        let mut b = a;
        b.encode_batches = 5;
        b.encode_points = 150;
        b.gathers_hashed = 70;
        let delta = b.diff(&a);
        assert_eq!(delta.encode_batches, 2);
        assert_eq!(delta.encode_points, 60);
        let mut total = a;
        total.add(&delta);
        assert_eq!(total, b);
    }

    #[test]
    fn hashed_fraction_handles_empty() {
        assert_eq!(ProbeCounters::default().hashed_gather_fraction(), 0.0);
        let mut c = ProbeCounters::default();
        c.gathers_dense = 1;
        c.gathers_hashed = 3;
        assert_eq!(c.hashed_gather_fraction(), 0.75);
    }
}
