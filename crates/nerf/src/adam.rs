//! Adam optimizer operating on flat parameter vectors.

/// Hyper-parameters for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdamConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub epsilon: f32,
    /// L2 regularization applied to the parameters (decoupled weight
    /// decay; zero disables it).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    /// Instant-NGP's published settings (`lr = 1e-2`, `β₁ = 0.9`,
    /// `β₂ = 0.99`, `ε = 1e-15`), which suit hash-grid training.
    fn default() -> Self {
        AdamConfig {
            learning_rate: 1e-2,
            beta1: 0.9,
            beta2: 0.99,
            epsilon: 1e-15,
            weight_decay: 0.0,
        }
    }
}

/// Adam optimizer state for one flat parameter vector.
///
/// # Examples
///
/// ```
/// use fusion3d_nerf::adam::{Adam, AdamConfig};
///
/// let mut params = vec![1.0f32; 4];
/// let grads = vec![0.5f32; 4];
/// let mut opt = Adam::new(AdamConfig::default(), params.len());
/// opt.step(&mut params, &grads);
/// assert!(params.iter().all(|&p| p < 1.0), "gradient descent moved params down");
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates optimizer state for `param_count` parameters.
    pub fn new(config: AdamConfig, param_count: usize) -> Self {
        Adam { config, m: vec![0.0; param_count], v: vec![0.0; param_count], t: 0 }
    }

    /// The optimizer configuration.
    #[inline]
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Sets the learning rate (for schedules).
    #[inline]
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.config.learning_rate = lr;
    }

    /// Number of steps taken so far.
    #[inline]
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update. Entries whose gradient is exactly zero
    /// are skipped entirely (moments untouched) — the sparse-update
    /// rule Instant-NGP uses for hash tables, where a training batch
    /// touches only a small fraction of the entries.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length from the state.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powi(self.t as i32);
        let bias2 = 1.0 - c.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            if g == 0.0 {
                continue;
            }
            let g = g + c.weight_decay * params[i];
            self.m[i] = c.beta1 * self.m[i] + (1.0 - c.beta1) * g;
            self.v[i] = c.beta2 * self.v[i] + (1.0 - c.beta2) * g * g;
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            params[i] -= c.learning_rate * m_hat / (v_hat.sqrt() + c.epsilon);
        }
    }

    /// Resets all moment estimates and the step counter.
    pub fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x - 3)^2, df/dx = 2(x - 3).
        let mut params = vec![0.0f32];
        let mut opt = Adam::new(AdamConfig { learning_rate: 0.1, ..AdamConfig::default() }, 1);
        for _ in 0..500 {
            let g = 2.0 * (params[0] - 3.0);
            opt.step(&mut params, &[g]);
        }
        assert!((params[0] - 3.0).abs() < 0.05, "converged to {}", params[0]);
    }

    #[test]
    fn zero_gradients_leave_params_untouched() {
        let mut params = vec![1.0f32, 2.0, 3.0];
        let mut opt = Adam::new(AdamConfig::default(), 3);
        opt.step(&mut params, &[0.0, 1.0, 0.0]);
        assert_eq!(params[0], 1.0);
        assert_ne!(params[1], 2.0);
        assert_eq!(params[2], 3.0);
    }

    #[test]
    fn sparse_skip_preserves_moments() {
        // A zero gradient must not decay the moments: a second update
        // with the same gradient should act as if the zero step never
        // happened for that entry.
        let cfg = AdamConfig { learning_rate: 0.01, ..AdamConfig::default() };
        let mut a = vec![1.0f32];
        let mut ob = Adam::new(cfg, 1);
        ob.step(&mut a, &[0.5]);
        ob.step(&mut a, &[0.0]); // skipped
        ob.step(&mut a, &[0.5]);

        let mut b = vec![1.0f32];
        let mut oc = Adam::new(cfg, 1);
        oc.step(&mut b, &[0.5]);
        oc.step(&mut b, &[0.5]);
        // The only difference is the step counter used for bias
        // correction, so results are close but the moment state paths
        // match; assert agreement within a small tolerance.
        assert!((a[0] - b[0]).abs() < 5e-3, "{} vs {}", a[0], b[0]);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let cfg = AdamConfig { learning_rate: 0.05, weight_decay: 0.1, ..AdamConfig::default() };
        let mut params = vec![5.0f32];
        let mut opt = Adam::new(cfg, 1);
        for _ in 0..200 {
            // True gradient zero; only decay acts. Pass a tiny nonzero
            // gradient so the entry is not skipped.
            opt.step(&mut params, &[1e-12]);
        }
        assert!(params[0] < 5.0);
    }

    #[test]
    fn step_count_and_reset() {
        let mut opt = Adam::new(AdamConfig::default(), 2);
        let mut p = vec![1.0f32, 1.0];
        opt.step(&mut p, &[0.1, 0.1]);
        opt.step(&mut p, &[0.1, 0.1]);
        assert_eq!(opt.step_count(), 2);
        opt.reset();
        assert_eq!(opt.step_count(), 0);
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn rejects_mismatched_buffers() {
        let mut opt = Adam::new(AdamConfig::default(), 2);
        let mut p = vec![0.0f32; 3];
        opt.step(&mut p, &[0.0; 3]);
    }
}
