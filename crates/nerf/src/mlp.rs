//! Small fully-connected networks (Stage III of the NeRF pipeline).
//!
//! Instant-NGP pairs the hash encoding with deliberately tiny MLPs: a
//! one-hidden-layer density network and a two-hidden-layer color
//! network. This module provides a from-scratch [`Mlp`] with explicit
//! forward and backward passes and a flat parameter layout that the
//! optimizer and the INT8 quantization experiments operate on.

use rand::Rng;

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Activation {
    /// Identity.
    None,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid (used for RGB outputs).
    Sigmoid,
}

impl Activation {
    /// Applies the activation.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// The activation derivative expressed in terms of the *output*
    /// value `y = f(x)` (all three supported activations admit this
    /// form, which avoids caching pre-activations).
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::None => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

/// A multi-layer perceptron with a flat `f32` parameter vector.
///
/// Weights are stored layer-major, each layer as a row-major
/// `out_dim × in_dim` matrix followed by its `out_dim` bias vector.
///
/// # Examples
///
/// ```
/// use fusion3d_nerf::mlp::{Activation, Mlp, MlpCache};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let mlp = Mlp::new(&[4, 8, 2], Activation::Relu, Activation::None, &mut rng);
/// let mut cache = MlpCache::for_mlp(&mlp);
/// let out = mlp.forward(&[0.1, -0.2, 0.3, 0.4], &mut cache);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    dims: Vec<usize>,
    params: Vec<f32>,
    hidden_activation: Activation,
    output_activation: Activation,
}

/// Per-sample forward-pass activations retained for the backward pass.
///
/// Reuse one cache per worker to avoid reallocation; `forward` resizes
/// it as needed.
#[derive(Debug, Clone, Default)]
pub struct MlpCache {
    /// `activations[0]` is the input; `activations[i]` the output of
    /// layer `i - 1` *after* its activation function.
    activations: Vec<Vec<f32>>,
}

impl MlpCache {
    /// Creates an empty cache sized lazily on first use.
    pub fn new() -> Self {
        MlpCache::default()
    }

    /// Creates a cache pre-sized for `mlp`.
    pub fn for_mlp(mlp: &Mlp) -> Self {
        // lint: allow(h1): one-time cache construction, not a per-sample loop
        MlpCache { activations: mlp.dims.iter().map(|&d| vec![0.0; d]).collect() }
    }

    /// The network output stored by the last `forward` call.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has populated the cache.
    pub fn output(&self) -> &[f32] {
        // lint: allow(p1): documented panic — reading before forward() is a caller bug
        self.activations.last().expect("cache is empty; call forward first")
    }
}

/// Structure-of-arrays forward/backward scratch for the batched MLP
/// kernels.
///
/// Activations are stored sample-major: entry `(s, d)` of layer `l`
/// lives at `activations[l][s * dims[l] + d]`. One cache serves both
/// [`Mlp::forward_batch`] and [`Mlp::backward_batch`]; keep one per
/// worker and the kernels resize it only when the batch shape changes.
#[derive(Debug, Clone, Default)]
pub struct MlpBatchCache {
    /// `activations[0]` is the input batch; `activations[l]` the
    /// post-activation output batch of layer `l - 1`.
    activations: Vec<Vec<f32>>,
    /// dL/d(pre-activation) of the layer currently being walked.
    delta: Vec<f32>,
    /// dL/d(post-activation) of the previous layer.
    d_prev: Vec<f32>,
    /// Column-major (`[k][o]`) copy of the current layer's weights, so
    /// the forward GEMM's inner loop loads one contiguous weight row
    /// per input feature instead of [`OUTPUT_TILE`] strided values.
    wt: Vec<f32>,
    batch: usize,
}

impl MlpBatchCache {
    /// Creates an empty cache sized lazily on first use.
    pub fn new() -> Self {
        MlpBatchCache::default()
    }

    /// Number of samples in the batch the cache currently holds.
    #[inline]
    pub fn batch_len(&self) -> usize {
        self.batch
    }

    /// Total buffer capacity in elements, for the hot-loop
    /// allocation-freedom debug assertion.
    #[cfg(debug_assertions)]
    pub(crate) fn capacity(&self) -> usize {
        self.activations.iter().map(Vec::capacity).sum::<usize>()
            + self.delta.capacity()
            + self.d_prev.capacity()
            + self.wt.capacity()
    }

    /// Sizes every buffer for a batch of `n` samples of an MLP with
    /// layer dimensions `dims`. Idempotent: a matching shape leaves
    /// the buffers untouched, so pre-sizing here keeps the kernels
    /// allocation-free afterwards.
    pub(crate) fn begin(&mut self, dims: &[usize], n: usize) {
        self.activations.resize_with(dims.len(), Vec::default);
        for (a, &d) in self.activations.iter_mut().zip(dims.iter()) {
            if a.len() != n * d {
                a.resize(n * d, 0.0);
            }
        }
        let max_dim = dims.iter().copied().max().unwrap_or(0);
        if self.delta.len() != n * max_dim {
            self.delta.resize(n * max_dim, 0.0);
        }
        if self.d_prev.len() != n * max_dim {
            self.d_prev.resize(n * max_dim, 0.0);
        }
        let max_weights = dims.windows(2).map(|w| w[0] * w[1]).max().unwrap_or(0);
        if self.wt.len() != max_weights {
            self.wt.resize(max_weights, 0.0);
        }
        self.batch = n;
    }

    /// The sample-major output batch (`batch_len() * output_dim`
    /// values) stored by the last [`Mlp::forward_batch`] call.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has populated the cache.
    pub fn output(&self) -> &[f32] {
        // lint: allow(p1): documented panic — reading before forward_batch() is a caller bug
        self.activations.last().expect("cache is empty; call forward_batch first")
    }
}

/// Samples per register tile of the blocked GEMM kernels.
const SAMPLE_TILE: usize = 4;
/// Output features per register tile of the blocked GEMM kernels.
/// Eight features give the forward kernel one 256-bit lane of
/// independent accumulation chains per sample; widening tiles never
/// changes results because each output element keeps its own
/// k-ascending chain.
const OUTPUT_TILE: usize = 8;
/// Input features per register tile of the gradient GEMM kernels.
const INPUT_TILE: usize = 4;

impl Mlp {
    /// Creates an MLP with the given layer dimensions (input first,
    /// output last), He-initialized weights, and zero biases.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given or any dimension
    /// is zero.
    pub fn new<R: Rng>(
        dims: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "layer dimensions must be positive");
        // lint: allow(h1): one-time parameter allocation at construction
        let mut params = Vec::new();
        for w in dims.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let std = (2.0 / fan_in as f32).sqrt();
            for _ in 0..fan_in * fan_out {
                // Uniform approximation of a He-normal initialization.
                params.push(rng.gen_range(-std..std));
            }
            params.extend(std::iter::repeat_n(0.0, fan_out));
        }
        Mlp { dims: dims.to_vec(), params, hidden_activation, output_activation }
    }

    /// Layer dimensions, input first.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Input dimension.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output dimension.
    #[inline]
    pub fn output_dim(&self) -> usize {
        // lint: allow(p1): invariant — Mlp::new asserts dims.len() >= 2
        *self.dims.last().expect("dims is never empty")
    }

    /// Number of layers (linear transforms).
    #[inline]
    pub fn layer_count(&self) -> usize {
        self.dims.len() - 1
    }

    /// Flat parameter vector.
    #[inline]
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable flat parameter vector (used by the optimizer and the
    /// quantization experiments).
    #[inline]
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Number of parameters.
    #[inline]
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Multiply-accumulate operations per forward pass — the dominant
    /// arithmetic cost the accelerator's post-processing module models.
    pub fn macs_per_forward(&self) -> u64 {
        self.dims.windows(2).map(|w| (w[0] * w[1]) as u64).sum()
    }

    /// The weight matrix (row-major `out × in`) and bias vector of
    /// layer `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= self.layer_count()`.
    pub fn layer_params(&self, layer: usize) -> (&[f32], &[f32]) {
        assert!(layer < self.layer_count(), "layer {layer} out of range");
        let (in_dim, out_dim) = (self.dims[layer], self.dims[layer + 1]);
        let off = self.layer_offset(layer);
        (
            &self.params[off..off + in_dim * out_dim],
            &self.params[off + in_dim * out_dim..off + in_dim * out_dim + out_dim],
        )
    }

    /// The activation applied after layer `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= self.layer_count()`.
    pub fn layer_activation(&self, layer: usize) -> Activation {
        assert!(layer < self.layer_count(), "layer {layer} out of range");
        self.activation_for_layer(layer)
    }

    /// Mutable access to the bias of output `index` of the final
    /// layer, for output-scale initialization tweaks (e.g. the MoE
    /// density normalization).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.output_dim()`.
    pub fn output_bias_mut(&mut self, index: usize) -> &mut f32 {
        assert!(index < self.output_dim(), "output index {index} out of range");
        let last = self.layer_count() - 1;
        let (in_dim, out_dim) = (self.dims[last], self.dims[last + 1]);
        let off = self.layer_offset(last) + in_dim * out_dim + index;
        &mut self.params[off]
    }

    /// Offset of layer `l`'s weight matrix in the flat vector.
    fn layer_offset(&self, layer: usize) -> usize {
        let mut off = 0;
        for w in self.dims.windows(2).take(layer) {
            off += w[0] * w[1] + w[1];
        }
        off
    }

    fn activation_for_layer(&self, layer: usize) -> Activation {
        if layer + 1 == self.layer_count() {
            self.output_activation
        } else {
            self.hidden_activation
        }
    }

    /// Runs the forward pass, retaining activations in `cache`, and
    /// returns the output slice.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward<'c>(&self, input: &[f32], cache: &'c mut MlpCache) -> &'c [f32] {
        assert_eq!(input.len(), self.input_dim(), "input size mismatch");
        // lint: allow(h1): scalar reference path — hot loops use forward_batch
        cache.activations.resize_with(self.dims.len(), Vec::new);
        cache.activations[0].clear();
        cache.activations[0].extend_from_slice(input);
        for layer in 0..self.layer_count() {
            let (in_dim, out_dim) = (self.dims[layer], self.dims[layer + 1]);
            let off = self.layer_offset(layer);
            let weights = &self.params[off..off + in_dim * out_dim];
            let biases = &self.params[off + in_dim * out_dim..off + in_dim * out_dim + out_dim];
            let act = self.activation_for_layer(layer);
            // Split the borrow: read activations[layer], write
            // activations[layer + 1].
            let (head, tail) = cache.activations.split_at_mut(layer + 1);
            let x = &head[layer];
            let y = &mut tail[0];
            y.clear();
            y.reserve(out_dim);
            for o in 0..out_dim {
                let row = &weights[o * in_dim..(o + 1) * in_dim];
                let mut acc = biases[o];
                for (w, v) in row.iter().zip(x.iter()) {
                    acc += w * v;
                }
                // lint: allow(h2): scalar reference path pushes into
                // reserved capacity; hot loops use forward_batch
                y.push(act.apply(acc));
            }
        }
        cache.output()
    }

    /// Runs the backward pass for the sample whose activations are in
    /// `cache`.
    ///
    /// * `d_output` — gradient of the loss w.r.t. the network output
    ///   (post-activation).
    /// * `d_input` — filled with the gradient w.r.t. the input
    ///   (post-activation of the encoding); must have length
    ///   `input_dim`.
    /// * `grads` — flat gradient accumulator with the same layout as
    ///   [`Mlp::params`]; gradients are *added*, enabling batched
    ///   accumulation.
    ///
    /// # Panics
    ///
    /// Panics on size mismatches or if `cache` does not hold a forward
    /// pass for this network.
    pub fn backward(
        &self,
        cache: &MlpCache,
        d_output: &[f32],
        d_input: &mut [f32],
        grads: &mut [f32],
    ) {
        assert_eq!(d_output.len(), self.output_dim(), "output gradient size mismatch");
        assert_eq!(d_input.len(), self.input_dim(), "input gradient size mismatch");
        assert_eq!(grads.len(), self.params.len(), "parameter gradient size mismatch");
        assert_eq!(cache.activations.len(), self.dims.len(), "cache does not match network");

        // delta = dL/d(pre-activation) of the current layer.
        let mut delta: Vec<f32> = d_output
            .iter()
            .zip(cache.activations[self.layer_count()].iter())
            .map(|(&d, &y)| {
                d * self.activation_for_layer(self.layer_count() - 1).derivative_from_output(y)
            })
            // lint: allow(h2): scalar reference path — hot loops use
            // backward_batch
            .collect();

        for layer in (0..self.layer_count()).rev() {
            let (in_dim, out_dim) = (self.dims[layer], self.dims[layer + 1]);
            let off = self.layer_offset(layer);
            let x = &cache.activations[layer];
            assert_eq!(x.len(), in_dim, "cached activation size mismatch");

            // Weight and bias gradients.
            {
                let (gw, gb) =
                    grads[off..off + in_dim * out_dim + out_dim].split_at_mut(in_dim * out_dim);
                for o in 0..out_dim {
                    let d = delta[o];
                    let row = &mut gw[o * in_dim..(o + 1) * in_dim];
                    for (g, &v) in row.iter_mut().zip(x.iter()) {
                        *g += d * v;
                    }
                    gb[o] += d;
                }
            }

            // Propagate to the previous layer (or the input).
            let weights = &self.params[off..off + in_dim * out_dim];
            // lint: allow(h1): scalar reference path — hot loops use backward_batch
            let mut d_prev = vec![0.0f32; in_dim];
            for o in 0..out_dim {
                let d = delta[o];
                let row = &weights[o * in_dim..(o + 1) * in_dim];
                for (dp, &w) in d_prev.iter_mut().zip(row.iter()) {
                    *dp += d * w;
                }
            }

            if layer == 0 {
                d_input.copy_from_slice(&d_prev);
            } else {
                let act = self.activation_for_layer(layer - 1);
                delta = d_prev
                    .iter()
                    .zip(cache.activations[layer].iter())
                    .map(|(&d, &y)| d * act.derivative_from_output(y))
                    // lint: allow(h2): scalar reference path — hot
                    // loops use backward_batch
                    .collect();
            }
        }
    }

    /// Runs the forward pass for a sample-major batch of `n` inputs
    /// (`inputs[s * input_dim() ..]` is sample `s`), retaining
    /// activations in `cache`, and returns the sample-major output
    /// slice (`n * output_dim()` values).
    ///
    /// Layers are evaluated with a blocked GEMM
    /// (`SAMPLE_TILE` × `OUTPUT_TILE` register tiles) whose inner
    /// reduction walks input features in ascending order per output
    /// element — **bitwise-identical** to calling [`Mlp::forward`] on
    /// each sample, which is the determinism contract the `reference`
    /// module's differential tests enforce.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n * self.input_dim()`.
    pub fn forward_batch<'c>(
        &self,
        inputs: &[f32],
        n: usize,
        cache: &'c mut MlpBatchCache,
    ) -> &'c [f32] {
        assert_eq!(inputs.len(), n * self.input_dim(), "input batch size mismatch");
        cache.begin(&self.dims, n);
        cache.activations[0].copy_from_slice(inputs);
        for layer in 0..self.layer_count() {
            let (in_dim, out_dim) = (self.dims[layer], self.dims[layer + 1]);
            let off = self.layer_offset(layer);
            let weights = &self.params[off..off + in_dim * out_dim];
            let biases = &self.params[off + in_dim * out_dim..off + in_dim * out_dim + out_dim];
            let act = self.activation_for_layer(layer);
            // Re-lay the weights column-major so the GEMM's inner loop
            // reads them contiguously; the copy is amortized over the
            // whole batch. Transposition reorders loads, not sums, so
            // results stay bit-identical.
            let wt = &mut cache.wt[..in_dim * out_dim];
            for (o, row) in weights.chunks_exact(in_dim).enumerate() {
                for (k, &w) in row.iter().enumerate() {
                    wt[k * out_dim + o] = w;
                }
            }
            // Split the borrow: read activations[layer], write
            // activations[layer + 1].
            let (head, tail) = cache.activations.split_at_mut(layer + 1);
            gemm_bias_act(&head[layer], weights, wt, biases, act, n, in_dim, out_dim, &mut tail[0]);
        }
        cache.output()
    }

    /// Runs the backward pass for the batch whose activations are in
    /// `cache`, the batched counterpart of [`Mlp::backward`].
    ///
    /// * `d_output` — sample-major gradient w.r.t. the network output
    ///   (`batch * output_dim()` values).
    /// * `d_input` — filled with the sample-major gradient w.r.t. the
    ///   input (`batch * input_dim()` values).
    /// * `grads` — flat gradient accumulator with the layout of
    ///   [`Mlp::params`]; gradients are *added*.
    ///
    /// Every gradient element accumulates its per-sample contributions
    /// in ascending sample order, so the result is bitwise-identical
    /// to looping [`Mlp::backward`] over the samples.
    ///
    /// # Panics
    ///
    /// Panics on size mismatches or if `cache` does not hold a
    /// forward pass for this network.
    pub fn backward_batch(
        &self,
        cache: &mut MlpBatchCache,
        d_output: &[f32],
        d_input: &mut [f32],
        grads: &mut [f32],
    ) {
        let MlpBatchCache { activations, delta, d_prev, batch, .. } = cache;
        let n = *batch;
        assert_eq!(d_output.len(), n * self.output_dim(), "output gradient size mismatch");
        assert_eq!(d_input.len(), n * self.input_dim(), "input gradient size mismatch");
        assert_eq!(grads.len(), self.params.len(), "parameter gradient size mismatch");
        assert_eq!(activations.len(), self.dims.len(), "cache does not match network");

        // delta = dL/d(pre-activation) of the output layer.
        let out_dim = self.output_dim();
        let act = self.activation_for_layer(self.layer_count() - 1);
        for ((d, &g), &y) in delta[..n * out_dim]
            .iter_mut()
            .zip(d_output.iter())
            .zip(activations[self.layer_count()].iter())
        {
            *d = g * act.derivative_from_output(y);
        }

        for layer in (0..self.layer_count()).rev() {
            let (in_dim, out_dim) = (self.dims[layer], self.dims[layer + 1]);
            let off = self.layer_offset(layer);
            let x = &activations[layer];
            assert_eq!(x.len(), n * in_dim, "cached activation size mismatch");

            // Weight and bias gradients.
            {
                let (gw, gb) =
                    grads[off..off + in_dim * out_dim + out_dim].split_at_mut(in_dim * out_dim);
                grad_gemm(&delta[..n * out_dim], x, n, in_dim, out_dim, gw, gb);
            }

            // Propagate to the previous layer (or the input).
            let weights = &self.params[off..off + in_dim * out_dim];
            dinput_gemm(
                &delta[..n * out_dim],
                weights,
                n,
                in_dim,
                out_dim,
                &mut d_prev[..n * in_dim],
            );

            if layer == 0 {
                d_input.copy_from_slice(&d_prev[..n * in_dim]);
            } else {
                let act = self.activation_for_layer(layer - 1);
                for ((d, &dp), &y) in
                    delta[..n * in_dim].iter_mut().zip(d_prev[..n * in_dim].iter()).zip(x.iter())
                {
                    *d = dp * act.derivative_from_output(y);
                }
            }
        }
    }
}

/// Blocked GEMM + bias + activation: `y[s][o] = act(b[o] + Σ_k
/// w[o][k] · x[s][k])` over a sample-major batch.
///
/// [`SAMPLE_TILE`] × [`OUTPUT_TILE`] register tiles give the CPU
/// thirty-two independent accumulation chains instead of the scalar
/// path's one, and `wt` (the column-major copy of `weights` the
/// caller maintains) makes the inner loop's weight loads contiguous.
/// The `k` reduction stays in ascending order for every `(s, o)`
/// element — the per-element addition sequence, and so the bits,
/// match [`Mlp::forward`] exactly.
#[allow(clippy::too_many_arguments)] // flat GEMM signature: dims + both weight layouts
fn gemm_bias_act(
    x: &[f32],
    weights: &[f32],
    wt: &[f32],
    biases: &[f32],
    act: Activation,
    n: usize,
    in_dim: usize,
    out_dim: usize,
    y: &mut [f32],
) {
    debug_assert!(x.len() >= n * in_dim, "x holds n × in_dim inputs");
    debug_assert!(y.len() >= n * out_dim, "y holds n × out_dim outputs");
    debug_assert!(weights.len() >= out_dim * in_dim && wt.len() >= in_dim * out_dim);
    debug_assert!(biases.len() >= out_dim);
    let s_full = n - n % SAMPLE_TILE;
    let o_full = out_dim - out_dim % OUTPUT_TILE;
    for s in (0..s_full).step_by(SAMPLE_TILE) {
        let xr: [&[f32]; SAMPLE_TILE] =
            std::array::from_fn(|si| &x[(s + si) * in_dim..(s + si + 1) * in_dim]);
        for o in (0..o_full).step_by(OUTPUT_TILE) {
            let mut acc = [[0.0f32; OUTPUT_TILE]; SAMPLE_TILE];
            for row in &mut acc {
                row.copy_from_slice(&biases[o..o + OUTPUT_TILE]);
            }
            for k in 0..in_dim {
                let w = &wt[k * out_dim + o..k * out_dim + o + OUTPUT_TILE];
                for (si, row) in acc.iter_mut().enumerate() {
                    let xv = xr[si][k];
                    for (a, &wk) in row.iter_mut().zip(w.iter()) {
                        *a += wk * xv;
                    }
                }
            }
            for (si, row) in acc.iter().enumerate() {
                let ys = &mut y[(s + si) * out_dim + o..(s + si) * out_dim + o + OUTPUT_TILE];
                for (out, &a) in ys.iter_mut().zip(row.iter()) {
                    *out = act.apply(a);
                }
            }
        }
        // Output-feature tail: four samples share each weight row.
        for o in o_full..out_dim {
            let row = &weights[o * in_dim..(o + 1) * in_dim];
            let mut acc = [biases[o]; SAMPLE_TILE];
            for (k, &wk) in row.iter().enumerate() {
                for (a, xs) in acc.iter_mut().zip(xr.iter()) {
                    *a += wk * xs[k];
                }
            }
            for (si, &a) in acc.iter().enumerate() {
                y[(s + si) * out_dim + o] = act.apply(a);
            }
        }
    }
    // Sample tail: plain per-sample evaluation, same math as above.
    for s in s_full..n {
        let xs = &x[s * in_dim..(s + 1) * in_dim];
        let ys = &mut y[s * out_dim..(s + 1) * out_dim];
        for (o, out) in ys.iter_mut().enumerate() {
            let row = &weights[o * in_dim..(o + 1) * in_dim];
            let mut acc = biases[o];
            for (w, v) in row.iter().zip(xs.iter()) {
                acc += w * v;
            }
            *out = act.apply(acc);
        }
    }
}

/// Weight/bias gradient GEMM: `gw[o][i] += Σ_s delta[s][o] · x[s][i]`
/// and `gb[o] += Σ_s delta[s][o]`.
///
/// Each gradient element is read, accumulated over samples in
/// ascending order, and written back — exactly the addition sequence
/// the scalar path produces when it walks one sample at a time, so
/// the bits match [`Mlp::backward`] looped over the batch. The
/// [`OUTPUT_TILE`] × [`INPUT_TILE`] tiling only widens the number of
/// concurrent accumulation chains.
fn grad_gemm(
    delta: &[f32],
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    gw: &mut [f32],
    gb: &mut [f32],
) {
    debug_assert!(delta.len() >= n * out_dim, "delta holds n × out_dim deltas");
    debug_assert!(x.len() >= n * in_dim, "x holds n × in_dim inputs");
    debug_assert!(gw.len() >= out_dim * in_dim && gb.len() >= out_dim);
    // Bias gradients: per output, sample-ascending accumulation.
    for (o, g) in gb.iter_mut().enumerate() {
        let mut acc = *g;
        for s in 0..n {
            acc += delta[s * out_dim + o];
        }
        *g = acc;
    }
    let o_full = out_dim - out_dim % OUTPUT_TILE;
    let i_full = in_dim - in_dim % INPUT_TILE;
    for o in (0..o_full).step_by(OUTPUT_TILE) {
        for i in (0..i_full).step_by(INPUT_TILE) {
            let mut acc = [[0.0f32; INPUT_TILE]; OUTPUT_TILE];
            for (oi, row) in acc.iter_mut().enumerate() {
                let g = &gw[(o + oi) * in_dim + i..(o + oi) * in_dim + i + INPUT_TILE];
                row.copy_from_slice(g);
            }
            for s in 0..n {
                let ds = &delta[s * out_dim + o..s * out_dim + o + OUTPUT_TILE];
                let xs = &x[s * in_dim + i..s * in_dim + i + INPUT_TILE];
                for (row, &d) in acc.iter_mut().zip(ds.iter()) {
                    for (a, &v) in row.iter_mut().zip(xs.iter()) {
                        *a += d * v;
                    }
                }
            }
            for (oi, row) in acc.iter().enumerate() {
                let g = &mut gw[(o + oi) * in_dim + i..(o + oi) * in_dim + i + INPUT_TILE];
                g.copy_from_slice(row);
            }
        }
        // Input-feature tail.
        for i in i_full..in_dim {
            let mut acc = [0.0f32; OUTPUT_TILE];
            for (oi, a) in acc.iter_mut().enumerate() {
                *a = gw[(o + oi) * in_dim + i];
            }
            for s in 0..n {
                let xv = x[s * in_dim + i];
                let ds = &delta[s * out_dim + o..s * out_dim + o + OUTPUT_TILE];
                for (a, &d) in acc.iter_mut().zip(ds.iter()) {
                    *a += d * xv;
                }
            }
            for (oi, &a) in acc.iter().enumerate() {
                gw[(o + oi) * in_dim + i] = a;
            }
        }
    }
    // Output-feature tail: per element, sample-ascending.
    for o in o_full..out_dim {
        for i in 0..in_dim {
            let mut acc = gw[o * in_dim + i];
            for s in 0..n {
                acc += delta[s * out_dim + o] * x[s * in_dim + i];
            }
            gw[o * in_dim + i] = acc;
        }
    }
}

/// Input-gradient GEMM: `d_prev[s][i] = Σ_o delta[s][o] · w[o][i]`,
/// accumulating outputs in ascending order from zero per element —
/// the same sequence the scalar backward's `d_prev` loop produces.
fn dinput_gemm(
    delta: &[f32],
    weights: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    d_prev: &mut [f32],
) {
    debug_assert!(delta.len() >= n * out_dim, "delta holds n × out_dim deltas");
    debug_assert!(weights.len() >= out_dim * in_dim && d_prev.len() >= n * in_dim);
    let s_full = n - n % SAMPLE_TILE;
    let i_full = in_dim - in_dim % INPUT_TILE;
    for s in (0..s_full).step_by(SAMPLE_TILE) {
        for i in (0..i_full).step_by(INPUT_TILE) {
            let mut acc = [[0.0f32; INPUT_TILE]; SAMPLE_TILE];
            for o in 0..out_dim {
                let wr = &weights[o * in_dim + i..o * in_dim + i + INPUT_TILE];
                for (si, row) in acc.iter_mut().enumerate() {
                    let d = delta[(s + si) * out_dim + o];
                    for (a, &w) in row.iter_mut().zip(wr.iter()) {
                        *a += d * w;
                    }
                }
            }
            for (si, row) in acc.iter().enumerate() {
                let dp = &mut d_prev[(s + si) * in_dim + i..(s + si) * in_dim + i + INPUT_TILE];
                dp.copy_from_slice(row);
            }
        }
        // Input-feature tail.
        for i in i_full..in_dim {
            let mut acc = [0.0f32; SAMPLE_TILE];
            for o in 0..out_dim {
                let w = weights[o * in_dim + i];
                for (si, a) in acc.iter_mut().enumerate() {
                    *a += delta[(s + si) * out_dim + o] * w;
                }
            }
            for (si, &a) in acc.iter().enumerate() {
                d_prev[(s + si) * in_dim + i] = a;
            }
        }
    }
    // Sample tail: plain per-sample propagation.
    for s in s_full..n {
        let dp = &mut d_prev[s * in_dim..(s + 1) * in_dim];
        dp.fill(0.0);
        let ds = &delta[s * out_dim..(s + 1) * out_dim];
        for (o, &d) in ds.iter().enumerate() {
            let row = &weights[o * in_dim..(o + 1) * in_dim];
            for (a, &w) in dp.iter_mut().zip(row.iter()) {
                *a += d * w;
            }
        }
    }
}

/// Number of spherical-harmonics coefficients produced by
/// [`sh_encode`] (degree 4, as used by Instant-NGP's color network).
pub const SH_DIM: usize = 16;

/// Evaluates the real spherical-harmonics basis up to degree 4 (16
/// coefficients) for a unit direction, the view-direction encoding of
/// the color network.
///
/// The input need not be perfectly normalized; it is renormalized
/// internally (zero vectors map to the +Z basis evaluation).
pub fn sh_encode(dir: [f32; 3], out: &mut [f32; SH_DIM]) {
    let len = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]).sqrt();
    let (x, y, z) =
        if len > 1e-9 { (dir[0] / len, dir[1] / len, dir[2] / len) } else { (0.0, 0.0, 1.0) };
    let (xx, yy, zz) = (x * x, y * y, z * z);
    let (xy, yz, xz) = (x * y, y * z, x * z);

    out[0] = 0.282_094_79;
    out[1] = -0.488_602_51 * y;
    out[2] = 0.488_602_51 * z;
    out[3] = -0.488_602_51 * x;
    out[4] = 1.092_548_4 * xy;
    out[5] = -1.092_548_4 * yz;
    out[6] = 0.315_391_57 * (3.0 * zz - 1.0);
    out[7] = -1.092_548_4 * xz;
    out[8] = 0.546_274_2 * (xx - yy);
    out[9] = -0.590_043_6 * y * (3.0 * xx - yy);
    out[10] = 2.890_611_4 * xy * z;
    out[11] = -0.457_045_8 * y * (5.0 * zz - 1.0);
    out[12] = 0.373_176_33 * z * (5.0 * zz - 3.0);
    out[13] = -0.457_045_8 * x * (5.0 * zz - 1.0);
    out[14] = 1.445_305_7 * z * (xx - yy);
    out[15] = -0.590_043_6 * x * (xx - 3.0 * yy);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_mlp(seed: u64) -> Mlp {
        let mut rng = SmallRng::seed_from_u64(seed);
        Mlp::new(&[3, 8, 8, 2], Activation::Relu, Activation::None, &mut rng)
    }

    #[test]
    fn activation_functions() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::None.apply(-3.5), -3.5);
        let s = Activation::Sigmoid.apply(0.0);
        assert!((s - 0.5).abs() < 1e-6);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(1.5), 1.0);
        assert!((Activation::Sigmoid.derivative_from_output(0.5) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn shapes_and_param_layout() {
        let mlp = tiny_mlp(1);
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 2);
        assert_eq!(mlp.layer_count(), 3);
        assert_eq!(mlp.param_count(), 3 * 8 + 8 + 8 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(mlp.macs_per_forward(), 3 * 8 + 8 * 8 + 8 * 2);
    }

    #[test]
    fn forward_output_is_finite_and_deterministic() {
        let mlp = tiny_mlp(2);
        let mut cache = MlpCache::for_mlp(&mlp);
        let out1: Vec<f32> = mlp.forward(&[0.5, -0.5, 0.25], &mut cache).to_vec();
        let out2: Vec<f32> = mlp.forward(&[0.5, -0.5, 0.25], &mut cache).to_vec();
        assert_eq!(out1, out2);
        assert!(out1.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut mlp = tiny_mlp(3);
        let input = [0.3f32, -0.7, 0.9];
        let d_output = [1.0f32, -2.0];

        let mut cache = MlpCache::new();
        mlp.forward(&input, &mut cache);
        let mut d_input = [0.0f32; 3];
        let mut grads = vec![0.0f32; mlp.param_count()];
        mlp.backward(&cache, &d_output, &mut d_input, &mut grads);

        let loss = |mlp: &Mlp, input: &[f32]| -> f32 {
            let mut c = MlpCache::new();
            let out = mlp.forward(input, &mut c);
            out[0] * 1.0 + out[1] * -2.0
        };

        // Parameter gradients.
        let h = 1e-3f32;
        for i in (0..mlp.param_count()).step_by(7) {
            let orig = mlp.params()[i];
            mlp.params_mut()[i] = orig + h;
            let up = loss(&mlp, &input);
            mlp.params_mut()[i] = orig - h;
            let down = loss(&mlp, &input);
            mlp.params_mut()[i] = orig;
            let fd = (up - down) / (2.0 * h);
            assert!(
                (fd - grads[i]).abs() < 2e-2 * (1.0 + fd.abs()),
                "param {i}: fd {fd} vs analytic {}",
                grads[i]
            );
        }

        // Input gradients.
        for i in 0..3 {
            let mut plus = input;
            plus[i] += h;
            let mut minus = input;
            minus[i] -= h;
            let fd = (loss(&mlp, &plus) - loss(&mlp, &minus)) / (2.0 * h);
            assert!(
                (fd - d_input[i]).abs() < 2e-2 * (1.0 + fd.abs()),
                "input {i}: fd {fd} vs analytic {}",
                d_input[i]
            );
        }
    }

    #[test]
    fn sigmoid_output_bounded() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mlp = Mlp::new(&[4, 8, 3], Activation::Relu, Activation::Sigmoid, &mut rng);
        let mut cache = MlpCache::new();
        let out = mlp.forward(&[10.0, -10.0, 5.0, -5.0], &mut cache);
        for &v in out {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn gradient_accumulation_is_additive() {
        let mlp = tiny_mlp(8);
        let mut cache = MlpCache::new();
        mlp.forward(&[0.1, 0.2, 0.3], &mut cache);
        let mut d_input = [0.0f32; 3];
        let mut grads_once = vec![0.0f32; mlp.param_count()];
        mlp.backward(&cache, &[1.0, 1.0], &mut d_input, &mut grads_once);
        let mut grads_twice = vec![0.0f32; mlp.param_count()];
        mlp.backward(&cache, &[1.0, 1.0], &mut d_input, &mut grads_twice);
        mlp.backward(&cache, &[1.0, 1.0], &mut d_input, &mut grads_twice);
        for (a, b) in grads_once.iter().zip(&grads_twice) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn forward_rejects_wrong_input() {
        let mlp = tiny_mlp(9);
        let mut cache = MlpCache::new();
        mlp.forward(&[1.0], &mut cache);
    }

    #[test]
    fn sh_basis_constant_term_and_norm() {
        let mut out = [0.0f32; SH_DIM];
        sh_encode([0.0, 0.0, 1.0], &mut out);
        assert!((out[0] - 0.282_094_79).abs() < 1e-6);
        // Degree-1 terms for +Z: only Y_1^0 (index 2) nonzero.
        assert!(out[1].abs() < 1e-6);
        assert!(out[2] > 0.4);
        assert!(out[3].abs() < 1e-6);
    }

    #[test]
    fn sh_handles_unnormalized_and_zero_directions() {
        let mut a = [0.0f32; SH_DIM];
        let mut b = [0.0f32; SH_DIM];
        sh_encode([0.0, 0.0, 10.0], &mut a);
        sh_encode([0.0, 0.0, 1.0], &mut b);
        assert_eq!(a, b);
        let mut z = [0.0f32; SH_DIM];
        sh_encode([0.0, 0.0, 0.0], &mut z);
        assert_eq!(z, b, "zero direction falls back to +Z");
    }

    #[test]
    fn sh_orthogonality_numerically() {
        // Monte-Carlo check: distinct SH basis functions are
        // orthogonal over the sphere (loose tolerance at 20k samples).
        let mut rng = SmallRng::seed_from_u64(42);
        use rand::Rng;
        let n = 20_000;
        let mut gram = [[0.0f64; 4]; 4];
        for _ in 0..n {
            // Uniform direction via normalized Gaussian-ish sampling
            // (Box–Muller-free approximation: rejection from cube).
            let v = loop {
                let v = [
                    rng.gen_range(-1.0f32..1.0),
                    rng.gen_range(-1.0f32..1.0),
                    rng.gen_range(-1.0f32..1.0),
                ];
                let l2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
                if l2 > 1e-4 && l2 <= 1.0 {
                    break v;
                }
            };
            let mut out = [0.0f32; SH_DIM];
            sh_encode(v, &mut out);
            for (i, row) in gram.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell += (out[i] * out[j]) as f64;
                }
            }
        }
        let norm = 4.0 * std::f64::consts::PI / n as f64;
        for (i, row) in gram.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let v = cell * norm;
                if i == j {
                    assert!((v - 1.0).abs() < 0.1, "diag {i}: {v}");
                } else {
                    assert!(v.abs() < 0.1, "off-diag ({i},{j}): {v}");
                }
            }
        }
    }
}
