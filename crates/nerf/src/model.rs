//! The complete NeRF field: hash-grid encoding plus density and color
//! networks, with an end-to-end backward pass.
//!
//! This is the Instant-NGP architecture the paper's accelerator
//! targets: Stage II ([`HashGrid`]) feeds a one-hidden-layer density
//! MLP whose first output becomes the volume density (through an
//! exponential activation) and whose remaining outputs are geometric
//! features; those features concatenated with a spherical-harmonics
//! view-direction encoding feed the color MLP.

use crate::adam::{Adam, AdamConfig};
use crate::batch::KernelScratch;
use crate::encoding::{Encoding, HashGrid, HashGridConfig};
use crate::math::Vec3;
use crate::mlp::{sh_encode, Activation, Mlp, MlpCache, SH_DIM};
use rand::Rng;

/// Clamp on the raw density logit before the exponential.
const RAW_DENSITY_CLAMP: f32 = 12.0;

/// Architecture of a [`NerfModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModelConfig {
    /// Hash-grid encoding configuration.
    pub grid: HashGridConfig,
    /// Hidden width of both MLPs (Instant-NGP uses 64).
    pub hidden_dim: usize,
    /// Number of geometric features passed from the density network to
    /// the color network (Instant-NGP uses 15).
    pub geo_feature_dim: usize,
}

impl Default for ModelConfig {
    /// A compact configuration that trains in seconds on a CPU while
    /// preserving the architecture shape: 32-wide MLPs and 7 geometric
    /// features over the default hash grid.
    fn default() -> Self {
        ModelConfig { grid: HashGridConfig::default(), hidden_dim: 32, geo_feature_dim: 7 }
    }
}

impl ModelConfig {
    /// Total learnable parameters (grid + both MLPs) for this
    /// configuration, without instantiating a model.
    pub fn param_count(&self) -> usize {
        let enc = self.grid.param_count();
        let d_in = self.grid.output_dim();
        let d_out = 1 + self.geo_feature_dim;
        let density = d_in * self.hidden_dim + self.hidden_dim + self.hidden_dim * d_out + d_out;
        let c_in = self.geo_feature_dim + SH_DIM;
        let color = c_in * self.hidden_dim
            + self.hidden_dim
            + self.hidden_dim * self.hidden_dim
            + self.hidden_dim
            + self.hidden_dim * 3
            + 3;
        enc + density + color
    }
}

/// Density and color of a point evaluated by the field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointEval {
    /// Volume density `σ ≥ 0`.
    pub sigma: f32,
    /// RGB radiance in `[0, 1]`.
    pub color: Vec3,
}

/// Forward-pass state for one sample point, retained for the backward
/// pass. Reusable across points to avoid allocation.
#[derive(Debug, Clone, Default)]
pub struct PointContext {
    encoded: Vec<f32>,
    density_cache: MlpCache,
    color_cache: MlpCache,
    color_input: Vec<f32>,
    sigma: f32,
    raw_clamped: bool,
}

impl PointContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        PointContext::default()
    }
}

/// Gradient buffers matching a [`NerfModel`]'s three parameter groups.
#[derive(Debug, Clone)]
pub struct ModelGrads {
    /// Hash-grid gradients.
    pub grid: Vec<f32>,
    /// Density-MLP gradients.
    pub density: Vec<f32>,
    /// Color-MLP gradients.
    pub color: Vec<f32>,
}

impl ModelGrads {
    /// Resets all gradients to zero.
    pub fn zero(&mut self) {
        self.grid.iter_mut().for_each(|g| *g = 0.0);
        self.density.iter_mut().for_each(|g| *g = 0.0);
        self.color.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Total number of gradient entries.
    pub fn len(&self) -> usize {
        self.grid.len() + self.density.len() + self.color.len()
    }

    /// Whether the buffers are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `other`'s gradients into `self` element-wise. Used to merge
    /// per-shard gradient buffers in shard-index order after a parallel
    /// training step, keeping the f32 accumulation order fixed.
    ///
    /// # Panics
    ///
    /// Panics if the buffer shapes differ.
    pub fn accumulate(&mut self, other: &ModelGrads) {
        assert_eq!(self.grid.len(), other.grid.len(), "grid gradient shape mismatch");
        assert_eq!(self.density.len(), other.density.len(), "density gradient shape mismatch");
        assert_eq!(self.color.len(), other.color.len(), "color gradient shape mismatch");
        self.grid.iter_mut().zip(&other.grid).for_each(|(a, b)| *a += b);
        self.density.iter_mut().zip(&other.density).for_each(|(a, b)| *a += b);
        self.color.iter_mut().zip(&other.color).for_each(|(a, b)| *a += b);
    }
}

/// Adam optimizer states for a model's three parameter groups.
#[derive(Debug, Clone)]
pub struct ModelOptimizer {
    grid: Adam,
    density: Adam,
    color: Adam,
}

impl ModelOptimizer {
    /// Creates optimizer state for `model` with the given settings.
    pub fn new<E: Encoding>(config: AdamConfig, model: &NerfModel<E>) -> Self {
        ModelOptimizer {
            grid: Adam::new(config, model.encoding.param_count()),
            density: Adam::new(config, model.density_mlp.param_count()),
            color: Adam::new(config, model.color_mlp.param_count()),
        }
    }

    /// Applies one update step from the accumulated gradients.
    pub fn step<E: Encoding>(&mut self, model: &mut NerfModel<E>, grads: &ModelGrads) {
        self.grid.step(model.encoding.params_mut(), &grads.grid);
        self.density.step(model.density_mlp.params_mut(), &grads.density);
        self.color.step(model.color_mlp.params_mut(), &grads.color);
    }

    /// Sets the learning rate on all three groups.
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.grid.set_learning_rate(lr);
        self.density.set_learning_rate(lr);
        self.color.set_learning_rate(lr);
    }
}

/// A trainable NeRF field, generic over its spatial [`Encoding`]
/// (multiresolution hash grid by default).
#[derive(Debug, Clone)]
pub struct NerfModel<E: Encoding = HashGrid> {
    encoding: E,
    density_mlp: Mlp,
    color_mlp: Mlp,
    geo_feature_dim: usize,
}

impl NerfModel<HashGrid> {
    /// Creates a hash-grid model with randomly initialized parameters.
    ///
    /// # Panics
    ///
    /// Panics if the grid configuration is invalid or `hidden_dim` /
    /// `geo_feature_dim` is zero.
    pub fn new<R: Rng>(config: ModelConfig, rng: &mut R) -> Self {
        let grid = HashGrid::with_random_init(config.grid, rng);
        NerfModel::with_encoding(grid, config.hidden_dim, config.geo_feature_dim, rng)
    }
}

impl<E: Encoding> NerfModel<E> {
    /// Builds a model around an arbitrary spatial encoding (e.g. a
    /// [`crate::dense_grid::DenseGrid`] for TensoRF-class pipelines).
    ///
    /// # Panics
    ///
    /// Panics if `hidden_dim` or `geo_feature_dim` is zero.
    pub fn with_encoding<R: Rng>(
        encoding: E,
        hidden_dim: usize,
        geo_feature_dim: usize,
        rng: &mut R,
    ) -> Self {
        assert!(hidden_dim > 0, "hidden_dim must be positive");
        assert!(geo_feature_dim > 0, "geo_feature_dim must be positive");
        let density_mlp = Mlp::new(
            &[encoding.output_dim(), hidden_dim, 1 + geo_feature_dim],
            Activation::Relu,
            Activation::None,
            rng,
        );
        let color_mlp = Mlp::new(
            &[geo_feature_dim + SH_DIM, hidden_dim, hidden_dim, 3],
            Activation::Relu,
            Activation::Sigmoid,
            rng,
        );
        NerfModel { encoding, density_mlp, color_mlp, geo_feature_dim }
    }

    /// The number of geometric features handed from the density to the
    /// color network.
    #[inline]
    pub fn geo_feature_dim(&self) -> usize {
        self.geo_feature_dim
    }

    /// The spatial encoding (Stage II parameters) — a hash grid by
    /// default.
    #[inline]
    pub fn grid(&self) -> &E {
        &self.encoding
    }

    /// Mutable access to the spatial encoding (used by quantization
    /// experiments).
    #[inline]
    pub fn grid_mut(&mut self) -> &mut E {
        &mut self.encoding
    }

    /// The density MLP.
    #[inline]
    pub fn density_mlp(&self) -> &Mlp {
        &self.density_mlp
    }

    /// Mutable access to the density MLP.
    #[inline]
    pub fn density_mlp_mut(&mut self) -> &mut Mlp {
        &mut self.density_mlp
    }

    /// The color MLP.
    #[inline]
    pub fn color_mlp(&self) -> &Mlp {
        &self.color_mlp
    }

    /// Mutable access to the color MLP.
    #[inline]
    pub fn color_mlp_mut(&mut self) -> &mut Mlp {
        &mut self.color_mlp
    }

    /// Total learnable parameters.
    pub fn param_count(&self) -> usize {
        self.encoding.param_count() + self.density_mlp.param_count() + self.color_mlp.param_count()
    }

    /// Allocates zeroed gradient buffers for this model.
    pub fn alloc_grads(&self) -> ModelGrads {
        ModelGrads {
            // lint: allow(h2): gradient buffers allocated once per
            // shard at setup, then reused by every step
            grid: vec![0.0; self.encoding.param_count()],
            // lint: allow(h2): same — one-time setup allocation
            density: vec![0.0; self.density_mlp.param_count()],
            // lint: allow(h2): same — one-time setup allocation
            color: vec![0.0; self.color_mlp.param_count()],
        }
    }

    /// The density activation: `σ = exp(clamp(raw))`, returning the
    /// density and whether the clamp bound.
    #[inline]
    fn density_activation(raw: f32) -> (f32, bool) {
        let clamped = raw.clamp(-RAW_DENSITY_CLAMP, RAW_DENSITY_CLAMP);
        (clamped.exp(), clamped != raw)
    }

    /// Evaluates density only (used for occupancy-grid refreshes).
    pub fn density_at(&self, p: Vec3) -> f32 {
        let mut cache = MlpCache::new();
        // lint: allow(h2): occupancy-refresh probe path — runs per
        // grid refresh, not per sample
        let mut encoded = vec![0.0; self.encoding.output_dim()];
        self.encoding.interpolate(p, &mut encoded);
        let out = self.density_mlp.forward(&encoded, &mut cache);
        Self::density_activation(out[0]).0
    }

    /// Full forward pass for one sample point, retaining the state
    /// needed by [`NerfModel::backward`] in `ctx`.
    pub fn forward(&self, position: Vec3, direction: Vec3, ctx: &mut PointContext) -> PointEval {
        ctx.encoded.resize(self.encoding.output_dim(), 0.0);
        self.encoding.interpolate(position, &mut ctx.encoded);
        let d_out: Vec<f32> = {
            let out = self.density_mlp.forward(&ctx.encoded, &mut ctx.density_cache);
            // lint: allow(h2): scalar reference path — the batched
            // pipeline uses forward_batch
            out.to_vec()
        };
        let (sigma, clamped) = Self::density_activation(d_out[0]);
        ctx.sigma = sigma;
        ctx.raw_clamped = clamped;

        let mut sh = [0.0f32; SH_DIM];
        sh_encode(direction.to_array(), &mut sh);
        ctx.color_input.clear();
        ctx.color_input.extend_from_slice(&d_out[1..]);
        ctx.color_input.extend_from_slice(&sh);
        let rgb = self.color_mlp.forward(&ctx.color_input, &mut ctx.color_cache);
        PointEval { sigma, color: Vec3::new(rgb[0], rgb[1], rgb[2]) }
    }

    /// Backward pass for one sample point previously run through
    /// [`NerfModel::forward`] with `ctx`.
    ///
    /// `d_sigma` and `d_color` are the loss gradients w.r.t. the
    /// point's density and color; parameter gradients are accumulated
    /// into `grads`.
    pub fn backward(
        &self,
        position: Vec3,
        ctx: &PointContext,
        d_sigma: f32,
        d_color: Vec3,
        grads: &mut ModelGrads,
    ) {
        // Color MLP backward.
        let d_rgb = [d_color.x, d_color.y, d_color.z];
        // lint: allow(h2): scalar reference path — the batched
        // pipeline uses backward_batch
        let mut d_color_in = vec![0.0f32; self.color_mlp.input_dim()];
        self.color_mlp.backward(&ctx.color_cache, &d_rgb, &mut d_color_in, &mut grads.color);

        // Density MLP backward: output 0 is the density logit
        // (dσ/draw = σ through the exponential, zero where clamped);
        // outputs 1.. are the geometric features feeding the color
        // network.
        // lint: allow(h2): scalar reference path — see `d_color_in`
        let mut d_density_out = vec![0.0f32; self.density_mlp.output_dim()];
        d_density_out[0] = if ctx.raw_clamped { 0.0 } else { d_sigma * ctx.sigma };
        d_density_out[1..].copy_from_slice(&d_color_in[..self.geo_feature_dim]);
        // lint: allow(h2): scalar reference path — see `d_color_in`
        let mut d_encoded = vec![0.0f32; self.density_mlp.input_dim()];
        self.density_mlp.backward(
            &ctx.density_cache,
            &d_density_out,
            &mut d_encoded,
            &mut grads.density,
        );

        // Encoding backward: scatter into the feature tables.
        self.encoding.backward(position, &d_encoded, &mut grads.grid);
    }

    /// Sizes `scratch` for a batch of `n` samples of this model so the
    /// batched kernels never allocate inside their sample loops.
    fn begin_batch(&self, scratch: &mut KernelScratch, n: usize) {
        scratch.resize(
            n,
            self.encoding.output_dim(),
            self.density_mlp.output_dim(),
            self.color_mlp.input_dim(),
        );
        self.encoding.reserve_batch_scratch(&mut scratch.enc, n);
        scratch.density_cache.begin(self.density_mlp.dims(), n);
        scratch.color_cache.begin(self.color_mlp.dims(), n);
    }

    /// Full forward pass for one ray's batch of sample points, the
    /// batched counterpart of [`NerfModel::forward`]: all positions
    /// share `direction` (one SH evaluation per ray instead of one per
    /// sample). Results land in [`KernelScratch::sigma`] /
    /// [`KernelScratch::color`]; the scratch retains everything
    /// [`NerfModel::backward_batch`] needs.
    ///
    /// Bitwise-identical to looping the scalar forward over the batch
    /// — the `reference` module's differential tests enforce this.
    pub fn forward_batch(&self, positions: &[Vec3], direction: Vec3, scratch: &mut KernelScratch) {
        self.forward_batch_impl(positions, direction, scratch, true);
    }

    /// [`NerfModel::forward_batch`] for inference: identical results,
    /// but the encoding retains nothing for a backward pass, skipping
    /// the corner-address/weight spill training needs. The render
    /// pipeline uses this; calling [`NerfModel::backward_batch`] after
    /// it recomputes the corner data instead of reusing it.
    pub fn forward_batch_infer(
        &self,
        positions: &[Vec3],
        direction: Vec3,
        scratch: &mut KernelScratch,
    ) {
        self.forward_batch_impl(positions, direction, scratch, false);
    }

    fn forward_batch_impl(
        &self,
        positions: &[Vec3],
        direction: Vec3,
        scratch: &mut KernelScratch,
        retain: bool,
    ) {
        let n = positions.len();
        self.begin_batch(scratch, n);
        #[cfg(debug_assertions)]
        let stamp = scratch.capacity_fingerprint();

        crate::probe!({
            let (dense, hashed) = self.encoding.gather_locality();
            scratch.probes.encode_batches += 1;
            scratch.probes.encode_points += n as u64;
            scratch.probes.gathers_dense += (dense * n) as u64;
            scratch.probes.gathers_hashed += (hashed * n) as u64;
            scratch.probes.mlp_forward_batches += 1;
            scratch.probes.mlp_forward_samples += n as u64;
        });

        // Stage II: level-major batched gather.
        let enc_dim = self.encoding.output_dim();
        if retain {
            self.encoding.interpolate_batch(
                positions,
                &mut scratch.encoded[..n * enc_dim],
                &mut scratch.enc,
            );
        } else {
            self.encoding.interpolate_batch_infer(positions, &mut scratch.encoded[..n * enc_dim]);
        }

        // Density network over the whole batch.
        self.density_mlp.forward_batch(
            &scratch.encoded[..n * enc_dim],
            n,
            &mut scratch.density_cache,
        );

        // Density activation + color-network input assembly. The SH
        // view encoding depends only on the ray direction, so it is
        // evaluated once and broadcast to every sample.
        let mut sh = [0.0f32; SH_DIM];
        sh_encode(direction.to_array(), &mut sh);
        let d_out_dim = self.density_mlp.output_dim();
        let c_in = self.color_mlp.input_dim();
        {
            let d_out = scratch.density_cache.output();
            for s in 0..n {
                let row = &d_out[s * d_out_dim..(s + 1) * d_out_dim];
                let (sigma, clamped) = Self::density_activation(row[0]);
                scratch.sigma[s] = sigma;
                scratch.raw_clamped[s] = clamped;
                let ci = &mut scratch.color_input[s * c_in..(s + 1) * c_in];
                ci[..self.geo_feature_dim].copy_from_slice(&row[1..]);
                ci[self.geo_feature_dim..].copy_from_slice(&sh);
            }
        }

        // Color network over the whole batch.
        self.color_mlp.forward_batch(&scratch.color_input[..n * c_in], n, &mut scratch.color_cache);
        {
            let rgb = scratch.color_cache.output();
            for (s, c) in scratch.color[..n].iter_mut().enumerate() {
                *c = Vec3::new(rgb[s * 3], rgb[s * 3 + 1], rgb[s * 3 + 2]);
            }
        }

        #[cfg(debug_assertions)]
        debug_assert_eq!(
            stamp,
            scratch.capacity_fingerprint(),
            "batched forward allocated inside the kernel"
        );
    }

    /// Backward pass for the batch previously run through
    /// [`NerfModel::forward_batch`] with `scratch`, the batched
    /// counterpart of [`NerfModel::backward`].
    ///
    /// `d_sigma[i]` / `d_color[i]` are the loss gradients w.r.t.
    /// sample `i`'s density and color; parameter gradients accumulate
    /// into `grads` with every element's per-sample contributions in
    /// ascending sample order, so the result is bitwise-identical to
    /// looping the scalar backward.
    ///
    /// # Panics
    ///
    /// Panics if `positions`, `d_sigma`, or `d_color` disagree with
    /// the batch length of the last forward pass.
    pub fn backward_batch(
        &self,
        positions: &[Vec3],
        d_sigma: &[f32],
        d_color: &[Vec3],
        scratch: &mut KernelScratch,
        grads: &mut ModelGrads,
    ) {
        let n = scratch.batch;
        assert_eq!(positions.len(), n, "position batch does not match the forward pass");
        assert_eq!(d_sigma.len(), n, "density gradient batch size mismatch");
        assert_eq!(d_color.len(), n, "color gradient batch size mismatch");
        #[cfg(debug_assertions)]
        let stamp = scratch.capacity_fingerprint();

        crate::probe!({
            scratch.probes.mlp_backward_batches += 1;
            scratch.probes.mlp_backward_samples += n as u64;
        });

        // Color MLP backward over the whole batch.
        for (row, d) in scratch.d_rgb[..n * 3].chunks_exact_mut(3).zip(d_color.iter()) {
            row[0] = d.x;
            row[1] = d.y;
            row[2] = d.z;
        }
        let c_in = self.color_mlp.input_dim();
        self.color_mlp.backward_batch(
            &mut scratch.color_cache,
            &scratch.d_rgb[..n * 3],
            &mut scratch.d_color_in[..n * c_in],
            &mut grads.color,
        );

        // Density MLP backward: output 0 is the density logit (dσ/draw
        // = σ through the exponential, zero where clamped); outputs
        // 1.. are the geometric features feeding the color network.
        let d_out_dim = self.density_mlp.output_dim();
        for (s, &ds) in d_sigma.iter().take(n).enumerate() {
            let row = &mut scratch.d_density_out[s * d_out_dim..(s + 1) * d_out_dim];
            row[0] = if scratch.raw_clamped[s] { 0.0 } else { ds * scratch.sigma[s] };
            row[1..]
                .copy_from_slice(&scratch.d_color_in[s * c_in..s * c_in + self.geo_feature_dim]);
        }
        let enc_dim = self.density_mlp.input_dim();
        self.density_mlp.backward_batch(
            &mut scratch.density_cache,
            &scratch.d_density_out[..n * d_out_dim],
            &mut scratch.d_encoded[..n * enc_dim],
            &mut grads.density,
        );

        // Encoding backward: level-major scatter reusing the corner
        // addresses and weights prepared by the forward pass.
        self.encoding.backward_batch(
            positions,
            &scratch.d_encoded[..n * enc_dim],
            &mut grads.grid,
            &mut scratch.enc,
        );

        #[cfg(debug_assertions)]
        debug_assert_eq!(
            stamp,
            scratch.capacity_fingerprint(),
            "batched backward allocated inside the kernel"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::HashGridConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            grid: HashGridConfig {
                levels: 3,
                features_per_level: 2,
                log2_table_size: 8,
                base_resolution: 4,
                max_resolution: 16,
            },
            hidden_dim: 8,
            geo_feature_dim: 3,
        }
    }

    fn tiny_model(seed: u64) -> NerfModel {
        let mut rng = SmallRng::seed_from_u64(seed);
        NerfModel::new(tiny_config(), &mut rng)
    }

    #[test]
    fn param_count_matches_config_prediction() {
        let model = tiny_model(0);
        assert_eq!(model.param_count(), tiny_config().param_count());
        let grads = model.alloc_grads();
        assert_eq!(grads.len(), model.param_count());
        assert!(!grads.is_empty());
    }

    #[test]
    fn forward_produces_valid_outputs() {
        let model = tiny_model(1);
        let mut ctx = PointContext::new();
        let eval = model.forward(Vec3::splat(0.4), Vec3::Z, &mut ctx);
        assert!(eval.sigma >= 0.0 && eval.sigma.is_finite());
        for c in eval.color.to_array() {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn density_at_matches_forward_sigma() {
        let model = tiny_model(2);
        let p = Vec3::new(0.2, 0.7, 0.5);
        let mut ctx = PointContext::new();
        let eval = model.forward(p, Vec3::X, &mut ctx);
        assert!((model.density_at(p) - eval.sigma).abs() < 1e-6);
    }

    #[test]
    fn color_depends_on_view_direction() {
        // With random weights the SH features almost surely influence
        // the output; verify view dependence exists.
        let model = tiny_model(3);
        let mut ctx = PointContext::new();
        let p = Vec3::splat(0.5);
        let a = model.forward(p, Vec3::X, &mut ctx).color;
        let b = model.forward(p, -Vec3::X, &mut ctx).color;
        assert!((a - b).length() > 1e-6, "color should be view-dependent");
    }

    #[test]
    fn backward_matches_finite_differences_on_grid_params() {
        let mut model = tiny_model(4);
        let p = Vec3::new(0.31, 0.47, 0.63);
        let dir = Vec3::new(0.4, -0.3, 0.8).normalize();
        let (d_sigma, d_color) = (0.7f32, Vec3::new(1.0, -0.5, 0.25));

        let mut ctx = PointContext::new();
        model.forward(p, dir, &mut ctx);
        let mut grads = model.alloc_grads();
        model.backward(p, &ctx, d_sigma, d_color, &mut grads);

        let loss = |m: &NerfModel| {
            let mut c = PointContext::new();
            let e = m.forward(p, dir, &mut c);
            d_sigma * e.sigma + d_color.dot(e.color)
        };

        // Check nonzero grid gradients against central differences.
        let h = 1e-3f32;
        let nonzero: Vec<usize> =
            grads.grid.iter().enumerate().filter(|(_, g)| g.abs() > 1e-4).map(|(i, _)| i).collect();
        assert!(!nonzero.is_empty(), "expected nonzero grid gradients");
        for &i in nonzero.iter().take(12) {
            let orig = model.grid().params()[i];
            model.grid_mut().params_mut()[i] = orig + h;
            let up = loss(&model);
            model.grid_mut().params_mut()[i] = orig - h;
            let down = loss(&model);
            model.grid_mut().params_mut()[i] = orig;
            let fd = (up - down) / (2.0 * h);
            assert!(
                (fd - grads.grid[i]).abs() < 3e-2 * (1.0 + fd.abs()),
                "grid param {i}: fd {fd} vs analytic {}",
                grads.grid[i]
            );
        }
    }

    #[test]
    fn backward_matches_finite_differences_on_mlp_params() {
        let mut model = tiny_model(5);
        let p = Vec3::new(0.55, 0.25, 0.75);
        let dir = Vec3::Y;
        let (d_sigma, d_color) = (1.0f32, Vec3::splat(1.0));

        let mut ctx = PointContext::new();
        model.forward(p, dir, &mut ctx);
        let mut grads = model.alloc_grads();
        model.backward(p, &ctx, d_sigma, d_color, &mut grads);

        let loss = |m: &NerfModel| {
            let mut c = PointContext::new();
            let e = m.forward(p, dir, &mut c);
            d_sigma * e.sigma + d_color.dot(e.color)
        };
        let h = 1e-3f32;
        let mid = loss(&model);
        for i in (0..model.density_mlp.param_count()).step_by(11) {
            // A parameter with exactly-zero analytic gradient feeds a
            // dead ReLU unit; the finite difference can still be
            // nonzero because the perturbation crosses the kink.
            if grads.density[i] == 0.0 {
                continue;
            }
            let orig = model.density_mlp.params()[i];
            model.density_mlp_mut().params_mut()[i] = orig + h;
            let up = loss(&model);
            model.density_mlp_mut().params_mut()[i] = orig - h;
            let down = loss(&model);
            model.density_mlp_mut().params_mut()[i] = orig;
            // A live unit whose pre-activation sits within h of a ReLU
            // kink makes the one-sided differences disagree; the
            // central difference is meaningless across the kink.
            let (fwd, bwd) = ((up - mid) / h, (mid - down) / h);
            if (fwd - bwd).abs() > 0.25 * (fwd.abs() + bwd.abs()).max(1e-3) {
                continue;
            }
            let fd = (up - down) / (2.0 * h);
            assert!(
                (fd - grads.density[i]).abs() < 5e-2 * (1.0 + fd.abs()),
                "density param {i}: fd {fd} vs analytic {}",
                grads.density[i]
            );
        }
        for i in (0..model.color_mlp.param_count()).step_by(13) {
            if grads.color[i] == 0.0 {
                continue;
            }
            let orig = model.color_mlp.params()[i];
            model.color_mlp_mut().params_mut()[i] = orig + h;
            let up = loss(&model);
            model.color_mlp_mut().params_mut()[i] = orig - h;
            let down = loss(&model);
            model.color_mlp_mut().params_mut()[i] = orig;
            let (fwd, bwd) = ((up - mid) / h, (mid - down) / h);
            if (fwd - bwd).abs() > 0.25 * (fwd.abs() + bwd.abs()).max(1e-3) {
                continue;
            }
            let fd = (up - down) / (2.0 * h);
            assert!(
                (fd - grads.color[i]).abs() < 5e-2 * (1.0 + fd.abs()),
                "color param {i}: fd {fd} vs analytic {}",
                grads.color[i]
            );
        }
    }

    #[test]
    fn optimizer_reduces_pointwise_loss() {
        // Push the model to output sigma -> 0 and color -> 1 at a
        // point; a few Adam steps must reduce the loss.
        let mut model = tiny_model(6);
        let mut opt = ModelOptimizer::new(
            AdamConfig { learning_rate: 1e-2, ..AdamConfig::default() },
            &model,
        );
        let p = Vec3::splat(0.5);
        let dir = Vec3::Z;
        let loss_of = |m: &NerfModel| {
            let mut c = PointContext::new();
            let e = m.forward(p, dir, &mut c);
            e.sigma + (e.color - Vec3::ONE).length_squared()
        };
        let initial = loss_of(&model);
        let mut grads = model.alloc_grads();
        for _ in 0..60 {
            let mut ctx = PointContext::new();
            let e = model.forward(p, dir, &mut ctx);
            grads.zero();
            model.backward(p, &ctx, 1.0, (e.color - Vec3::ONE) * 2.0, &mut grads);
            opt.step(&mut model, &grads);
        }
        let final_loss = loss_of(&model);
        assert!(final_loss < initial * 0.5, "loss did not drop: {initial} -> {final_loss}");
    }
}
