//! Stage III: volumetric rendering (compositing) with forward and
//! backward passes.
//!
//! The renderer integrates per-sample densities and colors along a ray
//! using the standard NeRF quadrature:
//!
//! ```text
//! α_i = 1 − exp(−σ_i · δt_i)
//! T_i = Π_{j<i} (1 − α_j)
//! C   = Σ_i T_i · α_i · c_i + T_N · background
//! ```
//!
//! The backward pass distributes a pixel-color gradient onto every
//! sample's density and color — the inverse dataflow that, together
//! with Stage II's gather/scatter pair, motivates the accelerator's
//! shared reconfigurable pipeline (Technique T2-1).

use crate::math::Vec3;

/// Maximum value of `σ · δt` per sample; caps `α` below 1 so the
/// backward pass stays finite.
const MAX_SIGMA_DT: f32 = 15.0;

/// Density and color of one sample point, ready for compositing.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShadedSample {
    /// Volume density `σ ≥ 0`.
    pub sigma: f32,
    /// RGB radiance in `[0, 1]`.
    pub color: Vec3,
    /// Integration interval `δt`.
    pub dt: f32,
}

/// The output of compositing one ray.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeOutput {
    /// Final pixel color (including the background contribution).
    pub color: Vec3,
    /// Transmittance remaining after the last sample (the background
    /// weight).
    pub final_transmittance: f32,
    /// Per-sample blend weight `w_i = T_i · α_i`.
    pub weights: Vec<f32>,
}

/// Gradient of the loss with respect to one sample, produced by
/// [`composite_backward`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleGrad {
    /// `∂L/∂σ_i`.
    pub d_sigma: f32,
    /// `∂L/∂c_i`.
    pub d_color: Vec3,
}

/// Composites samples front to back.
///
/// `early_stop` enables inference-mode early ray termination: once the
/// transmittance falls below `1e-4` the remaining samples are skipped
/// (their weights are zero). Training must pass `false` so that the
/// forward pass matches the backward pass exactly.
pub fn composite(samples: &[ShadedSample], background: Vec3, early_stop: bool) -> CompositeOutput {
    // lint: allow(h1): convenience path — hot loops reuse a buffer via composite_into
    let mut weights = Vec::new();
    let (color, final_transmittance) =
        composite_into(samples, background, early_stop, &mut weights);
    CompositeOutput { color, final_transmittance, weights }
}

/// [`composite`] writing the per-sample weights into a caller-owned
/// buffer, so the render and training hot loops can reuse one `Vec`
/// per worker instead of allocating per ray. `weights` is cleared and
/// resized to `samples.len()`; returns the pixel color and the final
/// transmittance. Bitwise-identical to [`composite`].
pub fn composite_into(
    samples: &[ShadedSample],
    background: Vec3,
    early_stop: bool,
    weights: &mut Vec<f32>,
) -> (Vec3, f32) {
    let mut color = Vec3::ZERO;
    let mut transmittance = 1.0f32;
    weights.clear();
    weights.resize(samples.len(), 0.0);
    for (s, w_out) in samples.iter().zip(weights.iter_mut()) {
        if early_stop && transmittance < 1e-4 {
            break;
        }
        let alpha = 1.0 - (-(s.sigma * s.dt).min(MAX_SIGMA_DT)).exp();
        let w = transmittance * alpha;
        color += s.color * w;
        *w_out = w;
        transmittance *= 1.0 - alpha;
    }
    color += background * transmittance;
    (color, transmittance)
}

/// Backward pass of [`composite`]: given `d_color = ∂L/∂C`, returns
/// `∂L/∂σ_i` and `∂L/∂c_i` for every sample.
///
/// Uses the suffix-sum identity
/// `∂C/∂σ_i = δt_i · (T_{i+1} · c_i − S_i)` where
/// `S_i = Σ_{j>i} w_j c_j + T_N · background`, avoiding any division.
pub fn composite_backward(
    samples: &[ShadedSample],
    background: Vec3,
    d_color: Vec3,
) -> Vec<SampleGrad> {
    let mut grads = Vec::with_capacity(samples.len());
    composite_backward_into(samples, background, d_color, &mut grads);
    grads
}

/// [`composite_backward`] writing into a caller-owned buffer, so the
/// training hot loop can reuse one `Vec` per worker instead of
/// allocating per ray. `grads` is cleared first; no other temporary
/// buffers are allocated.
pub fn composite_backward_into(
    samples: &[ShadedSample],
    background: Vec3,
    d_color: Vec3,
    grads: &mut Vec<SampleGrad>,
) {
    grads.clear();
    // Forward quantities (no early stop: must mirror training forward).
    // Each entry temporarily stashes what the reverse sweep needs —
    // `T_i` in `d_sigma` and `α_i` in `d_color.x` — so the pass needs
    // no side buffers for the transmittance prefix.
    let mut transmittance = 1.0f32;
    for s in samples {
        let alpha = 1.0 - (-(s.sigma * s.dt).min(MAX_SIGMA_DT)).exp();
        // lint: allow(h2): amortized — the caller-owned vec is cleared,
        // not dropped, so capacity is retained across rays
        grads.push(SampleGrad { d_sigma: transmittance, d_color: Vec3::new(alpha, 0.0, 0.0) });
        transmittance *= 1.0 - alpha;
    }
    let t_final = transmittance;
    debug_assert_eq!(grads.len(), samples.len(), "one stash entry per sample");

    // Backward sweep with the suffix sum S, replacing each stash with
    // the real gradient. `t_next` carries `T_{i+1}` (the stash of
    // entry `i + 1`, or `T_N` for the last sample).
    let mut suffix = background * t_final;
    let mut t_next = t_final;
    for i in (0..samples.len()).rev() {
        let t_i = grads[i].d_sigma;
        let alpha = grads[i].d_color.x;
        let w = t_i * alpha;
        let s = &samples[i];
        // ∂C/∂σ_i = δt_i (T_{i+1} c_i − S_i).
        let dc_dsigma = s.color * (t_next * s.dt) - suffix * s.dt;
        grads[i] = SampleGrad { d_sigma: d_color.dot(dc_dsigma), d_color: d_color * w };
        suffix += s.color * w;
        t_next = t_i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(sigma: f32, color: Vec3, dt: f32) -> ShadedSample {
        ShadedSample { sigma, color, dt }
    }

    #[test]
    fn empty_ray_returns_background() {
        let out = composite(&[], Vec3::new(0.2, 0.4, 0.6), false);
        assert_eq!(out.color, Vec3::new(0.2, 0.4, 0.6));
        assert_eq!(out.final_transmittance, 1.0);
        assert!(out.weights.is_empty());
    }

    #[test]
    fn opaque_sample_dominates() {
        let samples = [
            sample(1000.0, Vec3::new(1.0, 0.0, 0.0), 0.1),
            sample(1000.0, Vec3::new(0.0, 1.0, 0.0), 0.1),
        ];
        let out = composite(&samples, Vec3::ONE, false);
        // First sample is effectively opaque: pixel is red.
        assert!(out.color.x > 0.999);
        assert!(out.color.y < 1e-3);
        assert!(out.final_transmittance < 1e-6);
        assert!(out.weights[0] > 0.999);
        assert!(out.weights[1] < 1e-3);
    }

    #[test]
    fn zero_density_is_transparent() {
        let samples = [sample(0.0, Vec3::X, 0.5); 4];
        let out = composite(&samples, Vec3::new(0.0, 0.0, 1.0), false);
        assert_eq!(out.color, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(out.final_transmittance, 1.0);
        assert!(out.weights.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn weights_plus_final_transmittance_sum_to_one() {
        let samples =
            [sample(2.0, Vec3::X, 0.3), sample(1.0, Vec3::Y, 0.2), sample(4.0, Vec3::Z, 0.1)];
        let out = composite(&samples, Vec3::ZERO, false);
        let total: f32 = out.weights.iter().sum::<f32>() + out.final_transmittance;
        assert!((total - 1.0).abs() < 1e-6, "partition of unity: {total}");
    }

    #[test]
    fn early_stop_skips_occluded_samples() {
        let mut samples = vec![sample(1000.0, Vec3::X, 0.1)];
        samples.extend(std::iter::repeat_n(sample(1.0, Vec3::Y, 0.1), 10));
        let eager = composite(&samples, Vec3::ZERO, true);
        let exact = composite(&samples, Vec3::ZERO, false);
        assert!((eager.color - exact.color).length() < 1e-4);
        // Early-stopped weights for the tail are exactly zero.
        assert!(eager.weights[5..].iter().all(|&w| w == 0.0));
    }

    #[test]
    fn alpha_saturation_is_clamped() {
        // Enormous sigma*dt must not produce NaN/inf.
        let samples = [sample(1e30, Vec3::X, 1e10)];
        let out = composite(&samples, Vec3::ZERO, false);
        assert!(out.color.is_finite());
        let grads = composite_backward(&samples, Vec3::ZERO, Vec3::ONE);
        assert!(grads[0].d_sigma.is_finite());
        assert!(grads[0].d_color.is_finite());
    }

    #[test]
    fn backward_color_gradient_equals_weight() {
        let samples = [
            sample(1.5, Vec3::new(0.2, 0.3, 0.4), 0.2),
            sample(0.7, Vec3::new(0.9, 0.1, 0.5), 0.3),
        ];
        let out = composite(&samples, Vec3::splat(0.5), false);
        let grads = composite_backward(&samples, Vec3::splat(0.5), Vec3::new(1.0, 0.0, 0.0));
        for (g, &w) in grads.iter().zip(&out.weights) {
            // dC_r/dc_i = w_i on the red channel, 0 elsewhere.
            assert!((g.d_color.x - w).abs() < 1e-6);
            assert_eq!(g.d_color.y, 0.0);
            assert_eq!(g.d_color.z, 0.0);
        }
    }

    #[test]
    fn backward_sigma_matches_finite_differences() {
        let base = vec![
            sample(1.2, Vec3::new(0.8, 0.2, 0.1), 0.25),
            sample(0.4, Vec3::new(0.1, 0.9, 0.3), 0.15),
            sample(2.5, Vec3::new(0.3, 0.3, 0.9), 0.30),
            sample(0.0, Vec3::new(0.5, 0.5, 0.5), 0.20),
        ];
        let bg = Vec3::new(0.2, 0.1, 0.0);
        // Scalar loss: dot(C, v) for an arbitrary direction v.
        let v = Vec3::new(0.7, -0.3, 1.1);
        let loss = |samples: &[ShadedSample]| composite(samples, bg, false).color.dot(v);
        let grads = composite_backward(&base, bg, v);
        let h = 1e-3;
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i].sigma += h;
            let mut minus = base.clone();
            minus[i].sigma -= h;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * h);
            assert!(
                (fd - grads[i].d_sigma).abs() < 1e-3 * (1.0 + fd.abs()),
                "sample {i}: fd {fd} vs analytic {}",
                grads[i].d_sigma
            );
        }
    }

    #[test]
    fn backward_includes_background_interaction() {
        // Raising sigma of the only sample reduces the background
        // contribution: with a bright background and dark sample the
        // sigma gradient of dot(C, 1) must be negative.
        let samples = [sample(1.0, Vec3::ZERO, 0.5)];
        let grads = composite_backward(&samples, Vec3::ONE, Vec3::ONE);
        assert!(grads[0].d_sigma < 0.0);
        // And positive with a dark background and bright sample.
        let grads = composite_backward(&[sample(1.0, Vec3::ONE, 0.5)], Vec3::ZERO, Vec3::ONE);
        assert!(grads[0].d_sigma > 0.0);
    }
}
