//! Scalar reference kernels for differential testing of the batched
//! hot path.
//!
//! Every function here evaluates the same mathematics as the batched
//! kernels in [`crate::encoding`], [`crate::mlp`], and
//! [`crate::model`], but one sample at a time through the original
//! scalar entry points. The batched kernels carry a bitwise-
//! determinism contract: for identical inputs they must produce
//! bit-for-bit identical f32 results to these loops. The differential
//! tests in `tests/batched_kernels.rs` enforce that contract at
//! several batch sizes, including sizes that are not multiples of the
//! GEMM tile widths.
//!
//! These functions allocate freely and are deliberately unoptimized —
//! they exist to be obviously correct, not fast. Production code paths
//! must use the batched kernels.

use crate::encoding::Encoding;
use crate::math::Vec3;
use crate::mlp::{Mlp, MlpCache};
use crate::model::{ModelGrads, NerfModel, PointContext};

/// Encodes every position through the scalar [`Encoding::interpolate`]
/// path, returning point-major rows of `encoding.output_dim()`
/// features.
pub fn encode_points<E: Encoding>(encoding: &E, positions: &[Vec3]) -> Vec<f32> {
    let dim = encoding.output_dim();
    let mut out = vec![0.0f32; positions.len() * dim];
    for (p, row) in positions.iter().zip(out.chunks_exact_mut(dim)) {
        encoding.interpolate(*p, row);
    }
    out
}

/// Scatters feature gradients through the scalar
/// [`Encoding::backward`] path, accumulating into `grads`. `d_out`
/// holds point-major rows of `encoding.output_dim()` gradients.
///
/// # Panics
///
/// Panics if `d_out` is not `positions.len() * output_dim` long.
pub fn encode_backward<E: Encoding>(
    encoding: &E,
    positions: &[Vec3],
    d_out: &[f32],
    grads: &mut [f32],
) {
    let dim = encoding.output_dim();
    assert_eq!(d_out.len(), positions.len() * dim, "gradient rows do not match positions");
    for (p, row) in positions.iter().zip(d_out.chunks_exact(dim)) {
        encoding.backward(*p, row, grads);
    }
}

/// Runs `n` sample-major input rows through the scalar
/// [`Mlp::forward`] one at a time, returning sample-major output rows.
///
/// # Panics
///
/// Panics if `inputs` is not `n * mlp.input_dim()` long.
pub fn mlp_forward(mlp: &Mlp, inputs: &[f32], n: usize) -> Vec<f32> {
    let in_dim = mlp.input_dim();
    assert_eq!(inputs.len(), n * in_dim, "input rows do not match the batch size");
    let mut cache = MlpCache::new();
    let mut out = Vec::with_capacity(n * mlp.output_dim());
    for row in inputs.chunks_exact(in_dim) {
        out.extend_from_slice(mlp.forward(row, &mut cache));
    }
    out
}

/// Runs `n` samples through the scalar [`Mlp::forward`] /
/// [`Mlp::backward`] pair one at a time, returning
/// `(d_inputs, param_grads)` with per-element gradient contributions
/// accumulated in ascending sample order — the order the batched
/// [`Mlp::backward_batch`] reproduces bitwise.
///
/// # Panics
///
/// Panics if `inputs` or `d_outputs` do not match the batch size.
pub fn mlp_backward(
    mlp: &Mlp,
    inputs: &[f32],
    n: usize,
    d_outputs: &[f32],
) -> (Vec<f32>, Vec<f32>) {
    let in_dim = mlp.input_dim();
    let out_dim = mlp.output_dim();
    assert_eq!(inputs.len(), n * in_dim, "input rows do not match the batch size");
    assert_eq!(d_outputs.len(), n * out_dim, "gradient rows do not match the batch size");
    let mut cache = MlpCache::new();
    let mut d_inputs = vec![0.0f32; n * in_dim];
    let mut grads = vec![0.0f32; mlp.param_count()];
    for ((x, d_y), d_x) in inputs
        .chunks_exact(in_dim)
        .zip(d_outputs.chunks_exact(out_dim))
        .zip(d_inputs.chunks_exact_mut(in_dim))
    {
        mlp.forward(x, &mut cache);
        mlp.backward(&cache, d_y, d_x, &mut grads);
    }
    (d_inputs, grads)
}

/// Evaluates the full field through the scalar
/// [`NerfModel::forward`] per sample, returning `(sigmas, colors)`.
pub fn model_forward<E: Encoding>(
    model: &NerfModel<E>,
    positions: &[Vec3],
    direction: Vec3,
) -> (Vec<f32>, Vec<Vec3>) {
    let mut ctx = PointContext::new();
    let mut sigmas = Vec::with_capacity(positions.len());
    let mut colors = Vec::with_capacity(positions.len());
    for &p in positions {
        let eval = model.forward(p, direction, &mut ctx);
        sigmas.push(eval.sigma);
        colors.push(eval.color);
    }
    (sigmas, colors)
}

/// Backpropagates per-sample density/color gradients through the
/// scalar [`NerfModel::backward`] one sample at a time (forward `s`,
/// then backward `s`), returning the accumulated parameter gradients.
///
/// Within every parameter element the contributions land in ascending
/// sample order — the same order [`NerfModel::backward_batch`]
/// produces — so the result is bitwise-comparable to the batched path.
///
/// # Panics
///
/// Panics if `d_sigma` or `d_color` do not match `positions`.
pub fn model_backward<E: Encoding>(
    model: &NerfModel<E>,
    positions: &[Vec3],
    direction: Vec3,
    d_sigma: &[f32],
    d_color: &[Vec3],
) -> ModelGrads {
    assert_eq!(d_sigma.len(), positions.len(), "density gradients do not match positions");
    assert_eq!(d_color.len(), positions.len(), "color gradients do not match positions");
    let mut ctx = PointContext::new();
    let mut grads = model.alloc_grads();
    for ((&p, &ds), &dc) in positions.iter().zip(d_sigma).zip(d_color) {
        model.forward(p, direction, &mut ctx);
        model.backward(p, &ctx, ds, dc, &mut grads);
    }
    grads
}
