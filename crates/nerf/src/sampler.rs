//! Stage I: point sampling along rays.
//!
//! The sampler implements the algorithmic side of Technique T1:
//!
//! * **Model normalization & partitioning** (T1-1): rays are tested
//!   against the eight octant cubes of the normalized model space
//!   using the cheap unit-cube intersection; only valid ray–cube pairs
//!   proceed ([`ray_cube_pairs`]).
//! * Within each valid pair, points are marched at a fixed step and
//!   filtered through the occupancy grid, so only points in non-empty
//!   space reach Stages II/III.
//!
//! Per-ray workload statistics ([`RayWorkload`]) are captured for the
//! accelerator simulator, whose dynamic workload scheduler (T1-2)
//! dispatches whole rays onto sampling cores.

use crate::batch::SampleBatch;
use crate::math::{Aabb, Ray, TSpan, Vec3};
use crate::occupancy::OccupancyGrid;

/// Configuration of the ray-marching sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SamplerConfig {
    /// Number of equal steps across the model-cube diagonal; the march
    /// step is `sqrt(3) / steps_per_diagonal`.
    pub steps_per_diagonal: u32,
    /// Hard cap on retained samples per ray (the paper quotes 3–100
    /// samples per ray–cube pair).
    pub max_samples_per_ray: usize,
}

impl Default for SamplerConfig {
    /// 128 steps across the diagonal, at most 128 samples per ray —
    /// in the range of sample counts the paper reports for Stage I.
    fn default() -> Self {
        SamplerConfig { steps_per_diagonal: 128, max_samples_per_ray: 128 }
    }
}

impl SamplerConfig {
    /// The marching step length in normalized coordinates.
    #[inline]
    pub fn step(&self) -> f32 {
        3f32.sqrt() / self.steps_per_diagonal as f32
    }
}

/// One retained sample point on a ray.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RaySample {
    /// Ray parameter of the sample.
    pub t: f32,
    /// Integration interval assigned to the sample.
    pub dt: f32,
    /// Sample position in normalized model coordinates.
    pub position: Vec3,
    /// Octant cube (0..8) the sample belongs to, for workload
    /// accounting.
    pub cube: u8,
}

/// Per-ray workload statistics consumed by the accelerator simulator's
/// dynamic workload scheduler.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RayWorkload {
    /// Number of octant cubes the ray validly intersects (the paper:
    /// typically 1–3).
    pub valid_pairs: u8,
    /// Number of *retained* (occupied) samples per valid pair, in
    /// traversal order.
    pub samples_per_pair: Vec<u16>,
    /// Marching steps taken per valid pair (fine steps in occupied
    /// cells plus one DDA step per skipped empty cell) — the per-pair
    /// job length on a sampling core.
    pub steps_per_pair: Vec<u16>,
    /// Fine-lattice steps spanning each pair (`span / δt`), i.e. the
    /// cost a naive module without occupancy-grid DDA skipping would
    /// pay marching the pair.
    pub lattice_steps_per_pair: Vec<u16>,
}

impl RayWorkload {
    /// Total retained samples for the ray.
    pub fn total_samples(&self) -> u32 {
        self.samples_per_pair.iter().map(|&s| s as u32).sum()
    }

    /// Total marching steps for the ray.
    pub fn total_steps(&self) -> u32 {
        self.steps_per_pair.iter().map(|&s| s as u32).sum()
    }

    /// Total fine-lattice steps across the ray's spans (the naive
    /// module's marching cost).
    pub fn total_lattice_steps(&self) -> u32 {
        self.lattice_steps_per_pair.iter().map(|&s| s as u32).sum()
    }

    /// Empty-cell DDA skip steps (steps that produced no sample).
    pub fn total_skip_steps(&self) -> u32 {
        self.total_steps().saturating_sub(self.total_samples())
    }
}

/// Returns the valid ray–octant-cube pairs for a ray in normalized
/// model space, ordered by entry parameter (front to back).
///
/// Each pair is `(cube_index, span)`. Rays that miss the model cube
/// entirely return an empty vector and are discarded before reaching
/// the sampling cores.
pub fn ray_cube_pairs(ray: &Ray) -> Vec<(u8, TSpan)> {
    let mut pairs = Vec::new();
    ray_cube_pairs_into(ray, &mut pairs);
    pairs
}

/// [`ray_cube_pairs`] writing into a caller-owned buffer (cleared
/// first), so per-ray loops reuse one at-most-eight-entry vector
/// instead of allocating per ray. Identical output.
pub fn ray_cube_pairs_into(ray: &Ray, out: &mut Vec<(u8, TSpan)>) {
    out.clear();
    let octants = Aabb::unit_cube().octants();
    for (i, cube) in octants.iter().enumerate() {
        if let Some(span) = cube.intersect_general(ray) {
            // lint: allow(h2): amortized — pushes into the
            // caller-owned buffer this function exists to reuse
            out.push((i as u8, span));
        }
    }
    out.sort_by(|a, b| a.1.t_near.total_cmp(&b.1.t_near));
}

/// Marches a ray through the occupancy grid, returning the retained
/// samples and the ray's workload statistics.
///
/// The ray direction should be unit length so that `t` measures
/// distance. Sampling stops once `max_samples_per_ray` samples are
/// retained.
pub fn sample_ray(
    ray: &Ray,
    occupancy: &OccupancyGrid,
    config: &SamplerConfig,
) -> (Vec<RaySample>, RayWorkload) {
    let pairs = ray_cube_pairs(ray);
    let mut samples = Vec::new();
    let mut workload = RayWorkload {
        valid_pairs: pairs.len() as u8,
        samples_per_pair: Vec::with_capacity(pairs.len()),
        steps_per_pair: Vec::with_capacity(pairs.len()),
        lattice_steps_per_pair: Vec::with_capacity(pairs.len()),
    };
    let dt = config.step();
    'pairs: for (cube, span) in pairs {
        workload
            .lattice_steps_per_pair
            // lint: allow(h2): per-ray workload-tracing variant with
            // with_capacity'd output; shading uses sample_ray_into
            .push((span.length() / dt).ceil().min(u16::MAX as f32) as u16);
        let mut retained_in_pair = 0u16;
        let mut steps_in_pair = 0u16;
        // Offset the first sample half a step into the span so samples
        // sit at interval midpoints. All samples stay on this lattice:
        // empty-cell skips advance `t` to the next lattice point past
        // the cell exit, so occupancy pruning never moves a sample.
        let t0 = span.t_near + dt * 0.5;
        let mut t = t0;
        while t < span.t_far {
            steps_in_pair = steps_in_pair.saturating_add(1);
            let p = ray.at(t);
            if occupancy.is_occupied(p) {
                // lint: allow(h2): tracing variant — see above
                samples.push(RaySample { t, dt, position: p, cube });
                retained_in_pair += 1;
                if samples.len() >= config.max_samples_per_ray {
                    workload.samples_per_pair.push(retained_in_pair); // lint: allow(h2): tracing variant
                    workload.steps_per_pair.push(steps_in_pair); // lint: allow(h2): tracing variant
                    break 'pairs;
                }
                t += dt;
            } else {
                // Empty cell: one DDA step skips the whole cell
                // (Stage-I hardware walks the occupancy grid, not the
                // fine lattice, through empty space).
                let exit = occupancy.cell_exit_t(ray, t);
                let k = ((exit - t0) / dt).floor() + 1.0;
                t = (t0 + k * dt).max(t + dt);
            }
        }
        workload.samples_per_pair.push(retained_in_pair); // lint: allow(h2): tracing variant
        workload.steps_per_pair.push(steps_in_pair); // lint: allow(h2): tracing variant
    }
    (samples, workload)
}

/// [`sample_ray`] marching into a caller-owned [`SampleBatch`]
/// (cleared first) and skipping the workload bookkeeping — the
/// allocation-free Stage-I entry point of the batched render/train
/// hot path. Produces exactly the `t`/`δt`/position sequence of
/// [`sample_ray`]; per-cube statistics stay with the tracing path.
pub fn sample_ray_into(
    ray: &Ray,
    occupancy: &OccupancyGrid,
    config: &SamplerConfig,
    out: &mut SampleBatch,
) {
    out.clear();
    let mut pairs = std::mem::take(&mut out.pairs);
    ray_cube_pairs_into(ray, &mut pairs);
    let dt = config.step();
    'pairs: for &(_, span) in pairs.iter() {
        // Same lattice as `sample_ray`: first sample half a step into
        // the span, empty-cell DDA skips land back on the lattice.
        let t0 = span.t_near + dt * 0.5;
        let mut t = t0;
        while t < span.t_far {
            let p = ray.at(t);
            if occupancy.is_occupied(p) {
                // lint: allow(h2): amortized — caller-owned
                // SampleBatch cleared per ray within capacity
                out.push(t, dt, p);
                if out.len() >= config.max_samples_per_ray {
                    break 'pairs;
                }
                t += dt;
            } else {
                let exit = occupancy.cell_exit_t(ray, t);
                let k = ((exit - t0) / dt).floor() + 1.0;
                t = (t0 + k * dt).max(t + dt);
            }
        }
    }
    out.pairs = pairs;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_grid() -> OccupancyGrid {
        let mut g = OccupancyGrid::new(16, 0.0);
        g.fill();
        g
    }

    #[test]
    fn config_step_length() {
        let cfg = SamplerConfig { steps_per_diagonal: 100, max_samples_per_ray: 64 };
        assert!((cfg.step() - 3f32.sqrt() / 100.0).abs() < 1e-7);
    }

    #[test]
    fn axis_ray_intersects_two_octants() {
        // A ray down the middle of the +X axis at y = z = 0.25 passes
        // through octants 0 (low XYZ) and 1 (high X).
        let ray = Ray::new(Vec3::new(-1.0, 0.25, 0.25), Vec3::X);
        let pairs = ray_cube_pairs(&ray);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, 0);
        assert_eq!(pairs[1].0, 1);
        // Front-to-back ordering.
        assert!(pairs[0].1.t_near <= pairs[1].1.t_near);
    }

    #[test]
    fn diagonal_ray_can_intersect_more_octants() {
        let ray = Ray::new(Vec3::new(-0.5, -0.5, -0.5), Vec3::new(1.0, 1.0, 1.0).normalize());
        let pairs = ray_cube_pairs(&ray);
        // The main diagonal touches at least the two diagonal octants.
        assert!(pairs.len() >= 2);
        assert_eq!(pairs.first().unwrap().0, 0);
        assert_eq!(pairs.last().unwrap().0, 7);
    }

    #[test]
    fn missing_ray_yields_no_pairs() {
        let ray = Ray::new(Vec3::new(-1.0, 5.0, 0.5), Vec3::X);
        assert!(ray_cube_pairs(&ray).is_empty());
        let (samples, wl) = sample_ray(&ray, &full_grid(), &SamplerConfig::default());
        assert!(samples.is_empty());
        assert_eq!(wl.valid_pairs, 0);
        assert_eq!(wl.total_samples(), 0);
    }

    #[test]
    fn full_grid_retains_every_step() {
        let ray = Ray::new(Vec3::new(-1.0, 0.4, 0.45), Vec3::X);
        let cfg = SamplerConfig { steps_per_diagonal: 64, max_samples_per_ray: 1000 };
        let (samples, wl) = sample_ray(&ray, &full_grid(), &cfg);
        assert_eq!(samples.len() as u32, wl.total_samples());
        assert_eq!(wl.total_steps() as usize, samples.len());
        // The ray crosses a unit of distance; expect about 1/dt samples.
        let expected = (1.0 / cfg.step()) as usize;
        assert!(
            samples.len() >= expected - 2 && samples.len() <= expected + 2,
            "got {} samples, expected about {expected}",
            samples.len()
        );
        // Samples are ordered and inside the cube.
        for w in samples.windows(2) {
            assert!(w[0].t < w[1].t);
        }
        for s in &samples {
            assert!(Aabb::unit_cube().contains(s.position));
        }
    }

    #[test]
    fn empty_grid_filters_all_samples_but_counts_steps() {
        let g = OccupancyGrid::new(16, 0.0); // all empty
        let ray = Ray::new(Vec3::new(-1.0, 0.4, 0.45), Vec3::X);
        let (samples, wl) = sample_ray(&ray, &g, &SamplerConfig::default());
        assert!(samples.is_empty());
        assert!(wl.total_steps() > 0, "steps still cost sampling-core time");
        assert_eq!(wl.valid_pairs, 2);
    }

    #[test]
    fn partial_occupancy_reduces_samples() {
        // Occupy only the x < 0.5 half.
        let g = OccupancyGrid::from_oracle(16, 0.0, |p| p.x < 0.5);
        let ray = Ray::new(Vec3::new(-1.0, 0.4, 0.45), Vec3::X);
        let cfg = SamplerConfig::default();
        let (samples, wl) = sample_ray(&ray, &g, &cfg);
        let (full_samples, _) = sample_ray(&ray, &full_grid(), &cfg);
        assert!(!samples.is_empty());
        assert!(samples.len() < full_samples.len(), "occupancy filtering must reduce sample count");
        // All retained samples lie in the occupied half (cell-quantized
        // boundary allows a half-cell of slack).
        for s in &samples {
            assert!(s.position.x < 0.5 + g.cell_size());
        }
        assert_eq!(wl.samples_per_pair.len(), wl.valid_pairs as usize);
    }

    #[test]
    fn max_samples_cap_is_enforced() {
        let ray = Ray::new(Vec3::new(-1.0, 0.4, 0.45), Vec3::X);
        let cfg = SamplerConfig { steps_per_diagonal: 512, max_samples_per_ray: 10 };
        let (samples, wl) = sample_ray(&ray, &full_grid(), &cfg);
        assert_eq!(samples.len(), 10);
        assert_eq!(wl.total_samples(), 10);
    }

    #[test]
    fn samples_carry_their_octant() {
        let ray = Ray::new(Vec3::new(-1.0, 0.25, 0.25), Vec3::X);
        let (samples, _) = sample_ray(&ray, &full_grid(), &SamplerConfig::default());
        // Samples in the low-x half belong to cube 0, high-x to cube 1.
        for s in &samples {
            if s.position.x < 0.49 {
                assert_eq!(s.cube, 0);
            } else if s.position.x > 0.51 {
                assert_eq!(s.cube, 1);
            }
        }
    }

    #[test]
    fn empty_cell_skipping_preserves_samples_and_cuts_steps() {
        // A sparse grid: only a thin slab around x = 0.5 is occupied.
        let sparse = OccupancyGrid::from_oracle(16, 0.0, |p| (p.x - 0.5).abs() < 0.06);
        let full = full_grid();
        let ray = Ray::new(Vec3::new(-1.0, 0.4, 0.45), Vec3::X);
        let cfg = SamplerConfig { steps_per_diagonal: 128, max_samples_per_ray: 1000 };
        let (sparse_samples, sparse_wl) = sample_ray(&ray, &sparse, &cfg);
        let (full_samples, full_wl) = sample_ray(&ray, &full, &cfg);
        // Sparse sampling retains exactly the lattice samples that lie
        // in occupied cells of the full run.
        let expected: Vec<_> =
            full_samples.iter().filter(|s| sparse.is_occupied(s.position)).collect();
        assert_eq!(sparse_samples.len(), expected.len());
        for (a, b) in sparse_samples.iter().zip(expected) {
            assert!((a.t - b.t).abs() < 1e-4, "sample moved: {} vs {}", a.t, b.t);
        }
        // And the DDA skip makes Stage-I work scene-dependent: far
        // fewer marching steps through the mostly-empty scene.
        assert!(
            sparse_wl.total_steps() * 2 < full_wl.total_steps(),
            "skipping saved too little: {} vs {}",
            sparse_wl.total_steps(),
            full_wl.total_steps()
        );
    }

    #[test]
    fn origin_inside_cube_starts_at_zero() {
        let ray = Ray::new(Vec3::splat(0.5), Vec3::X);
        let (samples, _) = sample_ray(&ray, &full_grid(), &SamplerConfig::default());
        assert!(!samples.is_empty());
        assert!(samples[0].t >= 0.0);
        assert!(samples[0].t < 0.1);
    }
}
