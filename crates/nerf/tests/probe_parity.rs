//! Probes observe, never perturb: with the `obs` feature enabled,
//! [`fusion3d_nerf::pipeline::render_image_probed`] must return
//! bitwise-identical pixels to the unprobed [`render_image`], and the
//! counters it records must be independent of the thread count. (The
//! complementary guarantee — that the *default* build carries no probe
//! code at all — is checked by the `probe_macro_tests` unit tests,
//! whose no-op expansion discards even un-compilable bodies.)
#![cfg(feature = "obs")]

use fusion3d_nerf::camera::{orbit_poses, Camera};
use fusion3d_nerf::encoding::{HashGrid, HashGridConfig};
use fusion3d_nerf::math::Vec3;
use fusion3d_nerf::model::{ModelConfig, NerfModel};
use fusion3d_nerf::occupancy::OccupancyGrid;
use fusion3d_nerf::pipeline::{render_image, render_image_probed, PipelineConfig};
use fusion3d_nerf::sampler::SamplerConfig;
use fusion3d_nerf::{ProceduralScene, SyntheticScene};
use fusion3d_obs::Report;
use fusion3d_par::set_thread_override;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn setup() -> (NerfModel<HashGrid>, OccupancyGrid, Camera, PipelineConfig) {
    let mut rng = SmallRng::seed_from_u64(19);
    let model = NerfModel::new(
        ModelConfig {
            grid: HashGridConfig {
                levels: 4,
                features_per_level: 2,
                log2_table_size: 10,
                base_resolution: 4,
                max_resolution: 32,
            },
            hidden_dim: 16,
            geo_feature_dim: 7,
        },
        &mut rng,
    );
    let occupancy = ProceduralScene::synthetic(SyntheticScene::Lego).occupancy_grid(16);
    let pose = orbit_poses(Vec3::splat(0.5), 1.2, 4)[1];
    let camera = Camera::new(pose, 24, 24, 0.9);
    let config = PipelineConfig {
        sampler: SamplerConfig { steps_per_diagonal: 48, max_samples_per_ray: 32 },
        background: Vec3::ONE,
        early_stop: true,
    };
    (model, occupancy, camera, config)
}

fn bits(image: &fusion3d_nerf::image::Image) -> Vec<u32> {
    image.pixels().iter().flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]).collect()
}

#[test]
fn probed_render_matches_unprobed_bitwise() {
    let (model, occupancy, camera, config) = setup();
    let plain = render_image(&model, &occupancy, &camera, &config);
    let mut report = Report::new("probe_parity");
    let probed = render_image_probed(&model, &occupancy, &camera, &config, &mut report);
    assert_eq!(bits(&plain), bits(&probed), "probes changed the rendered pixels");
    // The probed run actually observed the work it shadowed.
    let rays = match report.metrics.get("kernel.rays") {
        Some(fusion3d_obs::Metric { value: fusion3d_obs::MetricValue::Counter(n), .. }) => *n,
        other => panic!("probed render must record kernel.rays, got {other:?}"),
    };
    assert_eq!(rays, u64::from(camera.width()) * u64::from(camera.height()));
}

#[test]
fn probe_counters_are_thread_count_independent() {
    let (model, occupancy, camera, config) = setup();
    let stream = |threads| {
        set_thread_override(Some(threads));
        let mut report = Report::new("probe_parity");
        let _ = render_image_probed(&model, &occupancy, &camera, &config, &mut report);
        set_thread_override(None);
        report.deterministic_jsonl()
    };
    assert_eq!(stream(1), stream(4), "probe stream diverged between 1 and 4 threads");
}
