//! Property-based tests of the algorithm substrate's invariants,
//! complementing the per-module unit tests: compositing conservation,
//! sampler geometry, encoding linearity, and gradient additivity hold
//! for *arbitrary* inputs, not just the hand-picked ones.

use fusion3d_nerf::encoding::{HashGrid, HashGridConfig};
use fusion3d_nerf::math::{Aabb, Ray, Vec3};
use fusion3d_nerf::occupancy::OccupancyGrid;
use fusion3d_nerf::render::{composite, composite_backward, ShadedSample};
use fusion3d_nerf::sampler::{sample_ray, SamplerConfig};
use proptest::prelude::*;

fn arb_vec3(range: std::ops::Range<f32>) -> impl Strategy<Value = Vec3> {
    (range.clone(), range.clone(), range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_samples() -> impl Strategy<Value = Vec<ShadedSample>> {
    prop::collection::vec(
        (0.0f32..50.0, arb_vec3(0.0..1.0), 0.001f32..0.5)
            .prop_map(|(sigma, color, dt)| ShadedSample { sigma, color, dt }),
        0..32,
    )
}

proptest! {
    /// Compositing is a convex combination: weights are non-negative
    /// and sum (with the residual transmittance) to exactly one.
    #[test]
    fn composite_partitions_unity(samples in arb_samples(), bg in arb_vec3(0.0..1.0)) {
        let out = composite(&samples, bg, false);
        for &w in &out.weights {
            prop_assert!(w >= 0.0);
        }
        let total: f32 = out.weights.iter().sum::<f32>() + out.final_transmittance;
        prop_assert!((total - 1.0).abs() < 1e-4, "partition {total}");
        // Therefore the pixel stays inside the color gamut.
        for c in out.color.to_array() {
            prop_assert!((-1e-4..=1.0 + 1e-4).contains(&c), "channel {c}");
        }
    }

    /// Transmittance never increases along the ray.
    #[test]
    fn transmittance_is_monotone(samples in arb_samples()) {
        let mut t_prev = 1.0f32;
        let mut t = 1.0f32;
        for s in &samples {
            let alpha = 1.0 - (-(s.sigma * s.dt).min(15.0)).exp();
            t *= 1.0 - alpha;
            prop_assert!(t <= t_prev + 1e-7);
            t_prev = t;
        }
    }

    /// The compositing backward pass is linear in the pixel gradient:
    /// doubling `d_color` doubles every sample gradient.
    #[test]
    fn composite_backward_is_linear(samples in arb_samples(), bg in arb_vec3(0.0..1.0)) {
        prop_assume!(!samples.is_empty());
        let g1 = composite_backward(&samples, bg, Vec3::new(1.0, 0.5, -0.5));
        let g2 = composite_backward(&samples, bg, Vec3::new(2.0, 1.0, -1.0));
        for (a, b) in g1.iter().zip(&g2) {
            prop_assert!((2.0 * a.d_sigma - b.d_sigma).abs() < 1e-3 * (1.0 + a.d_sigma.abs()));
            prop_assert!((a.d_color * 2.0 - b.d_color).length() < 1e-4 * (1.0 + a.d_color.length()));
        }
    }

    /// Every retained sample lies inside the model cube, on a strictly
    /// increasing `t` lattice, regardless of the ray.
    #[test]
    fn sampler_geometry_invariants(
        origin in arb_vec3(-2.0..3.0),
        dir in arb_vec3(-1.0..1.0),
        steps in 16u32..256,
    ) {
        prop_assume!(dir.length() > 1e-3);
        let ray = Ray::new(origin, dir.normalize());
        let mut grid = OccupancyGrid::new(12, 0.0);
        grid.fill();
        let cfg = SamplerConfig { steps_per_diagonal: steps, max_samples_per_ray: 64 };
        let (samples, workload) = sample_ray(&ray, &grid, &cfg);
        prop_assert!(samples.len() <= 64);
        prop_assert_eq!(samples.len() as u32, workload.total_samples());
        let cube = Aabb::unit_cube();
        let mut prev = f32::NEG_INFINITY;
        for s in &samples {
            prop_assert!(s.t > prev);
            prev = s.t;
            // Positions stay within a half-step of the cube (floating
            // point at the faces).
            prop_assert!(
                cube.contains(s.position.clamp(0.0, 1.0)),
                "sample strays: {:?}", s.position
            );
            prop_assert!(s.cube < 8);
        }
        // Steps dominate samples: every retained sample cost a step.
        prop_assert!(workload.total_steps() >= workload.total_samples());
    }

    /// Occupancy gating is conservative: pruning cells only removes
    /// samples, never adds or moves them.
    #[test]
    fn occupancy_pruning_is_monotone(
        oy in 0.05f32..0.95,
        oz in 0.05f32..0.95,
        cutoff in 0.1f32..0.9,
    ) {
        let ray = Ray::new(Vec3::new(-1.0, oy, oz), Vec3::X);
        let mut full = OccupancyGrid::new(10, 0.0);
        full.fill();
        let partial = OccupancyGrid::from_oracle(10, 0.0, |p| p.x < cutoff);
        let cfg = SamplerConfig { steps_per_diagonal: 64, max_samples_per_ray: 500 };
        let (full_samples, _) = sample_ray(&ray, &full, &cfg);
        let (partial_samples, _) = sample_ray(&ray, &partial, &cfg);
        prop_assert!(partial_samples.len() <= full_samples.len());
        // Each partial sample appears (by parameter) among the full
        // ones.
        let full_ts: Vec<f32> = full_samples.iter().map(|s| s.t).collect();
        for s in &partial_samples {
            prop_assert!(
                full_ts.iter().any(|t| (t - s.t).abs() < 1e-3),
                "sample t={} not on the full lattice", s.t
            );
        }
    }

    /// The hash-grid encoding is linear in its parameters: encoding
    /// with scaled parameters scales the features.
    #[test]
    fn encoding_is_linear_in_parameters(
        px in 0.0f32..1.0, py in 0.0f32..1.0, pz in 0.0f32..1.0,
        scale in 0.25f32..4.0,
    ) {
        let config = HashGridConfig {
            levels: 3,
            features_per_level: 2,
            log2_table_size: 8,
            base_resolution: 4,
            max_resolution: 16,
        };
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
        let mut grid = HashGrid::with_random_init(config, &mut rng);
        let p = Vec3::new(px, py, pz);
        let mut base = vec![0.0f32; grid.config().output_dim()];
        grid.interpolate(p, &mut base);
        for v in grid.params_mut() {
            *v *= scale;
        }
        let mut scaled = vec![0.0f32; grid.config().output_dim()];
        grid.interpolate(p, &mut scaled);
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!(
                (a * scale - b).abs() < 1e-4 * (1.0 + a.abs() * scale),
                "{a} * {scale} != {b}"
            );
        }
    }

    /// Grid gradients accumulate additively: two backward passes
    /// deposit exactly twice one pass.
    #[test]
    fn grid_backward_accumulates(px in 0.0f32..1.0, py in 0.0f32..1.0, pz in 0.0f32..1.0) {
        let config = HashGridConfig {
            levels: 2,
            features_per_level: 2,
            log2_table_size: 8,
            base_resolution: 4,
            max_resolution: 8,
        };
        let grid = HashGrid::new(config);
        let p = Vec3::new(px, py, pz);
        let d = vec![1.0f32; config.output_dim()];
        let mut once = vec![0.0f32; grid.param_count()];
        grid.backward(p, &d, &mut once);
        let mut twice = vec![0.0f32; grid.param_count()];
        grid.backward(p, &d, &mut twice);
        grid.backward(p, &d, &mut twice);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((2.0 * a - b).abs() < 1e-6);
        }
        // Trilinear weights deposit exactly the full gradient per level.
        let per_level: f32 = once.iter().sum::<f32>() / config.levels as f32
            / config.features_per_level as f32;
        prop_assert!((per_level - 1.0).abs() < 1e-4, "weight sum {per_level}");
    }
}
