//! Differential tests of the batched SoA kernels against the scalar
//! reference path.
//!
//! The batched hot-path kernels ([`fusion3d_nerf::batch`],
//! `interpolate_batch` / `backward_batch`, `forward_batch` /
//! `backward_batch`) carry a bitwise-determinism contract: identical
//! inputs must produce bit-for-bit identical f32 results to looping
//! the scalar kernels one sample at a time. These tests enforce the
//! contract at batch sizes 0, 1, 7, 64, and 1000 — deliberately
//! including sizes that are not multiples of the GEMM tile widths —
//! and re-check thread-count independence on the batched pipeline.

use fusion3d_nerf::batch::{KernelScratch, SampleBatch};
use fusion3d_nerf::camera::{orbit_poses, Camera};
use fusion3d_nerf::encoding::{EncodingScratch, HashGrid, HashGridConfig};
use fusion3d_nerf::math::{Ray, Vec3};
use fusion3d_nerf::mlp::{Activation, Mlp, MlpBatchCache};
use fusion3d_nerf::model::{ModelConfig, NerfModel};
use fusion3d_nerf::occupancy::OccupancyGrid;
use fusion3d_nerf::pipeline::{render_image, PipelineConfig};
use fusion3d_nerf::reference;
use fusion3d_nerf::sampler::{sample_ray, sample_ray_into, SamplerConfig};
use fusion3d_nerf::trainer::{Trainer, TrainerConfig};
use fusion3d_nerf::{Dataset, ProceduralScene, SyntheticScene};
use fusion3d_par::set_thread_override;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Batch sizes exercised by every differential test: empty, singleton,
/// non-multiples of the 4-wide GEMM tiles, and a large batch.
const BATCH_SIZES: [usize; 5] = [0, 1, 7, 64, 1000];

fn positions(n: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen())).collect()
}

fn randoms(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect()
}

fn assert_bits_eq(batched: &[f32], scalar: &[f32], what: &str) {
    assert_eq!(batched.len(), scalar.len(), "{what}: length mismatch");
    for (i, (b, s)) in batched.iter().zip(scalar).enumerate() {
        assert_eq!(b.to_bits(), s.to_bits(), "{what}[{i}]: batched {b} vs scalar {s}");
    }
}

fn test_grid(features_per_level: usize, seed: u64) -> HashGrid {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Resolutions straddle the dense/hash threshold so both addressing
    // modes are exercised.
    HashGrid::with_random_init(
        HashGridConfig {
            levels: 4,
            features_per_level,
            log2_table_size: 10,
            base_resolution: 4,
            max_resolution: 32,
        },
        &mut rng,
    )
}

#[test]
fn grid_interpolate_batch_is_bitwise_scalar() {
    // f = 2 exercises the two-accumulator fast path; f = 3 the generic
    // per-feature path.
    for features in [2, 3] {
        let grid = test_grid(features, 11);
        let dim = grid.config().output_dim();
        let mut scratch = EncodingScratch::new();
        for n in BATCH_SIZES {
            let pts = positions(n, 100 + n as u64);
            let scalar = reference::encode_points(&grid, &pts);
            let mut batched = vec![0.0f32; n * dim];
            grid.interpolate_batch(&pts, &mut batched, &mut scratch);
            assert_bits_eq(&batched, &scalar, &format!("interpolate f={features} n={n}"));
        }
    }
}

#[test]
fn grid_interpolate_batch_infer_is_bitwise_scalar() {
    // The spill-free inference kernel must match the scalar path (and
    // therefore the retaining kernel) bit for bit.
    for features in [2, 3] {
        let grid = test_grid(features, 11);
        let dim = grid.config().output_dim();
        for n in BATCH_SIZES {
            let pts = positions(n, 100 + n as u64);
            let scalar = reference::encode_points(&grid, &pts);
            let mut batched = vec![0.0f32; n * dim];
            grid.interpolate_batch_infer(&pts, &mut batched);
            assert_bits_eq(&batched, &scalar, &format!("interpolate_infer f={features} n={n}"));
        }
    }
}

#[test]
fn grid_backward_batch_is_bitwise_scalar() {
    for features in [2, 3] {
        let grid = test_grid(features, 13);
        let dim = grid.config().output_dim();
        let mut scratch = EncodingScratch::new();
        for n in BATCH_SIZES {
            let pts = positions(n, 200 + n as u64);
            let d_out = randoms(n * dim, 300 + n as u64);
            let mut scalar = vec![0.0f32; grid.param_count()];
            reference::encode_backward(&grid, &pts, &d_out, &mut scalar);
            let mut batched = vec![0.0f32; grid.param_count()];
            grid.backward_batch(&pts, &d_out, &mut batched, &mut scratch);
            assert_bits_eq(&batched, &scalar, &format!("grid backward f={features} n={n}"));
        }
    }
}

#[test]
fn grid_backward_batch_reuses_forward_scratch() {
    // The backward pass must reuse the corner addresses/weights the
    // forward pass prepared — and still be correct when it cannot
    // (different positions in the scratch).
    let grid = test_grid(2, 17);
    let dim = grid.config().output_dim();
    let pts_a = positions(33, 400);
    let pts_b = positions(33, 401);
    let d_out = randoms(33 * dim, 402);
    let mut scratch = EncodingScratch::new();
    let mut out = vec![0.0f32; 33 * dim];
    // Forward on A, backward on B: the fingerprint must force a
    // re-prepare instead of scattering with stale A corners.
    grid.interpolate_batch(&pts_a, &mut out, &mut scratch);
    let mut batched = vec![0.0f32; grid.param_count()];
    grid.backward_batch(&pts_b, &d_out, &mut batched, &mut scratch);
    let mut scalar = vec![0.0f32; grid.param_count()];
    reference::encode_backward(&grid, &pts_b, &d_out, &mut scalar);
    assert_bits_eq(&batched, &scalar, "backward after mismatched forward");
}

#[test]
fn mlp_forward_batch_is_bitwise_scalar() {
    let mut rng = SmallRng::seed_from_u64(19);
    // Widths that are not multiples of the 4-wide tiles.
    let mlp = Mlp::new(&[13, 30, 5], Activation::Relu, Activation::Sigmoid, &mut rng);
    let mut cache = MlpBatchCache::new();
    for n in BATCH_SIZES {
        let inputs = randoms(n * mlp.input_dim(), 500 + n as u64);
        let scalar = reference::mlp_forward(&mlp, &inputs, n);
        let batched = mlp.forward_batch(&inputs, n, &mut cache).to_vec();
        assert_bits_eq(&batched, &scalar, &format!("mlp forward n={n}"));
    }
}

#[test]
fn mlp_backward_batch_is_bitwise_scalar() {
    let mut rng = SmallRng::seed_from_u64(23);
    let mlp = Mlp::new(&[9, 22, 22, 6], Activation::Relu, Activation::None, &mut rng);
    let mut cache = MlpBatchCache::new();
    for n in BATCH_SIZES {
        let inputs = randoms(n * mlp.input_dim(), 600 + n as u64);
        let d_out = randoms(n * mlp.output_dim(), 700 + n as u64);
        let (scalar_d_in, scalar_grads) = reference::mlp_backward(&mlp, &inputs, n, &d_out);
        mlp.forward_batch(&inputs, n, &mut cache);
        let mut batched_d_in = vec![0.0f32; n * mlp.input_dim()];
        let mut batched_grads = vec![0.0f32; mlp.param_count()];
        mlp.backward_batch(&mut cache, &d_out, &mut batched_d_in, &mut batched_grads);
        assert_bits_eq(&batched_d_in, &scalar_d_in, &format!("mlp d_input n={n}"));
        assert_bits_eq(&batched_grads, &scalar_grads, &format!("mlp grads n={n}"));
    }
}

fn test_model(seed: u64) -> NerfModel {
    let mut rng = SmallRng::seed_from_u64(seed);
    NerfModel::new(
        ModelConfig {
            grid: HashGridConfig {
                levels: 3,
                features_per_level: 2,
                log2_table_size: 9,
                base_resolution: 4,
                max_resolution: 16,
            },
            hidden_dim: 10,
            geo_feature_dim: 5,
        },
        &mut rng,
    )
}

#[test]
fn model_forward_batch_is_bitwise_scalar() {
    let model = test_model(29);
    let dir = Vec3::new(0.3, -0.6, 0.9).normalize();
    let mut scratch = KernelScratch::new();
    for n in BATCH_SIZES {
        let pts = positions(n, 800 + n as u64);
        let (scalar_sigma, scalar_color) = reference::model_forward(&model, &pts, dir);
        model.forward_batch(&pts, dir, &mut scratch);
        assert_bits_eq(scratch.sigma(), &scalar_sigma, &format!("model sigma n={n}"));
        let batched_rgb: Vec<f32> = scratch.color().iter().flat_map(|c| c.to_array()).collect();
        let scalar_rgb: Vec<f32> = scalar_color.iter().flat_map(|c| c.to_array()).collect();
        assert_bits_eq(&batched_rgb, &scalar_rgb, &format!("model color n={n}"));
    }
}

#[test]
fn model_forward_batch_infer_is_bitwise_scalar() {
    // The render path's non-retaining forward must produce the same
    // bits as the scalar model walk (and hence the retaining forward).
    let model = test_model(29);
    let dir = Vec3::new(0.3, -0.6, 0.9).normalize();
    let mut scratch = KernelScratch::new();
    for n in BATCH_SIZES {
        let pts = positions(n, 800 + n as u64);
        let (scalar_sigma, scalar_color) = reference::model_forward(&model, &pts, dir);
        model.forward_batch_infer(&pts, dir, &mut scratch);
        assert_bits_eq(scratch.sigma(), &scalar_sigma, &format!("infer sigma n={n}"));
        let batched_rgb: Vec<f32> = scratch.color().iter().flat_map(|c| c.to_array()).collect();
        let scalar_rgb: Vec<f32> = scalar_color.iter().flat_map(|c| c.to_array()).collect();
        assert_bits_eq(&batched_rgb, &scalar_rgb, &format!("infer color n={n}"));
    }
}

#[test]
fn model_backward_batch_is_bitwise_scalar() {
    let model = test_model(31);
    let dir = Vec3::new(-0.2, 0.5, 0.7).normalize();
    let mut scratch = KernelScratch::new();
    for n in BATCH_SIZES {
        let pts = positions(n, 900 + n as u64);
        let d_sigma = randoms(n, 1000 + n as u64);
        let d_color: Vec<Vec3> = randoms(n * 3, 1100 + n as u64)
            .chunks_exact(3)
            .map(|c| Vec3::new(c[0], c[1], c[2]))
            .collect();
        let scalar = reference::model_backward(&model, &pts, dir, &d_sigma, &d_color);
        model.forward_batch(&pts, dir, &mut scratch);
        let mut batched = model.alloc_grads();
        model.backward_batch(&pts, &d_sigma, &d_color, &mut scratch, &mut batched);
        assert_bits_eq(&batched.grid, &scalar.grid, &format!("grid grads n={n}"));
        assert_bits_eq(&batched.density, &scalar.density, &format!("density grads n={n}"));
        assert_bits_eq(&batched.color, &scalar.color, &format!("color grads n={n}"));
    }
}

#[test]
fn sample_ray_into_matches_sample_ray() {
    let occupancy = OccupancyGrid::from_oracle(16, 0.0, |p| (p - Vec3::splat(0.5)).length() < 0.4);
    let config = SamplerConfig { steps_per_diagonal: 64, max_samples_per_ray: 48 };
    let mut batch = SampleBatch::new();
    let mut rng = SmallRng::seed_from_u64(37);
    for _ in 0..64 {
        let origin = Vec3::new(rng.gen::<f32>() * 4.0 - 1.5, rng.gen(), rng.gen());
        let target = Vec3::new(rng.gen(), rng.gen(), rng.gen());
        let ray = Ray::new(origin, (target - origin).normalize());
        let (scalar, _) = sample_ray(&ray, &occupancy, &config);
        sample_ray_into(&ray, &occupancy, &config, &mut batch);
        assert_eq!(batch.len(), scalar.len(), "sample count diverged");
        for (i, s) in scalar.iter().enumerate() {
            assert_eq!(batch.ts()[i].to_bits(), s.t.to_bits(), "t[{i}]");
            assert_eq!(batch.dts()[i].to_bits(), s.dt.to_bits(), "dt[{i}]");
            assert_eq!(batch.positions()[i], s.position, "position[{i}]");
        }
    }
}

/// Renders a frame and runs a few training steps with `threads`
/// workers; returns every result as raw bits.
fn batched_pipeline_bits(threads: usize) -> (Vec<u32>, Vec<u32>) {
    set_thread_override(Some(threads));
    let scene = ProceduralScene::synthetic(SyntheticScene::Lego);
    let dataset = Dataset::from_scene(&scene, 3, 16, 0.9);
    let mut trainer = Trainer::new(
        test_model(43),
        TrainerConfig {
            rays_per_batch: 37,
            sampler: SamplerConfig { steps_per_diagonal: 32, max_samples_per_ray: 16 },
            occupancy_resolution: 12,
            occupancy_warmup: 1000,
            ..TrainerConfig::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(47);
    for _ in 0..8 {
        trainer.step(&dataset, &mut rng);
    }
    let pose = orbit_poses(Vec3::splat(0.5), 1.2, 4)[2];
    let camera = Camera::new(pose, 16, 16, 0.9);
    let config = PipelineConfig {
        sampler: trainer.config().sampler,
        background: Vec3::ONE,
        early_stop: true,
    };
    let image = render_image(trainer.model(), trainer.occupancy(), &camera, &config);
    let params: Vec<u32> = trainer.model().grid().params().iter().map(|p| p.to_bits()).collect();
    let pixels: Vec<u32> =
        image.pixels().iter().flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]).collect();
    set_thread_override(None);
    (params, pixels)
}

#[test]
fn batched_pipeline_is_bitwise_identical_across_thread_counts() {
    let (params_1, pixels_1) = batched_pipeline_bits(1);
    let (params_4, pixels_4) = batched_pipeline_bits(4);
    assert_eq!(params_1, params_4, "trained parameters diverged between 1 and 4 threads");
    assert_eq!(pixels_1, pixels_4, "rendered pixels diverged between 1 and 4 threads");
    assert!(!params_1.is_empty() && pixels_1.len() == 16 * 16 * 3);
}
