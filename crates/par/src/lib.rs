//! Deterministic multi-core execution layer for Fusion-3D.
//!
//! The simulator's hot paths — frame rendering, training steps, and
//! scene-level experiment sweeps — are embarrassingly parallel, but a
//! research codebase lives or dies on reproducibility. This crate
//! provides a scoped worker [`Pool`] built on `std::thread::scope` and
//! crossbeam work-stealing deques with a hard determinism contract:
//!
//! **the result of every combinator is bitwise-identical for any
//! thread count, including 1.**
//!
//! Three rules make that hold:
//!
//! 1. *Work decomposition never looks at the thread count.* Chunk
//!    boundaries depend only on the input length and the requested
//!    chunk size, so the same call produces the same chunks whether
//!    one worker or sixteen execute them.
//! 2. *Each chunk writes to its own index-addressed slot.* Workers
//!    race over which chunk they grab next (stealing balances load),
//!    but never over where a result lands.
//! 3. *Reduction runs on the calling thread in chunk-index order.*
//!    Floating-point accumulation is not associative, so the merge
//!    order is fixed regardless of completion order.
//!
//! Thread count comes from the `FUSION3D_THREADS` environment
//! variable (default: [`std::thread::available_parallelism`]), with a
//! process-wide programmatic override ([`set_thread_override`]) for
//! benchmarks that sweep thread counts.

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;

/// Environment variable controlling the worker count (`0` or unset
/// means "use all available cores").
pub const THREADS_ENV: &str = "FUSION3D_THREADS";

/// `0` = no override; otherwise the forced thread count.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the thread count for every subsequently created [`Pool`],
/// taking precedence over [`THREADS_ENV`]. Pass `None` to clear.
/// Intended for benchmarks that sweep thread counts within one
/// process; tests and applications should prefer the environment
/// variable.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// Resolves the effective thread count: programmatic override, then
/// [`THREADS_ENV`], then [`std::thread::available_parallelism`].
/// Always at least 1.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    // The pool's determinism contract makes every combinator
    // thread-count-invariant, so this env read cannot affect results.
    // lint: allow(d2): worker count never affects results
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(parsed) = value.trim().parse::<usize>() {
            if parsed > 0 {
                return parsed;
            }
        }
    }
    thread::available_parallelism().map_or(1, usize::from)
}

/// A scoped worker pool. Creating one is cheap (no threads are kept
/// alive between calls); each combinator spins up a `thread::scope`
/// for its duration, which also propagates worker panics to the
/// caller.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Pool {
    /// A pool sized by [`current_threads`] (override, then env, then
    /// available parallelism).
    pub fn new() -> Self {
        Pool { threads: current_threads() }
    }

    /// A pool with an explicit thread count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Pool { threads: threads.max(1) }
    }

    /// The number of worker threads this pool dispatches to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..len` into contiguous chunks of `chunk_size` (the
    /// last may be shorter), runs `work(chunk_index, range)` for each
    /// across the pool, and returns the per-chunk results **in chunk
    /// order**. Chunk boundaries are independent of the thread count,
    /// so the output is identical for any pool size.
    pub fn parallel_chunks<T, F>(&self, len: usize, chunk_size: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        self.parallel_chunks_with(len, chunk_size, || (), |index, range, ()| work(index, range))
    }

    /// [`Pool::parallel_chunks`] with worker-local scratch: `init`
    /// builds one scratch value per worker thread, and every chunk
    /// that worker executes receives `&mut` access to it. This is how
    /// the batched NeRF kernels reuse their SoA buffers across rays
    /// without allocating per chunk.
    ///
    /// Determinism contract: `work` must treat the scratch as working
    /// memory only — every output must be a pure function of the chunk
    /// (the scratch may carry capacity, never values that leak into
    /// results). Under that contract the output is bitwise-identical
    /// for any thread count, because chunk geometry and result slots
    /// never depend on which worker ran a chunk.
    pub fn parallel_chunks_with<T, S, I, F>(
        &self,
        len: usize,
        chunk_size: usize,
        init: I,
        work: F,
    ) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, Range<usize>, &mut S) -> T + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let ranges: Vec<Range<usize>> =
            (0..len.div_ceil(chunk_size)).map(|i| chunk_range(i, chunk_size, len)).collect();
        self.run_indexed_with(ranges.len(), init, |index, state| {
            work(index, ranges[index].clone(), state)
        })
    }

    /// [`Pool::parallel_chunks`] followed by a fixed-order fold on the
    /// calling thread: chunks map in parallel, then reduce strictly in
    /// chunk-index order, so non-associative (floating-point)
    /// reductions stay deterministic.
    pub fn parallel_map_reduce<T, A, F, R>(
        &self,
        len: usize,
        chunk_size: usize,
        work: F,
        init: A,
        reduce: R,
    ) -> A
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
        R: FnMut(A, T) -> A,
    {
        self.parallel_chunks(len, chunk_size, work).into_iter().fold(init, reduce)
    }

    /// [`Pool::parallel_chunks`] where each chunk yields a `Vec`,
    /// flattened in chunk order into one output vector.
    pub fn parallel_flat_map<T, F>(&self, len: usize, chunk_size: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> Vec<T> + Sync,
    {
        self.parallel_flat_map_with(len, chunk_size, || (), |index, range, ()| work(index, range))
    }

    /// [`Pool::parallel_chunks_with`] where each chunk yields a `Vec`,
    /// flattened in chunk order into one output vector. The scratch
    /// contract of [`Pool::parallel_chunks_with`] applies.
    pub fn parallel_flat_map_with<T, S, I, F>(
        &self,
        len: usize,
        chunk_size: usize,
        init: I,
        work: F,
    ) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, Range<usize>, &mut S) -> Vec<T> + Sync,
    {
        let chunks = self.parallel_chunks_with(len, chunk_size, init, work);
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }

    /// Runs one task per element of `states`, handing task `i`
    /// exclusive `&mut` access to `states[i]`. Results come back in
    /// state-index order. This is the shard primitive: callers keep
    /// one scratch/accumulator struct per shard and merge them in
    /// shard order afterwards.
    pub fn run_tasks<S, T, F>(&self, states: &mut [S], work: F) -> Vec<T>
    where
        S: Send,
        T: Send,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        // Wrap each state in a Mutex slot so tasks can be stolen by
        // any worker; the index-per-task discipline means every lock
        // is uncontended.
        let slots: Vec<Mutex<&mut S>> = states.iter_mut().map(Mutex::new).collect();
        self.run_indexed_with(
            slots.len(),
            || (),
            |index, ()| {
                let mut state = slots[index].lock();
                work(index, &mut state)
            },
        )
    }

    /// [`Pool::parallel_chunks_with`] that also reports per-worker
    /// scheduling statistics for the dispatch. The chunk results obey
    /// the usual determinism contract; the [`DispatchStats`] do **not**
    /// (work stealing makes the task→worker assignment depend on
    /// timing), so treat them as diagnostic only.
    pub fn parallel_chunks_with_stats<T, S, I, F>(
        &self,
        len: usize,
        chunk_size: usize,
        init: I,
        work: F,
    ) -> (Vec<T>, DispatchStats)
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, Range<usize>, &mut S) -> T + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let ranges: Vec<Range<usize>> =
            (0..len.div_ceil(chunk_size)).map(|i| chunk_range(i, chunk_size, len)).collect();
        self.run_indexed_with_stats(ranges.len(), init, |index, state| {
            work(index, ranges[index].clone(), state)
        })
    }

    /// Core dispatch: executes `task(0..count)` across the pool and
    /// collects results into index-addressed slots. Work distribution
    /// (round-robin seeding + stealing) affects only *who* runs a
    /// task, never *where* its result lands. Each worker thread builds
    /// one scratch value with `init` and hands it to every task it
    /// executes; results must not depend on the scratch's history (see
    /// [`Pool::parallel_chunks_with`]).
    fn run_indexed_with<T, S, I, F>(&self, count: usize, init: I, task: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        self.run_indexed_with_stats(count, init, task).0
    }

    /// [`Pool::run_indexed_with`] plus per-worker task counts. The
    /// counting is one local `u64` increment per task — noise next to
    /// any real chunk — so the plain combinators share this path.
    fn run_indexed_with_stats<T, S, I, F>(
        &self,
        count: usize,
        init: I,
        task: F,
    ) -> (Vec<T>, DispatchStats)
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        if count == 0 {
            return (Vec::new(), DispatchStats::default());
        }
        let workers = self.threads.min(count);
        if workers <= 1 {
            // Inline fast path: no scope, no deques, no locking.
            let mut state = init();
            let out = (0..count).map(|index| task(index, &mut state)).collect();
            return (out, DispatchStats { tasks_per_worker: vec![count as u64] });
        }

        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let counts: Vec<Mutex<u64>> = (0..workers).map(|_| Mutex::new(0)).collect();
        let injector = Injector::new();
        let locals: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = locals.iter().map(Worker::stealer).collect();
        // Seed round-robin so every worker starts with local work;
        // stealing rebalances if chunk costs are skewed.
        for (index, local) in (0..count).zip(locals.iter().cycle()) {
            local.push(index);
        }

        thread::scope(|scope| {
            let (slots, counts) = (&slots, &counts);
            let (injector, stealers) = (&injector, &stealers);
            let (init, task) = (&init, &task);
            for (worker, local) in locals.into_iter().enumerate() {
                scope.spawn(move || {
                    let local = local;
                    let mut state = init();
                    let mut done: u64 = 0;
                    while let Some(index) = next_task(&local, injector, stealers) {
                        *slots[index].lock() = Some(task(index, &mut state));
                        done += 1;
                    }
                    *counts[worker].lock() = done;
                });
            }
        });

        let stats =
            DispatchStats { tasks_per_worker: counts.into_iter().map(Mutex::into_inner).collect() };
        let out = slots
            .into_iter()
            // The deque seeding hands every index to exactly one
            // worker before the scope joins, so every slot is filled.
            // lint: allow(p1): invariant — every task index ran exactly once
            .map(|slot| slot.into_inner().expect("every task index ran exactly once"))
            .collect();
        (out, stats)
    }
}

/// Per-worker scheduling statistics from one pool dispatch.
///
/// **Diagnostic only.** The task→worker assignment comes from work
/// stealing, so these numbers vary run to run and with the thread
/// count; they are deliberately excluded from the determinism
/// contract. Record them through the `obs`-feature
/// `DispatchStats::record`, which flags every entry diagnostic so it
/// stays out of `fusion3d_obs::Report::deterministic_jsonl`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Number of tasks each worker thread executed, indexed by worker.
    pub tasks_per_worker: Vec<u64>,
}

impl DispatchStats {
    /// Number of worker threads that participated in the dispatch.
    pub fn workers(&self) -> usize {
        self.tasks_per_worker.len()
    }

    /// Total tasks executed across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.tasks_per_worker.iter().copied().fold(0u64, u64::saturating_add)
    }

    /// Load balance in `[0, 1]`: mean worker load over the busiest
    /// worker's load (1.0 = perfectly even). Empty dispatches report
    /// 1.0.
    pub fn balance(&self) -> f64 {
        let max = self.tasks_per_worker.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let mean = self.total_tasks() as f64 / self.workers() as f64;
        mean / max as f64
    }

    /// Records the dispatch as **diagnostic** metrics under
    /// `{prefix}.`: per-worker task counters
    /// (`{prefix}.worker.{i}.tasks`), the worker count, and the
    /// [`DispatchStats::balance`] gauge. Diagnostic because the values
    /// are scheduling-dependent; they never appear in the
    /// deterministic export stream.
    #[cfg(feature = "obs")]
    pub fn record(&self, prefix: &str, metrics: &mut fusion3d_obs::Metrics) {
        for (worker, &tasks) in self.tasks_per_worker.iter().enumerate() {
            metrics.diagnostic_counter_add(
                &format!("{prefix}.worker.{worker}.tasks"),
                "tasks",
                tasks,
            );
        }
        metrics.diagnostic_counter_add(
            &format!("{prefix}.workers"),
            "threads",
            self.workers() as u64,
        );
        metrics.diagnostic_gauge_set(&format!("{prefix}.balance"), "ratio", self.balance());
    }
}

/// Fixed chunk geometry: chunk `i` covers
/// `[i * chunk_size, min((i + 1) * chunk_size, len))`.
fn chunk_range(index: usize, chunk_size: usize, len: usize) -> Range<usize> {
    let start = index * chunk_size;
    start..((start + chunk_size).min(len))
}

/// Standard crossbeam find-task loop: local deque first, then the
/// global injector, then stealing from siblings.
fn next_task(
    local: &Worker<usize>,
    injector: &Injector<usize>,
    stealers: &[Stealer<usize>],
) -> Option<usize> {
    local.pop().or_else(|| {
        std::iter::repeat_with(|| {
            injector
                .steal_batch_and_pop(local)
                .or_else(|| stealers.iter().map(Stealer::steal).collect())
        })
        .find(|steal| !steal.is_retry())
        .and_then(Steal::success)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(range: Range<usize>) -> f32 {
        // Deliberately order-sensitive accumulation (f32 addition is
        // non-associative) to catch any reduction-order drift.
        range.map(|i| 1.0f32 / (i as f32 + 1.0)).sum()
    }

    #[test]
    fn dispatch_stats_cover_every_task_exactly_once() {
        for threads in [1, 2, 4, 7] {
            let (out, stats) = Pool::with_threads(threads).parallel_chunks_with_stats(
                1000,
                37,
                || (),
                |_, range, ()| weights(range),
            );
            assert_eq!(out.len(), 1000usize.div_ceil(37));
            assert_eq!(stats.total_tasks(), out.len() as u64, "threads={threads}");
            assert!(stats.workers() <= threads);
            let balance = stats.balance();
            assert!((0.0..=1.0).contains(&balance), "balance={balance}");
        }
    }

    #[test]
    fn dispatch_stats_results_stay_deterministic() {
        let reference: Vec<f32> =
            Pool::with_threads(1).parallel_chunks(1000, 37, |_, range| weights(range));
        let (got, _stats) = Pool::with_threads(4).parallel_chunks_with_stats(
            1000,
            37,
            || (),
            |_, range, ()| weights(range),
        );
        for (a, b) in reference.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_dispatch_stats_are_benign() {
        let stats = DispatchStats::default();
        assert_eq!(stats.total_tasks(), 0);
        assert_eq!(stats.workers(), 0);
        assert_eq!(stats.balance(), 1.0);
    }

    #[test]
    fn chunk_results_are_identical_across_thread_counts() {
        let reference: Vec<f32> =
            Pool::with_threads(1).parallel_chunks(1000, 37, |_, range| weights(range));
        for threads in [2, 3, 4, 8, 16] {
            let got =
                Pool::with_threads(threads).parallel_chunks(1000, 37, |_, range| weights(range));
            assert_eq!(reference.len(), got.len());
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn map_reduce_is_bitwise_stable() {
        let reference = Pool::with_threads(1).parallel_map_reduce(
            5000,
            61,
            |_, r| weights(r),
            0.0f32,
            |a, x| a + x,
        );
        for threads in [2, 4, 7] {
            let got = Pool::with_threads(threads).parallel_map_reduce(
                5000,
                61,
                |_, r| weights(r),
                0.0f32,
                |a, x| a + x,
            );
            assert_eq!(reference.to_bits(), got.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn flat_map_preserves_element_order() {
        let out = Pool::with_threads(4)
            .parallel_flat_map(100, 7, |_, range| range.collect::<Vec<usize>>());
        assert_eq!(out, (0..100).collect::<Vec<usize>>());
    }

    #[test]
    fn run_tasks_gives_each_task_its_own_state() {
        let mut states = vec![0u64; 13];
        let results = Pool::with_threads(4).run_tasks(&mut states, |index, state| {
            *state = index as u64 + 1;
            index * 10
        });
        assert_eq!(results, (0..13).map(|i| i * 10).collect::<Vec<usize>>());
        assert_eq!(states, (1..=13).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let pool = Pool::with_threads(8);
        assert!(pool.parallel_chunks(0, 4, |_, r| r.len()).is_empty());
        assert_eq!(pool.parallel_chunks(3, 100, |_, r| r.len()), vec![3]);
        assert_eq!(pool.parallel_chunks(4, 0, |_, r| r.len()), vec![1; 4]);
    }

    #[test]
    fn chunks_with_scratch_are_identical_across_thread_counts() {
        // Worker-local scratch (a reused buffer) must not perturb
        // results: each chunk overwrites the part of the scratch it
        // reads, so outputs stay a pure function of the chunk.
        let run = |threads: usize| {
            Pool::with_threads(threads).parallel_chunks_with(
                997,
                23,
                Vec::<f32>::new,
                |_, range, scratch| {
                    scratch.clear();
                    scratch.extend(range.map(|i| 1.0f32 / (i as f32 + 1.0)));
                    scratch.iter().sum::<f32>()
                },
            )
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            let got = run(threads);
            assert_eq!(reference.len(), got.len());
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn flat_map_with_scratch_preserves_element_order() {
        let out = Pool::with_threads(4).parallel_flat_map_with(
            100,
            7,
            || 0usize,
            |_, range, seen| {
                *seen += range.len();
                range.collect::<Vec<usize>>()
            },
        );
        assert_eq!(out, (0..100).collect::<Vec<usize>>());
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Pool::with_threads(4).parallel_chunks(64, 1, |index, _| {
                assert!(index != 17, "boom");
                index
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn thread_override_takes_effect() {
        set_thread_override(Some(3));
        assert_eq!(Pool::new().threads(), 3);
        set_thread_override(None);
        assert!(Pool::new().threads() >= 1);
    }
}
