//! Thread-pool stress: hundreds of small rounds at 1/2/8 workers,
//! asserting bitwise-identical results every time. The lint's D3 rule
//! keeps raw threading out of the workspace; this test is the runtime
//! net that keeps the one sanctioned pool honest under exactly the
//! conditions where races surface — many short-lived scopes with
//! skewed, tiny workloads.

use fusion3d_par::Pool;

/// Deliberately order-sensitive f32 accumulation: any drift in chunk
/// geometry or reduction order changes the bits.
fn weight(range: std::ops::Range<usize>, salt: usize) -> f32 {
    range.map(|i| 1.0f32 / ((i + salt) as f32 + 1.0)).sum()
}

#[test]
fn hundreds_of_parallel_chunk_rounds_are_bitwise_stable() {
    for round in 0..300 {
        let len = 1 + (round * 37) % 211;
        let chunk = 1 + round % 17;
        let reference: Vec<u32> = Pool::with_threads(1)
            .parallel_chunks(len, chunk, |_, r| weight(r, round).to_bits())
            .to_vec();
        for threads in [2, 8] {
            let got: Vec<u32> = Pool::with_threads(threads)
                .parallel_chunks(len, chunk, |_, r| weight(r, round).to_bits())
                .to_vec();
            assert_eq!(reference, got, "round {round}, len {len}, threads {threads}");
        }
    }
}

#[test]
fn hundreds_of_map_reduce_rounds_are_bitwise_stable() {
    for round in 0..300 {
        let len = 1 + (round * 13) % 307;
        let chunk = 1 + round % 11;
        let run = |threads: usize| -> u32 {
            Pool::with_threads(threads)
                .parallel_map_reduce(len, chunk, |_, r| weight(r, round), 0.0f32, |a, x| a + x)
                .to_bits()
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(reference, run(threads), "round {round}, len {len}, threads {threads}");
        }
    }
}

#[test]
fn hundreds_of_sharded_task_rounds_are_bitwise_stable() {
    for round in 0..200 {
        let shards = 1 + round % 16;
        let run = |threads: usize| -> Vec<u32> {
            let mut states = vec![0.0f32; shards];
            Pool::with_threads(threads).run_tasks(&mut states, |index, acc| {
                for i in 0..50 {
                    *acc += 1.0 / ((index * 50 + i + round) as f32 + 1.0);
                }
                acc.to_bits()
            })
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(reference, run(threads), "round {round}, shards {shards}");
        }
    }
}

#[test]
fn skewed_flat_map_rounds_preserve_order() {
    // Chunk costs skew heavily (quadratic tail) so stealing actually
    // rebalances; element order must still be exactly input order.
    for round in 0..100 {
        let len = 64 + round % 64;
        let out: Vec<usize> = Pool::with_threads(8).parallel_flat_map(len, 5, |index, r| {
            let spin = (index % 7) * (index % 7) * 40;
            let mut acc = 0usize;
            for i in 0..spin {
                acc = acc.wrapping_add(i);
            }
            r.map(|v| v + acc.wrapping_mul(0)).collect()
        });
        assert_eq!(out, (0..len).collect::<Vec<usize>>(), "round {round}");
    }
}
