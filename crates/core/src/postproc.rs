//! Cycle-level model of the Post-Processing Module (Stage III): the
//! MLP engine and the volumetric renderer.
//!
//! Following the paper's design methodology (Sec. VI-C, *Speedup
//! Breakdown*), Stage III's compute resources are sized so that its
//! point rate matches Stage II's: the MAC array retires one sample's
//! MLP work per cycle in inference. Training multiplies the MLP work
//! by roughly 3× (forward, input-gradient, and weight-gradient
//! passes), mirroring Stage II's three-step updates so the pipeline
//! stays balanced.

/// Configuration of the post-processing module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostProcConfig {
    /// Multiply-accumulate units in the MLP engine (per cycle).
    pub mac_units: u64,
    /// MLP multiply-accumulates per sample point (density + color
    /// networks, forward pass).
    pub macs_per_point: u64,
    /// Renderer pipeline: fixed cycles per ray for compositing set-up
    /// and write-back.
    pub renderer_ray_overhead: u64,
    /// Training cost multiplier over the forward pass (backward
    /// input- and weight-gradient passes).
    pub training_multiplier: u64,
}

impl PostProcConfig {
    /// The scaled-up chip's configuration: the MAC array is sized to
    /// retire one point per cycle for the paper-scale MLPs (a
    /// 32-wide × 2-layer density net and 64-wide color net come to
    /// roughly 5.3 k MACs; the engine provides that per cycle).
    pub fn fusion3d(macs_per_point: u64) -> Self {
        PostProcConfig {
            mac_units: macs_per_point,
            macs_per_point,
            renderer_ray_overhead: 2,
            training_multiplier: 3,
        }
    }

    /// Cycles the MLP engine needs per point in inference.
    pub fn mlp_cycles_per_point(&self) -> u64 {
        self.macs_per_point.div_ceil(self.mac_units)
    }

    /// Points per cycle in inference (MLP-bound; the renderer is
    /// pipelined behind it at one point per cycle).
    pub fn points_per_cycle_inference(&self) -> f64 {
        1.0 / self.mlp_cycles_per_point() as f64
    }

    /// Points per cycle in training.
    pub fn points_per_cycle_training(&self) -> f64 {
        self.points_per_cycle_inference() / self.training_multiplier as f64
    }

    /// Cycles to post-process a frame of `points` samples over `rays`
    /// rays in inference. The renderer is a separate pipelined unit
    /// running concurrently with the MLP engine, so the module is
    /// bound by whichever stream is longer.
    pub fn frame_cycles(&self, points: u64, rays: u64) -> u64 {
        (points * self.mlp_cycles_per_point()).max(rays * self.renderer_ray_overhead)
    }

    /// Cycles for one training batch of `points` samples over `rays`
    /// rays (forward + backward through MLP and compositing).
    pub fn training_cycles(&self, points: u64, rays: u64) -> u64 {
        (points * self.mlp_cycles_per_point() * self.training_multiplier)
            .max(rays * self.renderer_ray_overhead * 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_design_retires_one_point_per_cycle() {
        let cfg = PostProcConfig::fusion3d(5312);
        assert_eq!(cfg.mlp_cycles_per_point(), 1);
        assert_eq!(cfg.points_per_cycle_inference(), 1.0);
        assert!((cfg.points_per_cycle_training() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn undersized_engine_serializes() {
        let cfg = PostProcConfig { mac_units: 1000, ..PostProcConfig::fusion3d(5000) };
        assert_eq!(cfg.mlp_cycles_per_point(), 5);
        assert_eq!(cfg.points_per_cycle_inference(), 0.2);
    }

    #[test]
    fn frame_and_training_cycle_accounting() {
        let cfg = PostProcConfig::fusion3d(4096);
        // MLP-bound frame: the pipelined renderer hides behind it.
        let frame = cfg.frame_cycles(10_000, 640);
        assert_eq!(frame, 10_000);
        let train = cfg.training_cycles(10_000, 640);
        assert_eq!(train, 30_000);
        assert!(train > frame);
        // Renderer-bound corner: almost no samples, many rays.
        assert_eq!(cfg.frame_cycles(10, 640), 640 * 2);
    }

    #[test]
    fn zero_workload_is_free() {
        let cfg = PostProcConfig::fusion3d(1024);
        assert_eq!(cfg.frame_cycles(0, 0), 0);
        assert_eq!(cfg.training_cycles(0, 0), 0);
    }
}
