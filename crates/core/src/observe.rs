//! Recording simulator results into [`fusion3d_obs`] reports.
//!
//! This module is the single place where the core simulator talks to
//! the observability layer: result structs gain `record` methods, and
//! [`observe_frame`] runs the full cycle-stepped pipeline for one frame
//! while building the span tree and metric registry that
//! `bench/src/bin/breakdown.rs` renders into paper-style tables.
//!
//! Everything recorded here derives from simulated quantities only —
//! cycles, bytes, sample counts — so reports are bitwise-deterministic
//! (see the `fusion3d_obs` crate docs for the contract).

use crate::chip::{FusionChip, SimReport};
use crate::config::Module;
use crate::noc::{check_noc, NocConfig, NocReport};
use crate::pipeline_sim::{
    simulate_pipeline_attributed, BufferConfig, CycleAttribution, PipelineSimReport,
};
use crate::sampling::{simulate_sampling, SamplingSimResult};
use fusion3d_nerf::pipeline::FrameTrace;
use fusion3d_obs::{Report, SpanId};

/// Encoded features per hash-grid level crossing the Stage II → III
/// boundary (matches `HashGridConfig::paper().features_per_level`).
pub const FEATURES_PER_LEVEL: u64 = 2;

impl SamplingSimResult {
    /// Record the Stage-I scheduling outcome: throughput counters plus
    /// the core-utilization gauge (paper Fig. 6 territory).
    pub fn record(&self, cores: usize, report: &mut Report) {
        let m = &mut report.metrics;
        m.counter_add("sampling.cycles", "cycles", self.cycles);
        m.counter_add("sampling.busy_core_cycles", "cycles", self.busy_core_cycles);
        m.counter_add("sampling.preproc_cycles", "cycles", self.preproc_cycles);
        m.counter_add("sampling.rays", "rays", self.rays);
        m.counter_add("sampling.pairs", "pairs", self.pairs);
        m.counter_add("sampling.steps", "steps", self.steps);
        m.gauge_set("sampling.core_utilization", "ratio", self.core_utilization(cores));
        m.gauge_set("sampling.steps_per_cycle", "steps/cycle", self.steps_per_cycle());
    }
}

impl NocReport {
    /// Record per-link NoC traffic and utilization (Sec. III-A item 5:
    /// the links must never become the bottleneck).
    pub fn record(&self, report: &mut Report) {
        let m = &mut report.metrics;
        m.counter_add("noc.s1_s2.bytes", "bytes", self.traffic.s1_to_s2);
        m.counter_add("noc.s2_s3.bytes", "bytes", self.traffic.s2_to_s3);
        m.counter_add("noc.s3_io.bytes", "bytes", self.traffic.s3_to_io);
        m.gauge_set("noc.s1_s2.utilization", "ratio", self.s1_s2_utilization);
        m.gauge_set("noc.s2_s3.utilization", "ratio", self.s2_s3_utilization);
        m.gauge_set("noc.s3_io.utilization", "ratio", self.s3_io_utilization);
        m.gauge_set("noc.peak_utilization", "ratio", self.peak_utilization());
    }
}

/// Record the Stage-I workload shape of a frame trace: ray–AABB hit
/// rate and the per-ray retained-sample distribution (paper Fig. 9 /
/// Tab. VI explain per-scene spreads with exactly these quantities).
pub fn record_frame_trace(trace: &FrameTrace, report: &mut Report) {
    let m = &mut report.metrics;
    m.counter_add("frame.rays", "rays", trace.ray_count() as u64);
    m.counter_add("frame.samples", "samples", trace.total_samples);
    m.counter_add("frame.steps", "steps", trace.total_steps);
    m.gauge_set("frame.hit_rate", "ratio", trace.hit_rate());
    m.gauge_set("frame.samples_per_ray", "samples", trace.mean_samples_per_ray());
    for w in &trace.workloads {
        let samples: u64 = w.samples_per_pair.iter().map(|&s| u64::from(s)).sum();
        m.observe("ray.samples", "samples", samples);
    }
}

/// Everything [`observe_frame`] computes for one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameObservation {
    /// The analytic steady-state report ([`FusionChip::simulate_frame`]
    /// or its training-step sibling).
    pub analytic: SimReport,
    /// The cycle-stepped pipeline result with finite FIFOs.
    pub stepped: PipelineSimReport,
    /// Exact per-stage attribution of the stepped cycles.
    pub attribution: CycleAttribution,
    /// The root span recorded for this frame (its children are the
    /// three attributed stage spans).
    pub root: SpanId,
}

/// Simulate one frame (or training step) end to end and record spans
/// and metrics into `report`.
///
/// The span tree lays the three attribution classes out end-to-end
/// under a root `frame` span, so span extents are *attribution totals*,
/// not a chronology; by construction the children sum exactly to the
/// root's cycle count. Energy is attributed per module from the chip's
/// power breakdown (fractions sum to 1), so module energies sum to the
/// frame total the same way.
///
/// # Panics
///
/// Panics if either FIFO capacity in `buffers` is zero (propagated from
/// [`simulate_pipeline_attributed`]).
pub fn observe_frame(
    chip: &FusionChip,
    trace: &FrameTrace,
    buffers: &BufferConfig,
    training: bool,
    report: &mut Report,
) -> FrameObservation {
    let analytic =
        if training { chip.simulate_training_step(trace) } else { chip.simulate_frame(trace) };
    let (stepped, attribution) = simulate_pipeline_attributed(chip, trace, buffers, training);

    // Span tree: attributed stage cycles laid out under the frame root.
    let root_name = if training { "train_step" } else { "frame" };
    let root = report.trace.begin(root_name, 0);
    let s_end = attribution.sampling;
    let i_end = s_end + attribution.interp;
    let p_end = i_end + attribution.postproc;
    let s_span = report.trace.record("sampling", 0, s_end);
    let i_span = report.trace.record("interp", s_end, i_end);
    let p_span = report.trace.record("postproc", i_end, p_end);
    report.trace.end(root, p_end);

    // Energy: total for the stepped makespan, split by the module power
    // breakdown. The three compute modules' shares annotate the stage
    // spans; all six land in the metric registry.
    let total_energy = chip.energy_model().energy_for_cycles_j(stepped.cycles);
    report.trace.set_energy(root, total_energy);
    let m = &mut report.metrics;
    m.gauge_set("energy.total_j", "J", total_energy);
    for (module, fraction) in chip.config().power_breakdown() {
        let joules = total_energy * fraction;
        let mut name = String::from("energy.");
        name.push_str(module.slug());
        name.push_str("_j");
        m.gauge_set(&name, "J", joules);
        let span = match module {
            Module::Sampling => Some(s_span),
            Module::Interpolation => Some(i_span),
            Module::PostProcessing => Some(p_span),
            _ => None,
        };
        if let Some(span) = span {
            report.trace.set_energy(span, joules);
        }
    }

    // Stepped-pipeline health counters.
    let m = &mut report.metrics;
    m.counter_add("pipeline.cycles", "cycles", stepped.cycles);
    m.counter_add("pipeline.points", "points", stepped.points);
    m.counter_add("pipeline.s1_stall", "cycles", stepped.s1_stall);
    m.counter_add("pipeline.s2_starve", "cycles", stepped.s2_starve);
    m.counter_add("pipeline.s2_stall", "cycles", stepped.s2_stall);
    m.counter_add("pipeline.s3_starve", "cycles", stepped.s3_starve);
    m.gauge_set("pipeline.overhead_fraction", "ratio", stepped.overhead_fraction());

    // Analytic per-stage (overlapped) cycles for cross-checking the
    // attribution against the steady-state model.
    m.counter_add("stage.sampling.cycles", "cycles", analytic.stages.sampling);
    m.counter_add("stage.interp.cycles", "cycles", analytic.stages.interpolation);
    m.counter_add("stage.postproc.cycles", "cycles", analytic.stages.post_processing);

    record_frame_trace(trace, report);
    simulate_sampling(chip.sampling_config(), &trace.workloads)
        .record(chip.sampling_config().cores, report);
    let feature_dim = chip.config().model_levels as u64 * FEATURES_PER_LEVEL;
    check_noc(&NocConfig::fusion3d(), trace, feature_dim, &analytic.stages).record(report);

    FrameObservation { analytic, stepped, attribution, root }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion3d_nerf::sampler::RayWorkload;

    fn trace(rays: usize, samples: u16) -> FrameTrace {
        FrameTrace {
            workloads: (0..rays)
                .map(|_| RayWorkload {
                    valid_pairs: 1,
                    samples_per_pair: vec![samples],
                    steps_per_pair: vec![samples + 4],
                    lattice_steps_per_pair: vec![samples * 4],
                })
                .collect(),
            total_samples: rays as u64 * samples as u64,
            total_steps: rays as u64 * (samples as u64 + 4),
        }
    }

    #[test]
    fn observed_frame_spans_sum_to_root() {
        let chip = FusionChip::scaled_up();
        let t = trace(512, 13);
        let mut report = Report::new("test");
        let obs = observe_frame(&chip, &t, &BufferConfig::fusion3d(), false, &mut report);
        assert_eq!(obs.attribution.total(), obs.stepped.cycles);
        assert_eq!(report.trace.child_cycles(obs.root), obs.stepped.cycles);
        assert_eq!(report.trace.get(obs.root).map(|s| s.cycles()), Some(obs.stepped.cycles));
    }

    #[test]
    fn observed_frame_records_catalog_metrics() {
        let chip = FusionChip::scaled_up();
        let t = trace(256, 9);
        let mut report = Report::new("test");
        observe_frame(&chip, &t, &BufferConfig::fusion3d(), true, &mut report);
        for name in [
            "frame.hit_rate",
            "ray.samples",
            "sampling.core_utilization",
            "noc.s2_s3.bytes",
            "energy.total_j",
            "pipeline.cycles",
        ] {
            assert!(report.metrics.get(name).is_some(), "missing metric {name}");
        }
    }

    #[test]
    fn module_energy_sums_to_total() {
        let chip = FusionChip::scaled_up();
        let t = trace(128, 7);
        let mut report = Report::new("test");
        observe_frame(&chip, &t, &BufferConfig::fusion3d(), false, &mut report);
        let gauge = |name: &str| match report.metrics.get(name).map(|m| &m.value) {
            Some(fusion3d_obs::MetricValue::Gauge(g)) => *g,
            other => panic!("expected gauge {name}, got {other:?}"),
        };
        let total = gauge("energy.total_j");
        let sum: f64 = Module::ALL.iter().map(|m| gauge(&format!("energy.{}_j", m.slug()))).sum();
        assert!((sum - total).abs() <= total * 1e-12, "sum {sum} vs total {total}");
    }
}
