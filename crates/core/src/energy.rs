//! Power and energy models, calibrated to the prototype's silicon
//! measurements (1.21 W at 600 MHz / 0.95 V) and the paper's
//! per-point energies (2.5 nJ inference, 7.4 nJ training on the
//! scaled-up chip).

use crate::config::{frequency_at_voltage_mhz, ChipConfig, Module};

/// Dynamic-power scaling model for a chip: `P = P₀ · (V/V₀)² ·
/// (f/f₀)` around the calibrated operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    chip: ChipConfig,
}

impl EnergyModel {
    /// Creates a model for a chip configuration.
    pub fn new(chip: ChipConfig) -> Self {
        EnergyModel { chip }
    }

    /// The underlying chip.
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// Total power at the nominal operating point, in watts.
    pub fn nominal_power_w(&self) -> f64 {
        self.chip.typical_power_w
    }

    /// Power at a different supply voltage, with the frequency taken
    /// from the measured V/F curve.
    ///
    /// # Panics
    ///
    /// Panics if the voltage is below the device threshold.
    pub fn power_at_voltage_w(&self, voltage: f64) -> f64 {
        let freq = frequency_at_voltage_mhz(voltage);
        self.chip.typical_power_w
            * (voltage / self.chip.core_voltage).powi(2)
            * (freq / self.chip.clock_mhz)
    }

    /// Energy for a run of `cycles` at the nominal clock, in joules.
    pub fn energy_for_cycles_j(&self, cycles: u64) -> f64 {
        self.nominal_power_w() * cycles as f64 / self.chip.cycles_per_second()
    }

    /// Energy per processed point in nanojoules, given a sustained
    /// throughput in points per second.
    ///
    /// # Panics
    ///
    /// Panics if the throughput is not positive.
    pub fn energy_per_point_nj(&self, points_per_second: f64) -> f64 {
        assert!(points_per_second > 0.0, "throughput must be positive");
        self.nominal_power_w() / points_per_second * 1e9
    }

    /// Per-module power at the nominal point, in watts.
    pub fn module_power_w(&self, module: Module) -> f64 {
        self.chip.module_power_w(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_point_matches_silicon() {
        let m = EnergyModel::new(ChipConfig::prototype());
        assert_eq!(m.nominal_power_w(), 1.21);
        // Scaling to the calibrated voltage reproduces nominal power.
        assert!((m.power_at_voltage_w(0.95) - 1.21).abs() < 1e-9);
    }

    #[test]
    fn lower_voltage_cuts_power_superlinearly() {
        let m = EnergyModel::new(ChipConfig::prototype());
        let p_low = m.power_at_voltage_w(0.7);
        let p_high = m.power_at_voltage_w(1.05);
        assert!(p_low < 0.5 * m.nominal_power_w(), "0.7 V power {p_low}");
        assert!(p_high > m.nominal_power_w(), "1.05 V power {p_high}");
    }

    #[test]
    fn paper_energy_per_point() {
        // Scaled-up chip at the paper's published throughputs.
        let m = EnergyModel::new(ChipConfig::scaled_up());
        let inference = m.energy_per_point_nj(591e6);
        let training = m.energy_per_point_nj(199e6);
        assert!((inference - 2.5).abs() < 0.1, "inference {inference} nJ/pt");
        assert!((training - 7.4).abs() < 0.2, "training {training} nJ/pt");
    }

    #[test]
    fn cycle_energy_accounting() {
        let m = EnergyModel::new(ChipConfig::prototype());
        // 600 M cycles = 1 second = 1.21 J.
        assert!((m.energy_for_cycles_j(600_000_000) - 1.21).abs() < 1e-9);
        assert_eq!(m.energy_for_cycles_j(0), 0.0);
    }

    #[test]
    fn module_power_sums_to_total() {
        let m = EnergyModel::new(ChipConfig::scaled_up());
        let total: f64 = Module::ALL.iter().map(|&x| m.module_power_w(x)).sum();
        assert!((total - m.nominal_power_w()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_throughput() {
        EnergyModel::new(ChipConfig::prototype()).energy_per_point_nj(0.0);
    }
}
