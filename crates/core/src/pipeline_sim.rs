//! Cycle-stepped simulation of the three-stage pipeline with finite
//! inter-stage buffering and backpressure.
//!
//! [`crate::chip::FusionChip::simulate_frame`] reports the steady-state
//! makespan (the slowest stage); this module refines it by stepping the
//! pipeline cycle by cycle through the memory clusters' ping-pong
//! FIFOs: Stage I pushes samples into the sample FIFO, Stage II drains
//! it and pushes encoded points into the feature FIFO, Stage III
//! drains that. A full FIFO back-pressures its producer (stall); an
//! empty FIFO starves its consumer. Undersized buffers surface
//! immediately as stall/starve cycles — the sizing question the
//! chip's Memory Clusters answer with their software-configurable
//! ping-pong arrays.

use crate::chip::FusionChip;
use crate::interp::PipelineMode;
use crate::sampling::simulate_sampling;
use fusion3d_nerf::pipeline::FrameTrace;

/// Inter-stage buffer capacities, in sample points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferConfig {
    /// Capacity of the Stage I → Stage II sample FIFO.
    pub sample_fifo: u64,
    /// Capacity of the Stage II → Stage III feature FIFO.
    pub feature_fifo: u64,
}

impl BufferConfig {
    /// The chip's memory-cluster sizing: one ping-pong array pair per
    /// boundary, each holding ~4k in-flight points.
    pub fn fusion3d() -> Self {
        BufferConfig { sample_fifo: 4096, feature_fifo: 4096 }
    }
}

/// Result of the cycle-stepped pipeline simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineSimReport {
    /// Total cycles until the last point drains from Stage III.
    pub cycles: u64,
    /// Cycles Stage I spent blocked on a full sample FIFO.
    pub s1_stall: u64,
    /// Cycles Stage II spent starved (empty input) or blocked (full
    /// output).
    pub s2_starve: u64,
    /// Stage II blocked-on-output cycles.
    pub s2_stall: u64,
    /// Cycles Stage III spent starved.
    pub s3_starve: u64,
    /// Points drained through the whole pipeline.
    pub points: u64,
}

impl PipelineSimReport {
    /// Fraction of total cycles lost to any stall or starvation.
    pub fn overhead_fraction(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let lost = self.s1_stall + self.s2_starve + self.s2_stall + self.s3_starve;
        lost as f64 / (self.cycles as f64 * 3.0)
    }
}

/// Exact attribution of every stepped pipeline cycle to the stage that
/// governed it.
///
/// Each simulated cycle is classified to exactly one stage by what set
/// the drain tempo that cycle: cycles where Stage III drained points (or
/// was limited by its own fractional rate) are `postproc`; cycles where
/// Stage III sat starved are charged to the upstream cause — `sampling`
/// when the sample FIFO was also empty, `interp` otherwise. Because the
/// classification is total and exclusive, [`CycleAttribution::total`]
/// equals [`PipelineSimReport::cycles`] exactly — the invariant the
/// breakdown report's sum test asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    /// Cycles governed by Stage I (ray marching / sampling).
    pub sampling: u64,
    /// Cycles governed by Stage II (hash-grid feature interpolation).
    pub interp: u64,
    /// Cycles governed by Stage III (MLP + volume rendering).
    pub postproc: u64,
}

impl CycleAttribution {
    /// Sum of the attributed cycles; equals the stepped simulation's
    /// total cycle count by construction.
    pub fn total(&self) -> u64 {
        self.sampling + self.interp + self.postproc
    }
}

/// Steps the pipeline cycle by cycle for one frame.
///
/// Stage rates come from the chip's module models: Stage I's sustained
/// sample production rate is derived from its scheduling simulation,
/// Stage II and III from their points-per-cycle. Fractional rates are
/// handled with accumulators, so a stage producing 0.5 points/cycle
/// emits one point every other cycle.
///
/// # Panics
///
/// Panics if either FIFO capacity is zero.
pub fn simulate_pipeline(
    chip: &FusionChip,
    trace: &FrameTrace,
    buffers: &BufferConfig,
    training: bool,
) -> PipelineSimReport {
    simulate_pipeline_attributed(chip, trace, buffers, training).0
}

/// [`simulate_pipeline`] plus exact per-stage cycle attribution.
///
/// # Panics
///
/// Panics if either FIFO capacity is zero.
pub fn simulate_pipeline_attributed(
    chip: &FusionChip,
    trace: &FrameTrace,
    buffers: &BufferConfig,
    training: bool,
) -> (PipelineSimReport, CycleAttribution) {
    assert!(
        buffers.sample_fifo > 0 && buffers.feature_fifo > 0,
        "FIFO capacities must be positive"
    );
    let total = trace.total_samples;
    if total == 0 {
        let empty = PipelineSimReport {
            cycles: 0,
            s1_stall: 0,
            s2_starve: 0,
            s2_stall: 0,
            s3_starve: 0,
            points: 0,
        };
        return (empty, CycleAttribution::default());
    }

    // Sustained per-stage rates in points per cycle.
    let s1 = simulate_sampling(chip.sampling_config(), &trace.workloads);
    let r1 = total as f64 / s1.cycles.max(1) as f64;
    let mode = if training { PipelineMode::Training } else { PipelineMode::Inference };
    let s2_cycles = {
        let c = chip.config();
        let interp = crate::interp::InterpModuleConfig::fusion3d(c.interp_cores, c.model_levels);
        interp.cycles_for_points(total, trace.ray_count() as u64, mode)
    };
    let r2 = total as f64 / s2_cycles.max(1) as f64;
    let s3_cycles = {
        let pp = crate::postproc::PostProcConfig::fusion3d(5312);
        if training {
            pp.training_cycles(total, trace.ray_count() as u64)
        } else {
            pp.frame_cycles(total, trace.ray_count() as u64)
        }
    };
    let r3 = total as f64 / s3_cycles.max(1) as f64;

    let mut report = PipelineSimReport {
        cycles: 0,
        s1_stall: 0,
        s2_starve: 0,
        s2_stall: 0,
        s3_starve: 0,
        points: 0,
    };
    let mut attr = CycleAttribution::default();
    let (mut produced1, mut produced2, mut drained) = (0u64, 0u64, 0u64);
    let (mut fifo1, mut fifo2) = (0u64, 0u64);
    let (mut acc1, mut acc2, mut acc3) = (0.0f64, 0.0f64, 0.0f64);
    // Hard upper bound so a modelling bug cannot spin forever; the
    // saturating multiply keeps the guard meaningful even for
    // adversarial stage-cycle sums (lint rule A2).
    let limit = (s1.cycles + s2_cycles + s3_cycles + 1000).saturating_mul(4);

    while drained < total {
        report.cycles += 1;
        if report.cycles > limit {
            // lint: allow(p1): modelling-bug guard — the bound is generous by construction
            panic!("pipeline simulation failed to drain within {limit} cycles");
        }
        // Stage I.
        if produced1 < total {
            acc1 += r1;
            let want = acc1 as u64;
            if want > 0 {
                let space = buffers.sample_fifo - fifo1;
                let emit = want.min(space).min(total - produced1);
                if emit < want && space < want {
                    report.s1_stall += 1;
                }
                produced1 += emit;
                fifo1 += emit;
                acc1 -= emit as f64;
                // Cap the accumulator so stalls don't bank up work.
                acc1 = acc1.min(r1.max(1.0) * 2.0);
            }
        }
        // Stage II.
        if produced2 < total {
            acc2 += r2;
            let want = acc2 as u64;
            if want > 0 {
                if fifo1 == 0 {
                    report.s2_starve += 1;
                    acc2 = acc2.min(r2.max(1.0) * 2.0);
                } else {
                    let space = buffers.feature_fifo - fifo2;
                    if space == 0 {
                        report.s2_stall += 1;
                        acc2 = acc2.min(r2.max(1.0) * 2.0);
                    } else {
                        let take = want.min(fifo1).min(space);
                        fifo1 -= take;
                        fifo2 += take;
                        produced2 += take;
                        acc2 -= take as f64;
                    }
                }
            }
        }
        // Stage III — and the cycle's attribution. A cycle where Stage
        // III advances (or is paced by its own fractional rate) is a
        // post-processing cycle; a starved cycle is charged to the
        // upstream stage that caused the bubble.
        acc3 += r3;
        let want = acc3 as u64;
        if want > 0 {
            if fifo2 == 0 {
                report.s3_starve += 1;
                acc3 = acc3.min(r3.max(1.0) * 2.0);
                // An empty sample FIFO implicates Stage I only while it
                // still has samples left to produce; during the tail
                // drain the bubble is Stage II's.
                if fifo1 == 0 && produced1 < total {
                    attr.sampling += 1;
                } else {
                    attr.interp += 1;
                }
            } else {
                let take = want.min(fifo2);
                fifo2 -= take;
                drained += take;
                acc3 -= take as f64;
                attr.postproc += 1;
            }
        } else {
            attr.postproc += 1;
        }
    }
    report.points = drained;
    (report, attr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion3d_nerf::sampler::RayWorkload;

    fn trace(rays: usize, samples: u16) -> FrameTrace {
        FrameTrace {
            workloads: (0..rays)
                .map(|_| RayWorkload {
                    valid_pairs: 1,
                    samples_per_pair: vec![samples],
                    steps_per_pair: vec![samples + 4],
                    lattice_steps_per_pair: vec![samples * 4],
                })
                .collect(),
            total_samples: rays as u64 * samples as u64,
            total_steps: rays as u64 * (samples as u64 + 4),
        }
    }

    #[test]
    fn drains_every_point() {
        let chip = FusionChip::scaled_up();
        let t = trace(512, 13);
        let r = simulate_pipeline(&chip, &t, &BufferConfig::fusion3d(), false);
        assert_eq!(r.points, t.total_samples);
        assert!(r.cycles > 0);
    }

    #[test]
    fn pipeline_time_bounds_the_analytic_makespan() {
        // The cycle-stepped result is at least the slowest stage and
        // within a modest factor of it (fill/drain overhead only) when
        // buffers are adequately sized.
        let chip = FusionChip::scaled_up();
        let t = trace(2048, 13);
        let analytic = chip.simulate_frame(&t).cycles;
        let stepped = simulate_pipeline(&chip, &t, &BufferConfig::fusion3d(), false).cycles;
        assert!(stepped >= analytic, "stepped {stepped} < analytic {analytic}");
        assert!(
            (stepped as f64) < analytic as f64 * 1.25,
            "excess pipeline overhead: {stepped} vs {analytic}"
        );
    }

    #[test]
    fn attribution_sums_to_total_cycles() {
        let chip = FusionChip::scaled_up();
        for (rays, samples, training) in [(512, 13, false), (2048, 13, true), (64, 3, false)] {
            let t = trace(rays, samples);
            let (report, attr) =
                simulate_pipeline_attributed(&chip, &t, &BufferConfig::fusion3d(), training);
            assert_eq!(
                attr.total(),
                report.cycles,
                "attribution must cover every cycle exactly once"
            );
            assert!(attr.interp > 0 || attr.postproc > 0 || attr.sampling > 0);
        }
    }

    #[test]
    fn attributed_matches_unattributed() {
        let chip = FusionChip::scaled_up();
        let t = trace(1024, 13);
        let plain = simulate_pipeline(&chip, &t, &BufferConfig::fusion3d(), false);
        let (report, _) = simulate_pipeline_attributed(&chip, &t, &BufferConfig::fusion3d(), false);
        assert_eq!(plain, report);
    }

    #[test]
    fn empty_trace_is_free() {
        let chip = FusionChip::prototype();
        let r = simulate_pipeline(&chip, &FrameTrace::default(), &BufferConfig::fusion3d(), false);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.points, 0);
        assert_eq!(r.overhead_fraction(), 0.0);
    }

    #[test]
    fn undersized_feature_fifo_backpressures_stage_two() {
        let chip = FusionChip::scaled_up();
        let t = trace(1024, 13);
        let tight = BufferConfig { sample_fifo: 4096, feature_fifo: 1 };
        let roomy = BufferConfig::fusion3d();
        let r_tight = simulate_pipeline(&chip, &t, &tight, true);
        let r_roomy = simulate_pipeline(&chip, &t, &roomy, true);
        assert!(r_tight.cycles >= r_roomy.cycles);
        assert!(
            r_tight.s2_stall + r_tight.s3_starve >= r_roomy.s2_stall + r_roomy.s3_starve,
            "tight buffers should not reduce stalls"
        );
    }

    #[test]
    fn training_mode_takes_longer() {
        let chip = FusionChip::scaled_up();
        let t = trace(512, 16);
        let inf = simulate_pipeline(&chip, &t, &BufferConfig::fusion3d(), false);
        let train = simulate_pipeline(&chip, &t, &BufferConfig::fusion3d(), true);
        assert!(train.cycles > inf.cycles);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let chip = FusionChip::prototype();
        simulate_pipeline(
            &chip,
            &trace(4, 2),
            &BufferConfig { sample_fifo: 0, feature_fifo: 1 },
            false,
        );
    }
}
