//! The Network-on-Chip and Interface/Controller models — the chip's
//! two support modules (Sec. III-A items 5 and 6).
//!
//! The NoC interlinks the three computing modules and the memory
//! clusters; the interface streams the pipeline's true inputs and
//! outputs off-chip. Neither is allowed to become the bottleneck: the
//! NoC links are sized so that stage hand-off traffic always fits
//! under the compute time of the stages it connects, and the interface
//! needs only the end-to-end I/O bandwidth (0.6 GB/s).

use crate::chip::StageCycles;
use fusion3d_nerf::pipeline::FrameTrace;

/// Bytes per sample handed from Stage I to Stage II (position, `t`,
/// `δt`).
pub const S1_TO_S2_BYTES_PER_SAMPLE: u64 = 20;
/// Bytes per sample handed from Stage II to Stage III per encoded
/// feature dimension (f32).
pub const S2_TO_S3_BYTES_PER_FEATURE: u64 = 4;
/// Bytes per ray delivered to the interface (final RGB pixel).
pub const PIXEL_BYTES: u64 = 12;
/// Bytes per display-ready pixel crossing the off-chip interface
/// (8-bit RGB; the f32 radiance is tone-mapped on its way out).
pub const DISPLAY_PIXEL_BYTES: u64 = 3;

/// On-chip link configuration. The stage hand-offs are wide
/// point-to-point buses sized to their stage's per-cycle payload —
/// the Stage II → III features are the widest flow (an encoded
/// feature vector per cycle) — while the pixel path to the interface
/// is narrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Width of the Stage I → Stage II sample bus in bits.
    pub s1_s2_width_bits: u32,
    /// Width of the Stage II → Stage III feature bus in bits.
    pub s2_s3_width_bits: u32,
    /// Width of the Stage III → interface pixel link in bits.
    pub io_width_bits: u32,
    /// Router traversal latency per hop in cycles.
    pub hop_latency: u32,
}

impl NocConfig {
    /// The Fusion-3D configuration: a 256-bit sample bus, a 1024-bit
    /// feature bus (20 × f32 features per cycle with headroom), a
    /// 128-bit pixel link, single-cycle hops.
    pub fn fusion3d() -> Self {
        NocConfig {
            s1_s2_width_bits: 256,
            s2_s3_width_bits: 1024,
            io_width_bits: 128,
            hop_latency: 1,
        }
    }

    /// Cycles to move `bytes` over a link of `width_bits` (excluding
    /// hop latency).
    ///
    /// # Panics
    ///
    /// Panics if the link width is zero.
    pub fn transfer_cycles(width_bits: u32, bytes: u64) -> u64 {
        assert!(width_bits > 0, "link width must be positive");
        (bytes * 8).div_ceil(width_bits as u64)
    }
}

/// Traffic on the two stage-boundary links for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocTraffic {
    /// Stage I → Stage II bytes.
    pub s1_to_s2: u64,
    /// Stage II → Stage III bytes.
    pub s2_to_s3: u64,
    /// Stage III → interface bytes (pixels out).
    pub s3_to_io: u64,
}

/// Computes the per-frame NoC traffic from a Stage-I trace and the
/// model's encoded feature dimension.
pub fn frame_traffic(trace: &FrameTrace, feature_dim: u64) -> NocTraffic {
    NocTraffic {
        s1_to_s2: trace.total_samples * S1_TO_S2_BYTES_PER_SAMPLE,
        s2_to_s3: trace.total_samples * feature_dim * S2_TO_S3_BYTES_PER_FEATURE,
        s3_to_io: trace.ray_count() as u64 * PIXEL_BYTES,
    }
}

/// Utilization of each NoC link against the frame's pipelined compute
/// time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocReport {
    /// Traffic that produced this report.
    pub traffic: NocTraffic,
    /// S1→S2 link utilization (transfer cycles / compute cycles).
    pub s1_s2_utilization: f64,
    /// S2→S3 link utilization.
    pub s2_s3_utilization: f64,
    /// S3→interface link utilization.
    pub s3_io_utilization: f64,
}

impl NocReport {
    /// Whether any link would throttle the pipeline.
    pub fn is_bottleneck(&self) -> bool {
        self.s1_s2_utilization >= 1.0
            || self.s2_s3_utilization >= 1.0
            || self.s3_io_utilization >= 1.0
    }

    /// The highest link utilization.
    pub fn peak_utilization(&self) -> f64 {
        self.s1_s2_utilization.max(self.s2_s3_utilization).max(self.s3_io_utilization)
    }
}

/// Checks the NoC against a frame's compute schedule: each link's
/// transfer time is compared with the pipeline's makespan.
///
/// # Panics
///
/// Panics if `stages` has a zero makespan while traffic is nonzero
/// (a transfer cannot happen in zero compute time).
pub fn check_noc(
    config: &NocConfig,
    trace: &FrameTrace,
    feature_dim: u64,
    stages: &StageCycles,
) -> NocReport {
    let traffic = frame_traffic(trace, feature_dim);
    let makespan = stages.pipelined();
    let util = |width: u32, bytes: u64| {
        if bytes == 0 {
            0.0
        } else {
            assert!(makespan > 0, "nonzero traffic with zero compute time");
            (NocConfig::transfer_cycles(width, bytes) + config.hop_latency as u64) as f64
                / makespan as f64
        }
    };
    NocReport {
        traffic,
        s1_s2_utilization: util(config.s1_s2_width_bits, traffic.s1_to_s2),
        s2_s3_utilization: util(config.s2_s3_width_bits, traffic.s2_to_s3),
        s3_io_utilization: util(config.io_width_bits, traffic.s3_to_io),
    }
}

/// The off-chip interface: checks that a frame's (or training step's)
/// true I/O fits the USB-class budget at the achieved frame rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterfaceReport {
    /// Bytes crossing the interface per frame.
    pub bytes_per_frame: u64,
    /// Required off-chip bandwidth in GB/s at the given frame rate.
    pub required_gbs: f64,
}

/// Computes the interface load for frames of `trace` at `fps`:
/// camera parameters in, display-ready 8-bit pixels out.
pub fn interface_load(trace: &FrameTrace, fps: f64) -> InterfaceReport {
    // Camera pose+intrinsics in (64 B) plus the rendered pixels out.
    let bytes = 64 + trace.ray_count() as u64 * DISPLAY_PIXEL_BYTES;
    InterfaceReport { bytes_per_frame: bytes, required_gbs: bytes as f64 * fps / 1e9 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::FusionChip;
    use fusion3d_nerf::sampler::RayWorkload;

    fn trace(rays: usize, samples_per_ray: u16) -> FrameTrace {
        FrameTrace {
            workloads: (0..rays)
                .map(|_| RayWorkload {
                    valid_pairs: 1,
                    samples_per_pair: vec![samples_per_ray],
                    steps_per_pair: vec![samples_per_ray + 6],
                    lattice_steps_per_pair: vec![samples_per_ray * 4],
                })
                .collect(),
            total_samples: rays as u64 * samples_per_ray as u64,
            total_steps: rays as u64 * (samples_per_ray as u64 + 6),
        }
    }

    #[test]
    fn transfer_cycle_accounting() {
        assert_eq!(NocConfig::transfer_cycles(128, 16), 1);
        assert_eq!(NocConfig::transfer_cycles(128, 17), 2);
        assert_eq!(NocConfig::transfer_cycles(128, 0), 0);
        assert_eq!(NocConfig::transfer_cycles(1024, 128), 1);
    }

    #[test]
    fn traffic_scales_with_workload() {
        let small = frame_traffic(&trace(100, 8), 20);
        let big = frame_traffic(&trace(100, 16), 20);
        assert_eq!(big.s1_to_s2, 2 * small.s1_to_s2);
        assert_eq!(big.s2_to_s3, 2 * small.s2_to_s3);
        assert_eq!(big.s3_to_io, small.s3_to_io, "pixel traffic is per-ray");
    }

    #[test]
    fn fusion3d_noc_is_never_the_bottleneck() {
        // Design check: on a representative frame, every link runs far
        // below the compute time.
        let chip = FusionChip::scaled_up();
        let t = trace(4096, 13);
        let report = chip.simulate_frame(&t);
        let noc = check_noc(&NocConfig::fusion3d(), &t, 20, &report.stages);
        assert!(!noc.is_bottleneck(), "NoC throttles: {noc:?}");
        // The S2->S3 link is the busiest (features are the widest
        // hand-off), but still keeps headroom.
        assert!(noc.s2_s3_utilization >= noc.s1_s2_utilization);
        assert!(noc.peak_utilization() < 0.9, "peak {}", noc.peak_utilization());
    }

    #[test]
    fn starved_links_are_detected() {
        // A toy feature bus cannot carry the feature stream.
        let narrow = NocConfig { s2_s3_width_bits: 16, ..NocConfig::fusion3d() };
        let chip = FusionChip::scaled_up();
        let t = trace(1024, 13);
        let report = chip.simulate_frame(&t);
        let noc = check_noc(&narrow, &t, 20, &report.stages);
        assert!(noc.is_bottleneck());
    }

    #[test]
    fn interface_fits_usb_at_paper_scale() {
        // 800x800 at 36 FPS: pixels out plus camera in.
        let t = trace(800 * 800 / 64, 13); // scaled trace; rays matter
        let rays = t.ray_count() as u64;
        let report = interface_load(&t, 36.0 * 64.0); // same pixels/s as 800^2 @ 36
        assert_eq!(report.bytes_per_frame, 64 + rays * 3);
        assert!(report.required_gbs < 0.625, "interface needs {} GB/s", report.required_gbs);
    }

    #[test]
    fn zero_traffic_zero_utilization() {
        let noc = check_noc(
            &NocConfig::fusion3d(),
            &FrameTrace::default(),
            20,
            &StageCycles { sampling: 0, interpolation: 0, post_processing: 0 },
        );
        assert_eq!(noc.peak_utilization(), 0.0);
        assert!(!noc.is_bottleneck());
    }
}
