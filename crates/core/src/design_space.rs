//! Design-space exploration around the published configuration.
//!
//! The paper's methodology (Sec. VI-C) fixes Stage II's rate and sizes
//! the other stages to match; Sec. II-D motivates flexibility across
//! high-end and mid/low-end AR/VR devices. This module sweeps the
//! main levers — interpolation cores, sampling cores, and clock — and
//! reports throughput/power/area points, so a downstream user can pick
//! a configuration for their device class the way the authors picked
//! the prototype (5 cores) and scaled-up (10 cores) designs.

use crate::chip::FusionChip;
use crate::config::{frequency_at_voltage_mhz, ChipConfig};
use fusion3d_nerf::pipeline::FrameTrace;

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Interpolation cores.
    pub interp_cores: usize,
    /// Sampling cores.
    pub sampling_cores: usize,
    /// Clock in MHz.
    pub clock_mhz: f64,
    /// Sustained inference throughput on the probe workload, points/s.
    pub inference_pts: f64,
    /// Sustained training throughput, points/s.
    pub training_pts: f64,
    /// Estimated power in watts.
    pub power_w: f64,
    /// Estimated die area in mm².
    pub area_mm2: f64,
}

impl DesignPoint {
    /// Inference throughput per watt, points/s/W.
    pub fn inference_per_watt(&self) -> f64 {
        self.inference_pts / self.power_w
    }
}

/// Scales the published chip configuration to a different core count
/// and clock, with area and power following the module breakdowns:
/// the interpolation module's share scales with its cores, the
/// sampling module's with its cores, and dynamic power additionally
/// scales with frequency.
pub fn scale_config(
    base: &ChipConfig,
    interp_cores: usize,
    sampling_cores: usize,
    clock_mhz: f64,
) -> ChipConfig {
    assert!(interp_cores > 0 && sampling_cores > 0, "core counts must be positive");
    assert!(clock_mhz > 0.0, "clock must be positive");
    let interp_ratio = interp_cores as f64 / base.interp_cores as f64;
    let sampling_ratio = sampling_cores as f64 / base.sampling_cores as f64;
    // Area: interpolation 46%, sampling 12% of the die scale with
    // their cores; the remainder is fixed.
    let area_scale = 0.46 * interp_ratio + 0.12 * sampling_ratio + 0.42;
    // Power: module shares 42% / 10%, scaled by frequency.
    let power_scale =
        (0.42 * interp_ratio + 0.10 * sampling_ratio + 0.48) * (clock_mhz / base.clock_mhz);
    ChipConfig {
        interp_cores,
        sampling_cores,
        clock_mhz,
        die_area_mm2: base.die_area_mm2 * area_scale,
        typical_power_w: base.typical_power_w * power_scale,
        ..*base
    }
}

/// Evaluates one configuration on a probe workload.
pub fn evaluate(config: ChipConfig, trace: &FrameTrace) -> DesignPoint {
    let chip = FusionChip::new(config);
    let frame = chip.simulate_frame(trace);
    let train = chip.simulate_training_step(trace);
    DesignPoint {
        interp_cores: config.interp_cores,
        sampling_cores: config.sampling_cores,
        clock_mhz: config.clock_mhz,
        inference_pts: frame.points_per_second(),
        training_pts: train.points_per_second(),
        power_w: config.typical_power_w,
        area_mm2: config.die_area_mm2,
    }
}

/// Sweeps interpolation core counts at the nominal clock.
pub fn sweep_interp_cores(trace: &FrameTrace, counts: &[usize]) -> Vec<DesignPoint> {
    let base = ChipConfig::scaled_up();
    counts
        .iter()
        .map(|&c| evaluate(scale_config(&base, c, base.sampling_cores, base.clock_mhz), trace))
        .collect()
}

/// Sweeps supply voltage along the measured V/F curve (DVFS operating
/// points), holding the core counts at the scaled-up design.
pub fn sweep_voltage(trace: &FrameTrace, voltages: &[f64]) -> Vec<DesignPoint> {
    let base = ChipConfig::scaled_up();
    voltages
        .iter()
        .map(|&v| {
            let clock = frequency_at_voltage_mhz(v);
            let mut cfg = scale_config(&base, base.interp_cores, base.sampling_cores, clock);
            // Dynamic power additionally scales with V².
            cfg.typical_power_w *= (v / base.core_voltage).powi(2);
            cfg.core_voltage = v;
            evaluate(cfg, trace)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion3d_nerf::sampler::RayWorkload;

    fn probe() -> FrameTrace {
        FrameTrace {
            workloads: (0..1024)
                .map(|i| RayWorkload {
                    valid_pairs: 1,
                    samples_per_pair: vec![10 + (i % 8) as u16],
                    steps_per_pair: vec![16 + (i % 8) as u16],
                    lattice_steps_per_pair: vec![64],
                })
                .collect(),
            total_samples: (0..1024u64).map(|i| 10 + (i % 8)).sum(),
            total_steps: (0..1024u64).map(|i| 16 + (i % 8)).sum(),
        }
    }

    #[test]
    fn scale_config_reproduces_the_published_pair() {
        // Scaling the scaled-up design down to the prototype's 5 cores
        // lands near the prototype's area and power.
        let scaled = ChipConfig::scaled_up();
        let down = scale_config(&scaled, 5, 16, 600.0);
        assert!(
            (down.die_area_mm2 - ChipConfig::prototype().die_area_mm2).abs() < 1.5,
            "area {}",
            down.die_area_mm2
        );
        assert!(
            (down.typical_power_w - ChipConfig::prototype().typical_power_w).abs() < 0.2,
            "power {}",
            down.typical_power_w
        );
        // Identity scaling changes nothing.
        let same = scale_config(&scaled, scaled.interp_cores, scaled.sampling_cores, 600.0);
        assert_eq!(same.die_area_mm2, scaled.die_area_mm2);
        assert_eq!(same.typical_power_w, scaled.typical_power_w);
    }

    #[test]
    fn more_cores_buy_throughput_at_cost() {
        let t = probe();
        let points = sweep_interp_cores(&t, &[5, 10, 20]);
        assert!(points[1].inference_pts > points[0].inference_pts);
        assert!(points[2].area_mm2 > points[1].area_mm2);
        assert!(points[2].power_w > points[1].power_w);
        // Diminishing returns: doubling cores less-than-doubles
        // sustained throughput once another stage binds.
        let gain_1 = points[1].inference_pts / points[0].inference_pts;
        let gain_2 = points[2].inference_pts / points[1].inference_pts;
        assert!(gain_2 <= gain_1 + 1e-9, "gains {gain_1} then {gain_2}");
    }

    #[test]
    fn dvfs_trades_throughput_for_efficiency() {
        let t = probe();
        let points = sweep_voltage(&t, &[0.7, 0.95, 1.1]);
        // Higher voltage: faster but less efficient.
        assert!(points[2].inference_pts > points[0].inference_pts);
        assert!(
            points[0].inference_per_watt() > points[2].inference_per_watt(),
            "low-V point should win per-watt: {} vs {}",
            points[0].inference_per_watt(),
            points[2].inference_per_watt()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cores_rejected() {
        scale_config(&ChipConfig::scaled_up(), 0, 16, 600.0);
    }
}
