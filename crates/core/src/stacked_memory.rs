//! 3D-stacked-memory scaling analysis (Sec. VIII, second discussion).
//!
//! Post-layout, about half of the Feature Interpolation Module is
//! SRAM, and the chip's critical path is a long wire crossing the SRAM
//! block. Stacking the memory on a second die frees that area for
//! logic — effectively doubling the interpolation core count within
//! the same footprint — and removes the critical wire, raising the
//! clock. This module projects the resulting single-chip performance
//! and how many chips a multi-chip deployment then needs for the same
//! aggregate capability, plus the tapeout-cost effect of reusing one
//! memory die across compute chips and the I/O module.

use crate::config::ChipConfig;

/// Fraction of the Feature Interpolation Module occupied by SRAM
/// (post-layout, Sec. VIII).
pub const INTERP_SRAM_FRACTION: f64 = 0.5;

/// Clock uplift from removing the SRAM-crossing critical wire.
pub const STACKED_CLOCK_UPLIFT: f64 = 1.25;

/// Projection of a chip rebuilt with 3D-stacked memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackedProjection {
    /// Interpolation cores after reclaiming the SRAM area.
    pub interp_cores: usize,
    /// Projected clock in MHz.
    pub clock_mhz: f64,
    /// Logic-die area in mm² (the stacked memory die is separate).
    pub logic_area_mm2: f64,
    /// Peak inference throughput in points per second.
    pub inference_pts: f64,
    /// Single-chip speedup over the planar design.
    pub speedup: f64,
}

/// Projects the scaled-up chip onto a 3D-stacked-memory process.
///
/// The interpolation module's SRAM half moves to the stacked die; the
/// freed area hosts a second copy of the interpolation logic (doubling
/// cores), and the clock rises by [`STACKED_CLOCK_UPLIFT`].
pub fn project_stacked(base: &ChipConfig) -> StackedProjection {
    let interp_cores = base.interp_cores * 2;
    let clock_mhz = base.clock_mhz * STACKED_CLOCK_UPLIFT;
    // Logic area: the die sheds its cluster SRAM and the interpolation
    // module's SRAM half, but keeps everything else.
    let interp_area = 0.46 * base.die_area_mm2;
    let cluster_area = 0.13 * base.die_area_mm2;
    let logic_area_mm2 = base.die_area_mm2 - interp_area * INTERP_SRAM_FRACTION - cluster_area;
    // Stage II throughput: cores/levels points per cycle at the new
    // clock (Stage III is re-matched, as in the base methodology).
    let base_pts = base.interp_points_per_cycle() * base.cycles_per_second();
    let inference_pts = (interp_cores as f64 / base.model_levels as f64) * clock_mhz * 1e6;
    StackedProjection {
        interp_cores,
        clock_mhz,
        logic_area_mm2,
        inference_pts,
        speedup: inference_pts / base_pts,
    }
}

/// Chips needed to match a target aggregate throughput, before and
/// after stacking — the "reduce the number of chips needed for
/// multi-chip configurations" claim.
pub fn chips_needed(target_pts: f64, per_chip_pts: f64) -> usize {
    assert!(per_chip_pts > 0.0, "per-chip throughput must be positive");
    (target_pts / per_chip_pts).ceil().max(1.0) as usize
}

/// Relative tapeout cost of a multi-chip deployment: each distinct die
/// pays a mask-set cost, each instance a per-area cost. Reusing the
/// stacked memory die across the compute chips and the I/O module
/// amortizes one mask set over all of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapeoutCost {
    /// Number of distinct mask sets.
    pub mask_sets: usize,
    /// Total silicon area across all dies, mm².
    pub total_area_mm2: f64,
}

/// Tapeout accounting for a planar system: one compute-die mask plus
/// one I/O-die mask; every die carries its own SRAM.
pub fn planar_tapeout(chips: usize, chip_area_mm2: f64, io_area_mm2: f64) -> TapeoutCost {
    TapeoutCost { mask_sets: 2, total_area_mm2: chips as f64 * chip_area_mm2 + io_area_mm2 }
}

/// Tapeout accounting for a stacked system: compute-logic mask, I/O
/// mask, and a single memory-die mask *shared* by both, with the
/// memory die instanced on every stack.
pub fn stacked_tapeout(
    chips: usize,
    logic_area_mm2: f64,
    memory_die_mm2: f64,
    io_area_mm2: f64,
) -> TapeoutCost {
    TapeoutCost {
        mask_sets: 3,
        total_area_mm2: chips as f64 * (logic_area_mm2 + memory_die_mm2)
            + io_area_mm2
            + memory_die_mm2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacking_roughly_doubles_throughput() {
        let base = ChipConfig::scaled_up();
        let proj = project_stacked(&base);
        assert_eq!(proj.interp_cores, 20);
        assert!((proj.clock_mhz - 750.0).abs() < 1e-9);
        // 2x cores × 1.25x clock = 2.5x points per second.
        assert!((proj.speedup - 2.5).abs() < 1e-9, "speedup {}", proj.speedup);
        assert!(proj.inference_pts > 1.4e9);
        // The logic die shrinks below the planar die.
        assert!(proj.logic_area_mm2 < base.die_area_mm2);
        assert!(proj.logic_area_mm2 > 0.4 * base.die_area_mm2);
    }

    #[test]
    fn fewer_chips_for_the_same_deployment() {
        let base = ChipConfig::scaled_up();
        let planar_pts = base.interp_points_per_cycle() * base.cycles_per_second();
        let stacked = project_stacked(&base);
        // A deployment targeting ~2.4 G pts/s needs four planar chips
        // but only two stacked ones.
        let target = 4.0 * planar_pts;
        assert_eq!(chips_needed(target, planar_pts), 4);
        assert_eq!(chips_needed(target, stacked.inference_pts), 2);
        // Degenerate: any positive target needs at least one chip.
        assert_eq!(chips_needed(1.0, planar_pts), 1);
    }

    #[test]
    fn memory_die_reuse_amortizes_masks() {
        let base = ChipConfig::scaled_up();
        let proj = project_stacked(&base);
        let planar = planar_tapeout(4, base.die_area_mm2, 0.18);
        // Memory die: the SRAM the logic die shed.
        let memory_die = base.die_area_mm2 - proj.logic_area_mm2;
        let stacked = stacked_tapeout(2, proj.logic_area_mm2, memory_die, 0.18);
        // One extra mask set, but less total silicon for the same
        // deployment capability (2 stacked chips ≈ 4 planar, earlier
        // test) — the cost trade the paper sketches.
        assert_eq!(stacked.mask_sets, planar.mask_sets + 1);
        assert!(
            stacked.total_area_mm2 < planar.total_area_mm2,
            "stacked {} vs planar {}",
            stacked.total_area_mm2,
            planar.total_area_mm2
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_throughput_rejected() {
        chips_needed(1e9, 0.0);
    }
}
