//! Chip configurations: the taped-out prototype and the scaled-up
//! single-chip accelerator used for baseline comparisons.
//!
//! All constants come from the paper's Fig. 9 (spec table, resource
//! breakdown) and Table III: 28 nm CMOS, 600 MHz at 0.95 V, a Sampling
//! Module with 16 cores, a Feature Interpolation Module with 5
//! (prototype) or 10 (scaled-up) cores, one Post-Processing Module,
//! and 2 or 5 Memory Clusters. The scaled-up chip occupies 8.7 mm²
//! with 1099 KB of SRAM.

use fusion3d_mem::sram::SramSpec;

/// The hardware modules of the single-chip accelerator (Fig. 4(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Module {
    /// Stage-I sampling module (pre-processing unit + sampling cores).
    Sampling,
    /// Stage-II feature interpolation module.
    Interpolation,
    /// Stage-III post-processing module (MLP engine + renderer).
    PostProcessing,
    /// Shared SRAM memory clusters.
    MemoryClusters,
    /// Network-on-chip.
    Noc,
    /// Top-level interface/controller.
    Controller,
}

impl Module {
    /// All modules in breakdown order.
    pub const ALL: [Module; 6] = [
        Module::Sampling,
        Module::Interpolation,
        Module::PostProcessing,
        Module::MemoryClusters,
        Module::Noc,
        Module::Controller,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Module::Sampling => "Sampling",
            Module::Interpolation => "Feature Interp.",
            Module::PostProcessing => "Post Proc.",
            Module::MemoryClusters => "Memory Clusters",
            Module::Noc => "NoC",
            Module::Controller => "Interface/Ctrl",
        }
    }

    /// Short stable identifier used in metric names and JSON reports.
    pub fn slug(self) -> &'static str {
        match self {
            Module::Sampling => "sampling",
            Module::Interpolation => "interp",
            Module::PostProcessing => "postproc",
            Module::MemoryClusters => "mem",
            Module::Noc => "noc",
            Module::Controller => "ctrl",
        }
    }
}

/// Static configuration of one Fusion-3D chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipConfig {
    /// Nominal clock frequency in MHz.
    pub clock_mhz: f64,
    /// Core supply voltage in volts.
    pub core_voltage: f64,
    /// Number of Stage-I sampling cores.
    pub sampling_cores: usize,
    /// Number of Stage-II feature-interpolation cores (each retires
    /// one level-gather per cycle across its eight banks).
    pub interp_cores: usize,
    /// Number of hash-grid levels the target model uses; together with
    /// `interp_cores` this sets Stage II's points-per-cycle.
    pub model_levels: usize,
    /// Number of shared memory clusters.
    pub memory_clusters: usize,
    /// SRAM arrays per memory cluster.
    pub arrays_per_cluster: usize,
    /// Spec of each SRAM array.
    pub array_spec: SramSpec,
    /// Additional (non-cluster) SRAM in KB: line buffers, FIFOs,
    /// weight store.
    pub support_sram_kb: f64,
    /// Die area in mm² (post-layout).
    pub die_area_mm2: f64,
    /// Typical total power in watts at the nominal operating point.
    pub typical_power_w: f64,
}

impl ChipConfig {
    /// The taped-out 28 nm prototype: 16 sampling cores, 5
    /// interpolation cores, 2 memory clusters, 600 MHz @ 0.95 V,
    /// 1.21 W measured.
    pub fn prototype() -> Self {
        ChipConfig {
            clock_mhz: 600.0,
            core_voltage: 0.95,
            sampling_cores: 16,
            interp_cores: 5,
            model_levels: 10,
            memory_clusters: 2,
            arrays_per_cluster: 5,
            array_spec: SramSpec::new(16384, 32), // 64 KB each
            support_sram_kb: 59.0,
            die_area_mm2: 6.0,
            typical_power_w: 1.21,
        }
    }

    /// The scaled-up single-chip accelerator used for the Table III
    /// comparison: five more interpolation cores and three more memory
    /// clusters than the prototype, 8.7 mm², 1099 KB SRAM.
    pub fn scaled_up() -> Self {
        ChipConfig {
            interp_cores: 10,
            memory_clusters: 5,
            // 5 clusters × 3 arrays × 64 KB = 960 KB cluster SRAM,
            // plus support SRAM totals the published 1099 KB.
            arrays_per_cluster: 3,
            support_sram_kb: 139.0,
            die_area_mm2: 8.7,
            typical_power_w: 1.475,
            ..ChipConfig::prototype()
        }
    }

    /// Total on-chip SRAM in KB.
    pub fn total_sram_kb(&self) -> f64 {
        self.memory_clusters as f64 * self.arrays_per_cluster as f64 * self.array_spec.kilobytes()
            + self.support_sram_kb
    }

    /// Clock period in nanoseconds.
    pub fn clock_period_ns(&self) -> f64 {
        1000.0 / self.clock_mhz
    }

    /// Cycles per second.
    pub fn cycles_per_second(&self) -> f64 {
        self.clock_mhz * 1e6
    }

    /// Peak Stage-II throughput in sampled points per cycle: each
    /// interpolation core retires one level-gather per cycle, and a
    /// point needs `model_levels` gathers.
    pub fn interp_points_per_cycle(&self) -> f64 {
        self.interp_cores as f64 / self.model_levels as f64
    }

    /// Fractional area breakdown by module (Fig. 10(c)). The
    /// interpolation module dominates: about half of it is hash SRAM
    /// (see the paper's 3D-stacked-memory discussion).
    pub fn area_breakdown(&self) -> [(Module, f64); 6] {
        // Post-layout shares from the die photo, normalized to 1.0.
        [
            (Module::Sampling, 0.12),
            (Module::Interpolation, 0.46),
            (Module::PostProcessing, 0.22),
            (Module::MemoryClusters, 0.13),
            (Module::Noc, 0.04),
            (Module::Controller, 0.03),
        ]
    }

    /// Fractional power breakdown by module (Fig. 10(c)).
    pub fn power_breakdown(&self) -> [(Module, f64); 6] {
        [
            (Module::Sampling, 0.10),
            (Module::Interpolation, 0.42),
            (Module::PostProcessing, 0.28),
            (Module::MemoryClusters, 0.14),
            (Module::Noc, 0.04),
            (Module::Controller, 0.02),
        ]
    }

    /// Area of one module in mm².
    pub fn module_area_mm2(&self, module: Module) -> f64 {
        self.area_breakdown()
            .iter()
            .find(|(m, _)| *m == module)
            .map(|(_, f)| f * self.die_area_mm2)
            .unwrap_or(0.0)
    }

    /// Power of one module in watts at the nominal point.
    pub fn module_power_w(&self, module: Module) -> f64 {
        self.power_breakdown()
            .iter()
            .find(|(m, _)| *m == module)
            .map(|(_, f)| f * self.typical_power_w)
            .unwrap_or(0.0)
    }
}

/// The measured voltage–frequency curve of the prototype (Fig. 10(d)),
/// modelled with the alpha-power law `f ∝ (V − V_t)^α / V` calibrated
/// to 600 MHz at 0.95 V.
///
/// # Panics
///
/// Panics if `voltage` is not above the threshold voltage (0.55 V).
pub fn frequency_at_voltage_mhz(voltage: f64) -> f64 {
    const V_T: f64 = 0.55;
    const ALPHA: f64 = 1.3;
    assert!(voltage > V_T, "voltage {voltage} below threshold {V_T}");
    let k = 600.0 / ((0.95 - V_T).powf(ALPHA) / 0.95);
    k * (voltage - V_T).powf(ALPHA) / voltage
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_published_spec() {
        let p = ChipConfig::prototype();
        assert_eq!(p.clock_mhz, 600.0);
        assert_eq!(p.core_voltage, 0.95);
        assert_eq!(p.sampling_cores, 16);
        assert_eq!(p.interp_cores, 5);
        assert_eq!(p.memory_clusters, 2);
        assert_eq!(p.typical_power_w, 1.21);
        // 2 clusters × 5 × 64 KB hash SRAM (the paper's "2×5×64 KB").
        let cluster_kb =
            p.memory_clusters as f64 * p.arrays_per_cluster as f64 * p.array_spec.kilobytes();
        assert_eq!(cluster_kb, 640.0);
    }

    #[test]
    fn scaled_up_matches_table_iii() {
        let s = ChipConfig::scaled_up();
        assert_eq!(s.interp_cores, 10);
        assert_eq!(s.memory_clusters, 5);
        assert_eq!(s.die_area_mm2, 8.7);
        // Table III: 1099 KB SRAM.
        assert!((s.total_sram_kb() - 1099.0).abs() < 1.0, "{}", s.total_sram_kb());
        // Stage II retires about one point per cycle.
        assert!((s.interp_points_per_cycle() - 1.0).abs() < 1e-9);
        // The prototype is half that, consistent with its measured
        // 36 FPS vs the scaled chip's 72-FPS-equivalent throughput.
        assert_eq!(ChipConfig::prototype().interp_points_per_cycle(), 0.5);
    }

    #[test]
    fn breakdowns_are_normalized() {
        let p = ChipConfig::prototype();
        let area: f64 = p.area_breakdown().iter().map(|(_, f)| f).sum();
        let power: f64 = p.power_breakdown().iter().map(|(_, f)| f).sum();
        assert!((area - 1.0).abs() < 1e-9);
        assert!((power - 1.0).abs() < 1e-9);
        // Interpolation dominates both, as in the die photo.
        assert!(p.module_area_mm2(Module::Interpolation) > p.module_area_mm2(Module::Sampling));
        let total: f64 = Module::ALL.iter().map(|&m| p.module_power_w(m)).sum();
        assert!((total - p.typical_power_w).abs() < 1e-9);
    }

    #[test]
    fn vf_curve_calibration_and_monotonicity() {
        // Calibrated point: 600 MHz at 0.95 V.
        assert!((frequency_at_voltage_mhz(0.95) - 600.0).abs() < 1e-6);
        // Monotonically increasing over the measured range.
        let mut prev = 0.0;
        for step in 0..=10 {
            let v = 0.6 + 0.05 * step as f64;
            let f = frequency_at_voltage_mhz(v);
            assert!(f > prev, "V/F curve must increase: {f} at {v}");
            prev = f;
        }
        // The low end of the curve runs well below nominal.
        assert!(frequency_at_voltage_mhz(0.6) < 200.0);
    }

    #[test]
    #[should_panic(expected = "below threshold")]
    fn vf_curve_rejects_subthreshold() {
        frequency_at_voltage_mhz(0.5);
    }

    #[test]
    fn module_names_are_distinct() {
        let names: std::collections::HashSet<&str> = Module::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), Module::ALL.len());
    }
}
