//! # fusion3d-core
//!
//! The Fusion-3D single-chip end-to-end NeRF accelerator — the paper's
//! primary contribution — as a cycle-level simulator calibrated to the
//! published 28 nm silicon measurements:
//!
//! * [`config`] — chip configurations (taped-out prototype and the
//!   scaled-up Table III design), module area/power breakdowns, and
//!   the measured voltage–frequency curve;
//! * [`sampling`] — the Stage-I Sampling Module with Technique T1:
//!   model normalization & partitioning and dynamic whole-ray
//!   scheduling, plus the naive baseline for the Table VI ablation;
//! * [`interp`] — the Stage-II Feature Interpolation Module with the
//!   shared/reconfigurable pipeline (T2-1), TDM train+infer
//!   co-scheduling, and bank-conflict sensitivity;
//! * [`postproc`] — the Stage-III MLP engine and volume renderer;
//! * [`noc`] — on-chip network and off-chip interface load checks;
//! * [`pipeline_sim`] — cycle-stepped pipeline with finite FIFOs and
//!   backpressure;
//! * [`chip`] — the assembled pipeline: frame and training-step
//!   simulation, throughput, FPS, and training-time reporting;
//! * [`energy`] — power/energy models calibrated to 1.21 W @ 600 MHz
//!   and the 2.5 / 7.4 nJ-per-point figures;
//! * [`bandwidth`] — design-boundary off-chip traffic analysis
//!   (Fig. 3, Table I, Fig. 13(b));
//! * [`transfer`] — the TensoRF transfer ablation.
//!
//! ```
//! use fusion3d_core::chip::FusionChip;
//!
//! let chip = FusionChip::scaled_up();
//! // The paper's headline single-chip numbers.
//! assert!(chip.peak_inference_points_per_second() > 5.9e8);
//! assert!(chip.inference_energy_per_point_nj() < 3.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bandwidth;
pub mod chip;
pub mod config;
pub mod design_space;
pub mod energy;
pub mod interp;
pub mod noc;
pub mod observe;
pub mod pipeline_sim;
pub mod postproc;
pub mod sampling;
pub mod stacked_memory;
pub mod training_schedule;
pub mod transfer;

pub use chip::{FusionChip, SimReport, Stage, StageCycles};
pub use config::{ChipConfig, Module};
pub use energy::EnergyModel;
pub use sampling::{simulate_sampling, t1_speedup, SamplingModuleConfig, SchedulingPolicy};
