//! Planning an instant-training run on the chip — the timeline behind
//! the "≤ 2 seconds to 25 PSNR" headline.
//!
//! A training run is more than back-to-back optimizer steps: the
//! occupancy grid refreshes periodically (a density sweep over the
//! grid through the inference datapath), the training images stream in
//! up front, and the finished parameters stream out. The planner lays
//! these phases on the chip's cycle budget and reports whether the
//! whole run fits a wall-clock target at the configured clock.

use crate::chip::FusionChip;
use fusion3d_nerf::pipeline::FrameTrace;

/// A training recipe: how much work reaches the chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingRecipe {
    /// Optimizer iterations.
    pub iterations: u32,
    /// Occupancy-grid refresh interval in iterations.
    pub occupancy_interval: u32,
    /// Occupancy-grid cells (each refreshed cell costs one density
    /// query through the inference pipeline).
    pub occupancy_cells: u64,
    /// Training-image bytes streamed in before the run.
    pub input_bytes: u64,
    /// Parameter bytes streamed out after the run.
    pub output_bytes: u64,
    /// Off-chip bandwidth in bytes per second.
    pub offchip_bytes_per_sec: f64,
}

impl TrainingRecipe {
    /// The paper-scale recipe: 2000 iterations with refreshes every 16,
    /// a 64³ occupancy grid, 100 training views at 800×800 RGB f32 in,
    /// and an f16 model container out, over the 0.6 GB/s interface.
    pub fn paper_scale() -> Self {
        TrainingRecipe {
            iterations: 2000,
            occupancy_interval: 16,
            occupancy_cells: 64 * 64 * 64,
            input_bytes: 100 * 800 * 800 * 12,
            output_bytes: 2 * 1024 * 1024,
            offchip_bytes_per_sec: 0.6e9,
        }
    }
}

/// The planned timeline of one training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingPlan {
    /// Seconds streaming the inputs in (overlapped with nothing — the
    /// conservative bound).
    pub input_seconds: f64,
    /// Seconds in optimizer steps.
    pub step_seconds: f64,
    /// Seconds in occupancy refreshes.
    pub occupancy_seconds: f64,
    /// Seconds streaming the trained parameters out.
    pub output_seconds: f64,
    /// Samples processed across all steps.
    pub total_samples: u64,
}

impl TrainingPlan {
    /// End-to-end wall-clock seconds with every phase serialized (the
    /// conservative bound).
    pub fn total_seconds(&self) -> f64 {
        self.input_seconds + self.step_seconds + self.occupancy_seconds + self.output_seconds
    }

    /// End-to-end seconds with input streaming overlapped against the
    /// compute phases: early iterations train on views that have
    /// already arrived while the rest stream in, so the run is bound
    /// by whichever of the two is longer. This is the paper's
    /// operating mode — its Fig. 3 budget streams ~700 MB *during*
    /// the 2-second run.
    pub fn overlapped_seconds(&self) -> f64 {
        self.input_seconds.max(self.step_seconds + self.occupancy_seconds) + self.output_seconds
    }

    /// Whether the overlapped run fits a wall-clock budget.
    pub fn fits(&self, budget_seconds: f64) -> bool {
        self.overlapped_seconds() <= budget_seconds
    }
}

/// Plans a training run: `batch_trace` is the Stage-I workload of one
/// representative optimizer step (one ray batch).
///
/// # Panics
///
/// Panics if the recipe's bandwidth is not positive or the interval is
/// zero.
pub fn plan_training(
    chip: &FusionChip,
    batch_trace: &FrameTrace,
    recipe: &TrainingRecipe,
) -> TrainingPlan {
    assert!(recipe.offchip_bytes_per_sec > 0.0, "bandwidth must be positive");
    assert!(recipe.occupancy_interval > 0, "refresh interval must be positive");
    let step = chip.simulate_training_step(batch_trace);
    let refreshes = (recipe.iterations / recipe.occupancy_interval) as f64;
    // A refresh evaluates density for each cell: one point through the
    // inference pipeline per cell, at the chip's peak inference rate.
    let refresh_seconds = recipe.occupancy_cells as f64 / chip.peak_inference_points_per_second();
    TrainingPlan {
        input_seconds: recipe.input_bytes as f64 / recipe.offchip_bytes_per_sec,
        step_seconds: step.seconds * recipe.iterations as f64,
        occupancy_seconds: refresh_seconds * refreshes,
        output_seconds: recipe.output_bytes as f64 / recipe.offchip_bytes_per_sec,
        total_samples: step.points * recipe.iterations as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion3d_nerf::sampler::RayWorkload;

    /// A paper-scale optimizer batch: ~2^18 samples over ~15k rays
    /// (matching 199 M pts/s × 2 s / 2000 iterations).
    fn paper_batch() -> FrameTrace {
        let rays = 15_000usize;
        let samples_per_ray = 13u16;
        FrameTrace {
            workloads: (0..rays)
                .map(|_| RayWorkload {
                    valid_pairs: 2,
                    samples_per_pair: vec![samples_per_ray - 4, 4],
                    steps_per_pair: vec![samples_per_ray + 2, 8],
                    lattice_steps_per_pair: vec![120, 60],
                })
                .collect(),
            total_samples: rays as u64 * samples_per_ray as u64,
            total_steps: rays as u64 * (samples_per_ray as u64 + 10),
        }
    }

    #[test]
    fn paper_scale_run_is_instant() {
        let chip = FusionChip::scaled_up();
        let plan = plan_training(&chip, &paper_batch(), &TrainingRecipe::paper_scale());
        // ~390 M samples total, within the instant-training budget.
        assert!(plan.total_samples > 300_000_000, "{}", plan.total_samples);
        assert!(
            plan.fits(2.3),
            "plan takes {:.2} s overlapped (steps {:.2}, occ {:.2}, io {:.2})",
            plan.overlapped_seconds(),
            plan.step_seconds,
            plan.occupancy_seconds,
            plan.input_seconds + plan.output_seconds
        );
        // The serialized bound adds the full input stream.
        assert!(plan.total_seconds() > plan.overlapped_seconds());
        // Optimizer steps dominate; bookkeeping phases are small.
        assert!(plan.step_seconds > plan.occupancy_seconds);
        assert!(plan.step_seconds > plan.input_seconds + plan.output_seconds);
    }

    #[test]
    fn prototype_is_roughly_twice_as_slow() {
        let scaled =
            plan_training(&FusionChip::scaled_up(), &paper_batch(), &TrainingRecipe::paper_scale());
        let proto =
            plan_training(&FusionChip::prototype(), &paper_batch(), &TrainingRecipe::paper_scale());
        let ratio = proto.step_seconds / scaled.step_seconds;
        assert!((1.6..=2.4).contains(&ratio), "prototype/scaled step ratio {ratio}");
        // The prototype's measured 1.8 s to 25 PSNR corresponds to a
        // smaller sample budget; at the full paper budget it lands in
        // the 3-5 s band.
        assert!(
            (2.0..=6.0).contains(&proto.overlapped_seconds()),
            "{}",
            proto.overlapped_seconds()
        );
    }

    #[test]
    fn starved_interface_blows_the_budget() {
        let chip = FusionChip::scaled_up();
        let recipe = TrainingRecipe {
            offchip_bytes_per_sec: 10e6, // a 10 MB/s link
            ..TrainingRecipe::paper_scale()
        };
        let plan = plan_training(&chip, &paper_batch(), &recipe);
        assert!(!plan.fits(2.0), "starved link should miss the budget");
        // Even overlapped, the link dominates.
        assert!(plan.input_seconds > plan.step_seconds);
        assert!(plan.overlapped_seconds() > 10.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let chip = FusionChip::prototype();
        let recipe = TrainingRecipe { offchip_bytes_per_sec: 0.0, ..TrainingRecipe::paper_scale() };
        plan_training(&chip, &paper_batch(), &recipe);
    }
}
