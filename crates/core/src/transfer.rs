//! Transferring Fusion-3D's modules to other NeRF pipelines — the
//! Sec. VI-C "Effectiveness When Adapted to Other NeRF Pipelines"
//! ablation.
//!
//! TensoRF-based designs (RT-NeRF) share the sampling and
//! post-processing stages with hash-grid pipelines; only the feature
//! stage differs (VM-decomposed dense tensors instead of hash tables).
//! Dropping Fusion-3D's Sampling and Post-Processing modules into
//! RT-NeRF while keeping its Feature Interpolation module yields a
//! 39 % power and 11 % area reduction versus the original RT-NeRF
//! (constants from the paper's post-layout comparison, reproduced here
//! through per-module ratios).

/// Relative area/power of a design, normalized to a baseline of 1.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeCost {
    /// Area relative to the baseline.
    pub area: f64,
    /// Power relative to the baseline.
    pub power: f64,
}

/// RT-NeRF's module breakdown (fractions of its total area/power).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleShares {
    /// Sampling stage share.
    pub sampling: f64,
    /// Feature stage share (kept unchanged in the transfer).
    pub feature: f64,
    /// Post-processing stage share.
    pub postproc: f64,
}

/// RT-NeRF's area shares by module.
pub const RTNERF_AREA_SHARES: ModuleShares =
    ModuleShares { sampling: 0.25, feature: 0.45, postproc: 0.30 };

/// RT-NeRF's power shares by module.
pub const RTNERF_POWER_SHARES: ModuleShares =
    ModuleShares { sampling: 0.30, feature: 0.40, postproc: 0.30 };

/// Cost of Fusion-3D's Sampling module relative to RT-NeRF's
/// (model normalization removes the general intersection solver and
/// its dividers).
pub const SAMPLING_TRANSFER: RelativeCost = RelativeCost { area: 0.60, power: 0.20 };

/// Cost of Fusion-3D's Post-Processing module relative to RT-NeRF's
/// (mixed-precision FIEM datapath and shared pipeline).
pub const POSTPROC_TRANSFER: RelativeCost = RelativeCost { area: 0.97, power: 0.50 };

/// The transferred design's total cost relative to the original
/// RT-NeRF.
pub fn tensorf_transfer() -> RelativeCost {
    let area = RTNERF_AREA_SHARES.sampling * SAMPLING_TRANSFER.area
        + RTNERF_AREA_SHARES.feature
        + RTNERF_AREA_SHARES.postproc * POSTPROC_TRANSFER.area;
    let power = RTNERF_POWER_SHARES.sampling * SAMPLING_TRANSFER.power
        + RTNERF_POWER_SHARES.feature
        + RTNERF_POWER_SHARES.postproc * POSTPROC_TRANSFER.power;
    RelativeCost { area, power }
}

/// Fractional savings of the transferred design (`1 − relative`).
pub fn tensorf_savings() -> RelativeCost {
    let t = tensorf_transfer();
    RelativeCost { area: 1.0 - t.area, power: 1.0 - t.power }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_normalized() {
        for s in [RTNERF_AREA_SHARES, RTNERF_POWER_SHARES] {
            assert!((s.sampling + s.feature + s.postproc - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn transfer_matches_paper_savings() {
        let savings = tensorf_savings();
        // The paper: 11 % area and 39 % power reduction.
        assert!((savings.area - 0.11).abs() < 0.01, "area saving {}", savings.area);
        assert!((savings.power - 0.39).abs() < 0.01, "power saving {}", savings.power);
    }

    #[test]
    fn feature_stage_unchanged() {
        // The transferred design keeps RT-NeRF's feature module, so
        // savings must come entirely from the other two stages and be
        // bounded by their combined share.
        let savings = tensorf_savings();
        assert!(savings.area <= RTNERF_AREA_SHARES.sampling + RTNERF_AREA_SHARES.postproc);
        assert!(savings.power <= RTNERF_POWER_SHARES.sampling + RTNERF_POWER_SHARES.postproc);
    }
}
