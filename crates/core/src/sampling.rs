//! Cycle-level simulator of the Sampling Module (Stage I).
//!
//! The module consists of a pre-processing path that computes ray–cube
//! intersections and a pool of sampling cores that march rays through
//! the occupancy grid. Technique T1 has two halves:
//!
//! * **T1-1 (Model Normalization & Partitioning)** replaces the
//!   general six-plane solve (18 DIV + 54 MUL + 54 ADD, run on the
//!   sampling core itself) with the normalized unit-cube test
//!   (3 MUL + 3 MAC per cube in eight parallel units of a dedicated,
//!   pipelined pre-processing stage), and partitions each ray into
//!   per-octant jobs. Partitioned marching walks the occupancy grid:
//!   fine steps in occupied cells cost one cycle, and empty cells are
//!   skipped [`SKIPS_PER_CYCLE`] at a time from the grid's bitmask.
//!   The unpartitioned baseline marches the full fine lattice of the
//!   ray span.
//! * **T1-2 (Dynamic Workload Scheduling)** changes how jobs are
//!   placed onto the sampling cores: the baseline processes rays in
//!   lock-step batches, while the dynamic scheduler dispatches a whole
//!   ray as soon as enough cores are free.
//!
//! The simulator replays per-ray workloads captured by
//! `fusion3d_nerf::trace_frame` and reports cycles, utilization, and
//! throughput. Table VI's per-scene speedups come from running the
//! same trace under both configurations.

use fusion3d_nerf::math::{GENERAL_INTERSECT_COST, NORMALIZED_INTERSECT_COST};
use fusion3d_nerf::sampler::RayWorkload;

/// Relative hardware cost of one division versus one multiply/add,
/// used to convert operation counts into pre-processing cycles.
pub const DIV_WEIGHT: u64 = 8;

/// Empty occupancy-grid cells skipped per cycle by the DDA walker
/// (one 64-bit occupancy word covers a run of cells, so skips are
/// cheaper than fine marching steps).
pub const SKIPS_PER_CYCLE: u64 = 4;

/// How ray–model intersections are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntersectionMode {
    /// General six-plane solve against an arbitrary bounding box, run
    /// serially on the sampling core before it can march (the pre-T1
    /// baseline). The un-normalized module also lacks octant
    /// partitioning, so it marches the full fine lattice of the span.
    General,
    /// Normalized unit-cube test (T1-1): fixed planes, eight parallel
    /// per-cube units in a dedicated pipelined pre-processing stage.
    Normalized,
}

impl IntersectionMode {
    /// Intersection cycles per ray on `alus` parallel ALUs.
    pub fn cycles_per_ray(self, alus: u64) -> u64 {
        match self {
            IntersectionMode::General => GENERAL_INTERSECT_COST.weighted(DIV_WEIGHT).div_ceil(alus),
            IntersectionMode::Normalized => {
                NORMALIZED_INTERSECT_COST.weighted(DIV_WEIGHT).div_ceil(alus * 2)
            }
        }
    }
}

/// How ray jobs are placed onto the sampling cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Baseline: one un-partitioned ray per core, dispatched in
    /// lock-step batches of `cores` rays; the batch completes when its
    /// slowest ray does.
    RayBatch,
    /// Each ray–cube pair is dispatched independently to the earliest
    /// free core (maximal packing, but per-pair control and partial-sum
    /// buffering for every in-flight ray).
    PairByPair,
    /// T1-2: a whole ray's pairs are dispatched together as soon as at
    /// least that many cores are free — near-PairByPair performance
    /// with per-ray control and buffering.
    DynamicWholeRay,
}

/// Configuration of the sampling module simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingModuleConfig {
    /// Number of sampling cores.
    pub cores: usize,
    /// Parallel ALUs in the intersection path.
    pub preproc_alus: u64,
    /// Intersection mode (T1-1 on/off).
    pub intersection: IntersectionMode,
    /// Scheduling policy (T1-2 on/off).
    pub policy: SchedulingPolicy,
    /// Fixed per-job overhead cycles (core setup / drain).
    pub job_overhead: u64,
}

impl SamplingModuleConfig {
    /// The Fusion-3D configuration: 16 cores, normalized
    /// intersections, dynamic whole-ray scheduling.
    pub fn fusion3d() -> Self {
        SamplingModuleConfig {
            cores: 16,
            preproc_alus: 4,
            intersection: IntersectionMode::Normalized,
            policy: SchedulingPolicy::DynamicWholeRay,
            job_overhead: 2,
        }
    }

    /// The pre-T1 baseline: same 16 cores, but general intersections
    /// computed on-core, full-lattice marching, and lock-step ray
    /// batches.
    pub fn naive_baseline() -> Self {
        SamplingModuleConfig {
            intersection: IntersectionMode::General,
            policy: SchedulingPolicy::RayBatch,
            ..SamplingModuleConfig::fusion3d()
        }
    }

    /// Whether this configuration uses the partitioned,
    /// occupancy-skipping march (T1-1 on).
    fn partitioned(&self) -> bool {
        self.intersection == IntersectionMode::Normalized
    }

    /// Marching cycles of one pair job.
    fn pair_march_cycles(&self, samples: u64, steps: u64, lattice: u64) -> u64 {
        if self.partitioned() {
            let skips = steps.saturating_sub(samples);
            samples + skips.div_ceil(SKIPS_PER_CYCLE)
        } else {
            lattice
        }
    }
}

/// Result of simulating one frame's Stage-I workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingSimResult {
    /// Total cycles until the last core finishes.
    pub cycles: u64,
    /// Core-cycles spent doing useful work.
    pub busy_core_cycles: u64,
    /// Rays processed (including rays that missed the model).
    pub rays: u64,
    /// Ray–cube pair jobs executed.
    pub pairs: u64,
    /// Total marching steps executed.
    pub steps: u64,
    /// Cycles the dedicated pre-processing unit ran (zero when the
    /// intersection runs on-core).
    pub preproc_cycles: u64,
}

impl SamplingSimResult {
    /// Mean utilization of the sampling cores.
    pub fn core_utilization(&self, cores: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_core_cycles as f64 / (self.cycles as f64 * cores as f64)
        }
    }

    /// Throughput in marching steps per cycle.
    pub fn steps_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.steps as f64 / self.cycles as f64
        }
    }
}

/// Simulates the sampling module over a frame's ray workloads.
///
/// # Panics
///
/// Panics if the configuration has zero cores or ALUs.
pub fn simulate_sampling(
    config: &SamplingModuleConfig,
    workloads: &[RayWorkload],
) -> SamplingSimResult {
    assert!(config.cores > 0, "sampling module needs at least one core");
    assert!(config.preproc_alus > 0, "intersection path needs at least one ALU");

    let intersect_cycles = config.intersection.cycles_per_ray(config.preproc_alus);
    // The normalized mode has a dedicated pipelined pre-processing
    // unit; the general mode computes intersections on the core.
    let (preproc_per_ray, oncore_intersect) =
        if config.partitioned() { (intersect_cycles, 0) } else { (0, intersect_cycles) };

    let mut result = SamplingSimResult {
        cycles: 0,
        busy_core_cycles: 0,
        rays: workloads.len() as u64,
        pairs: 0,
        steps: 0,
        preproc_cycles: preproc_per_ray * workloads.len() as u64,
    };

    // Pipelined pre-processing: ray i is ready at (i+1) × per-ray.
    let ready = |i: usize| (i as u64 + 1) * preproc_per_ray;

    let mut core_free = vec![0u64; config.cores];

    match config.policy {
        SchedulingPolicy::RayBatch => {
            let mut batch_start = 0u64;
            for (batch_idx, batch) in workloads.chunks(config.cores).enumerate() {
                let last_ray = (batch_idx + 1) * config.cores;
                let ready_t = ready((last_ray - 1).min(workloads.len() - 1));
                let start = batch_start.max(ready_t);
                let mut makespan = 0u64;
                for w in batch {
                    let march: u64 =
                        pair_iter(w).map(|(s, t, l)| config.pair_march_cycles(s, t, l)).sum();
                    let job = if w.valid_pairs > 0 {
                        oncore_intersect + march + config.job_overhead
                    } else {
                        oncore_intersect
                    };
                    result.busy_core_cycles += job;
                    result.steps += w.total_steps() as u64;
                    result.pairs += w.valid_pairs as u64;
                    makespan = makespan.max(job);
                }
                batch_start = start + makespan;
            }
            result.cycles = batch_start;
        }
        SchedulingPolicy::PairByPair => {
            for (i, w) in workloads.iter().enumerate() {
                let ready_t = ready(i);
                for (pair_idx, (s, t, l)) in pair_iter(w).enumerate() {
                    let mut job = config.pair_march_cycles(s, t, l) + config.job_overhead;
                    if pair_idx == 0 {
                        job += oncore_intersect;
                    }
                    let core =
                        core_free.iter().enumerate().min_by_key(|(_, &t)| t).map_or(0, |(c, _)| c);
                    let start = core_free[core].max(ready_t);
                    core_free[core] = start + job;
                    result.busy_core_cycles += job;
                    result.steps += t;
                    result.pairs += 1;
                }
            }
            result.cycles = core_free.iter().copied().max().unwrap_or(0);
        }
        SchedulingPolicy::DynamicWholeRay => {
            for (i, w) in workloads.iter().enumerate() {
                let k = w.steps_per_pair.len();
                if k == 0 {
                    continue;
                }
                let ready_t = ready(i);
                // Dispatch when at least k cores are free: at the k-th
                // smallest core-free time.
                let mut free_times = core_free.clone();
                free_times.sort_unstable();
                let dispatch = free_times[k - 1].max(ready_t);
                let mut chosen: Vec<usize> = (0..config.cores).collect();
                chosen.sort_unstable_by_key(|&c| core_free[c]);
                for ((pair_idx, (s, t, l)), &core) in pair_iter(w).enumerate().zip(chosen.iter()) {
                    let mut job = config.pair_march_cycles(s, t, l) + config.job_overhead;
                    if pair_idx == 0 {
                        job += oncore_intersect;
                    }
                    core_free[core] = dispatch + job;
                    result.busy_core_cycles += job;
                    result.steps += t;
                    result.pairs += 1;
                }
            }
            result.cycles = core_free.iter().copied().max().unwrap_or(0);
        }
    }

    result.cycles = result.cycles.max(result.preproc_cycles);
    result
}

/// Iterates a workload's pairs as `(samples, steps, lattice_steps)`.
fn pair_iter(w: &RayWorkload) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
    (0..w.steps_per_pair.len()).map(move |i| {
        (
            *w.samples_per_pair.get(i).unwrap_or(&0) as u64,
            w.steps_per_pair[i] as u64,
            *w.lattice_steps_per_pair.get(i).unwrap_or(&w.steps_per_pair[i]) as u64,
        )
    })
}

/// The Table VI ablation: speedup of the full Technique T1 over the
/// naive sampling module on the same workload.
pub fn t1_speedup(workloads: &[RayWorkload]) -> f64 {
    let naive = simulate_sampling(&SamplingModuleConfig::naive_baseline(), workloads);
    let fusion = simulate_sampling(&SamplingModuleConfig::fusion3d(), workloads);
    if fusion.cycles == 0 {
        1.0
    } else {
        naive.cycles as f64 / fusion.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(pairs: &[(u16, u16)]) -> RayWorkload {
        RayWorkload {
            valid_pairs: pairs.len() as u8,
            samples_per_pair: pairs.iter().map(|&(s, _)| s).collect(),
            steps_per_pair: pairs.iter().map(|&(_, t)| t).collect(),
            // By default the fine lattice spans 4x the marched steps
            // (the naive module cannot skip empty cells).
            lattice_steps_per_pair: pairs.iter().map(|&(_, t)| t.saturating_mul(4)).collect(),
        }
    }

    #[test]
    fn intersection_cycle_costs() {
        // General: (18·8 + 54 + 54) / 4 = 63 cycles per ray.
        assert_eq!(IntersectionMode::General.cycles_per_ray(4), 63);
        // Normalized: 6 weighted ops across 8 parallel per-cube ALUs.
        assert_eq!(IntersectionMode::Normalized.cycles_per_ray(4), 1);
        assert!(
            IntersectionMode::General.cycles_per_ray(4)
                > 20 * IntersectionMode::Normalized.cycles_per_ray(4),
            "T1-1 must cut pre-processing by >20x"
        );
    }

    #[test]
    fn empty_workload_is_free() {
        let cfg = SamplingModuleConfig::fusion3d();
        let r = simulate_sampling(&cfg, &[]);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.rays, 0);
        assert_eq!(r.core_utilization(cfg.cores), 0.0);
    }

    #[test]
    fn single_ray_accounting() {
        let cfg = SamplingModuleConfig::fusion3d();
        // Pair A: 4 samples, 10 steps (6 skips -> 2 skip cycles).
        // Pair B: 2 samples, 6 steps (4 skips -> 1 skip cycle).
        let w = [workload(&[(4, 10), (2, 6)])];
        let r = simulate_sampling(&cfg, &w);
        assert_eq!(r.rays, 1);
        assert_eq!(r.pairs, 2);
        assert_eq!(r.steps, 16);
        // Both pairs run in parallel: makespan = preproc + longest job
        // = 1 + (4 + 2 + overhead).
        assert_eq!(r.cycles, 1 + 4 + 2 + cfg.job_overhead);
        assert_eq!(r.busy_core_cycles, (4 + 2) + (2 + 1) + 2 * cfg.job_overhead);
    }

    #[test]
    fn naive_marches_the_full_lattice_with_oncore_intersection() {
        let cfg = SamplingModuleConfig::naive_baseline();
        let w = [workload(&[(4, 10)])]; // lattice = 40
        let r = simulate_sampling(&cfg, &w);
        // One core: 63 (intersection) + 40 (lattice) + 2 (overhead).
        assert_eq!(r.cycles, 63 + 40 + cfg.job_overhead);
        assert_eq!(r.preproc_cycles, 0);
    }

    #[test]
    fn ray_batch_waits_for_slowest() {
        let cfg = SamplingModuleConfig {
            cores: 2,
            preproc_alus: 4,
            intersection: IntersectionMode::Normalized,
            policy: SchedulingPolicy::RayBatch,
            job_overhead: 0,
        };
        // Two batches of two rays; each batch bounded by its longest
        // ray (100 dense samples vs 10).
        let w = [
            workload(&[(100, 100)]),
            workload(&[(10, 10)]),
            workload(&[(100, 100)]),
            workload(&[(10, 10)]),
        ];
        let r = simulate_sampling(&cfg, &w);
        assert!(r.cycles >= 200, "barrier makespan: {}", r.cycles);
        let dynamic = simulate_sampling(
            &SamplingModuleConfig { policy: SchedulingPolicy::DynamicWholeRay, ..cfg },
            &w,
        );
        assert!(dynamic.cycles < r.cycles);
    }

    #[test]
    fn dynamic_matches_pair_by_pair_closely() {
        let w: Vec<RayWorkload> = (0..64)
            .map(|i| {
                let a = 5 + (i * 7) % 40;
                let b = 3 + (i * 13) % 25;
                workload(&[(a as u16, a as u16), (b as u16, b as u16)])
            })
            .collect();
        let base = SamplingModuleConfig::fusion3d();
        let pair = simulate_sampling(
            &SamplingModuleConfig { policy: SchedulingPolicy::PairByPair, ..base },
            &w,
        );
        let dynamic = simulate_sampling(&base, &w);
        assert!(dynamic.cycles >= pair.cycles, "pair-by-pair packs at least as well");
        assert!(
            (dynamic.cycles as f64) < pair.cycles as f64 * 1.3,
            "whole-ray dispatch should be within 30%: {} vs {}",
            dynamic.cycles,
            pair.cycles
        );
    }

    #[test]
    fn utilization_bounded_and_consistent() {
        let w: Vec<RayWorkload> =
            (0..100).map(|i| workload(&[(3, 10 + (i % 30) as u16)])).collect();
        for cfg in [SamplingModuleConfig::fusion3d(), SamplingModuleConfig::naive_baseline()] {
            let r = simulate_sampling(&cfg, &w);
            let u = r.core_utilization(cfg.cores);
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
            assert!(r.cycles >= r.preproc_cycles);
        }
    }

    #[test]
    fn t1_speedup_larger_for_sparse_workloads() {
        // Sparse scene: rays retain a couple of samples across long
        // mostly-empty spans.
        let sparse: Vec<RayWorkload> = (0..128)
            .map(|i| RayWorkload {
                valid_pairs: 1,
                samples_per_pair: vec![2 + (i % 3) as u16],
                steps_per_pair: vec![40],
                lattice_steps_per_pair: vec![250],
            })
            .collect();
        // Dense scene: a large fraction of the span is occupied.
        let dense: Vec<RayWorkload> = (0..128)
            .map(|i| RayWorkload {
                valid_pairs: 2,
                samples_per_pair: vec![40 + (i % 20) as u16, 25],
                steps_per_pair: vec![55 + (i % 20) as u16, 35],
                lattice_steps_per_pair: vec![130, 120],
            })
            .collect();
        let s_sparse = t1_speedup(&sparse);
        let s_dense = t1_speedup(&dense);
        assert!(s_sparse > 1.5 * s_dense, "sparse {s_sparse} vs dense {s_dense}");
        assert!(s_dense > 2.0, "even dense scenes speed up: {s_dense}");
        assert!(s_sparse < 64.0, "speedup stays physical: {s_sparse}");
    }

    #[test]
    fn rays_missing_the_model_cost_only_preprocessing() {
        let cfg = SamplingModuleConfig::fusion3d();
        let w = vec![workload(&[]); 32];
        let r = simulate_sampling(&cfg, &w);
        assert_eq!(r.pairs, 0);
        assert_eq!(r.busy_core_cycles, 0);
        assert_eq!(r.cycles, r.preproc_cycles);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let cfg = SamplingModuleConfig { cores: 0, ..SamplingModuleConfig::fusion3d() };
        simulate_sampling(&cfg, &[]);
    }
}
