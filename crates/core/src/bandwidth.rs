//! Off-chip bandwidth analysis — the paper's central Motivation 1
//! (Fig. 3, Table I) and the model-size sweep of Fig. 13(b).
//!
//! A NeRF accelerator's off-chip traffic is whatever crosses its
//! *design boundary*: an accelerator covering only Stage II must
//! stream Stage I's sample points in and Stage III's features out
//! every iteration, while the end-to-end design moves only the true
//! pipeline inputs and outputs (training images in, trained parameters
//! out) — provided the model's hash tables fit in on-chip SRAM.

use fusion3d_nerf::trainer::DataVolume;

/// Which pipeline stages an accelerator design keeps on-chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignBoundary {
    /// Stage II only (e.g. hash-encoding engines).
    Stage2,
    /// Stages II and III (most prior NeRF accelerators).
    Stages23,
    /// Stages I and II.
    Stages12,
    /// All three stages — the Fusion-3D design.
    EndToEnd,
}

impl DesignBoundary {
    /// All boundaries, narrowest first.
    pub const ALL: [DesignBoundary; 4] = [
        DesignBoundary::Stage2,
        DesignBoundary::Stages23,
        DesignBoundary::Stages12,
        DesignBoundary::EndToEnd,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DesignBoundary::Stage2 => "Stage II only",
            DesignBoundary::Stages23 => "Stages II+III",
            DesignBoundary::Stages12 => "Stages I+II",
            DesignBoundary::EndToEnd => "End-to-end (this work)",
        }
    }

    /// The bytes that cross this design boundary for a training run
    /// with the given data-volume ledger.
    pub fn offchip_bytes(self, volume: &DataVolume) -> u64 {
        match self {
            // Sample coordinates stream in, encoded features and
            // gradients stream back out.
            DesignBoundary::Stage2 => {
                volume.stage1_to_stage2 + volume.stage2_to_stage3 + volume.end_to_end_io
            }
            // Sample coordinates in; pixels/losses handled on-chip.
            DesignBoundary::Stages23 => volume.stage1_to_stage2 + volume.end_to_end_io,
            // Features/gradients cross to the host-side MLP.
            DesignBoundary::Stages12 => volume.stage2_to_stage3 + volume.end_to_end_io,
            DesignBoundary::EndToEnd => volume.end_to_end_io,
        }
    }
}

/// Bandwidth in GB/s to move `bytes` within `seconds`.
///
/// # Panics
///
/// Panics if `seconds` is not positive.
pub fn required_bandwidth_gbs(bytes: u64, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "time budget must be positive");
    bytes as f64 / seconds / 1e9
}

/// The USB 3.2 Gen 1 budget available on common edge devices
/// (Table I): 0.625 GB/s.
pub const USB_BANDWIDTH_GBS: f64 = 0.625;

/// One point of the Fig. 13(b) model-size sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSizePoint {
    /// Model parameter bytes (hash tables + MLPs).
    pub param_bytes: u64,
    /// Whether the parameters fit in the chip's cluster SRAM.
    pub fits_on_chip: bool,
    /// Required off-chip bandwidth in GB/s for a training run within
    /// the time budget.
    pub bandwidth_gbs: f64,
}

/// Computes the off-chip bandwidth an end-to-end accelerator needs
/// when training a model of `param_bytes` within `seconds`, given the
/// run's volume ledger and the chip's usable parameter SRAM.
///
/// While the parameters fit on-chip, only the end-to-end I/O crosses
/// the boundary. Once they spill, the Stage-II table traffic spills
/// with them in proportion to the miss ratio — the knee in Fig. 13(b).
pub fn bandwidth_for_model_size(
    volume: &DataVolume,
    param_bytes: u64,
    sram_bytes: u64,
    seconds: f64,
) -> ModelSizePoint {
    let fits = param_bytes <= sram_bytes;
    // The else branch divides by `param_bytes`, which the branch
    // condition keeps nonzero: `param_bytes > sram_bytes >= 0`.
    let bytes = if param_bytes <= sram_bytes {
        volume.end_to_end_io
    } else {
        let miss_ratio = 1.0 - sram_bytes as f64 / param_bytes as f64;
        volume.end_to_end_io + (volume.stage2_internal as f64 * miss_ratio) as u64
    };
    ModelSizePoint {
        param_bytes,
        fits_on_chip: fits,
        bandwidth_gbs: required_bandwidth_gbs(bytes, seconds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like_volume() -> DataVolume {
        // Shaped like Fig. 3: ~155 GB of intermediates, 700 MB of
        // end-to-end I/O.
        DataVolume {
            stage1_to_stage2: 9_000_000_000,
            stage2_internal: 120_000_000_000,
            stage2_to_stage3: 16_000_000_000,
            stage3_internal: 10_000_000_000,
            end_to_end_io: 700_000_000,
        }
    }

    #[test]
    fn end_to_end_moves_orders_of_magnitude_less() {
        let v = paper_like_volume();
        let e2e = DesignBoundary::EndToEnd.offchip_bytes(&v);
        for b in [DesignBoundary::Stage2, DesignBoundary::Stages23, DesignBoundary::Stages12] {
            let partial = b.offchip_bytes(&v);
            assert!(partial > 10 * e2e, "{}: {partial} should dwarf end-to-end {e2e}", b.label());
        }
    }

    #[test]
    fn end_to_end_fits_usb_budget() {
        let v = paper_like_volume();
        // 2-second instant training.
        let bw = required_bandwidth_gbs(DesignBoundary::EndToEnd.offchip_bytes(&v), 2.0);
        assert!(bw < USB_BANDWIDTH_GBS, "end-to-end bandwidth {bw} GB/s");
        // Partial designs blow through it by an order of magnitude.
        let partial = required_bandwidth_gbs(DesignBoundary::Stages23.offchip_bytes(&v), 2.0);
        assert!(partial > 4.0, "partial design {partial} GB/s");
    }

    #[test]
    fn bandwidth_units() {
        assert_eq!(required_bandwidth_gbs(2_000_000_000, 2.0), 1.0);
        assert_eq!(required_bandwidth_gbs(0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_time() {
        required_bandwidth_gbs(1, 0.0);
    }

    #[test]
    fn model_size_sweep_has_a_knee() {
        let v = paper_like_volume();
        let sram = 640 * 1024; // 640 KB of hash-table SRAM, in bytes
        let small = bandwidth_for_model_size(&v, 500_000, sram, 2.0);
        let large = bandwidth_for_model_size(&v, 64_000_000, sram, 2.0);
        assert!(small.fits_on_chip);
        assert!(!large.fits_on_chip);
        // On-chip: sub-USB. Spilled: orders of magnitude more.
        assert!(small.bandwidth_gbs < USB_BANDWIDTH_GBS);
        assert!(large.bandwidth_gbs > 10.0 * small.bandwidth_gbs);
        // Bandwidth grows monotonically past the knee.
        let mid = bandwidth_for_model_size(&v, 8_000_000, sram, 2.0);
        assert!(mid.bandwidth_gbs > small.bandwidth_gbs);
        assert!(large.bandwidth_gbs > mid.bandwidth_gbs);
    }

    #[test]
    fn boundary_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            DesignBoundary::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), DesignBoundary::ALL.len());
    }
}
