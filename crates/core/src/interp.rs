//! Cycle-level model of the Feature Interpolation Module (Stage II)
//! and the Technique T2-1 shared-pipeline accounting.
//!
//! Each interpolation core retires one *level-gather* per cycle: the
//! eight corner features of one sample on one grid level, fetched from
//! the eight banks of its SRAM group (conflict-free under two-level
//! tiling, 1–8 cycles under naive banking). A sample needs
//! `levels` gathers, so the module's peak rate is
//! `cores / levels` points per cycle.
//!
//! Training replaces the gather with a three-step read–compute–write
//! feature update, tripling the per-level cost; the Technique T2-1
//! time-division multiplexing (Fig. 6(c)) re-uses the memory's idle
//! compute slot to run an inference gather "for free" alongside
//! training.

use fusion3d_mem::banks::{BankMapping, ConflictStats};

/// What the shared pipeline is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Forward-only feature aggregation.
    Inference,
    /// Three-step feature updates (read, compute, write back).
    Training,
    /// Training with an inference task co-scheduled into the memory's
    /// idle compute slot (T2-1 TDM).
    TrainingWithTdm,
}

/// Configuration of the interpolation module model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterpModuleConfig {
    /// Number of interpolation cores.
    pub cores: usize,
    /// Grid levels per sample point.
    pub levels: usize,
    /// Bank mapping of the feature SRAM groups.
    pub mapping: BankMapping,
    /// Mean cycles per eight-corner gather group (1.0 under two-level
    /// tiling; measured from a [`ConflictStats`] under naive banking).
    pub mean_gather_cycles: f64,
}

impl InterpModuleConfig {
    /// The Fusion-3D configuration at a given core count: two-level
    /// tiling, conflict-free single-cycle gathers.
    pub fn fusion3d(cores: usize, levels: usize) -> Self {
        InterpModuleConfig {
            cores,
            levels,
            mapping: BankMapping::TwoLevelTiling,
            mean_gather_cycles: 1.0,
        }
    }

    /// A naive-banking configuration whose gather cost comes from a
    /// measured conflict distribution.
    pub fn with_conflicts(cores: usize, levels: usize, stats: &ConflictStats) -> Self {
        InterpModuleConfig {
            cores,
            levels,
            mapping: BankMapping::LowOrderBits,
            mean_gather_cycles: stats.mean_cycles().max(1.0),
        }
    }

    /// Cycles per level-access in the given mode. Training's
    /// read–compute–write takes three memory slots; the gather-cycle
    /// multiplier applies to each memory-touching slot.
    pub fn cycles_per_level(&self, mode: PipelineMode) -> f64 {
        match mode {
            PipelineMode::Inference => self.mean_gather_cycles,
            // Read and write each pay the conflict factor; the compute
            // slot is conflict-free.
            PipelineMode::Training | PipelineMode::TrainingWithTdm => {
                2.0 * self.mean_gather_cycles + 1.0
            }
        }
    }

    /// Sustained throughput in sample points per cycle for the whole
    /// module.
    pub fn points_per_cycle(&self, mode: PipelineMode) -> f64 {
        self.cores as f64 / (self.levels as f64 * self.cycles_per_level(mode))
    }

    /// Bonus *inference* points per cycle delivered by TDM while
    /// training: one gather fits into each idle compute slot, giving
    /// one inference level-access per training level-update.
    pub fn tdm_inference_points_per_cycle(&self) -> f64 {
        self.points_per_cycle(PipelineMode::Training)
    }

    /// Cycles to process `points` sample points across `rays` rays.
    /// Each ray costs one pipeline bubble while the module switches
    /// ray context (flushing per-ray accumulators into the renderer's
    /// FIFO); training pays the bubble on both passes.
    pub fn cycles_for_points(&self, points: u64, rays: u64, mode: PipelineMode) -> u64 {
        let bubbles = match mode {
            PipelineMode::Inference => rays,
            PipelineMode::Training | PipelineMode::TrainingWithTdm => rays * 2,
        };
        (points as f64 / self.points_per_cycle(mode)).ceil() as u64 + bubbles
    }
}

/// One functional block of the Stage II datapath and how Technique
/// T2-1 treats it across inference and training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatapathBlock {
    /// Block name.
    pub name: &'static str,
    /// Fraction of the Stage II area this block occupies
    /// (post-layout).
    pub area_fraction: f64,
    /// Whether the block is directly shared between the two modes
    /// (`true`) or reused through reconfiguration (`false`).
    pub directly_shared: bool,
}

/// The Stage II datapath blocks with their post-layout area shares.
/// Directly-shared blocks total 87.4 % and the reconfigurable
/// interpolation array 12.6 %, matching the paper's T2 ablation.
pub const DATAPATH_BLOCKS: [DatapathBlock; 5] = [
    DatapathBlock {
        name: "vertex coordinate generation",
        area_fraction: 0.141,
        directly_shared: true,
    },
    DatapathBlock {
        name: "feature index (hash) computation",
        area_fraction: 0.302,
        directly_shared: true,
    },
    DatapathBlock {
        name: "interpolation weight generation",
        area_fraction: 0.173,
        directly_shared: true,
    },
    DatapathBlock {
        name: "bank interface & accumulators",
        area_fraction: 0.258,
        directly_shared: true,
    },
    DatapathBlock {
        name: "reconfigurable interpolation array",
        area_fraction: 0.126,
        directly_shared: false,
    },
];

/// Fraction of Stage II area directly shared between inference and
/// training (the paper reports 87.4 %).
pub fn shared_area_fraction() -> f64 {
    DATAPATH_BLOCKS.iter().filter(|b| b.directly_shared).map(|b| b.area_fraction).sum()
}

/// Fraction of Stage II area reused via reconfiguration (the paper
/// reports 12.6 %).
pub fn reconfigured_area_fraction() -> f64 {
    DATAPATH_BLOCKS.iter().filter(|b| !b.directly_shared).map(|b| b.area_fraction).sum()
}

/// Area saving of the shared/reconfigurable pipeline versus
/// instantiating separate inference and training datapaths: a
/// duplicated design pays for every block twice.
pub fn sharing_area_saving() -> f64 {
    let unified: f64 = DATAPATH_BLOCKS.iter().map(|b| b.area_fraction).sum();
    let duplicated = 2.0 * unified;
    1.0 - unified / duplicated
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion3d_mem::banks::{group_from_addresses, simulate_groups};

    #[test]
    fn paper_scale_throughput() {
        // Scaled-up chip: 10 cores over a 10-level model retires one
        // point per cycle in inference...
        let cfg = InterpModuleConfig::fusion3d(10, 10);
        assert!((cfg.points_per_cycle(PipelineMode::Inference) - 1.0).abs() < 1e-12);
        // ...and one point per three cycles in training, reproducing
        // the paper's 591 vs 199 M points/s split at 600 MHz.
        assert!((cfg.points_per_cycle(PipelineMode::Training) - 1.0 / 3.0).abs() < 1e-12);
        // The prototype's 5 cores run at exactly half the rate.
        let proto = InterpModuleConfig::fusion3d(5, 10);
        assert!((proto.points_per_cycle(PipelineMode::Inference) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflicts_slow_the_module_down() {
        // An adversarial access pattern: all corners in one bank.
        let group = group_from_addresses([0, 8, 16, 24, 32, 40, 48, 56]);
        let stats = simulate_groups(BankMapping::LowOrderBits, [group.as_slice()]);
        let naive = InterpModuleConfig::with_conflicts(10, 10, &stats);
        let tiled = InterpModuleConfig::fusion3d(10, 10);
        assert!(
            naive.points_per_cycle(PipelineMode::Inference)
                < tiled.points_per_cycle(PipelineMode::Inference) / 4.0
        );
    }

    #[test]
    fn cycles_for_points_rounds_up() {
        let cfg = InterpModuleConfig::fusion3d(10, 10);
        assert_eq!(cfg.cycles_for_points(0, 0, PipelineMode::Inference), 0);
        assert_eq!(cfg.cycles_for_points(600, 0, PipelineMode::Inference), 600);
        assert_eq!(cfg.cycles_for_points(600, 50, PipelineMode::Inference), 650);
        assert_eq!(cfg.cycles_for_points(1, 1, PipelineMode::Training), 5);
    }

    #[test]
    fn tdm_delivers_free_inference() {
        let cfg = InterpModuleConfig::fusion3d(10, 10);
        let tdm = cfg.tdm_inference_points_per_cycle();
        assert!(tdm > 0.0);
        // TDM inference rides along at the training rate.
        assert!((tdm - cfg.points_per_cycle(PipelineMode::Training)).abs() < 1e-12);
    }

    #[test]
    fn area_sharing_matches_paper_ablation() {
        let shared = shared_area_fraction();
        let reconf = reconfigured_area_fraction();
        assert!((shared - 0.874).abs() < 1e-9, "shared {shared}");
        assert!((reconf - 0.126).abs() < 1e-9, "reconfigured {reconf}");
        assert!((shared + reconf - 1.0).abs() < 1e-9);
        // Versus duplicated datapaths, sharing halves the area.
        assert!((sharing_area_saving() - 0.5).abs() < 1e-9);
    }
}
