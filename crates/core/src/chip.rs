//! The assembled single-chip accelerator: all three stage models
//! composed into an end-to-end pipeline, with frame-level and
//! training-step simulation.
//!
//! Because the three stages run as a pipeline over shared memory
//! clusters (ping-pong buffered), steady-state frame time is set by
//! the slowest stage; the simulator reports per-stage cycles, the
//! bottleneck, throughput, and energy.

use crate::config::ChipConfig;
use crate::energy::EnergyModel;
use crate::interp::{InterpModuleConfig, PipelineMode};
use crate::postproc::PostProcConfig;
use crate::sampling::{simulate_sampling, SamplingModuleConfig};
use fusion3d_nerf::pipeline::FrameTrace;

/// Which pipeline stage bounds performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage I — sampling.
    Sampling,
    /// Stage II — feature interpolation.
    Interpolation,
    /// Stage III — post-processing.
    PostProcessing,
}

/// Per-stage cycle counts for one frame or training batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCycles {
    /// Stage I cycles.
    pub sampling: u64,
    /// Stage II cycles.
    pub interpolation: u64,
    /// Stage III cycles.
    pub post_processing: u64,
}

impl StageCycles {
    /// The pipelined makespan: the slowest stage.
    pub fn pipelined(&self) -> u64 {
        self.sampling.max(self.interpolation).max(self.post_processing)
    }

    /// The stage that bounds the pipeline.
    pub fn bottleneck(&self) -> Stage {
        if self.sampling >= self.interpolation && self.sampling >= self.post_processing {
            Stage::Sampling
        } else if self.interpolation >= self.post_processing {
            Stage::Interpolation
        } else {
            Stage::PostProcessing
        }
    }
}

/// A simulated frame or training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Per-stage cycles.
    pub stages: StageCycles,
    /// Total pipelined cycles.
    pub cycles: u64,
    /// Sample points processed.
    pub points: u64,
    /// Rays processed.
    pub rays: u64,
    /// Wall-clock seconds at the chip's nominal frequency.
    pub seconds: f64,
    /// Energy in joules at the nominal operating point.
    pub energy_j: f64,
}

impl SimReport {
    /// Sustained throughput in sampled points per second.
    pub fn points_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.points as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// The assembled Fusion-3D single-chip accelerator.
#[derive(Debug, Clone)]
pub struct FusionChip {
    config: ChipConfig,
    sampling: SamplingModuleConfig,
    interp: InterpModuleConfig,
    postproc: PostProcConfig,
    energy: EnergyModel,
}

impl FusionChip {
    /// Assembles a chip from a hardware configuration, using the
    /// Fusion-3D module settings throughout.
    pub fn new(config: ChipConfig) -> Self {
        let sampling = SamplingModuleConfig {
            cores: config.sampling_cores,
            ..SamplingModuleConfig::fusion3d()
        };
        let interp = InterpModuleConfig::fusion3d(config.interp_cores, config.model_levels);
        // Stage III sized to match Stage II's point rate: the MAC
        // array retires one paper-scale point per interp point slot.
        let postproc = PostProcConfig::fusion3d(5312);
        FusionChip { energy: EnergyModel::new(config), config, sampling, interp, postproc }
    }

    /// The taped-out prototype chip.
    pub fn prototype() -> Self {
        FusionChip::new(ChipConfig::prototype())
    }

    /// The scaled-up chip used in the Table III comparison.
    pub fn scaled_up() -> Self {
        FusionChip::new(ChipConfig::scaled_up())
    }

    /// Returns the chip with its Stage-II mean gather latency set to
    /// `cycles` (clamped to at least 1.0) — how a chip *without* the
    /// two-level hash tiling behaves, with bank conflicts stretching
    /// every eight-corner fetch. Used by the multi-chip Technique T4
    /// ablation.
    pub fn with_mean_gather_cycles(mut self, cycles: f64) -> Self {
        self.interp.mean_gather_cycles = cycles.max(1.0);
        self
    }

    /// The Stage-II mean gather latency currently configured.
    pub fn mean_gather_cycles(&self) -> f64 {
        self.interp.mean_gather_cycles
    }

    /// The chip's hardware configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// The sampling-module configuration.
    pub fn sampling_config(&self) -> &SamplingModuleConfig {
        &self.sampling
    }

    /// The energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Peak inference throughput in points per second (Stage II/III
    /// bound, perfect Stage I feed).
    pub fn peak_inference_points_per_second(&self) -> f64 {
        let ppc = self
            .interp
            .points_per_cycle(PipelineMode::Inference)
            .min(self.postproc.points_per_cycle_inference());
        ppc * self.config.cycles_per_second()
    }

    /// Peak training throughput in points per second.
    pub fn peak_training_points_per_second(&self) -> f64 {
        let ppc = self
            .interp
            .points_per_cycle(PipelineMode::Training)
            .min(self.postproc.points_per_cycle_training());
        ppc * self.config.cycles_per_second()
    }

    /// Energy per point at peak inference throughput, in nanojoules.
    pub fn inference_energy_per_point_nj(&self) -> f64 {
        self.energy.energy_per_point_nj(self.peak_inference_points_per_second())
    }

    /// Energy per point at peak training throughput, in nanojoules.
    pub fn training_energy_per_point_nj(&self) -> f64 {
        self.energy.energy_per_point_nj(self.peak_training_points_per_second())
    }

    fn report(&self, stages: StageCycles, points: u64, rays: u64) -> SimReport {
        let cycles = stages.pipelined();
        SimReport {
            stages,
            cycles,
            points,
            rays,
            seconds: cycles as f64 / self.config.cycles_per_second(),
            energy_j: self.energy.energy_for_cycles_j(cycles),
        }
    }

    /// Simulates rendering one frame whose Stage-I workload was
    /// captured in `trace`.
    pub fn simulate_frame(&self, trace: &FrameTrace) -> SimReport {
        let s1 = simulate_sampling(&self.sampling, &trace.workloads);
        let stages = StageCycles {
            sampling: s1.cycles,
            interpolation: self.interp.cycles_for_points(
                trace.total_samples,
                trace.ray_count() as u64,
                PipelineMode::Inference,
            ),
            post_processing: self
                .postproc
                .frame_cycles(trace.total_samples, trace.ray_count() as u64),
        };
        self.report(stages, trace.total_samples, trace.ray_count() as u64)
    }

    /// Simulates one training step over a batch whose Stage-I workload
    /// was captured in `trace` (forward + backward + feature update).
    pub fn simulate_training_step(&self, trace: &FrameTrace) -> SimReport {
        let s1 = simulate_sampling(&self.sampling, &trace.workloads);
        let stages = StageCycles {
            sampling: s1.cycles,
            interpolation: self.interp.cycles_for_points(
                trace.total_samples,
                trace.ray_count() as u64,
                PipelineMode::Training,
            ),
            post_processing: self
                .postproc
                .training_cycles(trace.total_samples, trace.ray_count() as u64),
        };
        self.report(stages, trace.total_samples, trace.ray_count() as u64)
    }

    /// Frames per second for a frame workload.
    pub fn fps(&self, trace: &FrameTrace) -> f64 {
        let report = self.simulate_frame(trace);
        if report.seconds > 0.0 {
            1.0 / report.seconds
        } else {
            f64::INFINITY
        }
    }

    /// Wall-clock seconds for `iterations` training steps of the given
    /// batch workload.
    pub fn training_seconds(&self, trace: &FrameTrace, iterations: u64) -> f64 {
        self.simulate_training_step(trace).seconds * iterations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion3d_nerf::sampler::RayWorkload;

    fn synthetic_trace(rays: usize, samples_per_ray: u16, steps_per_ray: u16) -> FrameTrace {
        let workloads: Vec<RayWorkload> = (0..rays)
            .map(|_| RayWorkload {
                valid_pairs: 1,
                samples_per_pair: vec![samples_per_ray],
                steps_per_pair: vec![steps_per_ray],
                lattice_steps_per_pair: vec![steps_per_ray.saturating_mul(3)],
            })
            .collect();
        FrameTrace {
            total_samples: rays as u64 * samples_per_ray as u64,
            total_steps: rays as u64 * steps_per_ray as u64,
            workloads,
        }
    }

    #[test]
    fn scaled_chip_reproduces_table_iii_peaks() {
        let chip = FusionChip::scaled_up();
        // Peak inference 600 M pts/s (paper reports 591 M sustained).
        let inf = chip.peak_inference_points_per_second();
        assert!((inf - 600e6).abs() < 1e-3, "{inf}");
        // Training at one third: 200 M (paper: 199 M).
        let train = chip.peak_training_points_per_second();
        assert!((train - 200e6).abs() < 1e-3, "{train}");
        // Energy per point: ~2.5 / ~7.4 nJ.
        assert!((chip.inference_energy_per_point_nj() - 2.46).abs() < 0.1);
        assert!((chip.training_energy_per_point_nj() - 7.4).abs() < 0.2);
    }

    #[test]
    fn prototype_is_half_rate() {
        let proto = FusionChip::prototype();
        let scaled = FusionChip::scaled_up();
        let ratio =
            scaled.peak_inference_points_per_second() / proto.peak_inference_points_per_second();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn frame_simulation_balances_stages() {
        let chip = FusionChip::scaled_up();
        // A dense frame: 640k rays... scaled down 100x for test speed.
        let trace = synthetic_trace(6400, 12, 20);
        let report = chip.simulate_frame(&trace);
        assert_eq!(report.points, 6400 * 12);
        assert!(report.cycles > 0);
        assert!(report.seconds > 0.0);
        assert!(report.energy_j > 0.0);
        // The matched design keeps stages within an order of
        // magnitude of each other.
        let s = report.stages;
        let max = s.pipelined() as f64;
        assert!(s.sampling as f64 > max / 20.0);
        assert!(s.interpolation as f64 > max / 20.0);
    }

    #[test]
    fn training_step_is_slower_than_frame() {
        let chip = FusionChip::scaled_up();
        let trace = synthetic_trace(1024, 16, 24);
        let frame = chip.simulate_frame(&trace);
        let step = chip.simulate_training_step(&trace);
        assert!(step.cycles > frame.cycles);
        // Training is about 3x inference when Stage II/III bound.
        let ratio = step.cycles as f64 / frame.cycles as f64;
        assert!((1.5..=4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fps_and_training_time_scale() {
        let chip = FusionChip::scaled_up();
        let trace = synthetic_trace(4096, 12, 18);
        let fps = chip.fps(&trace);
        assert!(fps.is_finite() && fps > 0.0);
        let t1 = chip.training_seconds(&trace, 100);
        let t2 = chip.training_seconds(&trace, 200);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_detection() {
        let s = StageCycles { sampling: 10, interpolation: 30, post_processing: 20 };
        assert_eq!(s.pipelined(), 30);
        assert_eq!(s.bottleneck(), Stage::Interpolation);
        let s = StageCycles { sampling: 50, interpolation: 30, post_processing: 20 };
        assert_eq!(s.bottleneck(), Stage::Sampling);
        let s = StageCycles { sampling: 10, interpolation: 30, post_processing: 40 };
        assert_eq!(s.bottleneck(), Stage::PostProcessing);
    }

    #[test]
    fn empty_trace_renders_instantly() {
        let chip = FusionChip::prototype();
        let report = chip.simulate_frame(&FrameTrace::default());
        assert_eq!(report.cycles, 0);
        assert_eq!(report.points_per_second(), 0.0);
        assert_eq!(chip.fps(&FrameTrace::default()), f64::INFINITY);
    }
}
