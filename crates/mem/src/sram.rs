//! SRAM bank and memory-cluster bookkeeping.
//!
//! The accelerator's Memory Clusters are software-configurable groups
//! of SRAM arrays shared by the three computing modules, organized as
//! ping-pong pairs so one array is filled while the other is drained
//! (Sec. III-A). This module models capacity, access counting, and the
//! ping-pong mechanism; cycle-level conflicts are modelled in
//! [`crate::banks`].

/// Static description of one SRAM array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramSpec {
    /// Number of addressable words.
    pub words: u32,
    /// Word width in bits.
    pub word_bits: u32,
}

impl SramSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(words: u32, word_bits: u32) -> Self {
        assert!(words > 0 && word_bits > 0, "SRAM dimensions must be positive");
        SramSpec { words, word_bits }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> u64 {
        (self.words as u64 * self.word_bits as u64).div_ceil(8)
    }

    /// Capacity in kilobytes (KB = 1024 bytes, as in the paper's spec
    /// tables).
    pub fn kilobytes(&self) -> f64 {
        self.bytes() as f64 / 1024.0
    }
}

/// One SRAM bank with access counters.
#[derive(Debug, Clone)]
pub struct SramBank {
    spec: SramSpec,
    reads: u64,
    writes: u64,
}

impl SramBank {
    /// Creates a bank.
    pub fn new(spec: SramSpec) -> Self {
        SramBank { spec, reads: 0, writes: 0 }
    }

    /// The bank's spec.
    pub fn spec(&self) -> &SramSpec {
        &self.spec
    }

    /// Records a read of `address`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn read(&mut self, address: u32) {
        assert!(address < self.spec.words, "read address {address} out of range");
        self.reads += 1;
    }

    /// Records a write to `address`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn write(&mut self, address: u32) {
        assert!(address < self.spec.words, "write address {address} out of range");
        self.writes += 1;
    }

    /// Reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Resets the counters.
    pub fn reset(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

/// Which half of a ping-pong pair is currently the front (producer
/// target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PingPongSide {
    /// Array A is the front.
    A,
    /// Array B is the front.
    B,
}

/// A ping-pong buffer: two identical SRAM arrays alternating between
/// producer (front) and consumer (back) roles, hiding fill latency
/// behind drain latency.
#[derive(Debug, Clone)]
pub struct PingPongBuffer {
    a: SramBank,
    b: SramBank,
    front: PingPongSide,
    swaps: u64,
}

impl PingPongBuffer {
    /// Creates a buffer of two arrays with the given spec.
    pub fn new(spec: SramSpec) -> Self {
        PingPongBuffer {
            a: SramBank::new(spec),
            b: SramBank::new(spec),
            front: PingPongSide::A,
            swaps: 0,
        }
    }

    /// The currently-front side.
    pub fn front_side(&self) -> PingPongSide {
        self.front
    }

    /// The producer-facing array.
    pub fn front(&mut self) -> &mut SramBank {
        match self.front {
            PingPongSide::A => &mut self.a,
            PingPongSide::B => &mut self.b,
        }
    }

    /// The consumer-facing array.
    pub fn back(&mut self) -> &mut SramBank {
        match self.front {
            PingPongSide::A => &mut self.b,
            PingPongSide::B => &mut self.a,
        }
    }

    /// Swaps the roles of the two arrays.
    pub fn swap(&mut self) {
        self.front = match self.front {
            PingPongSide::A => PingPongSide::B,
            PingPongSide::B => PingPongSide::A,
        };
        self.swaps += 1;
    }

    /// Number of swaps performed.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Total capacity of both arrays in bytes.
    pub fn bytes(&self) -> u64 {
        self.a.spec().bytes() + self.b.spec().bytes()
    }
}

/// A memory cluster: a set of SRAM arrays with total-capacity and
/// aggregate-access accounting, matching the "Memory Clusters" block
/// of the chip.
#[derive(Debug, Clone)]
pub struct MemoryCluster {
    banks: Vec<SramBank>,
}

impl MemoryCluster {
    /// Creates a cluster of `count` identical arrays.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: usize, spec: SramSpec) -> Self {
        assert!(count > 0, "a cluster needs at least one bank");
        MemoryCluster { banks: (0..count).map(|_| SramBank::new(spec)).collect() }
    }

    /// The banks of the cluster.
    pub fn banks(&self) -> &[SramBank] {
        &self.banks
    }

    /// Mutable bank access.
    ///
    /// # Panics
    ///
    /// Panics when `index` is not a valid bank index, like slice
    /// indexing.
    pub fn bank_mut(&mut self, index: usize) -> &mut SramBank {
        debug_assert!(index < self.banks.len(), "bank index out of range");
        &mut self.banks[index]
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Total capacity in bytes.
    pub fn bytes(&self) -> u64 {
        self.banks.iter().map(|b| b.spec().bytes()).sum()
    }

    /// Total capacity in kilobytes.
    pub fn kilobytes(&self) -> f64 {
        self.bytes() as f64 / 1024.0
    }

    /// Total accesses across all banks.
    pub fn accesses(&self) -> u64 {
        self.banks.iter().map(|b| b.accesses()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_capacity() {
        let spec = SramSpec::new(16384, 32);
        assert_eq!(spec.bytes(), 64 * 1024);
        assert_eq!(spec.kilobytes(), 64.0);
        // Non-byte-aligned widths round up.
        assert_eq!(SramSpec::new(3, 10).bytes(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn spec_rejects_zero() {
        SramSpec::new(0, 8);
    }

    #[test]
    fn bank_counters() {
        let mut bank = SramBank::new(SramSpec::new(128, 32));
        bank.read(0);
        bank.read(127);
        bank.write(5);
        assert_eq!(bank.reads(), 2);
        assert_eq!(bank.writes(), 1);
        assert_eq!(bank.accesses(), 3);
        bank.reset();
        assert_eq!(bank.accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_bounds_checked() {
        let mut bank = SramBank::new(SramSpec::new(128, 32));
        bank.read(128);
    }

    #[test]
    fn ping_pong_alternates() {
        let mut pp = PingPongBuffer::new(SramSpec::new(64, 32));
        assert_eq!(pp.front_side(), PingPongSide::A);
        pp.front().write(0);
        pp.swap();
        assert_eq!(pp.front_side(), PingPongSide::B);
        // The array written before the swap is now the back.
        assert_eq!(pp.back().writes(), 1);
        pp.swap();
        assert_eq!(pp.front_side(), PingPongSide::A);
        assert_eq!(pp.swaps(), 2);
        assert_eq!(pp.bytes(), 2 * 64 * 4);
    }

    #[test]
    fn cluster_totals() {
        // The paper's hash storage: 2 clusters × 5 arrays × 64 KB.
        let spec = SramSpec::new(16384, 32); // 64 KB
        let cluster = MemoryCluster::new(5, spec);
        assert_eq!(cluster.bank_count(), 5);
        assert_eq!(cluster.kilobytes(), 320.0);
        let mut cluster = cluster;
        cluster.bank_mut(0).read(3);
        cluster.bank_mut(4).write(9);
        assert_eq!(cluster.accesses(), 2);
    }
}
