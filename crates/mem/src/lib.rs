//! # fusion3d-mem
//!
//! The on-chip memory substrate of the Fusion-3D reproduction:
//!
//! * [`sram`] — SRAM bank/cluster capacity and access accounting plus
//!   the ping-pong buffer mechanism of the chip's Memory Clusters;
//! * [`banks`] — bank mappings and conflict simulation for Stage II
//!   feature fetches, including the paper's two-level hash tiling
//!   (Technique T4) that makes every eight-corner fetch exactly one
//!   cycle;
//! * [`energy`] — SRAM access-energy scaling calibrated to the chip's
//!   measured memory power share;
//! * [`interconnect`] — crossbar vs. one-to-one fabric cost models
//!   behind the Fig. 12(b)/(c) area and latency savings.
//!
//! ```
//! use fusion3d_mem::banks::{group_from_addresses, BankMapping};
//!
//! // Eight corner addresses from the Instant-NGP hash: the two-level
//! // tiling serves them in a single cycle.
//! let group = group_from_addresses([2, 3, 100, 101, 7000, 7001, 42, 43]);
//! assert_eq!(BankMapping::TwoLevelTiling.group_cycles(&group), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod banks;
pub mod energy;
pub mod interconnect;
pub mod sram;

pub use banks::{simulate_groups, BankMapping, ConflictStats, VertexRequest};
pub use interconnect::{compare as compare_interconnect, InterconnectComparison};
pub use sram::{MemoryCluster, PingPongBuffer, SramBank, SramSpec};
