//! Compute-to-memory interconnect cost models.
//!
//! With naive banking, any of the eight corner requests may target any
//! bank, so the interpolation cores need an 8×8 crossbar with
//! arbitration. Under two-level hash tiling the assignment is static —
//! corner `i` always reads bank `(i >> 1) × 2 + parity` — so the
//! crossbar collapses to fixed one-to-one wiring. Fig. 12(b)/(c) report
//! the resulting area and latency savings; this module reproduces them
//! structurally.

/// Cost of an interconnect between `ports` requesters and `ports`
/// banks of `width_bits`-wide data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectCost {
    /// Area in gate units (mux/wiring cells).
    pub area: f64,
    /// Traversal latency in cycles.
    pub latency_cycles: u32,
}

/// A full crossbar: every input can reach every output. Area grows
/// with `ports² × width` (one mux leg per input/output pair) plus an
/// arbiter per output; traversal costs an arbitration cycle plus a
/// mux cycle.
pub fn crossbar(ports: u32, width_bits: u32) -> InterconnectCost {
    // The upper bounds keep `ports² × width` provably inside u32
    // (lint rule A2); the Stage-II fabric is 8 ports × 32 bits.
    assert!(
        ports > 0 && ports <= 64 && width_bits > 0 && width_bits <= 1024,
        "interconnect dimensions must be positive and chip-scale"
    );
    let mux_area = (ports * ports * width_bits) as f64;
    let arbiter_area = (ports * ports) as f64 * 2.0;
    InterconnectCost { area: mux_area + arbiter_area, latency_cycles: 2 }
}

/// Fixed one-to-one wiring: each requester is hardwired to its bank.
/// Area is linear in `ports × width` (buffers only) and traversal is a
/// single cycle with no arbitration.
pub fn one_to_one(ports: u32, width_bits: u32) -> InterconnectCost {
    assert!(
        ports > 0 && ports <= 64 && width_bits > 0 && width_bits <= 1024,
        "interconnect dimensions must be positive and chip-scale"
    );
    InterconnectCost { area: (ports * width_bits) as f64 * 0.5, latency_cycles: 1 }
}

/// Comparison of the two interconnects for the Stage-II bank fabric —
/// the model behind Fig. 12(b) and the fixed part of Fig. 12(c).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectComparison {
    /// Crossbar cost (naive banking).
    pub crossbar: InterconnectCost,
    /// One-to-one cost (two-level tiling).
    pub one_to_one: InterconnectCost,
    /// Fractional area saving.
    pub area_saving: f64,
    /// Per-traversal latency saving in cycles.
    pub latency_saving_cycles: u32,
}

/// Compares the two fabrics at the accelerator's Stage-II geometry.
pub fn compare(ports: u32, width_bits: u32) -> InterconnectComparison {
    let xbar = crossbar(ports, width_bits);
    let direct = one_to_one(ports, width_bits);
    InterconnectComparison {
        crossbar: xbar,
        one_to_one: direct,
        area_saving: 1.0 - direct.area / xbar.area,
        latency_saving_cycles: xbar.latency_cycles - direct.latency_cycles,
    }
}

/// The accelerator's Stage-II fabric geometry: 8 corner requesters,
/// 32-bit feature words (two 16-bit features).
pub const STAGE2_PORTS: u32 = 8;
/// Feature word width between interpolation cores and hash SRAM.
pub const STAGE2_WIDTH_BITS: u32 = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_grows_quadratically() {
        let small = crossbar(4, 32);
        let big = crossbar(8, 32);
        // 4x the mux area for 2x the ports.
        assert!(big.area / small.area > 3.5 && big.area / small.area < 4.5);
    }

    #[test]
    fn one_to_one_grows_linearly() {
        let small = one_to_one(4, 32);
        let big = one_to_one(8, 32);
        assert_eq!(big.area / small.area, 2.0);
        assert_eq!(big.latency_cycles, 1);
    }

    #[test]
    fn tiling_eliminates_most_interconnect_area() {
        let cmp = compare(STAGE2_PORTS, STAGE2_WIDTH_BITS);
        // Fig. 12(b): the one-to-one fabric is a small fraction of the
        // crossbar. Structurally the saving is ~1 − 1/(2·ports).
        assert!(cmp.area_saving > 0.85, "area saving {} too small", cmp.area_saving);
        assert_eq!(cmp.latency_saving_cycles, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_ports() {
        crossbar(0, 32);
    }
}
