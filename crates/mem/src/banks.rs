//! Bank mapping and conflict simulation for Stage II feature fetches —
//! the memory-system side of Technique T4 (*Two-Level Hash Tiling*).
//!
//! Every sampled point fetches its eight cell-corner features in one
//! request group. With naive banking (low-order address bits), several
//! of the eight requests can target the same SRAM bank, serializing
//! the group into up to eight cycles and making fetch latency
//! *variable* — which in the multi-chip system becomes chip-level
//! workload imbalance (Challenge C4).
//!
//! The two-level tiling exploits two structural properties of the
//! Instant-NGP hash (verified in `fusion3d-nerf::hash`):
//!
//! * **Level 2 (interpolation-level tiling)** — corners with different
//!   YZ offsets spread widely in the table, so the four YZ-offset
//!   groups get four dedicated SRAM groups;
//! * **Level 3 (parity-level tiling)** — the two corners of a YZ group
//!   differ by one unit in X and therefore always have opposite
//!   address parity, so each SRAM group splits into an even and an odd
//!   bank.
//!
//! The result: the eight requests of any group map one-to-one onto the
//! eight banks — every fetch takes exactly one cycle, variance zero,
//! and the bank interconnect degenerates from a crossbar to fixed
//! one-to-one wiring (see [`crate::interconnect`]).

/// One feature-table request within an eight-corner group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexRequest {
    /// Corner index 0..8 (bit 0 = X offset, bits 1–2 = YZ offset).
    pub corner: u8,
    /// Table address of the vertex's features.
    pub address: u32,
}

/// Number of banks in a Stage-II SRAM group under either mapping.
pub const BANKS: usize = 8;

/// How feature-table addresses map onto SRAM banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankMapping {
    /// Naive banking: bank = low three address bits. Corners can
    /// collide.
    LowOrderBits,
    /// The paper's two-level tiling: bank = (YZ-offset group) × 2 +
    /// (address parity). Conflict-free by construction.
    TwoLevelTiling,
}

impl BankMapping {
    /// The bank a request maps to (0..[`BANKS`]).
    #[inline]
    pub fn bank_of(self, request: VertexRequest) -> usize {
        match self {
            BankMapping::LowOrderBits => (request.address & 0b111) as usize,
            BankMapping::TwoLevelTiling => {
                let yz_group = ((request.corner >> 1) & 0b11) as usize;
                let parity = (request.address & 1) as usize;
                yz_group * 2 + parity
            }
        }
    }

    /// Cycles needed to serve one eight-corner request group: the
    /// maximum number of requests landing on any single bank.
    ///
    /// # Panics
    ///
    /// Panics if the group is empty.
    pub fn group_cycles(self, group: &[VertexRequest]) -> u32 {
        assert!(!group.is_empty(), "request group must not be empty");
        let mut per_bank = [0u32; BANKS];
        for &req in group {
            per_bank[self.bank_of(req)] += 1;
        }
        per_bank.iter().copied().max().unwrap_or(0)
    }
}

/// Aggregate conflict statistics over many request groups — the
/// quantities plotted in Fig. 12(c)–(e).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConflictStats {
    /// Number of request groups simulated.
    pub groups: u64,
    /// Total cycles spent serving them.
    pub total_cycles: u64,
    /// Cycles in excess of one per group (pure conflict overhead).
    pub conflict_cycles: u64,
    /// Minimum group latency observed.
    pub min_cycles: u32,
    /// Maximum group latency observed.
    pub max_cycles: u32,
    /// Variance of the group latency.
    pub variance: f64,
    /// Latency histogram: `histogram[k]` counts groups served in
    /// `k + 1` cycles (index 0 = conflict-free single-cycle groups,
    /// index 7 = fully serialized). This is the distribution the
    /// paper's Fig. 12(d) summarizes.
    pub histogram: [u64; BANKS],
}

impl ConflictStats {
    /// Mean cycles per group.
    pub fn mean_cycles(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.groups as f64
        }
    }

    /// Latency saving of these stats relative to a baseline
    /// (`1 − total/baseline_total`).
    pub fn latency_saving_vs(&self, baseline: &ConflictStats) -> f64 {
        if baseline.total_cycles == 0 {
            0.0
        } else {
            1.0 - self.total_cycles as f64 / baseline.total_cycles as f64
        }
    }

    /// Record these conflict statistics under `prefix` (e.g.
    /// `"mem.banks"`): group/cycle counters, the mean-latency gauge,
    /// and the per-group latency distribution (paper Fig. 12(d)).
    pub fn record(&self, prefix: &str, report: &mut fusion3d_obs::Report) {
        let m = &mut report.metrics;
        let key = |suffix: &str| {
            let mut name = String::from(prefix);
            // lint: allow(h2): metric keys are built once per report
            // flush, not per sample; owned strings are the obs interface
            name.push('.');
            name.push_str(suffix);
            name
        };
        m.counter_add(&key("groups"), "groups", self.groups);
        m.counter_add(&key("total_cycles"), "cycles", self.total_cycles);
        m.counter_add(&key("conflict_cycles"), "cycles", self.conflict_cycles);
        m.gauge_set(&key("mean_cycles"), "cycles/group", self.mean_cycles());
        for (k, &count) in self.histogram.iter().enumerate() {
            debug_assert!((0..BANKS).contains(&k), "histogram index is bank-bounded");
            m.observe_n(&key("latency"), "cycles", k as u64 + 1, count);
        }
    }
}

/// Simulates the given request groups under a bank mapping.
pub fn simulate_groups<'a, I>(mapping: BankMapping, groups: I) -> ConflictStats
where
    I: IntoIterator<Item = &'a [VertexRequest]>,
{
    let mut n = 0u64;
    let mut total = 0u64;
    let mut conflict = 0u64;
    let mut min = u32::MAX;
    let mut max = 0u32;
    let mut sum_sq = 0.0f64;
    let mut histogram = [0u64; BANKS];
    for group in groups {
        let cycles = mapping.group_cycles(group);
        n += 1;
        total += cycles as u64;
        conflict += (cycles - 1) as u64;
        min = min.min(cycles);
        max = max.max(cycles);
        sum_sq += (cycles as f64) * (cycles as f64);
        histogram[(cycles as usize - 1).min(BANKS - 1)] += 1;
    }
    let variance = if n == 0 {
        0.0
    } else {
        let mean = total as f64 / n as f64;
        (sum_sq / n as f64) - mean * mean
    };
    ConflictStats {
        groups: n,
        total_cycles: total,
        conflict_cycles: conflict,
        min_cycles: if n == 0 { 0 } else { min },
        max_cycles: max,
        variance: variance.max(0.0),
        histogram,
    }
}

/// Builds the eight-corner request group of one sampled point on one
/// hash level, given the corner addresses in corner order.
pub fn group_from_addresses(addresses: [u32; 8]) -> [VertexRequest; 8] {
    let mut out = [VertexRequest { corner: 0, address: 0 }; 8];
    for (i, (&addr, slot)) in addresses.iter().zip(out.iter_mut()).enumerate() {
        debug_assert!(i < 8, "eight corners per group");
        *slot = VertexRequest { corner: i as u8, address: addr };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Mimics the Instant-NGP hash for test groups: corner addresses
    /// with guaranteed X-parity alternation and spread YZ terms.
    fn hash_like_group(base: [u32; 3]) -> [VertexRequest; 8] {
        const P2: u32 = 2_654_435_761;
        const P3: u32 = 805_459_861;
        let mut addrs = [0u32; 8];
        for (i, a) in addrs.iter_mut().enumerate() {
            let x = base[0] + (i as u32 & 1);
            let y = base[1] + ((i as u32 >> 1) & 1);
            let z = base[2] + ((i as u32 >> 2) & 1);
            *a = (x ^ y.wrapping_mul(P2) ^ z.wrapping_mul(P3)) & 0x3FFF;
        }
        group_from_addresses(addrs)
    }

    #[test]
    fn two_level_tiling_is_conflict_free_on_hash_groups() {
        for seed in 0..500u32 {
            let group = hash_like_group([seed * 31 + 2, seed * 17 + 5, seed * 13 + 7]);
            assert_eq!(
                BankMapping::TwoLevelTiling.group_cycles(&group),
                1,
                "group {seed} conflicts"
            );
        }
    }

    #[test]
    fn naive_banking_conflicts_on_adversarial_group() {
        // All eight addresses share their low three bits.
        let group = group_from_addresses([8, 16, 24, 32, 40, 48, 56, 64]);
        assert_eq!(BankMapping::LowOrderBits.group_cycles(&group), 8);
        // Two-level tiling still resolves the YZ/corner structure.
        assert!(BankMapping::TwoLevelTiling.group_cycles(&group) <= 4);
    }

    /// Pseudo-random cell bases via an LCG, so the naive mapping sees
    /// the full spread of conflict patterns (some cell positions
    /// happen to be conflict-free even under naive banking — the
    /// variability the paper's Fig. 12(d) highlights).
    fn random_bases(n: u32) -> Vec<[u32; 3]> {
        let mut state = 0x2545F491u64;
        (0..n)
            .map(|_| {
                let mut next = || {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 33) as u32 & 0xFFFFF
                };
                [next(), next(), next()]
            })
            .collect()
    }

    #[test]
    fn simulate_reports_zero_variance_under_tiling() {
        let groups: Vec<[VertexRequest; 8]> =
            random_bases(200).into_iter().map(hash_like_group).collect();
        let refs: Vec<&[VertexRequest]> = groups.iter().map(|g| g.as_slice()).collect();
        let tiled = simulate_groups(BankMapping::TwoLevelTiling, refs.iter().copied());
        assert_eq!(tiled.groups, 200);
        assert_eq!(tiled.total_cycles, 200);
        assert_eq!(tiled.conflict_cycles, 0);
        assert_eq!(tiled.min_cycles, 1);
        assert_eq!(tiled.max_cycles, 1);
        assert_eq!(tiled.variance, 0.0);
        // All probability mass sits in the single-cycle bin.
        assert_eq!(tiled.histogram[0], 200);
        assert!(tiled.histogram[1..].iter().all(|&c| c == 0));

        let naive = simulate_groups(BankMapping::LowOrderBits, refs.iter().copied());
        assert!(naive.total_cycles > tiled.total_cycles, "naive must be slower");
        assert!(naive.variance > 0.0, "naive latency must vary");
        // The naive histogram spreads over multiple bins and counts
        // every group exactly once.
        assert!(naive.histogram.iter().filter(|&&c| c > 0).count() > 1);
        assert_eq!(naive.histogram.iter().sum::<u64>(), naive.groups);
        let saving = tiled.latency_saving_vs(&naive);
        assert!(saving > 0.1, "latency saving {saving}");
    }

    #[test]
    fn mean_cycles_and_empty_stats() {
        let empty = simulate_groups(BankMapping::LowOrderBits, std::iter::empty());
        assert_eq!(empty.groups, 0);
        assert_eq!(empty.mean_cycles(), 0.0);
        assert_eq!(empty.min_cycles, 0);
        let group = hash_like_group([1, 2, 3]);
        let one = simulate_groups(BankMapping::TwoLevelTiling, [group.as_slice()]);
        assert_eq!(one.mean_cycles(), 1.0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_group_rejected() {
        BankMapping::LowOrderBits.group_cycles(&[]);
    }

    proptest! {
        #[test]
        fn prop_tiling_never_exceeds_two_per_bank(bx in 0u32..100_000,
                                                  by in 0u32..100_000,
                                                  bz in 0u32..100_000) {
            // Even for arbitrary (non-hash) addresses, the corner
            // structure alone bounds each bank at 2 requests: each
            // (yz_group, parity) pair receives at most its own two
            // X-neighbours.
            let group = hash_like_group([bx, by, bz]);
            prop_assert!(BankMapping::TwoLevelTiling.group_cycles(&group) <= 2);
            // With the real hash, X-neighbours always split by parity:
            prop_assert_eq!(BankMapping::TwoLevelTiling.group_cycles(&group), 1);
        }

        #[test]
        fn prop_cycles_bounded_by_group_size(addrs: [u32; 8]) {
            let group = group_from_addresses(addrs);
            for mapping in [BankMapping::LowOrderBits, BankMapping::TwoLevelTiling] {
                let c = mapping.group_cycles(&group);
                prop_assert!((1..=8).contains(&c));
            }
        }
    }
}
