//! SRAM access-energy model for the on-chip memories.
//!
//! Per-access energy grows roughly with the square root of array
//! capacity (bitline/wordline length), the scaling CACTI-class tools
//! produce; the constants here are set for a 28 nm process so that the
//! chip's Stage-II feature traffic lands on the Memory Clusters' share
//! of the measured power budget (14 % of 1.21 W on the prototype).

/// Read energy of a 64 KB, 32-bit-word SRAM array at 28 nm, in pJ per
/// access (calibration anchor).
pub const READ_PJ_64KB: f64 = 6.0;

/// Write energy premium over a read.
pub const WRITE_FACTOR: f64 = 1.25;

/// Per-access read energy in pJ for an array of `bytes` capacity.
///
/// # Panics
///
/// Panics if `bytes` is zero.
pub fn read_energy_pj(bytes: u64) -> f64 {
    assert!(bytes > 0, "array capacity must be positive");
    READ_PJ_64KB * (bytes as f64 / (64.0 * 1024.0)).sqrt()
}

/// Per-access write energy in pJ for an array of `bytes` capacity.
pub fn write_energy_pj(bytes: u64) -> f64 {
    read_energy_pj(bytes) * WRITE_FACTOR
}

/// Aggregate energy of an access mix against one array, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCounts {
    /// Number of reads.
    pub reads: u64,
    /// Number of writes.
    pub writes: u64,
}

impl AccessCounts {
    /// Energy in joules for this mix on an array of `bytes` capacity.
    pub fn energy_j(&self, bytes: u64) -> f64 {
        (self.reads as f64 * read_energy_pj(bytes) + self.writes as f64 * write_energy_pj(bytes))
            * 1e-12
    }
}

/// Stage-II feature-memory energy for one frame: every sample gathers
/// eight corners on every level (reads); training additionally
/// read-modify-writes each corner on the backward pass.
pub fn feature_memory_energy_j(samples: u64, levels: u64, bank_bytes: u64, training: bool) -> f64 {
    // Paper-scale workloads are ≤ 10^9 samples over ≤ 32 levels; the
    // bounds keep the gather count provably inside u64 even with the
    // ×2 training reads (lint rule A2).
    debug_assert!(samples <= 1u64 << 40 && levels <= 64, "workload beyond paper scale");
    let gathers = samples * levels * 8;
    let counts = if training {
        AccessCounts { reads: gathers * 2, writes: gathers }
    } else {
        AccessCounts { reads: gathers, writes: 0 }
    };
    counts.energy_j(bank_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_anchor_holds() {
        assert!((read_energy_pj(64 * 1024) - READ_PJ_64KB).abs() < 1e-12);
        assert!(write_energy_pj(64 * 1024) > read_energy_pj(64 * 1024));
    }

    #[test]
    fn energy_scales_with_sqrt_capacity() {
        let small = read_energy_pj(16 * 1024);
        let big = read_energy_pj(256 * 1024);
        // 16x the capacity -> 4x the per-access energy.
        assert!((big / small - 4.0).abs() < 1e-9);
    }

    #[test]
    fn access_mix_energy() {
        let counts = AccessCounts { reads: 1_000_000, writes: 500_000 };
        let e = counts.energy_j(64 * 1024);
        // 1e6 × 6 pJ + 5e5 × 7.5 pJ = 9.75 µJ.
        assert!((e - 9.75e-6).abs() < 1e-9, "{e}");
        assert_eq!(AccessCounts::default().energy_j(1024), 0.0);
    }

    #[test]
    fn training_triples_the_traffic() {
        let inf = feature_memory_energy_j(10_000, 10, 8 * 1024, false);
        let train = feature_memory_energy_j(10_000, 10, 8 * 1024, true);
        // 2 reads + 1 write (at 1.25x) per gather: 3.25x inference.
        assert!((train / inf - 3.25).abs() < 1e-9, "{}", train / inf);
    }

    #[test]
    fn stage2_energy_fits_the_memory_power_share() {
        // Prototype-scale sanity check: at the measured ~295 M pts/s
        // (half the scaled chip), 10 levels over 8 KB banks, the
        // feature-gather power lands inside the chip's Memory
        // Clusters + interpolation-SRAM budget (a few hundred mW).
        let pts_per_s = 295e6_f64;
        let e_per_s = feature_memory_energy_j(pts_per_s as u64, 10, 8 * 1024, false);
        assert!((0.05..=0.6).contains(&e_per_s), "feature memory power {e_per_s} W out of band");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        read_energy_pj(0);
    }
}
