//! Published specifications of the comparison devices.
//!
//! Every number here is transcribed from the paper's Tables I, III,
//! and IV (which in turn cite each system's publication). `None`
//! encodes the paper's N/R (not reported) and N/S (not supported)
//! entries.

/// The NeRF algorithm family a device accelerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NerfAlgorithm {
    /// Instant-NGP-style multiresolution hash grid.
    HashGrid,
    /// TensoRF-style dense (decomposed) grid.
    DenseGrid,
    /// Pure-MLP NeRF.
    Mlp,
}

/// The published specification of one comparison device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Device name as used in the paper's tables.
    pub name: &'static str,
    /// Publication venue, if an academic accelerator.
    pub venue: Option<&'static str>,
    /// Whether a silicon prototype exists.
    pub silicon_prototype: bool,
    /// Process node in nm.
    pub process_nm: u32,
    /// Die area in mm².
    pub die_area_mm2: f64,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// On-chip SRAM in KB.
    pub sram_kb: f64,
    /// Core supply voltage, if reported.
    pub core_voltage: Option<f64>,
    /// Accelerated algorithm family.
    pub algorithm: NerfAlgorithm,
    /// Supports instant (< 2 s) training.
    pub instant_training: bool,
    /// Supports real-time (> 30 FPS) inference.
    pub realtime_inference: bool,
    /// Covers the end-to-end pipeline for both training and inference.
    pub end_to_end: bool,
    /// Inference throughput in million sampled points per second.
    pub inference_mpts: Option<f64>,
    /// Training throughput in million sampled points per second.
    pub training_mpts: Option<f64>,
    /// Inference energy per sampled point in nJ.
    pub inference_nj_per_pt: Option<f64>,
    /// Training energy per sampled point in nJ.
    pub training_nj_per_pt: Option<f64>,
    /// Off-chip memory connection type.
    pub offchip_connection: &'static str,
    /// Off-chip bandwidth in GB/s.
    pub offchip_bandwidth_gbs: Option<f64>,
    /// Typical power in watts.
    pub typical_power_w: Option<f64>,
}

impl DeviceSpec {
    /// Inference throughput per watt in M points/s/W, when both
    /// numbers are reported.
    pub fn inference_mpts_per_watt(&self) -> Option<f64> {
        Some(self.inference_mpts? / self.typical_power_w?)
    }

    /// Training throughput per watt in M points/s/W.
    pub fn training_mpts_per_watt(&self) -> Option<f64> {
        Some(self.training_mpts? / self.typical_power_w?)
    }
}

/// Nvidia Jetson Nano (edge GPU, Table III).
pub fn jetson_nano() -> DeviceSpec {
    DeviceSpec {
        name: "Nvidia Jetson Nano",
        venue: None,
        silicon_prototype: false,
        process_nm: 20,
        die_area_mm2: 118.0,
        clock_mhz: 900.0,
        sram_kb: 2500.0,
        core_voltage: None,
        algorithm: NerfAlgorithm::HashGrid,
        instant_training: false,
        realtime_inference: false,
        end_to_end: true,
        inference_mpts: Some(2.5),
        training_mpts: Some(0.5),
        inference_nj_per_pt: Some(192.0),
        training_nj_per_pt: Some(943.0),
        offchip_connection: "LPDDR4",
        offchip_bandwidth_gbs: Some(25.6),
        typical_power_w: Some(0.48),
    }
}

/// Nvidia Jetson Xavier NX (edge GPU, Tables I and III).
pub fn jetson_xnx() -> DeviceSpec {
    DeviceSpec {
        name: "Nvidia Jetson XNX",
        venue: None,
        silicon_prototype: false,
        process_nm: 12,
        die_area_mm2: 350.0,
        clock_mhz: 1100.0,
        sram_kb: 11_000.0,
        core_voltage: None,
        algorithm: NerfAlgorithm::HashGrid,
        instant_training: false,
        realtime_inference: false,
        end_to_end: true,
        inference_mpts: Some(12.5),
        training_mpts: Some(2.6),
        inference_nj_per_pt: Some(486.0),
        training_nj_per_pt: Some(2357.0),
        offchip_connection: "LPDDR4x",
        offchip_bandwidth_gbs: Some(59.7),
        typical_power_w: Some(6.1),
    }
}

/// RT-NeRF edge configuration (ICCAD'22, Tables I and III).
pub fn rtnerf_edge() -> DeviceSpec {
    DeviceSpec {
        name: "RT-NeRF (Edge)",
        venue: Some("ICCAD'22"),
        silicon_prototype: false,
        process_nm: 28,
        die_area_mm2: 18.85,
        clock_mhz: 1000.0,
        sram_kb: 3500.0,
        core_voltage: Some(1.0),
        algorithm: NerfAlgorithm::DenseGrid,
        instant_training: false,
        realtime_inference: true,
        end_to_end: false,
        inference_mpts: Some(288.0),
        training_mpts: None,
        inference_nj_per_pt: Some(27.0),
        training_nj_per_pt: None,
        offchip_connection: "LPDDR4-1600",
        offchip_bandwidth_gbs: Some(17.0),
        typical_power_w: Some(7.8),
    }
}

/// RT-NeRF cloud/server configuration (Tables I and IV).
pub fn rtnerf_cloud() -> DeviceSpec {
    DeviceSpec {
        name: "RT-NeRF-Cloud",
        venue: Some("ICCAD'22"),
        silicon_prototype: false,
        process_nm: 28,
        die_area_mm2: 565.0,
        clock_mhz: 1000.0,
        sram_kb: 105_000.0,
        core_voltage: Some(1.0),
        algorithm: NerfAlgorithm::DenseGrid,
        instant_training: false,
        realtime_inference: true,
        end_to_end: false,
        inference_mpts: Some(8160.0),
        training_mpts: None,
        inference_nj_per_pt: None,
        training_nj_per_pt: None,
        offchip_connection: "HBM2",
        offchip_bandwidth_gbs: Some(510.0),
        typical_power_w: Some(240.0),
    }
}

/// Instant-3D (ISCA'23, Tables I and III) — the prior instant-training
/// accelerator.
pub fn instant3d() -> DeviceSpec {
    DeviceSpec {
        name: "Instant-3D",
        venue: Some("ISCA'23"),
        silicon_prototype: false,
        process_nm: 28,
        die_area_mm2: 6.8,
        clock_mhz: 800.0,
        sram_kb: 1536.0,
        core_voltage: Some(1.0),
        algorithm: NerfAlgorithm::HashGrid,
        instant_training: true,
        realtime_inference: true,
        end_to_end: false,
        inference_mpts: None,
        training_mpts: Some(32.0),
        inference_nj_per_pt: None,
        training_nj_per_pt: Some(59.0),
        offchip_connection: "LPDDR4-1866",
        offchip_bandwidth_gbs: Some(59.7),
        typical_power_w: Some(1.9),
    }
}

/// NeuRex edge configuration (ISCA'23, Tables I and III).
// NeuRex's published die area genuinely is 3.14 mm²; it is not a
// stand-in for π.
#[allow(clippy::approx_constant)]
pub fn neurex_edge() -> DeviceSpec {
    DeviceSpec {
        name: "NeuRex (Edge)",
        venue: Some("ISCA'23"),
        silicon_prototype: false,
        process_nm: 28,
        die_area_mm2: 3.14,
        clock_mhz: 1000.0,
        sram_kb: 884.0,
        core_voltage: None,
        algorithm: NerfAlgorithm::HashGrid,
        instant_training: false,
        realtime_inference: true,
        end_to_end: false,
        inference_mpts: Some(112.0),
        training_mpts: None,
        inference_nj_per_pt: Some(41.0),
        training_nj_per_pt: None,
        offchip_connection: "LPDDR4-3200",
        offchip_bandwidth_gbs: Some(25.6),
        typical_power_w: Some(4.6),
    }
}

/// NeuRex server configuration (Tables I and IV).
pub fn neurex_server() -> DeviceSpec {
    DeviceSpec {
        name: "NeuRex-Server",
        venue: Some("ISCA'23"),
        silicon_prototype: false,
        process_nm: 28,
        die_area_mm2: 21.37,
        clock_mhz: 1000.0,
        sram_kb: 4644.0,
        core_voltage: None,
        algorithm: NerfAlgorithm::HashGrid,
        instant_training: false,
        realtime_inference: true,
        end_to_end: false,
        inference_mpts: Some(305.0),
        training_mpts: None,
        inference_nj_per_pt: None,
        training_nj_per_pt: None,
        offchip_connection: "HBM2",
        offchip_bandwidth_gbs: Some(512.0),
        typical_power_w: Some(6.1),
    }
}

/// MetaVRain (ISSCC'23, Table III) — the prior silicon prototype.
pub fn metavrain() -> DeviceSpec {
    DeviceSpec {
        name: "MetaVRain",
        venue: Some("ISSCC'23"),
        silicon_prototype: true,
        process_nm: 28,
        die_area_mm2: 20.25,
        clock_mhz: 250.0,
        sram_kb: 2050.0,
        core_voltage: Some(0.95),
        algorithm: NerfAlgorithm::Mlp,
        instant_training: false,
        realtime_inference: true,
        end_to_end: false,
        inference_mpts: Some(13.8),
        training_mpts: None,
        inference_nj_per_pt: Some(65.0),
        training_nj_per_pt: None,
        offchip_connection: "N/R",
        offchip_bandwidth_gbs: None,
        typical_power_w: Some(0.133),
    }
}

/// NGPC (ISCA'23, Table I) — NeRF units integrated into a GPU.
pub fn ngpc() -> DeviceSpec {
    DeviceSpec {
        name: "NGPC",
        venue: Some("ISCA'23"),
        silicon_prototype: false,
        process_nm: 5,
        die_area_mm2: 300.0,
        clock_mhz: 1400.0,
        sram_kb: 16_000.0,
        core_voltage: None,
        algorithm: NerfAlgorithm::HashGrid,
        instant_training: false,
        realtime_inference: true,
        end_to_end: false,
        inference_mpts: None,
        training_mpts: None,
        inference_nj_per_pt: None,
        training_nj_per_pt: None,
        offchip_connection: "GDDR6X",
        offchip_bandwidth_gbs: Some(231.0),
        typical_power_w: None,
    }
}

/// Gen-NeRF (ISCA'23, Table I).
pub fn gen_nerf() -> DeviceSpec {
    DeviceSpec {
        name: "Gen-NeRF",
        venue: Some("ISCA'23"),
        silicon_prototype: false,
        process_nm: 28,
        die_area_mm2: 18.5,
        clock_mhz: 800.0,
        sram_kb: 5200.0,
        core_voltage: None,
        algorithm: NerfAlgorithm::Mlp,
        instant_training: false,
        realtime_inference: true,
        end_to_end: false,
        inference_mpts: None,
        training_mpts: None,
        inference_nj_per_pt: None,
        training_nj_per_pt: None,
        offchip_connection: "LPDDR4-2400",
        offchip_bandwidth_gbs: Some(17.8),
        typical_power_w: None,
    }
}

/// Nvidia RTX 2080 Ti (cloud GPU, Tables IV and V).
pub fn rtx_2080ti() -> DeviceSpec {
    DeviceSpec {
        name: "Nvidia 2080Ti",
        venue: None,
        silicon_prototype: false,
        process_nm: 12,
        die_area_mm2: 754.0,
        clock_mhz: 1350.0,
        sram_kb: 27_394.0,
        core_voltage: None,
        algorithm: NerfAlgorithm::HashGrid,
        instant_training: true,
        realtime_inference: true,
        end_to_end: true,
        inference_mpts: Some(100.0),
        training_mpts: Some(25.0),
        inference_nj_per_pt: Some(2500.0),
        training_nj_per_pt: Some(10_000.0),
        offchip_connection: "GDDR6",
        offchip_bandwidth_gbs: Some(616.0),
        typical_power_w: Some(250.0),
    }
}

/// The Table III single-chip comparison baselines, in column order.
pub fn table3_baselines() -> Vec<DeviceSpec> {
    vec![jetson_nano(), jetson_xnx(), rtnerf_edge(), instant3d(), neurex_edge(), metavrain()]
}

/// The Table IV multi-chip comparison baselines, in column order.
pub fn table4_baselines() -> Vec<DeviceSpec> {
    vec![rtx_2080ti(), rtnerf_cloud(), neurex_server()]
}

/// The Table I prior-accelerator bandwidth rows.
pub fn table1_accelerators() -> Vec<DeviceSpec> {
    vec![
        rtnerf_edge(),
        gen_nerf(),
        neurex_edge(),
        instant3d(),
        ngpc(),
        rtnerf_cloud(),
        neurex_server(),
    ]
}

/// A Table I edge platform: name and the USB bandwidth available for a
/// dedicated accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgePlatform {
    /// Platform name.
    pub name: &'static str,
    /// Off-chip connection type available to an attached accelerator.
    pub connection: &'static str,
    /// Bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

/// The Table I edge platforms (all expose USB 3.2 Gen 1: 0.625 GB/s).
pub fn edge_platforms() -> Vec<EdgePlatform> {
    vec![
        EdgePlatform { name: "Nvidia XNX", connection: "USB 3.2 Gen 1", bandwidth_gbs: 0.625 },
        EdgePlatform {
            name: "Meta Quest 2/3/Pro",
            connection: "USB 3.2 Gen 1",
            bandwidth_gbs: 0.625,
        },
        EdgePlatform {
            name: "Samsung S24 Ultra",
            connection: "USB 3.2 Gen 1",
            bandwidth_gbs: 0.625,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_rows_match_paper() {
        let rows = table3_baselines();
        assert_eq!(rows.len(), 6);
        // Spot-check the published throughput/energy cells.
        let rtnerf = &rows[2];
        assert_eq!(rtnerf.inference_mpts, Some(288.0));
        assert_eq!(rtnerf.inference_nj_per_pt, Some(27.0));
        let i3d = &rows[3];
        assert_eq!(i3d.training_mpts, Some(32.0));
        assert_eq!(i3d.training_nj_per_pt, Some(59.0));
        assert!(i3d.instant_training);
        // Only MetaVRain among the baselines has silicon.
        assert_eq!(rows.iter().filter(|d| d.silicon_prototype).count(), 1);
        // No baseline covers the end-to-end pipeline as an accelerator.
        assert!(rows[2..].iter().all(|d| !d.end_to_end));
    }

    #[test]
    fn fusion3d_beats_best_baselines() {
        // Table III orderings: 591 M pts/s inference beats the best
        // baseline (RT-NeRF's 288), and 199 M pts/s training is >4x
        // the best trainer (Instant-3D's 32).
        let best_inference =
            table3_baselines().iter().filter_map(|d| d.inference_mpts).fold(0.0, f64::max);
        let best_training =
            table3_baselines().iter().filter_map(|d| d.training_mpts).fold(0.0, f64::max);
        assert!(591.0 > best_inference);
        assert!(199.0 > 4.0 * best_training, "4.15x training over Instant-3D");
    }

    #[test]
    fn bandwidth_gap_is_orders_of_magnitude() {
        // Every prior accelerator needs far more bandwidth than any
        // edge platform provides (Table I's motivation).
        let usb = edge_platforms()[0].bandwidth_gbs;
        for acc in table1_accelerators() {
            if let Some(bw) = acc.offchip_bandwidth_gbs {
                assert!(bw > 20.0 * usb, "{} needs only {bw} GB/s?", acc.name);
            }
        }
        // This work: 0.6 GB/s fits under the USB budget.
        assert!(0.6 < usb);
    }

    #[test]
    fn per_watt_metrics() {
        let gpu = rtx_2080ti();
        let ipw = gpu.inference_mpts_per_watt().unwrap();
        assert!((ipw - 0.4).abs() < 0.01, "2080Ti: {ipw} M/s/W");
        let tpw = gpu.training_mpts_per_watt().unwrap();
        assert!((tpw - 0.1).abs() < 0.01, "2080Ti training: {tpw} M/s/W");
        // RT-NeRF-Cloud: 34 M/s/W per Table IV.
        let rt = rtnerf_cloud().inference_mpts_per_watt().unwrap();
        assert!((rt - 34.0).abs() < 0.5, "{rt}");
        // NeuRex-Server: 50 M/s/W.
        let nx = neurex_server().inference_mpts_per_watt().unwrap();
        assert!((nx - 50.0).abs() < 0.5, "{nx}");
        // Unreported cells propagate None.
        assert!(ngpc().inference_mpts_per_watt().is_none());
    }

    #[test]
    fn edge_platforms_all_usb() {
        let platforms = edge_platforms();
        assert_eq!(platforms.len(), 3);
        assert!(platforms.iter().all(|p| p.bandwidth_gbs == 0.625));
    }
}
