//! # fusion3d-baselines
//!
//! Analytical models of every device the paper compares against, built
//! from each system's published numbers (the paper itself compares
//! against reported results, not re-runs): edge GPUs, the cloud GPU,
//! and the prior NeRF accelerators of Tables I, III, and IV.
//!
//! ```
//! use fusion3d_baselines::devices;
//!
//! let gpu = devices::rtx_2080ti();
//! assert_eq!(gpu.typical_power_w, Some(250.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod devices;

pub use devices::{DeviceSpec, NerfAlgorithm};
