//! Report sink: JSON-lines and human-table rendering of a trace plus
//! metrics registry.

use crate::metrics::{Metric, MetricValue, Metrics};
use crate::trace::Trace;
use std::fmt::Write as _;

/// A labelled observation set: one [`Trace`] plus one [`Metrics`]
/// registry, with renderers. Nothing here prints — callers own the I/O.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Human label, e.g. the scene name.
    pub label: String,
    /// The span tree.
    pub trace: Trace,
    /// The metric registry.
    pub metrics: Metrics,
}

impl Report {
    /// Empty report with the given label.
    pub fn new(label: &str) -> Self {
        Self { label: label.to_string(), trace: Trace::new(), metrics: Metrics::new() }
    }

    /// Render the full report as JSON lines, including diagnostic
    /// metrics. One object per line: a `report` header, then `span`
    /// lines in begin order, then metric lines in name order.
    pub fn to_jsonl(&self) -> String {
        self.render_jsonl(true)
    }

    /// Render only the deterministic subset: everything except metrics
    /// flagged diagnostic. Two runs of a deterministic simulation must
    /// produce bitwise-identical output here regardless of
    /// `FUSION3D_THREADS`; the determinism regression tests compare this
    /// stream.
    pub fn deterministic_jsonl(&self) -> String {
        self.render_jsonl(false)
    }

    fn render_jsonl(&self, include_diagnostic: bool) -> String {
        let mut out = String::new();
        out.push_str("{\"type\":\"report\",\"label\":\"");
        escape_into(&mut out, &self.label);
        out.push_str("\"}\n");
        for (idx, span) in self.trace.spans.iter().enumerate() {
            out.push_str("{\"type\":\"span\",\"id\":");
            let _ = write!(out, "{idx}");
            out.push_str(",\"parent\":");
            match span.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"depth\":{},\"name\":\"", span.depth);
            escape_into(&mut out, &span.name);
            let _ = write!(
                out,
                "\",\"start\":{},\"end\":{},\"cycles\":{},\"energy_j\":",
                span.start_cycle,
                span.end_cycle,
                span.cycles()
            );
            push_f64(&mut out, span.energy_j);
            out.push_str("}\n");
        }
        for (name, metric) in self.metrics.iter() {
            if metric.diagnostic && !include_diagnostic {
                continue;
            }
            push_metric_line(&mut out, name, metric);
        }
        out
    }

    /// Render a human-readable table: the span tree (cycles, share of the
    /// enclosing root span, energy) followed by the metric registry.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.label);
        if !self.trace.spans.is_empty() {
            let _ =
                writeln!(out, "{:<38} {:>14} {:>7} {:>12}", "span", "cycles", "share", "energy");
            let mut root_cycles = 0u64;
            for span in &self.trace.spans {
                if span.parent.is_none() {
                    root_cycles = span.cycles();
                }
                let share = if root_cycles > 0 {
                    100.0 * span.cycles() as f64 / root_cycles as f64
                } else {
                    0.0
                };
                let indent = "  ".repeat(span.depth as usize);
                let energy = if span.energy_j > 0.0 {
                    format!("{:.4e} J", span.energy_j)
                } else {
                    "-".to_string()
                };
                let _ = writeln!(
                    out,
                    "{:<38} {:>14} {:>6.1}% {:>12}",
                    format!("{indent}{}", span.name),
                    span.cycles(),
                    share,
                    energy
                );
            }
        }
        if !self.metrics.is_empty() {
            let _ = writeln!(out, "{:<38} {:>22} {:<10}", "metric", "value", "unit");
            for (name, metric) in self.metrics.iter() {
                let marker = if metric.diagnostic { " (diag)" } else { "" };
                match &metric.value {
                    MetricValue::Counter(c) => {
                        let _ = writeln!(out, "{:<38} {:>22} {:<10}{marker}", name, c, metric.unit);
                    }
                    MetricValue::Gauge(g) => {
                        let _ =
                            writeln!(out, "{:<38} {:>22.6} {:<10}{marker}", name, g, metric.unit);
                    }
                    MetricValue::Histogram(h) => {
                        let _ = writeln!(
                            out,
                            "{:<38} {:>22} {:<10}{marker}",
                            name,
                            format!(
                                "n={} mean={:.2} max={}",
                                h.count,
                                h.mean(),
                                if h.count == 0 { 0 } else { h.max }
                            ),
                            metric.unit
                        );
                    }
                }
            }
        }
        out
    }
}

fn push_metric_line(out: &mut String, name: &str, metric: &Metric) {
    let kind = match metric.value {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Histogram(_) => "histogram",
    };
    let _ = write!(out, "{{\"type\":\"{kind}\",\"name\":\"");
    escape_into(out, name);
    out.push_str("\",\"unit\":\"");
    escape_into(out, metric.unit);
    out.push('"');
    if metric.diagnostic {
        out.push_str(",\"diagnostic\":true");
    }
    match &metric.value {
        MetricValue::Counter(c) => {
            let _ = write!(out, ",\"value\":{c}");
        }
        MetricValue::Gauge(g) => {
            out.push_str(",\"value\":");
            push_f64(out, *g);
        }
        MetricValue::Histogram(h) => {
            let min = if h.count == 0 { 0 } else { h.min };
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
                h.count, h.sum, min, h.max
            );
            out.push_str(",\"buckets\":[");
            let mut first = true;
            for (idx, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{idx},{n}]");
            }
            out.push(']');
        }
    }
    out.push_str("}\n");
}

/// JSON string escaping for the characters that can occur in span and
/// metric names (quotes, backslashes, control characters).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// JSON number formatting for `f64`: shortest round-trip form via `{}`,
/// `null` for non-finite values (JSON has no NaN/inf).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_escapes_and_orders() {
        let mut r = Report::new("scene \"a\"");
        let root = r.trace.begin("frame", 0);
        r.trace.record("sampling", 0, 10);
        r.trace.end(root, 10);
        r.metrics.counter_add("noc.bytes", "bytes", 7);
        r.metrics.diagnostic_gauge_set("worker.util", "ratio", 0.25);
        let full = r.to_jsonl();
        assert!(full.contains("scene \\\"a\\\""));
        assert!(full.contains("\"type\":\"span\""));
        assert!(full.contains("worker.util"));
        let det = r.deterministic_jsonl();
        assert!(det.contains("noc.bytes"));
        assert!(!det.contains("worker.util"), "diagnostic metrics excluded");
    }

    #[test]
    fn non_finite_gauges_serialize_as_null() {
        let mut r = Report::new("x");
        r.metrics.gauge_set("bad", "ratio", f64::NAN);
        assert!(r.to_jsonl().contains("\"value\":null"));
    }

    #[test]
    fn table_renders_tree_and_metrics() {
        let mut r = Report::new("lego");
        let root = r.trace.begin("frame", 0);
        r.trace.record("interp", 0, 60);
        r.trace.record("postproc", 60, 100);
        r.trace.end(root, 100);
        r.metrics.observe("ray.samples", "samples", 12);
        let table = r.render_table();
        assert!(table.contains("== lego =="));
        assert!(table.contains("  interp"));
        assert!(table.contains("60.0%"));
        assert!(table.contains("ray.samples"));
    }
}
