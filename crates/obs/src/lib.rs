//! # fusion3d-obs — deterministic observability for the Fusion-3D stack
//!
//! Paper mapping: the evaluation sections of Fusion-3D (MICRO 2024) argue
//! from *visibility into the machine* — per-module cycle and energy
//! breakdowns (Tab. III, Fig. 14), stage utilization and occupancy
//! statistics (Fig. 6, Fig. 9), and per-scene spreads (Tab. VI). This
//! crate is the substrate that lets the reproduction surface the same
//! quantities: every simulator crate records into it, and
//! `bench/src/bin/breakdown.rs` renders the paper-style tables from it.
//!
//! ## Determinism contract
//!
//! Everything in this crate is keyed to **simulated cycles**, never wall
//! clock: there is no `Instant`, no `SystemTime`, no environment read, and
//! no dependency of any kind. Reports produced from a deterministic
//! simulation are bitwise-identical across runs and across
//! `FUSION3D_THREADS` settings, with one deliberate exception: metrics
//! flagged *diagnostic* (for example per-worker utilization, which is
//! inherently scheduling-dependent) are excluded from
//! [`Report::deterministic_jsonl`], the stream the determinism regression
//! tests compare.
//!
//! ## Shape
//!
//! * [`Trace`] — a tree of [`SpanRecord`]s, each covering a half-open
//!   simulated-cycle interval with optional attributed energy.
//! * [`Metrics`] — a name-ordered registry of typed entries: monotonic
//!   [`Counter`](MetricValue::Counter)s, point-in-time
//!   [`Gauge`](MetricValue::Gauge)s, and log2-bucketed [`Histogram`]s.
//! * [`Report`] — a labelled (trace, metrics) pair with JSON-lines and
//!   human-table renderers. Nothing in this crate prints; callers decide
//!   where the rendered strings go (lint rule O1 enforces this repo-wide).
//!
//! Everything is instance-based — no globals, no interior mutability — so
//! worker shards can record into private [`Metrics`] and merge them in
//! deterministic (chunk-index) order.

#![warn(missing_docs)]

mod metrics;
mod report;
mod trace;

pub use metrics::{Histogram, Metric, MetricValue, Metrics, HISTOGRAM_BUCKETS};
pub use report::Report;
pub use trace::{SpanId, SpanRecord, Trace};
